#!/usr/bin/env python3
"""CI gate for the `repro --report` run report.

Fails (exit 1) when the report is missing or malformed, when any recorded
span has a zero event count, when a span that must be present for a full
`all` run is absent, or when the filter funnel does not balance. Mirrors
the assertions of tests/report_schema.rs so a broken report fails CI even
if someone runs the repro step without the test suite.
"""

import json
import sys

# Spans that a full `repro all --scale test` run must record.
REQUIRED_SPANS = [
    "repro.run",
    "core.world.build",
    "core.campaign.probe_all",
    "core.campaign.probe_ixp",
    "core.filters.analyze_ixp",
    "core.offload.ranking",
    "core.offload.greedy",
    "netsim.run",
    "econ.fit.decay",
]

# The run report's schema is closed: a key nobody validates is a key
# nobody can trust, so an unknown top-level section fails the gate.
ALLOWED_TOP_LEVEL = {"meta", "world", "filter_funnel", "timelines", "spans", "metrics", "check"}

# Timeline series a full `repro all` run must record.
REQUIRED_SERIES = [
    "netsim.events",
    "netsim.queue_depth",
    "core.filter_funnel.probed",
    "core.filter_funnel.analyzed",
]

errors = []


def check_timelines(tl):
    if not isinstance(tl, dict):
        errors.append("timelines section is not an object")
        return
    bucket_ns = tl.get("bucket_ns")
    if not isinstance(bucket_ns, int) or bucket_ns <= 0:
        errors.append(f"timelines.bucket_ns must be a positive integer, got {bucket_ns!r}")
    series = tl.get("series")
    if not isinstance(series, dict) or not series:
        errors.append("timelines.series must be a non-empty object")
        return
    for name, s in series.items():
        if s.get("kind") not in ("rate", "level"):
            errors.append(f"series {name}: bad kind {s.get('kind')!r}")
        if s.get("axis") not in ("sim_time", "index"):
            errors.append(f"series {name}: bad axis {s.get('axis')!r}")
        points = s.get("points")
        if not isinstance(points, list) or not points:
            errors.append(f"series {name}: points must be a non-empty list")
            continue
        last = -1
        for p in points:
            if (
                not isinstance(p, list)
                or len(p) != 2
                or not isinstance(p[0], int)
                or not isinstance(p[1], int)
            ):
                errors.append(f"series {name}: malformed point {p!r}")
                break
            if p[0] <= last:
                errors.append(f"series {name}: points not strictly sorted at {p[0]}")
                break
            last = p[0]
    for required in REQUIRED_SERIES:
        if required not in series:
            errors.append(f"required timeline series {required} missing")


def walk(node, parent_window, seen):
    name = node["name"]
    seen.add(name)
    if node["count"] < 1:
        errors.append(f"span {name}: zero events recorded")
    if node["window_ns"] > parent_window:
        errors.append(
            f"span {name}: window {node['window_ns']}ns exceeds parent {parent_window}ns"
        )
    if node["self_ns"] > node["total_ns"]:
        errors.append(f"span {name}: self time exceeds total")
    for child in node["children"]:
        walk(child, node["window_ns"], seen)


def main(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        errors.append(f"report missing: {e}")
        return
    except ValueError as e:
        errors.append(f"report does not parse: {e}")
        return

    unknown = set(report) - ALLOWED_TOP_LEVEL
    if unknown:
        errors.append(f"unknown top-level keys: {sorted(unknown)}")

    if "timelines" not in report:
        errors.append("timelines section missing")
    else:
        check_timelines(report["timelines"])

    seen = set()
    spans = report.get("spans", [])
    if not spans:
        errors.append("no spans recorded")
    for root in spans:
        walk(root, float("inf"), seen)
    for required in REQUIRED_SPANS:
        if required not in seen:
            errors.append(f"required span {required} missing")

    funnel = report.get("filter_funnel")
    if not isinstance(funnel, dict):
        errors.append("filter_funnel section missing")
    else:
        discarded = sum(funnel["discards"].values())
        if funnel["probed"] != funnel["analyzed"] + discarded:
            errors.append(
                f"funnel does not balance: {funnel['probed']} probed vs "
                f"{funnel['analyzed']} analyzed + {discarded} discarded"
            )
        if funnel["probed"] == 0:
            errors.append("funnel is empty for a full detection run")

    hits = report.get("metrics", {}).get("core.offload.cone_cache.hits", {})
    if hits.get("value", 0) == 0:
        errors.append("cone cache recorded no hits across the sweeps")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: check_run_report.py RUN_REPORT_JSON", file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
    if errors:
        for e in errors:
            print(f"check_run_report: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_run_report: {sys.argv[1]} OK")
