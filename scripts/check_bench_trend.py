#!/usr/bin/env python3
"""Perf-regression sentinel over `repro bench` result files.

Compares a fresh bench result against one or more committed baselines
(`BENCH_*.json` at the repository root) and fails when a gated benchmark
slowed past the tolerance.

Raw ns/op is only comparable on one host, and CI hosts drift. The
sentinel therefore normalizes every bench by the same file's
`event_queue_spread` ns/op — a pure CPU/allocator microbench that acts as
a machine-speed unit — so what is compared is "how many queue-ops does
one op of this bench cost", which is stable across hosts. The
`event_queue_*` microbenches themselves are the normalizer family, so
they are excluded from the gate and reported informationally; pass
`--raw` to skip normalization for a strictly same-host comparison (the
same check `repro bench --compare` performs in-process).

With several baselines the per-bench reference is the median, and the
effective tolerance widens to the baselines' own relative spread when
that spread exceeds `--tolerance` — a bench whose baselines disagree by
30% cannot be gated at 15%.

Exit codes: 0 ok (or `--warn-only`), 1 regression, 2 usage/IO error.

`--self-test` runs two checks and ignores the positional arguments:
a synthetic 20% `probe_all` regression that must be flagged, and the
repository's committed BENCH_5.json → BENCH_6.json pair (different
hosts) that must pass under normalization.
"""

import argparse
import copy
import json
import os
import sys

NORMALIZER = "event_queue_spread"
# The normalizer family: these *are* the measuring stick, so they cannot
# be gated by it. Reported informationally only.
UNGATED_PREFIX = "event_queue_"
DEFAULT_TOLERANCE = 0.15


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench_trend: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    return doc


def bench_map(doc, label):
    if doc.get("schema") != "rp-bench/1":
        print(
            f"check_bench_trend: {label}: unexpected schema {doc.get('schema')!r}",
            file=sys.stderr,
        )
        sys.exit(2)
    out = {}
    for row in doc.get("benches", []):
        ns = row.get("ns_per_op")
        if not isinstance(ns, (int, float)) or ns <= 0:
            print(
                f"check_bench_trend: {label}: bad ns_per_op for {row.get('name')!r}",
                file=sys.stderr,
            )
            sys.exit(2)
        out[row["name"]] = float(ns)
    if not out:
        print(f"check_bench_trend: {label}: no benches", file=sys.stderr)
        sys.exit(2)
    return out


def normalize(benches, label):
    unit = benches.get(NORMALIZER)
    if unit is None:
        print(
            f"check_bench_trend: {label}: normalizer {NORMALIZER} missing "
            "(use --raw for same-host comparisons)",
            file=sys.stderr,
        )
        sys.exit(2)
    return {name: ns / unit for name, ns in benches.items()}


def median(xs):
    xs = sorted(xs)
    mid = len(xs) // 2
    if len(xs) % 2:
        return xs[mid]
    return (xs[mid - 1] + xs[mid]) / 2


def run_gate(new_map, base_maps, tolerance, out=sys.stdout):
    """Compare `new_map` against per-bench medians of `base_maps`.

    Returns the list of regressed bench names; prints one line per bench.
    """
    regressed = []
    names = sorted(new_map)
    width = max((len(n) for n in names), default=10) + 2
    for name in names:
        refs = [b[name] for b in base_maps if name in b]
        if not refs:
            print(f"{name:<{width}} (new bench, no baseline)", file=out)
            continue
        ref = median(refs)
        spread = (max(refs) - min(refs)) / ref if len(refs) > 1 and ref > 0 else 0.0
        eff_tol = max(tolerance, spread)
        ratio = new_map[name] / ref
        if name.startswith(UNGATED_PREFIX):
            verdict = f"info (normalizer family, not gated)"
        elif ratio > 1 + eff_tol:
            verdict = f"REGRESSION (past {eff_tol:.0%})"
            regressed.append(name)
        elif ratio < 1 - eff_tol:
            verdict = "improved"
        else:
            verdict = "ok"
        print(f"{name:<{width}} {ratio:7.3f}x  {verdict}", file=out)
    for name in sorted(set().union(*base_maps) - set(new_map)):
        print(f"{name:<{width}} (baseline only, retired)", file=out)
    return regressed


def compare_files(new_path, base_paths, tolerance, raw):
    new_doc = load(new_path)
    new_map = bench_map(new_doc, new_path)
    base_maps = [bench_map(load(p), p) for p in base_paths]
    if not raw:
        new_map = normalize(new_map, new_path)
        base_maps = [normalize(b, p) for b, p in zip(base_maps, base_paths)]
    mode = "raw" if raw else f"normalized by {NORMALIZER}"
    print(f"check_bench_trend: {new_path} vs {len(base_paths)} baseline(s), {mode}")
    return run_gate(new_map, base_maps, tolerance)


def self_test(tolerance):
    failures = []

    # 1. A synthetic 20% probe_all regression against an otherwise
    # identical baseline must be flagged.
    baseline = {
        "schema": "rp-bench/1",
        "benches": [
            {"name": "world_build", "ns_per_op": 8.0e6},
            {"name": "probe_all", "ns_per_op": 1.2e8},
            {"name": "event_queue_spread", "ns_per_op": 20.0},
            {"name": "event_queue_burst200", "ns_per_op": 21.0},
        ],
    }
    slowed = copy.deepcopy(baseline)
    for row in slowed["benches"]:
        if row["name"] == "probe_all":
            row["ns_per_op"] *= 1.20
    new_map = normalize(bench_map(slowed, "synthetic-new"), "synthetic-new")
    base_map = normalize(bench_map(baseline, "synthetic-base"), "synthetic-base")
    regressed = run_gate(new_map, [base_map], tolerance, out=open(os.devnull, "w"))
    if regressed != ["probe_all"]:
        failures.append(f"synthetic 20% probe_all regression not flagged: {regressed}")

    # 2. The committed cross-host pair must pass: the raw numbers differ
    # by ~40% (different machines) but the normalized trend is flat.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    b5 = os.path.join(root, "BENCH_5.json")
    b6 = os.path.join(root, "BENCH_6.json")
    if os.path.exists(b5) and os.path.exists(b6):
        regressed = compare_files(b6, [b5], tolerance, raw=False)
        if regressed:
            failures.append(f"committed BENCH_5 -> BENCH_6 pair regressed: {regressed}")
    else:
        failures.append("committed BENCH_5.json/BENCH_6.json not found")

    if failures:
        for f in failures:
            print(f"check_bench_trend: self-test FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("check_bench_trend: self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("new", nargs="?", help="fresh bench result (rp-bench/1 JSON)")
    ap.add_argument("baselines", nargs="*", help="committed baseline files")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    ap.add_argument("--warn-only", action="store_true", help="report, never fail")
    ap.add_argument("--raw", action="store_true", help="skip normalization (same host)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        self_test(args.tolerance)
        return
    if not args.new or not args.baselines:
        ap.error("NEW.json and at least one BASELINE.json are required")

    regressed = compare_files(args.new, args.baselines, args.tolerance, args.raw)
    if regressed:
        level = "warning" if args.warn_only else "error"
        print(
            f"check_bench_trend: {level}: {len(regressed)} regression(s): "
            f"{', '.join(regressed)}",
            file=sys.stderr,
        )
        if not args.warn_only:
            sys.exit(1)
    else:
        print("check_bench_trend: OK")


if __name__ == "__main__":
    main()
