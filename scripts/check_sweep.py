#!/usr/bin/env python3
"""CI gate for `repro sweep` output.

Fails (exit 1) when the sweep JSON is missing or malformed, when the cell
grid does not match the echoed spec, when the baseline arm is absent or
duplicated, when any per-metric statistic is insane (mean outside its own
CI, negative deviation, bounded metrics out of range), or when a
non-baseline cell lacks paired deltas against the baseline. Mirrors the
assertions of crates/scenario/tests/engine.rs so a broken sweep fails CI
even if someone runs the sweep step without the test suite.
"""

import json
import math
import sys

METRICS = [
    "analyzed",
    "remote_fraction",
    "precision",
    "recall",
    "f1",
    "accuracy",
    "offload_top1_frac",
    "offload_top5_frac",
    "econ_margin",
]
UNIT_METRICS = {"remote_fraction", "precision", "recall", "f1", "accuracy",
                "offload_top1_frac", "offload_top5_frac"}

errors = []


def check_interval(where, stat, mean, ci):
    if not (isinstance(ci, list) and len(ci) == 2):
        errors.append(f"{where}: {stat} is not a [lo, hi] pair")
        return
    lo, hi = ci
    if not all(isinstance(x, (int, float)) and math.isfinite(x) for x in (lo, hi)):
        errors.append(f"{where}: {stat} has non-finite bounds")
        return
    if lo > hi:
        errors.append(f"{where}: {stat} inverted: [{lo}, {hi}]")
    tol = 1e-9 * (1.0 + abs(mean))
    if not (lo <= mean + tol and mean <= hi + tol):
        errors.append(f"{where}: mean {mean} outside {stat} [{lo}, {hi}]")


def check_cell(cell, replicates, is_baseline):
    label = cell.get("label", "?")
    metrics = cell.get("metrics")
    if not isinstance(metrics, dict):
        errors.append(f"cell {label}: metrics section missing")
        return
    for name in METRICS:
        m = metrics.get(name)
        if not isinstance(m, dict):
            errors.append(f"cell {label}: metric {name} missing")
            continue
        where = f"cell {label}, metric {name}"
        if m.get("n") != replicates:
            errors.append(f"{where}: n={m.get('n')} != replicates {replicates}")
        mean, std = m.get("mean"), m.get("std")
        if not (isinstance(mean, (int, float)) and math.isfinite(mean)):
            errors.append(f"{where}: non-finite mean")
            continue
        if not (isinstance(std, (int, float)) and std >= 0.0):
            errors.append(f"{where}: negative or missing std")
        if name in UNIT_METRICS and not (-1e-9 <= mean <= 1.0 + 1e-9):
            errors.append(f"{where}: mean {mean} outside [0, 1]")
        check_interval(where, "t_ci", mean, m.get("t_ci"))
        check_interval(where, "bootstrap_ci", mean, m.get("bootstrap_ci"))

    deltas = cell.get("delta_vs_baseline")
    if is_baseline:
        if deltas is not None:
            errors.append(f"cell {label}: baseline arm carries a delta against itself")
        return
    if not isinstance(deltas, dict):
        errors.append(f"cell {label}: non-baseline cell lacks delta_vs_baseline")
        return
    for name in METRICS:
        d = deltas.get(name)
        if not isinstance(d, dict):
            errors.append(f"cell {label}: delta for {name} missing")
            continue
        mean = d.get("mean")
        if not (isinstance(mean, (int, float)) and math.isfinite(mean)):
            errors.append(f"cell {label}: delta {name} has non-finite mean")
            continue
        check_interval(f"cell {label}, delta {name}", "t_ci", mean, d.get("t_ci"))


def main(path):
    try:
        with open(path) as f:
            sweep = json.load(f)
    except OSError as e:
        errors.append(f"sweep output missing: {e}")
        return
    except ValueError as e:
        errors.append(f"sweep output does not parse: {e}")
        return

    spec = sweep.get("spec")
    if not isinstance(spec, dict) or not spec.get("name") or not spec.get("axes"):
        errors.append("spec echo missing name or axes")
        return
    config = sweep.get("config", {})
    replicates = config.get("replicates")
    if not isinstance(replicates, int) or replicates < 1:
        errors.append(f"config.replicates invalid: {replicates!r}")
        return

    cells = sweep.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("no cells in sweep output")
        return
    expected = 1
    for axis in spec["axes"]:
        expected *= len(axis.get("values", []))
    if len(cells) != expected:
        errors.append(f"{len(cells)} cells but the spec's grid has {expected}")

    labels = [c.get("label") for c in cells]
    if len(set(labels)) != len(labels):
        errors.append("duplicate cell labels")
    baselines = [c for c in cells if c.get("baseline") is True]
    if len(baselines) != 1:
        errors.append(f"{len(baselines)} baseline arms (want exactly 1)")

    for cell in cells:
        check_cell(cell, replicates, cell.get("baseline") is True)


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: check_sweep.py SWEEP_JSON", file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
    if errors:
        for e in errors:
            print(f"check_sweep: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_sweep: {sys.argv[1]} OK")
