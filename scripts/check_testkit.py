#!/usr/bin/env python3
"""CI gate for the `repro check` fault-injection report.

Fails (exit 1) when the report is missing or malformed, when any
metamorphic invariant was violated, when the fuzzer caught a panic, when
the run injected no faults (a harness that stresses nothing proves
nothing), or when the binary's own verdict is not PASS. Mirrors the
assertions of tests/check_determinism.rs so a regression fails CI even if
someone runs the check step without the test suite.
"""

import json
import sys

errors = []


def main(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        errors.append(f"report missing: {e}")
        return
    except ValueError as e:
        errors.append(f"report does not parse: {e}")
        return

    faults = report.get("faults")
    if not isinstance(faults, dict):
        errors.append("faults section missing")
    else:
        if faults.get("link_total", 0) == 0:
            errors.append("no link faults injected — the harness exercised nothing")
        if faults.get("decisions", 0) <= faults.get("link_total", 0):
            errors.append("fault decisions do not dominate injections")
        if faults.get("stale_rows", 0) == 0:
            errors.append("no stale registry rows injected")

    pipeline = report.get("pipeline", {})
    if pipeline.get("clean_analyzed", 0) == 0:
        errors.append("clean pipeline analyzed no interfaces")
    if pipeline.get("faulted_analyzed", 0) >= pipeline.get("clean_analyzed", 0):
        errors.append(
            "faults did not reduce analyzed interfaces: "
            f"{pipeline.get('faulted_analyzed')} faulted vs "
            f"{pipeline.get('clean_analyzed')} clean"
        )

    invariants = report.get("invariants", {})
    if invariants.get("checks", 0) == 0:
        errors.append("no invariant checks executed")
    for v in invariants.get("violations", []):
        errors.append(f"invariant violated: {v.get('invariant')}: {v.get('detail')}")

    fuzz = report.get("fuzz", {})
    if fuzz.get("iterations", 0) == 0:
        errors.append("fuzzer ran zero iterations")
    if not any(n > 0 for n in fuzz.get("accepted", {}).values()):
        errors.append("fuzzer never produced an accepted input")
    if not any(n > 0 for n in fuzz.get("rejected", {}).values()):
        errors.append("fuzzer never produced a rejected input")
    for p in fuzz.get("panics", []):
        errors.append(f"fuzzer caught a panic: {p}")

    if report.get("passed") is not True:
        errors.append("check verdict is not PASS")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print("usage: check_testkit.py CHECK_REPORT_JSON", file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
    if errors:
        for e in errors:
            print(f"check_testkit: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_testkit: {sys.argv[1]} OK")
