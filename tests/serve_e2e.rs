//! End-to-end tests for `repro serve`: a 200-job queue drains with zero
//! dropped or duplicated jobs, served artifacts are byte-identical to CLI
//! artifacts at any `--threads`, and a SIGTERM drain loses no accepted
//! job.
//!
//! Lives in the rp-bench package so `CARGO_BIN_EXE_repro` resolves — the
//! byte-identity claims are checked against the real binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("set timeout");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header block");
    let status = String::from_utf8_lossy(&raw[..header_end])
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, raw[header_end + 4..].to_vec())
}

fn json(body: &[u8]) -> serde_json::Value {
    serde_json::from_str(&String::from_utf8_lossy(body)).expect("JSON body")
}

fn campaign_spec(seed: u64, threshold: u64) -> String {
    format!(
        "{{\"kind\": \"campaign\", \"seed\": {seed}, \"params\": {{\"threshold_ms\": {threshold}}}}}"
    )
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rp_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run `repro job SPEC --threads N --out DIR` and return the artifact
/// bytes it wrote.
fn cli_job(spec_path: &Path, rel_artifact: &str, threads: usize, out: &Path) -> Vec<u8> {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("job")
        .arg(spec_path)
        .arg("--threads")
        .arg(threads.to_string())
        .arg("--out")
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run repro job");
    assert!(
        status.success(),
        "repro job failed for {}",
        spec_path.display()
    );
    std::fs::read(out.join(rel_artifact)).expect("CLI artifact exists")
}

/// Tentpole acceptance: 200 distinct campaign jobs (4 worlds x 50 method
/// coordinates), each submitted twice from 8 concurrent clients, complete
/// under a 3-worker pool with zero dropped and zero duplicated jobs, and
/// sampled results are byte-identical to `repro job` runs of the same
/// specs at `--threads 1` and `--threads 4`.
#[test]
fn two_hundred_jobs_drain_without_loss_or_duplication() {
    let results = temp_dir("fleet");
    let server = rp_server::Server::bind(rp_server::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 3,
        queue_capacity: 512,
        results_dir: Some(results.clone()),
        ..rp_server::ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();

    // 4 seeds x 50 thresholds = 200 distinct specs over 4 memoized worlds.
    let specs: Vec<String> = (0..4)
        .flat_map(|s| (0..50).map(move |t| campaign_spec(7001 + s, 10 + t)))
        .collect();
    assert_eq!(specs.len(), 200);

    // 8 clients; each spec is submitted by exactly two of them.
    let accepted: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let specs = &specs;
                scope.spawn(move || {
                    let mut accepted = 0;
                    for (i, spec) in specs.iter().enumerate() {
                        if i % 4 != client % 4 {
                            continue;
                        }
                        let (status, body) = request(addr, "POST", "/v1/jobs", spec);
                        match status {
                            202 => accepted += 1,
                            200 => {
                                let doc = json(&body);
                                assert_eq!(
                                    doc.get("deduplicated"),
                                    Some(&serde_json::Value::Bool(true)),
                                    "200 without dedupe marker: {doc}"
                                );
                            }
                            other => panic!("submission got HTTP {other}"),
                        }
                    }
                    accepted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    // 400 submissions, 200 jobs: every spec accepted exactly once.
    assert_eq!(accepted, 200, "each spec creates exactly one job");

    // Drain: poll this server's own health endpoint until idle.
    let deadline = Instant::now() + Duration::from_secs(600);
    let jobs = loop {
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let doc = json(&body);
        let jobs = doc.get("jobs").expect("healthz has jobs").clone();
        let count = |k: &str| jobs.get(k).and_then(serde_json::Value::as_u64).unwrap();
        if count("queued") == 0 && count("running") == 0 {
            break jobs;
        }
        assert!(Instant::now() < deadline, "queue never drained: {jobs}");
        std::thread::sleep(Duration::from_millis(200));
    };
    let count = |k: &str| jobs.get(k).and_then(serde_json::Value::as_u64).unwrap();
    assert_eq!(count("done"), 200, "no job dropped: {jobs}");
    assert_eq!(count("failed"), 0, "{jobs}");
    assert_eq!(count("cancelled"), 0, "{jobs}");

    // The listing agrees, and every job persisted its artifact.
    let (status, body) = request(addr, "GET", "/v1/jobs?state=done", "");
    assert_eq!(status, 200);
    let listed = json(&body);
    let listed = listed
        .get("jobs")
        .and_then(serde_json::Value::as_array)
        .expect("jobs array");
    assert_eq!(listed.len(), 200);
    for job in listed {
        let rel = job
            .get("artifact")
            .and_then(serde_json::Value::as_str)
            .expect("done job lists its artifact");
        assert!(results.join(rel).is_file(), "missing artifact {rel}");
    }

    // Byte-identity spot check: two specs, served bytes vs `repro job`
    // at --threads 1 and --threads 4.
    let spec_dir = temp_dir("fleet_specs");
    for (tag, spec) in [("a", &specs[17]), ("b", &specs[163])] {
        let parsed =
            rp_server::JobSpec::parse(&serde_json::from_str(spec).unwrap()).expect("valid spec");
        let id = parsed.id();
        let (status, served) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(status, 200);

        let spec_path = spec_dir.join(format!("{tag}.json"));
        std::fs::write(&spec_path, spec).expect("write spec file");
        let rel = format!("campaigns/campaign_{id}.json");
        for threads in [1, 4] {
            let out = spec_dir.join(format!("{tag}_t{threads}"));
            let cli = cli_job(&spec_path, &rel, threads, &out);
            assert_eq!(
                cli, served,
                "served bytes differ from repro job --threads {threads} for {spec}"
            );
        }
        // The server's persisted copy is the same bytes again.
        let disk = std::fs::read(results.join(&rel)).expect("server persisted artifact");
        assert_eq!(disk, served);
    }

    server.join();
    let _ = std::fs::remove_dir_all(&results);
    let _ = std::fs::remove_dir_all(&spec_dir);
}

/// Satellite: a served smoke sweep and a served check are byte-identical
/// to what the CLI subcommands write, at `--threads 1` and `--threads 4`.
#[test]
fn served_sweep_and_check_match_cli_artifacts() {
    let results = temp_dir("artifacts");
    let server = rp_server::Server::bind(rp_server::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        results_dir: Some(results.clone()),
        ..rp_server::ServeConfig::default()
    })
    .expect("bind server");
    let addr = server.local_addr();

    let jobs = [
        (
            r#"{"kind": "sweep", "preset": "smoke", "seed": 42}"#,
            "sweeps/smoke.json",
            vec!["sweep", "smoke", "--scale", "test"],
        ),
        (
            r#"{"kind": "check", "seed": 42, "faults": 40, "fuzz": 60}"#,
            "check_report.json",
            vec!["check", "--scale", "test", "--faults", "40", "--fuzz", "60"],
        ),
    ];

    for (spec, rel, cli_args) in jobs {
        let (status, body) = request(addr, "POST", "/v1/jobs", spec);
        assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
        let id = json(&body)
            .get("id")
            .and_then(serde_json::Value::as_str)
            .unwrap()
            .to_string();
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
            assert_eq!(status, 200);
            match json(&body).get("state").and_then(serde_json::Value::as_str) {
                Some("done") => break,
                Some("failed") => panic!("job failed: {}", String::from_utf8_lossy(&body)),
                _ => {
                    assert!(Instant::now() < deadline, "job never finished");
                    std::thread::sleep(Duration::from_millis(200));
                }
            }
        }
        let (status, served) = request(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(status, 200);

        for threads in [1usize, 4] {
            let out = temp_dir(&format!("cli_{}_t{threads}", rel.replace('/', "_")));
            let status = Command::new(env!("CARGO_BIN_EXE_repro"))
                .args(&cli_args)
                .arg("--threads")
                .arg(threads.to_string())
                .arg("--out")
                .arg(&out)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .status()
                .expect("run repro");
            assert!(status.success());
            let cli = std::fs::read(out.join(rel)).expect("CLI artifact");
            assert_eq!(
                cli, served,
                "served {rel} differs from CLI at --threads {threads}"
            );
            let _ = std::fs::remove_dir_all(&out);
        }
    }
    server.join();
    let _ = std::fs::remove_dir_all(&results);
}

/// Satellite: SIGTERM drains gracefully — the process stops accepting,
/// finishes every accepted job, flushes artifacts, and exits 0.
#[cfg(unix)]
#[test]
fn sigterm_drain_loses_no_accepted_job() {
    let results = temp_dir("drain");
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .arg("--out")
        .arg(&results)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");

    // The server prints "serving on <addr>" once bound; keep draining
    // stderr afterwards so the child never blocks on a full pipe.
    let stderr = child.stderr.take().expect("piped stderr");
    let (tx, rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut tail = String::new();
        for line in BufReader::new(stderr).lines() {
            let line = line.unwrap_or_default();
            if let Some(rest) = line.strip_prefix("serving on ") {
                let _ = tx.send(rest.to_string());
            }
            tail.push_str(&line);
            tail.push('\n');
        }
        tail
    });
    let addr: SocketAddr = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("server announced its address")
        .parse()
        .expect("parseable address");

    // Accept six jobs (one worker, so most stay queued), then SIGTERM.
    let specs: Vec<String> = (0..6).map(|t| campaign_spec(7100, 10 + t)).collect();
    let mut ids = Vec::new();
    for spec in &specs {
        let (status, body) = request(addr, "POST", "/v1/jobs", spec);
        assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
        ids.push(
            json(&body)
                .get("id")
                .and_then(serde_json::Value::as_str)
                .unwrap()
                .to_string(),
        );
    }

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let status = child.wait().expect("wait for serve");
    let log = reader.join().expect("stderr reader");
    assert!(status.success(), "serve exited {status:?}; stderr:\n{log}");
    assert!(
        log.contains("drained: 6 done, 0 failed, 0 cancelled"),
        "drain summary missing; stderr:\n{log}"
    );

    // Every accepted job flushed its artifact, byte-identical to an
    // in-process run of the same spec.
    for (spec, id) in specs.iter().zip(&ids) {
        let rel = format!("campaigns/campaign_{id}.json");
        let disk = std::fs::read(results.join(&rel))
            .unwrap_or_else(|e| panic!("artifact {rel} missing after drain: {e}"));
        let parsed =
            rp_server::JobSpec::parse(&serde_json::from_str(spec).unwrap()).expect("valid spec");
        assert_eq!(
            disk,
            rp_server::run_job(&parsed).artifact.into_bytes(),
            "drained artifact {rel} differs from a fresh run"
        );
    }
    let _ = std::fs::remove_dir_all(&results);
}
