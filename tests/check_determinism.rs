//! End-to-end guarantees of the `repro check` subcommand, driven through
//! the real binary:
//!
//! * the fault-injection + invariant + fuzz run is **bit-identical across
//!   worker-thread counts** — `check_report.json` and the stdout summary
//!   may not differ by a byte between `--threads 1` and `--threads 4`;
//! * malformed scenario specs make `repro sweep` exit with code 2 and a
//!   clean one-line `error:` diagnostic — never a panic or backtrace.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-check-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_check(out: &Path, threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["check", "--faults", "40", "--fuzz", "60"])
        .args(["--scale", "test", "--seed", "42"])
        .args(["--threads", threads])
        .args(["--out", out.to_str().unwrap()])
        .output()
        .expect("spawn repro check")
}

/// Golden FNV-1a digests of the seed-42 check run's outputs, captured on
/// the original `BinaryHeap` scheduler with clone-per-hop frames. The
/// determinism contract is stronger than thread-count invariance: the
/// *bytes themselves* must survive every event-queue, frame-pool, and
/// world-memo rework, so the expected digests are pinned rather than only
/// compared across runs.
const GOLDEN_CHECK_REPORT_FNV: u64 = 0x230d_ba12_3258_b478;
const GOLDEN_CHECK_STDOUT_FNV: u64 = 0x849a_92d0_9c15_16fd;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn check_is_bit_identical_across_thread_counts() {
    let serial_out = temp_dir("serial");
    let parallel_out = temp_dir("parallel");
    let serial = run_check(&serial_out, "1");
    let parallel = run_check(&parallel_out, "4");

    assert!(
        serial.status.success(),
        "serial check failed: {}",
        String::from_utf8_lossy(&serial.stderr)
    );
    assert!(
        parallel.status.success(),
        "parallel check failed: {}",
        String::from_utf8_lossy(&parallel.stderr)
    );

    // The printed summary carries fault counts, invariant tallies, and the
    // verdict — all scheduling-independent by construction.
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "check stdout differs between thread counts"
    );
    let summary = String::from_utf8_lossy(&serial.stdout);
    assert!(
        summary.contains("check: PASS"),
        "check did not pass:\n{summary}"
    );

    let a = std::fs::read(serial_out.join("check_report.json")).expect("serial report");
    let b = std::fs::read(parallel_out.join("check_report.json")).expect("parallel report");
    assert!(!a.is_empty());
    assert_eq!(a, b, "check_report.json differs between thread counts");

    // Golden byte digests: the report and summary must be byte-identical
    // to the pre-refactor capture, at both thread counts.
    assert_eq!(
        fnv1a(&a),
        GOLDEN_CHECK_REPORT_FNV,
        "check_report.json bytes diverged from the golden capture \
         (got 0x{:016x})",
        fnv1a(&a)
    );
    assert_eq!(
        fnv1a(&serial.stdout),
        GOLDEN_CHECK_STDOUT_FNV,
        "check stdout bytes diverged from the golden capture (got 0x{:016x})",
        fnv1a(&serial.stdout)
    );

    let _ = std::fs::remove_dir_all(&serial_out);
    let _ = std::fs::remove_dir_all(&parallel_out);
}

fn run_sweep(spec_arg: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sweep", spec_arg, "--scale", "test"])
        .output()
        .expect("spawn repro sweep")
}

/// Assert the process died with exit code 2 and a single clean `error:`
/// line on stderr (beyond the fixed worker-thread banner) — no panic, no
/// backtrace.
fn assert_clean_spec_rejection(out: &Output, what: &str) {
    assert_eq!(out.status.code(), Some(2), "{what}: expected exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{what}: rejection panicked:\n{stderr}"
    );
    let errors: Vec<&str> = stderr.lines().filter(|l| l.starts_with("error:")).collect();
    assert_eq!(
        errors.len(),
        1,
        "{what}: expected exactly one error line, got:\n{stderr}"
    );
}

#[test]
fn malformed_specs_exit_two_with_one_line_errors() {
    let dir = temp_dir("specs");

    // Pathologically deep nesting: must hit the parser's depth limit, not
    // the stack.
    let deep = dir.join("deep.json");
    std::fs::write(&deep, "[".repeat(100_000)).unwrap();
    let out = run_sweep(deep.to_str().unwrap());
    assert_clean_spec_rejection(&out, "deep nesting");

    // Number overflow inside an otherwise plausible spec.
    let overflow = dir.join("overflow.json");
    std::fs::write(
        &overflow,
        r#"{"name": "t", "replicates": 2, "parameter": "probe_loss", "values": [1e999]}"#,
    )
    .unwrap();
    let out = run_sweep(overflow.to_str().unwrap());
    assert_clean_spec_rejection(&out, "number overflow");

    // Valid JSON, invalid spec shape.
    let shape = dir.join("shape.json");
    std::fs::write(&shape, r#"{"definitely": "not a spec"}"#).unwrap();
    let out = run_sweep(shape.to_str().unwrap());
    assert_clean_spec_rejection(&out, "wrong shape");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid scenario spec"),
        "shape rejection should say what is wrong"
    );

    // Not a file and not a preset: exit 2 with the preset list for help.
    let out = run_sweep("no-such-preset");
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown preset: expected exit 2"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no spec file or preset named"),
        "unknown preset should be named:\n{stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
