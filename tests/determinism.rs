//! Reproducibility contract: the same configuration produces bit-identical
//! worlds, measurements, and study results; different seeds differ.

use remote_peering::campaign::Campaign;
use remote_peering::detect::DetectionStudy;
use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};

#[test]
fn identical_configs_produce_identical_worlds() {
    let a = World::build(&WorldConfig::test_scale(99));
    let b = World::build(&WorldConfig::test_scale(99));
    assert_eq!(a.vantage, b.vantage);
    assert_eq!(a.topology.edges, b.topology.edges);
    assert_eq!(
        a.topology
            .ases
            .iter()
            .map(|x| (x.asn, x.home_city, x.address_space))
            .collect::<Vec<_>>(),
        b.topology
            .ases
            .iter()
            .map(|x| (x.asn, x.home_city, x.address_space))
            .collect::<Vec<_>>(),
    );
    for (x, y) in a.scene.ixps.iter().zip(&b.scene.ixps) {
        assert_eq!(x.members, y.members, "{}", x.meta.acronym);
    }
    assert_eq!(a.contributions.inbound, b.contributions.inbound);
    assert_eq!(a.contributions.outbound, b.contributions.outbound);
}

#[test]
fn identical_campaigns_produce_identical_measurements() {
    let world = World::build(&WorldConfig::test_scale(98));
    let campaign = Campaign::default_paper();
    let ixp = world.studied_ixps()[3];
    let a = campaign.probe_ixp(&world, ixp);
    let b = campaign.probe_ixp(&world, ixp);
    assert_eq!(a, b, "probing must be replayable frame for frame");

    let sa = DetectionStudy::analyze_ixp(&world, ixp, &a);
    let sb = DetectionStudy::analyze_ixp(&world, ixp, &b);
    assert_eq!(sa.analyzed, sb.analyzed);
    assert_eq!(sa.stats, sb.stats);
}

#[test]
fn different_seeds_produce_different_worlds_but_same_shape() {
    let a = World::build(&WorldConfig::test_scale(1));
    let b = World::build(&WorldConfig::test_scale(2));
    // Different microstate...
    assert_ne!(
        a.topology
            .ases
            .iter()
            .map(|x| x.home_city)
            .collect::<Vec<_>>(),
        b.topology
            .ases
            .iter()
            .map(|x| x.home_city)
            .collect::<Vec<_>>(),
    );
    // ... same macrostate: both worlds satisfy the structural contracts.
    for w in [&a, &b] {
        assert!(w.topology.validate().is_empty());
        assert_eq!(w.studied_ixps().len(), 22);
        assert_eq!(w.scene.ixps.len(), 65);
        assert!(w.contributions.contributors() > w.topology.len() / 2);
    }
}

#[test]
fn offload_study_is_deterministic() {
    let world = World::build(&WorldConfig::test_scale(97));
    let s1 = OffloadStudy::new(&world);
    let s2 = OffloadStudy::new(&world);
    let g1 = s1.greedy(PeerGroup::OpenSelective, 8);
    let g2 = s2.greedy(PeerGroup::OpenSelective, 8);
    assert_eq!(g1.len(), g2.len());
    for (a, b) in g1.iter().zip(&g2) {
        assert_eq!(a.ixp, b.ixp);
        assert_eq!(a.remaining_in, b.remaining_in);
        assert_eq!(a.remaining_out, b.remaining_out);
        assert_eq!(a.remaining_interfaces, b.remaining_interfaces);
    }
}
