//! Cross-crate consistency: invariants that only hold if the substrates
//! agree with each other.

use remote_peering::campaign::Campaign;
use remote_peering::detect::DetectionStudy;
use remote_peering::world::{World, WorldConfig};
use rp_bgp::{is_valley_free, propagate, propagate_iterative, RoutingView};
use rp_ixp::model::Access;
use rp_topology::cone::{cone_union, customer_cone};
use rp_topology::{generate, AsType, TopologyConfig};
use rp_types::geo::WORLD_CITIES;
use rp_types::NetworkId;

#[test]
fn scene_memberships_reference_real_topology_networks() {
    let world = World::build(&WorldConfig::test_scale(77));
    for ixp in &world.scene.ixps {
        for m in &ixp.members {
            assert!(m.network.index() < world.topology.len());
            if let Access::Remote {
                origin_city,
                provider,
                ..
            } = m.access
            {
                assert_eq!(origin_city, world.topology.node(m.network).home_city);
                assert!((provider as usize) < world.scene.providers.len());
            }
        }
    }
}

#[test]
fn measured_rtts_respect_topology_geography() {
    // The netsim-measured minimum RTT of a healthy remote interface must
    // be at least the great-circle fiber RTT the geo substrate predicts —
    // pseudowires can detour, never shortcut.
    let world = World::build(&WorldConfig::test_scale(76));
    let ixp = world.studied_ixps()[0];
    let inst = world.scene.ixp(ixp);
    let samples = Campaign::default_paper().probe_ixp(&world, ixp);
    let ixp_loc = inst.city().location;
    let mut checked = 0;
    for m in inst.members.iter().filter(|m| {
        m.listing.listed
            && !m.profile.absent
            && !m.profile.blackhole
            && m.profile.congested_extra_ms == 0.0
    }) {
        if let Access::Remote { origin_city, .. } = m.access {
            let s = samples.iter().find(|s| s.ip == m.ip).unwrap();
            if let Some(min) = s.min_rtt_ms() {
                let fiber_rtt = 2.0
                    * WORLD_CITIES[origin_city as usize]
                        .location
                        .fiber_delay_ms(ixp_loc);
                assert!(
                    min >= fiber_rtt * 0.99,
                    "{}: measured {min} ms below physics {fiber_rtt} ms",
                    m.ip
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 3, "checked only {checked} remote interfaces");
}

#[test]
fn detection_results_agree_with_scene_attachment_kinds() {
    // Every analyzed interface's classification is consistent with how the
    // scene wired it: sub-threshold ⇒ direct or nearby-remote; above ⇒
    // remote.
    let world = World::build(&WorldConfig::test_scale(75));
    for &ixp in &world.studied_ixps()[..6] {
        let samples = Campaign::default_paper().probe_ixp(&world, ixp);
        let study = DetectionStudy::analyze_ixp(&world, ixp, &samples);
        let inst = world.scene.ixp(ixp);
        for a in &study.analyzed {
            let m = inst.members.iter().find(|m| m.ip == a.ip).unwrap();
            if a.min_rtt_ms >= 10.0 {
                assert!(
                    m.access.is_remote(),
                    "{}: direct but min {}",
                    a.ip,
                    a.min_rtt_ms
                );
            }
        }
    }
}

#[test]
fn bgp_engines_agree_and_respect_topology_policies() {
    for seed in [301, 302] {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let origin = topo.of_type(AsType::Content).next().unwrap().id;
        let fast = propagate(&topo, origin);
        let slow = propagate_iterative(&topo, origin);
        for id in topo.ids() {
            match (&fast[id.index()], &slow[id.index()]) {
                (Some(f), Some(s)) => {
                    assert_eq!(f.class, s.class, "class at {id}");
                    assert_eq!(f.len(), s.len(), "length at {id}");
                    let mut full = vec![id];
                    full.extend_from_slice(&f.path);
                    assert!(is_valley_free(&topo, &full), "{id}");
                }
                (None, None) => {}
                other => panic!("engines disagree on reachability at {id}: {other:?}"),
            }
        }
    }
}

#[test]
fn traffic_contributions_align_with_routing_view() {
    // A network contributes transit traffic iff the BGP view says it is
    // reached via a transit provider — the linchpin between rp-traffic and
    // rp-bgp.
    let world = World::build(&WorldConfig::test_scale(74));
    let view = RoutingView::new(&world.topology, world.vantage);
    for id in world.topology.ids() {
        let (i, o) = world.contributions.of(id);
        let via_transit = id != world.vantage && view.uses_transit(&world.topology, id);
        assert_eq!(
            i.0 > 0.0 || o.0 > 0.0,
            via_transit,
            "{id}: contribution/routing mismatch"
        );
    }
}

#[test]
fn cones_are_monotone_under_union() {
    let topo = generate(&TopologyConfig::test_scale(303));
    let roots: Vec<NetworkId> = topo.ids().take(5).collect();
    let union = cone_union(&topo, &roots);
    for &r in &roots {
        let single = customer_cone(&topo, r);
        for member in single.iter() {
            assert!(union.contains(member), "union must contain {member}");
        }
    }
    assert!(union.count() >= roots.len());
}
