//! Schema and determinism checks for the `repro --report` run report.
//!
//! Drives the real `repro` binary (via `CARGO_BIN_EXE_repro`) at test
//! scale and asserts that (a) the emitted `run_report.json` parses and its
//! span tree is well-formed, (b) the filter funnel balances against the
//! probing metrics, and (c) turning the instrumentation on does not change
//! a single byte of the scientific outputs under `results/`.

use serde_json::Value;
use std::path::Path;
use std::process::Command;

fn repro(out: &Path, extra: &[&str]) {
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("all")
        .args(["--scale", "test", "--seed", "42"])
        .args(["--out", out.to_str().unwrap()])
        .args(extra)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro {extra:?} failed: {status}");
}

/// Byte-compare every `*.json` under `a` against the same name under `b`.
fn assert_outputs_identical(a: &Path, b: &Path, label: &str) -> usize {
    let mut compared = 0;
    for entry in std::fs::read_dir(a).expect("read results dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap();
        // Per-run diagnostics (the run report) are intentionally
        // wall-clock; only the scientific outputs are gated.
        if name == "run_report.json" {
            continue;
        }
        let lhs = std::fs::read(&path).expect("lhs output");
        let rhs = std::fs::read(b.join(name)).expect("rhs output");
        assert_eq!(lhs, rhs, "{} differs ({label})", name.to_string_lossy());
        compared += 1;
    }
    compared
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-report-schema-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Depth-first walk asserting the structural invariants of one span node;
/// returns the set of names seen.
fn check_span(node: &Value, parent_window: u64, names: &mut Vec<String>) {
    let name = node.get("name").and_then(Value::as_str).expect("span name");
    names.push(name.to_string());
    let count = node.get("count").and_then(Value::as_u64).expect("count");
    assert!(count >= 1, "{name}: span recorded zero events");
    let window = node
        .get("window_ns")
        .and_then(Value::as_u64)
        .expect("window_ns");
    let total = node
        .get("total_ns")
        .and_then(Value::as_u64)
        .expect("total_ns");
    let self_ns = node
        .get("self_ns")
        .and_then(Value::as_u64)
        .expect("self_ns");
    assert!(
        window <= parent_window,
        "{name}: child window {window}ns exceeds parent window {parent_window}ns"
    );
    assert!(
        self_ns <= total,
        "{name}: self time {self_ns}ns exceeds total {total}ns"
    );
    for child in node
        .get("children")
        .and_then(Value::as_array)
        .expect("children array")
    {
        check_span(child, window, names);
    }
}

#[test]
fn report_schema_and_outputs_are_deterministic() {
    let with = temp_dir("with");
    let without = temp_dir("without");
    repro(&with, &["--report"]);
    repro(&without, &[]);

    // --- (a) report parses and the span tree is well-formed -------------
    let raw = std::fs::read_to_string(with.join("run_report.json")).expect("run_report.json");
    let report: Value = serde_json::from_str(&raw).expect("report parses");

    let meta = report.get("meta").expect("meta section");
    assert_eq!(meta.get("scale").and_then(Value::as_str), Some("test"));
    assert_eq!(meta.get("seed").and_then(Value::as_u64), Some(42));
    assert!(meta.get("threads").and_then(Value::as_u64).unwrap() >= 1);

    let world = report.get("world").expect("world section");
    let interfaces = world
        .get("interfaces")
        .and_then(Value::as_u64)
        .expect("interface count");
    assert!(interfaces > 0);

    let spans = report
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans");
    assert!(!spans.is_empty(), "no spans recorded");
    let mut names = Vec::new();
    for root in spans {
        check_span(root, u64::MAX, &mut names);
    }
    for required in [
        "repro.run",
        "core.world.build",
        "core.campaign.probe_all",
        "core.campaign.probe_ixp",
        "core.filters.analyze_ixp",
        "core.offload.ranking",
        "core.offload.greedy",
        "netsim.run",
        "econ.fit.decay",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "span {required} missing from report (have: {names:?})"
        );
    }

    // --- (b) the filter funnel balances ---------------------------------
    let funnel = report.get("filter_funnel").expect("filter_funnel section");
    let probed = funnel
        .get("probed")
        .and_then(Value::as_u64)
        .expect("funnel probed");
    let analyzed = funnel
        .get("analyzed")
        .and_then(Value::as_u64)
        .expect("funnel analyzed");
    let discards = funnel
        .get("discards")
        .and_then(Value::as_object)
        .expect("funnel discards");
    assert_eq!(discards.len(), 6, "one funnel row per filter stage");
    let discarded: u64 = discards
        .iter()
        .map(|(_, v)| v.as_u64().expect("discard count"))
        .sum();
    assert_eq!(
        probed,
        analyzed + discarded,
        "funnel does not balance: {probed} probed vs {analyzed} analyzed + {discarded} discarded"
    );
    assert!(probed > 0, "empty funnel for a full detection run");

    let metrics = report.get("metrics").expect("metrics section");
    let filters_probed = metrics
        .get("core.filters.probed")
        .and_then(|m| m.get("value"))
        .and_then(Value::as_u64)
        .expect("core.filters.probed counter");
    assert!(
        filters_probed >= probed,
        "filter metric {filters_probed} below funnel total {probed}"
    );
    let cache_hits = metrics
        .get("core.offload.cone_cache.hits")
        .and_then(|m| m.get("value"))
        .and_then(Value::as_u64)
        .expect("cone cache hit counter");
    assert!(cache_hits > 0, "repeated sweeps should hit the cone cache");

    // --- (c) instrumentation changes no scientific output ---------------
    let mut compared = 0;
    for entry in std::fs::read_dir(&without).expect("read plain results") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let name = path.file_name().unwrap();
        let plain = std::fs::read(&path).expect("plain output");
        let instrumented = std::fs::read(with.join(name)).expect("instrumented output");
        assert_eq!(
            plain,
            instrumented,
            "{} differs between --report and plain runs",
            name.to_string_lossy()
        );
        compared += 1;
    }
    assert!(compared >= 10, "only {compared} outputs compared");

    let _ = std::fs::remove_dir_all(&with);
    let _ = std::fs::remove_dir_all(&without);
}

/// The full determinism matrix for the observability layer: every gated
/// artifact must be byte-identical across `--shards` 1/2/4, with tracing
/// and reporting on or off, and the `timelines` section of the run report
/// must itself be identical at every shard count (it samples simulation
/// time, never the shard layout). The Chrome trace must parse as a
/// trace-event JSON array.
#[test]
fn timelines_and_outputs_are_shard_and_trace_invariant() {
    let base = temp_dir("matrix-base");
    repro(&base, &["--shards", "1"]);

    let mut timelines: Option<String> = None;
    for shards in ["1", "2", "4"] {
        let dir = temp_dir(&format!("matrix-s{shards}"));
        let jsonl = dir.join("trace.jsonl");
        let chrome = dir.join("trace_chrome.json");
        repro(
            &dir,
            &[
                "--shards",
                shards,
                "--report",
                "--trace-json",
                jsonl.to_str().unwrap(),
                "--trace-chrome",
                chrome.to_str().unwrap(),
            ],
        );
        let compared = assert_outputs_identical(
            &base,
            &dir,
            &format!("shards=1 plain vs shards={shards} traced"),
        );
        assert!(compared >= 10, "only {compared} outputs compared");

        // The timelines section is determinism-gated even though the rest
        // of the run report is wall-clock: compare it as a serialized
        // string so ordering and values are pinned byte-for-byte.
        let report: Value = serde_json::from_str(
            &std::fs::read_to_string(dir.join("run_report.json")).expect("run_report.json"),
        )
        .expect("report parses");
        let tl = report.get("timelines").expect("timelines section");
        let series = tl.get("series").and_then(Value::as_object).expect("series");
        for required in [
            "netsim.events",
            "netsim.queue_depth",
            "core.filter_funnel.probed",
            "core.filter_funnel.analyzed",
        ] {
            assert!(
                series.iter().any(|(k, _)| k == required),
                "series {required} missing"
            );
        }
        let rendered = serde_json::to_string(tl).expect("serialize timelines");
        match &timelines {
            None => timelines = Some(rendered),
            Some(first) => assert_eq!(
                first, &rendered,
                "timelines section changed at --shards {shards}"
            ),
        }

        // Trace sinks wrote valid, parseable output.
        let chrome_doc: Value =
            serde_json::from_str(&std::fs::read_to_string(&chrome).expect("chrome trace file"))
                .expect("chrome trace parses as JSON");
        let events = chrome_doc.as_array().expect("trace-event array");
        assert!(!events.is_empty(), "empty chrome trace");
        for ev in events {
            assert!(ev.get("ph").is_some(), "trace event missing ph: {ev:?}");
        }
        let jsonl_text = std::fs::read_to_string(&jsonl).expect("jsonl trace file");
        let mut saw_summary = false;
        for line in jsonl_text.lines() {
            let rec: Value = serde_json::from_str(line).expect("jsonl line parses");
            if rec.get("type").and_then(Value::as_str) == Some("summary") {
                saw_summary = true;
            }
        }
        assert!(saw_summary, "jsonl trace missing its summary line");

        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);
}
