//! The sweep engine's two statistical contracts, enforced end to end:
//!
//! 1. **Schedule independence** — the emitted sweep JSON is byte-identical
//!    at any rayon thread count (and run-to-run), because observations are
//!    keyed by `(cell, replicate)` and statistics sort by key before
//!    touching floats. The CI matrix additionally runs this whole file
//!    under `RAYON_NUM_THREADS=1` and unset.
//! 2. **Common random numbers work** — pairing arms on shared replicate
//!    seeds yields lower delta variance than differencing independent
//!    seeds, which is the entire reason the engine structures seeding the
//!    way it does.

use remote_peering::campaign::Campaign;
use remote_peering::metrics::{MethodParams, PreparedRun, RunMetrics};
use remote_peering::world::{World, WorldConfig};
use rp_scenario::{run_sweep, ScenarioSpec, SweepConfig};
use rp_types::seed;
use rp_types::stats::sample_std;

fn two_arm_spec() -> ScenarioSpec {
    ScenarioSpec::from_json(
        r#"{
            "name": "determinism_probe",
            "description": "two threshold arms sharing one world per replicate",
            "axes": [{"param": "threshold_ms", "values": [10, 14]}]
        }"#,
    )
    .expect("literal spec is valid")
}

#[test]
fn sweep_json_is_byte_identical_across_thread_counts() {
    let spec = two_arm_spec();
    let cfg = SweepConfig {
        replicates: 4,
        ..SweepConfig::test_default(20140101)
    };
    let render =
        || serde_json::to_string_pretty(&run_sweep(&spec, &cfg)).expect("sweep output serializes");

    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .expect("vendored builder never fails");
    let serial = render();

    rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global()
        .expect("vendored builder never fails");
    let parallel = render();
    let parallel_again = render();

    // Restore the default resolution order (env var, then parallelism).
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .expect("vendored builder never fails");

    assert_eq!(
        serial, parallel,
        "sweep JSON diverged between 1 and 4 rayon threads"
    );
    assert_eq!(
        parallel, parallel_again,
        "sweep JSON is not run-to-run stable"
    );
}

#[test]
fn paired_seeds_beat_independent_seeds_on_delta_variance() {
    const REPLICATES: u64 = 6;
    let campaign = Campaign::default_paper();
    let arms = [
        MethodParams {
            threshold_ms: 10.0,
            ..Default::default()
        },
        MethodParams {
            threshold_ms: 14.0,
            ..Default::default()
        },
    ];
    let collect = |seed_val: u64, params: &MethodParams| {
        let run = PreparedRun::probe(World::build(&WorldConfig::test_scale(seed_val)), &campaign);
        RunMetrics::collect(&run, params)
    };

    // Paired: both arms observe the same replicate worlds (the engine's
    // seeding scheme), so the delta sees only the threshold effect.
    let mut paired = Vec::new();
    for r in 0..REPLICATES {
        let s = seed::derive2(20140101, "scenario-replicate", r, 0);
        let run = PreparedRun::probe(World::build(&WorldConfig::test_scale(s)), &campaign);
        let a = RunMetrics::collect(&run, &arms[0]);
        let b = RunMetrics::collect(&run, &arms[1]);
        paired.push(a.remote_fraction - b.remote_fraction);
    }

    // Independent: each arm draws its own world per replicate, so the
    // delta additionally carries world-to-world variance twice.
    let mut independent = Vec::new();
    for r in 0..REPLICATES {
        let a = collect(seed::derive2(20140101, "indep-arm-a", r, 0), &arms[0]);
        let b = collect(seed::derive2(20140101, "indep-arm-b", r, 0), &arms[1]);
        independent.push(a.remote_fraction - b.remote_fraction);
    }

    let var_paired = sample_std(&paired).powi(2);
    let var_independent = sample_std(&independent).powi(2);
    assert!(
        var_paired < var_independent,
        "common random numbers should shrink delta variance: paired {var_paired:e} vs independent {var_independent:e}"
    );
}
