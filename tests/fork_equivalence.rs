//! Fork equivalence, end to end through the real `repro` binary: the
//! copy-on-write fork + incremental-recompute paths must produce artifacts
//! **byte-identical** to the from-scratch reference arms, across the full
//! `--threads 1/4` × `--shards 1/2/4` matrix.
//!
//! Two artifact surfaces are compared:
//!
//! * `repro check` — the default faulted arm forks the clean world and
//!   degrades it through deltas; `--reference-rebuild` rebuilds and
//!   degrades in place. `check_report.json` and the stdout digest may not
//!   differ by a byte between the two.
//! * `repro sweep smoke` — the default engine reuses memoized worlds and
//!   probe sets across cells; `--probe-rebuild` rebuilds and re-probes
//!   everything. `sweeps/smoke.json` may not differ by a byte.
//!
//! The library-level differential harness (`rp_testkit::differential`)
//! additionally covers randomized delta sequences and proves the
//! comparison can fail (broken oracle); this test pins the user-visible
//! artifacts on the real CLI surface.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const SHARD_COUNTS: [&str; 3] = ["1", "2", "4"];
const THREAD_COUNTS: [&str; 2] = ["1", "4"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-fork-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_check(out: &Path, threads: &str, shards: &str, reference: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["check", "--faults", "40", "--fuzz", "60"])
        .args(["--scale", "test", "--seed", "42"])
        .args(["--threads", threads])
        .args(["--shards", shards])
        .args(["--out", out.to_str().unwrap()]);
    if reference {
        cmd.arg("--reference-rebuild");
    }
    cmd.output().expect("spawn repro check")
}

fn run_sweep(out: &Path, threads: &str, shards: &str, rebuild: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["sweep", "smoke", "--scale", "test", "--seed", "42"])
        .args(["--threads", threads])
        .args(["--shards", shards])
        .args(["--out", out.to_str().unwrap()]);
    if rebuild {
        cmd.arg("--probe-rebuild");
    }
    cmd.output().expect("spawn repro sweep")
}

#[test]
fn check_fork_path_matches_reference_rebuild_across_the_matrix() {
    for threads in THREAD_COUNTS {
        for shards in SHARD_COUNTS {
            let tag = format!("check-t{threads}-s{shards}");
            let fork_out = temp_dir(&format!("{tag}-fork"));
            let ref_out = temp_dir(&format!("{tag}-ref"));
            let fork = run_check(&fork_out, threads, shards, false);
            let reference = run_check(&ref_out, threads, shards, true);
            assert!(
                fork.status.success(),
                "[{tag}] fork-path check failed: {}",
                String::from_utf8_lossy(&fork.stderr)
            );
            assert!(
                reference.status.success(),
                "[{tag}] reference check failed: {}",
                String::from_utf8_lossy(&reference.stderr)
            );
            assert_eq!(
                String::from_utf8_lossy(&fork.stdout),
                String::from_utf8_lossy(&reference.stdout),
                "[{tag}] check stdout differs between fork and rebuild"
            );
            let a = std::fs::read(fork_out.join("check_report.json")).expect("fork report");
            let b = std::fs::read(ref_out.join("check_report.json")).expect("reference report");
            assert!(!a.is_empty());
            assert_eq!(
                a, b,
                "[{tag}] check_report.json differs between fork and rebuild"
            );
            let _ = std::fs::remove_dir_all(&fork_out);
            let _ = std::fs::remove_dir_all(&ref_out);
        }
    }
}

#[test]
fn sweep_probe_reuse_matches_probe_rebuild_across_the_matrix() {
    for threads in THREAD_COUNTS {
        for shards in SHARD_COUNTS {
            let tag = format!("sweep-t{threads}-s{shards}");
            let reuse_out = temp_dir(&format!("{tag}-reuse"));
            let rebuild_out = temp_dir(&format!("{tag}-rebuild"));
            let reuse = run_sweep(&reuse_out, threads, shards, false);
            let rebuild = run_sweep(&rebuild_out, threads, shards, true);
            assert!(
                reuse.status.success(),
                "[{tag}] reuse sweep failed: {}",
                String::from_utf8_lossy(&reuse.stderr)
            );
            assert!(
                rebuild.status.success(),
                "[{tag}] rebuild sweep failed: {}",
                String::from_utf8_lossy(&rebuild.stderr)
            );
            assert_eq!(
                String::from_utf8_lossy(&reuse.stdout),
                String::from_utf8_lossy(&rebuild.stdout),
                "[{tag}] sweep stdout differs between reuse and rebuild"
            );
            let a = std::fs::read(reuse_out.join("sweeps/smoke.json")).expect("reuse sweep json");
            let b =
                std::fs::read(rebuild_out.join("sweeps/smoke.json")).expect("rebuild sweep json");
            assert!(!a.is_empty());
            assert_eq!(
                a, b,
                "[{tag}] sweeps/smoke.json differs between reuse and rebuild"
            );
            let _ = std::fs::remove_dir_all(&reuse_out);
            let _ = std::fs::remove_dir_all(&rebuild_out);
        }
    }
}
