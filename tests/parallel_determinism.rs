//! Parallel execution must be a pure wall-clock optimization: every
//! parallelized path (the per-IXP campaign, the offload ranking and greedy
//! sweeps, the cone cache) must return results bit-identical to its serial
//! or uncached reference, at whatever thread count the host exposes.
//!
//! These tests run under the CI matrix (`RAYON_NUM_THREADS=1` and unset),
//! so both the degenerate single-worker path and the genuinely concurrent
//! path are exercised against the same assertions.

use rayon::prelude::*;
use remote_peering::campaign::Campaign;
use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};
use rp_types::IxpId;

const SEEDS: [u64; 3] = [7, 42, 20140101];

/// Golden fold of the per-IXP event-trace digests for the seed-42
/// test-scale campaign, captured on the sharded scheduler with intrinsic
/// `(creator, seq)` event keys and per-direction link/fault RNG streams.
/// `Network::trace_digest` folds a commutative hash of `(time, node,
/// kind)` over every dispatched event, so this constant pins the exact
/// event multiset of every studied IXP's campaign at every shard and
/// thread count: any event-queue, frame-pool, or shard-layout rework must
/// reproduce it bit for bit.
const GOLDEN_TRACE_FOLD_SEED_42: u64 = 0x5025_6203_8c65_477b;

/// Total events dispatched across all studied IXPs for the same campaign
/// (a cheap second invariant: a scheduler that reorders but never loses
/// events still has to dispatch exactly as many).
const GOLDEN_TRACE_EVENTS_SEED_42: u64 = 1_086_099;

fn fnv1a_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn golden_event_trace_digest_survives_scheduler_and_pool_swap() {
    // Runs under the CI thread matrix (RAYON_NUM_THREADS=1 and unset), so
    // the golden constants are asserted at one worker and at the host's
    // full width; `tests/check_determinism.rs` additionally pins the
    // binary-driven `--threads 1` vs `--threads 4` byte identity.
    let world = World::build(&WorldConfig::test_scale(42));
    let campaign = Campaign::default_paper();
    let serial: Vec<(u64, u64)> = world
        .studied_ixps()
        .iter()
        .map(|&ixp| campaign.probe_ixp_trace(&world, ixp))
        .collect();
    let parallel: Vec<(u64, u64)> = world
        .studied_ixps()
        .par_iter()
        .map(|&ixp| campaign.probe_ixp_trace(&world, ixp))
        .collect();
    assert_eq!(serial, parallel, "trace digests depend on scheduling");

    let fold = serial
        .iter()
        .fold(0xcbf2_9ce4_8422_2325_u64, |h, &(d, _)| fnv1a_fold(h, d));
    let events: u64 = serial.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        fold, GOLDEN_TRACE_FOLD_SEED_42,
        "event-trace digest diverged from the golden capture \
         (fold=0x{fold:016x}, events={events})"
    );
    assert_eq!(
        events, GOLDEN_TRACE_EVENTS_SEED_42,
        "total dispatched events diverged (events={events})"
    );
}

/// The shard-equivalence contract at the campaign level: explicit shard
/// counts 1, 2, and 4 must all reproduce the golden trace fold (the
/// machine-dependent default is therefore also covered, since it resolves
/// to some explicit count).
#[test]
fn trace_digest_is_shard_count_invariant() {
    let world = World::build(&WorldConfig::test_scale(42));
    let fold_at = |shards: usize| {
        let campaign = Campaign {
            shards,
            ..Campaign::default_paper()
        };
        world
            .studied_ixps()
            .iter()
            .map(|&ixp| campaign.probe_ixp_trace(&world, ixp))
            .fold(0xcbf2_9ce4_8422_2325_u64, |h, (d, _)| fnv1a_fold(h, d))
    };
    for shards in [1usize, 2, 4] {
        assert_eq!(
            fold_at(shards),
            GOLDEN_TRACE_FOLD_SEED_42,
            "--shards {shards} diverged from the golden trace"
        );
    }
}

#[test]
fn parallel_probe_all_matches_serial_across_seeds() {
    for seed in SEEDS {
        let world = World::build(&WorldConfig::test_scale(seed));
        let campaign = Campaign::default_paper();
        let parallel = campaign.probe_all(&world);
        let serial = campaign.probe_all_serial(&world);
        assert_eq!(
            parallel.len(),
            serial.len(),
            "seed {seed}: studied-IXP counts diverge"
        );
        // Element-wise comparison so a mismatch names the IXP.
        for ((pi, ps), (si, ss)) in parallel.iter().zip(serial.iter()) {
            assert_eq!(pi, si, "seed {seed}: IXP order diverged");
            assert_eq!(ps, ss, "seed {seed}: samples diverged at IXP {pi}");
        }
    }
}

#[test]
fn world_build_is_deterministic_under_parallel_sections() {
    // World::build overlaps the registry crawl with the routing
    // computation; both must see identical inputs and the assembled world
    // must match a second build exactly.
    for seed in SEEDS {
        let a = World::build(&WorldConfig::test_scale(seed));
        let b = World::build(&WorldConfig::test_scale(seed));
        assert_eq!(a.vantage, b.vantage, "seed {seed}");
        assert_eq!(a.home_ixps, b.home_ixps, "seed {seed}");
        assert_eq!(
            a.registry.total_entries(),
            b.registry.total_entries(),
            "seed {seed}: registry crawl diverged"
        );
        assert_eq!(
            a.contributions.total_inbound(),
            b.contributions.total_inbound(),
            "seed {seed}: traffic contributions diverged"
        );
    }
}

#[test]
fn greedy_cached_matches_uncached_for_all_groups_and_metrics() {
    let world = World::build(&WorldConfig::test_scale(42));
    let study = OffloadStudy::new(&world);
    for group in PeerGroup::ALL {
        for metric in [GreedyMetric::Traffic, GreedyMetric::Interfaces] {
            let cached = study.greedy_by(group, 20, metric);
            let uncached = study.greedy_by_uncached(group, 20, metric);
            assert_eq!(
                cached, uncached,
                "{group:?}/{metric:?}: cone cache changed the greedy expansion"
            );
        }
    }
}

#[test]
fn reachable_cone_cache_composes_exactly() {
    let world = World::build(&WorldConfig::test_scale(42));
    let study = OffloadStudy::new(&world);
    let all: Vec<IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
    for group in PeerGroup::ALL {
        for ixps in [&all[..1], &all[..7], &all[..]] {
            assert_eq!(
                study.reachable_cone(ixps, group),
                study.reachable_cone_uncached(ixps, group),
                "{group:?} over {} IXPs: cached cone diverged",
                ixps.len()
            );
        }
    }
}

#[test]
fn instrumentation_is_result_invariant() {
    // The rp-obs spans, counters, and timeline recorders threaded through
    // the hot paths must be pure observers: enabling them cannot perturb a
    // single result, at any shard count. (The byte-level guard on the
    // emitted JSON lives in tests/report_schema.rs; this is the in-process
    // version over the same pipelines.)
    let world = World::build(&WorldConfig::test_scale(42));
    let plain_ranking = OffloadStudy::new(&world).single_ixp_ranking();
    let plain_greedy =
        OffloadStudy::new(&world).greedy_by(PeerGroup::All, 20, GreedyMetric::Traffic);

    let mut baseline_probes = None;
    for shards in [1usize, 2, 4] {
        let campaign = Campaign {
            shards,
            ..Campaign::default_paper()
        };
        let plain = campaign.probe_all(&world);
        rp_obs::enable();
        let instrumented = campaign.probe_all(&world);
        rp_obs::disable();
        assert_eq!(
            plain, instrumented,
            "instrumented campaign produced different samples at --shards {shards}"
        );
        match &baseline_probes {
            None => baseline_probes = Some(plain),
            Some(b) => assert_eq!(
                b, &plain,
                "campaign samples changed between shard counts (shards={shards})"
            ),
        }
    }

    rp_obs::enable();
    let instrumented_world = World::build(&WorldConfig::test_scale(42));
    let instrumented_ranking = OffloadStudy::new(&instrumented_world).single_ixp_ranking();
    let instrumented_greedy =
        OffloadStudy::new(&instrumented_world).greedy_by(PeerGroup::All, 20, GreedyMetric::Traffic);
    rp_obs::disable();

    assert_eq!(world.vantage, instrumented_world.vantage);
    assert_eq!(world.home_ixps, instrumented_world.home_ixps);
    assert_eq!(
        world.registry.total_entries(),
        instrumented_world.registry.total_entries(),
        "instrumented registry crawl diverged"
    );
    assert_eq!(
        plain_ranking, instrumented_ranking,
        "instrumented ranking diverged"
    );
    assert_eq!(
        plain_greedy, instrumented_greedy,
        "instrumented greedy expansion diverged"
    );
}

#[test]
fn single_ixp_ranking_is_stable() {
    let world = World::build(&WorldConfig::test_scale(42));
    let study = OffloadStudy::new(&world);
    let first = study.single_ixp_ranking();
    let second = study.single_ixp_ranking();
    assert_eq!(first, second, "parallel ranking must be run-to-run stable");
    // A fresh study (cold cache) must agree with the warm one.
    let fresh = OffloadStudy::new(&world);
    assert_eq!(
        first,
        fresh.single_ixp_ranking(),
        "cold-cache ranking diverged"
    );
}
