//! End-to-end integration: the full section 3 + section 4 pipelines over
//! one world, asserting the paper's qualitative findings hold.

use remote_peering::campaign::Campaign;
use remote_peering::classify::REMOTENESS_THRESHOLD_MS;
use remote_peering::detect::DetectionReport;
use remote_peering::identify::Identification;
use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::validate;
use remote_peering::world::{World, WorldConfig};
use rp_econ::fit_decay;
use rp_types::IxpId;

fn world() -> World {
    World::build(&WorldConfig::test_scale(2014))
}

#[test]
fn detection_pipeline_reproduces_section_3_findings() {
    let world = world();
    let report = DetectionReport::run(&world, &Campaign::default_paper());

    // Remote peering is widespread: detected at the vast majority of
    // studied IXPs (paper: 91%).
    let (with, total) = report.ixps_with_remote_peering();
    assert_eq!(total, 22);
    assert!(with >= 18, "remote peering detected at only {with}/22 IXPs");

    // ... but absent exactly where the scene has none (paper: DIX-IE and
    // CABASE).
    for study in &report.studies {
        let meta = &world.scene.ixp(study.ixp).meta;
        if meta.remote_share == 0.0 {
            assert_eq!(study.remote_count(), 0, "{}", meta.acronym);
        }
    }

    // Conservative classification: exact ground truth shows zero false
    // positives, with recall below 1 (nearby remote peers hide under the
    // threshold — the accepted cost).
    let mut confusion = validate::Confusion::default();
    for study in &report.studies {
        confusion.merge(&validate::confusion(&world, study));
    }
    assert_eq!(confusion.false_positive, 0);
    assert!(confusion.true_positive > 30, "{}", confusion.true_positive);
    assert!(
        confusion.recall() < 1.0,
        "some false negatives are expected by design"
    );
    assert!(confusion.recall() > 0.5, "recall {:.2}", confusion.recall());

    // Intercontinental-range peering at several IXPs (paper: a majority).
    assert!(report.ixps_with_intercontinental() >= 6);

    // Identification: majority of analyzed interfaces map to ASNs; the
    // remote population is a small share of identified networks.
    let ident = Identification::from_report(&report);
    let frac_ident = ident.identified_interfaces as f64
        / (ident.identified_interfaces + ident.unidentified_interfaces) as f64;
    assert!(
        (0.6..0.9).contains(&frac_ident),
        "identified fraction {frac_ident}"
    );
    let remote = ident.remote_networks().count();
    assert!(remote > 10 && remote * 2 < ident.networks.len());

    // Remote networks with IXP count 1 have (almost) no sub-threshold
    // interfaces (paper: none).
    if let Some((1, counts)) = ident.remote_interface_ranges_by_ixp_count().first() {
        assert!(
            counts.as_array()[0] <= counts.total() / 10,
            "IXP-count-1 remote networks should have almost no local interfaces: {counts:?}"
        );
    }
}

#[test]
fn offload_pipeline_reproduces_section_4_findings() {
    let world = world();
    let study = OffloadStudy::new(&world);
    let total = world.contributions.total_inbound() + world.contributions.total_outbound();

    // Peer groups nest and all offload something.
    let all_ixps: Vec<IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
    let mut prev = 0.0;
    for group in PeerGroup::ALL {
        let (i, o) = study.potential(&all_ixps, group);
        let frac = (i + o).fraction_of(total);
        assert!(frac >= prev - 1e-9, "groups must nest");
        assert!(frac > 0.0 && frac <= 1.0);
        prev = frac;
    }

    // Greedy expansion has diminishing returns and an exponential-ish
    // head: the first few IXPs realize most of the achievable offload.
    let steps = study.greedy(PeerGroup::All, 15);
    let realized_5 = total - (steps[4].remaining_in + steps[4].remaining_out);
    let realized_all =
        total - (steps.last().unwrap().remaining_in + steps.last().unwrap().remaining_out);
    assert!(
        realized_5.0 >= 0.7 * realized_all.0,
        "5 IXPs realize most of the potential"
    );

    // The decay fits the section 5 model shape.
    let floor = (steps.last().unwrap().remaining_in + steps.last().unwrap().remaining_out).0;
    let offloadable = (total.0 - floor).max(1e-9);
    let curve: Vec<f64> = std::iter::once(1.0)
        .chain(
            steps
                .iter()
                .map(|s| ((s.remaining_in + s.remaining_out).0 - floor).max(0.0) / offloadable),
        )
        .collect();
    let fit = fit_decay(&curve[..8]).expect("fit succeeds");
    assert!(fit.b > 0.0);

    // The interfaces metric (figure 10) drops fastest under its own greedy.
    let by_traffic = study.greedy_by(PeerGroup::All, 3, GreedyMetric::Traffic);
    let by_ifaces = study.greedy_by(PeerGroup::All, 3, GreedyMetric::Interfaces);
    assert!(
        by_ifaces[0].remaining_interfaces <= by_traffic[0].remaining_interfaces,
        "interface-greedy must win its own metric on step 1"
    );
}

#[test]
fn torix_style_validation_matches_paper_section_33() {
    let world = world();
    let torix = world
        .scene
        .ixps
        .iter()
        .find(|x| x.meta.acronym == "TorIX")
        .unwrap()
        .id;
    let (study, check) =
        validate::route_server_crosscheck(&world, &Campaign::default_paper(), torix);
    // Independent vantage agrees with the LG measurements (paper: mean
    // difference 0.3 ms, variance 1.6 ms²).
    assert!(check.compared > 10);
    assert!(
        check.mean_diff_ms.abs() < 2.0,
        "mean {}",
        check.mean_diff_ms
    );
    assert!(check.var_diff_ms2 < 8.0, "variance {}", check.var_diff_ms2);
    // And every detected remote peer is a true remote peer.
    let confusion = validate::confusion(&world, &study);
    assert_eq!(confusion.false_positive, 0);
    // Every analyzed interface carries a sane minimum RTT.
    for a in &study.analyzed {
        assert!(a.min_rtt_ms.is_finite() && a.min_rtt_ms > 0.0);
        assert!(a.min_rtt_ms < 500.0, "{} min {}", a.ip, a.min_rtt_ms);
    }
    let _ = REMOTENESS_THRESHOLD_MS;
}
