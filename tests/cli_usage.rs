//! Usage-error paths of the `repro` CLI.
//!
//! Every unrecognized token — flag, experiment, or subcommand argument —
//! funnels through one printer: a single `error: unknown <kind> <token>`
//! line followed by the usage text, exit code 2. These tests pin that
//! shape so the two paths cannot drift apart again.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

/// Exit 2, exactly one `error:` line, and the usage text follows.
fn assert_usage_error(out: &Output, expected_first_line: &str) {
    assert_eq!(out.status.code(), Some(2), "usage errors must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let mut lines = stderr.lines();
    assert_eq!(
        lines.next(),
        Some(expected_first_line),
        "first stderr line must be the one-line diagnostic; got:\n{stderr}"
    );
    let error_lines = stderr.lines().filter(|l| l.starts_with("error:")).count();
    assert_eq!(error_lines, 1, "exactly one error line, got:\n{stderr}");
    assert!(
        stderr.contains("usage: repro"),
        "usage text must follow the diagnostic:\n{stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "diagnostics go to stderr, not stdout"
    );
}

#[test]
fn unknown_flag_is_one_line_error_exit_2() {
    let out = repro(&["--definitely-bogus"]);
    assert_usage_error(&out, "error: unknown flag --definitely-bogus");
}

#[test]
fn unknown_experiment_is_one_line_error_exit_2() {
    let out = repro(&["definitely-bogus"]);
    assert_usage_error(&out, "error: unknown experiment definitely-bogus");
}

#[test]
fn unknown_profile_target_is_one_line_error_exit_2() {
    let out = repro(&["profile", "definitely-bogus"]);
    assert_usage_error(&out, "error: unknown experiment definitely-bogus");
}

#[test]
fn unknown_scale_is_rejected_at_parse_time() {
    let out = repro(&["fig2", "--scale", "bogus"]);
    assert_usage_error(&out, "error: unknown scale bogus (use test|paper)");
}

#[test]
fn help_prints_usage_and_exits_0() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: repro"));
    assert!(stdout.contains("--trace-chrome"), "new flags documented");
    assert!(stdout.contains("repro profile"), "subcommands documented");
}
