//! The sharded data plane's end-to-end contract, driven through the real
//! `repro` binary: `--shards` is a pure performance policy, so every
//! artifact the pipeline writes must be **byte-identical** across the
//! full `--shards 1/2/4` × `--threads 1/4` matrix at the pinned seed 42 —
//! `check_report.json` (fault injection + invariants + fuzz) and the
//! two-arm smoke sweep's `smoke.json` (Monte-Carlo statistics) alike.
//!
//! The bytes are additionally pinned to golden FNV-1a digests, so the
//! matrix cannot silently drift *together*: a scheduler rework that
//! changes every cell the same way still fails here and must consciously
//! regenerate the goldens.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Golden FNV-1a digest of the seed-42 `check_report.json` (40 fault
/// trials, 60 fuzz iterations, test scale) — the same capture
/// `tests/check_determinism.rs` pins, asserted here at every matrix cell.
const GOLDEN_CHECK_REPORT_FNV: u64 = 0x230d_ba12_3258_b478;

/// Golden FNV-1a digest of the seed-42 two-arm smoke sweep's
/// `sweeps/smoke.json` (2 replicates, thresholds 10/14, test scale).
const GOLDEN_SWEEP_SMOKE_FNV: u64 = 0xc445_9241_7d99_9273;

const SHARD_COUNTS: [&str; 3] = ["1", "2", "4"];
const THREAD_COUNTS: [&str; 2] = ["1", "4"];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rp-shard-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn run_check(out: &Path, threads: &str, shards: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["check", "--faults", "40", "--fuzz", "60"])
        .args(["--scale", "test", "--seed", "42"])
        .args(["--threads", threads, "--shards", shards])
        .args(["--out", out.to_str().unwrap()])
        .output()
        .expect("spawn repro check")
}

#[test]
fn check_report_is_byte_identical_across_the_shard_thread_matrix() {
    let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let cell = format!("s{shards}t{threads}");
            let out_dir = temp_dir(&format!("check-{cell}"));
            let out = run_check(&out_dir, threads, shards);
            assert!(
                out.status.success(),
                "check --shards {shards} --threads {threads} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let report = std::fs::read(out_dir.join("check_report.json")).expect("report exists");
            assert!(!report.is_empty());
            match &reference {
                None => {
                    // The first cell is also held to the golden capture, so
                    // the whole matrix is transitively pinned.
                    assert_eq!(
                        fnv1a(&report),
                        GOLDEN_CHECK_REPORT_FNV,
                        "check_report.json bytes diverged from the golden capture \
                         (got 0x{:016x} at --shards {shards} --threads {threads})",
                        fnv1a(&report)
                    );
                    reference = Some((report, out.stdout));
                }
                Some((ref_report, ref_stdout)) => {
                    assert_eq!(
                        &report, ref_report,
                        "check_report.json differs at --shards {shards} --threads {threads}"
                    );
                    assert_eq!(
                        String::from_utf8_lossy(&out.stdout),
                        String::from_utf8_lossy(ref_stdout),
                        "check stdout differs at --shards {shards} --threads {threads}"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&out_dir);
        }
    }
}

/// The two-arm smoke spec: threshold 10 (baseline) vs 14, two replicate
/// worlds — small enough to probe six times, real enough to exercise the
/// full world-build → campaign → filter → offload → statistics pipeline.
const SMOKE_SPEC: &str = r#"{
    "name": "smoke",
    "description": "shard-determinism smoke sweep",
    "replicates": 2,
    "axes": [{"param": "threshold_ms", "values": [10, 14]}]
}"#;

fn run_sweep(spec: &Path, out: &Path, threads: &str, shards: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["sweep", spec.to_str().unwrap()])
        .args(["--scale", "test", "--seed", "42"])
        .args(["--threads", threads, "--shards", shards])
        .args(["--out", out.to_str().unwrap()])
        .output()
        .expect("spawn repro sweep")
}

#[test]
fn sweep_smoke_is_byte_identical_across_the_shard_thread_matrix() {
    let spec_dir = temp_dir("sweep-spec");
    let spec = spec_dir.join("smoke.json");
    std::fs::write(&spec, SMOKE_SPEC).expect("write smoke spec");

    let mut reference: Option<Vec<u8>> = None;
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let cell = format!("s{shards}t{threads}");
            let out_dir = temp_dir(&format!("sweep-{cell}"));
            let out = run_sweep(&spec, &out_dir, threads, shards);
            assert!(
                out.status.success(),
                "sweep --shards {shards} --threads {threads} failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let json = std::fs::read(out_dir.join("sweeps").join("smoke.json"))
                .expect("sweep artifact exists");
            assert!(!json.is_empty());
            match &reference {
                None => {
                    assert_eq!(
                        fnv1a(&json),
                        GOLDEN_SWEEP_SMOKE_FNV,
                        "sweeps/smoke.json bytes diverged from the golden capture \
                         (got 0x{:016x} at --shards {shards} --threads {threads})",
                        fnv1a(&json)
                    );
                    reference = Some(json);
                }
                Some(ref_json) => {
                    assert_eq!(
                        &json, ref_json,
                        "sweeps/smoke.json differs at --shards {shards} --threads {threads}"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&out_dir);
        }
    }
    let _ = std::fs::remove_dir_all(&spec_dir);
}
