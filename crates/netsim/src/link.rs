//! Links and delay models.
//!
//! A link's one-way delay is `base propagation + exponential jitter +
//! persistent extra + any active congestion episode`. The base term carries
//! geography (section 3's signal); the other three terms are the noise the
//! paper's filters and min-RTT estimator exist to defeat.

use rand::rngs::StdRng;
use rand::RngExt;
use rp_types::dist::exponential;
use rp_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A bounded interval of elevated delay on a link — transient congestion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionEpisode {
    /// Episode start (inclusive).
    pub start: SimTime,
    /// Episode end (exclusive).
    pub end: SimTime,
    /// Mean of the exponential extra delay added while the episode is
    /// active, in milliseconds.
    pub extra_mean_ms: f64,
}

impl CongestionEpisode {
    /// True when `t` falls inside the episode.
    #[inline]
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Stochastic one-way delay model for a link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayModel {
    /// Deterministic propagation delay (fiber distance).
    pub base: SimDuration,
    /// Mean of per-traversal exponential jitter, in milliseconds (queuing,
    /// serialization, scheduler noise). Zero disables jitter.
    pub jitter_mean_ms: f64,
    /// Bound of additional per-traversal *uniform* jitter, in milliseconds —
    /// the saturated-port regime, where queue occupancy swings over a wide
    /// but bounded range. Bounded noise keeps the achievable minimum honest
    /// (the conservative threshold can never be crossed by congestion
    /// alone) while spreading replies so thin that few corroborate the
    /// minimum. Zero disables.
    pub jitter_uniform_ms: f64,
    /// Constant extra delay, in milliseconds — persistent congestion (the
    /// LG-consistent filter's target when it afflicts one LG's access link).
    pub persistent_extra_ms: f64,
    /// Transient congestion episodes (random extra delay while active).
    pub episodes: Vec<CongestionEpisode>,
    /// Windows of *constant* extra delay — long structural changes such as
    /// a rerouted circuit or a saturated epoch, which elevate the achievable
    /// floor itself instead of adding noise around it. The LG-consistent
    /// filter exists because such epochs make two vantage servers probing
    /// in different periods disagree on the minimum RTT.
    pub persistent_episodes: Vec<CongestionEpisode>,
    /// Link capacity in megabits per second. `None` = unconstrained (the
    /// default — measurement probes are far too sparse to queue on real
    /// IXP-grade links). With a capacity set, the simulator serializes
    /// frames through a per-direction FIFO: each frame occupies the line
    /// for `size / capacity` and later frames wait their turn.
    pub bandwidth_mbps: Option<f64>,
}

impl DelayModel {
    /// An ideal link with only propagation delay.
    pub fn ideal(base: SimDuration) -> Self {
        DelayModel {
            base,
            jitter_mean_ms: 0.0,
            jitter_uniform_ms: 0.0,
            persistent_extra_ms: 0.0,
            episodes: Vec::new(),
            persistent_episodes: Vec::new(),
            bandwidth_mbps: None,
        }
    }

    /// A link whose one-way propagation is `ms` milliseconds, with light
    /// default jitter (30 µs mean) typical of an uncongested path.
    pub fn with_one_way_ms(ms: f64) -> Self {
        DelayModel {
            base: SimDuration::from_millis_f64(ms),
            jitter_mean_ms: 0.03,
            jitter_uniform_ms: 0.0,
            persistent_extra_ms: 0.0,
            episodes: Vec::new(),
            persistent_episodes: Vec::new(),
            bandwidth_mbps: None,
        }
    }

    /// Add bounded uniform jitter (saturated-port noise).
    pub fn with_jitter_uniform_ms(mut self, bound_ms: f64) -> Self {
        self.jitter_uniform_ms = bound_ms;
        self
    }

    /// Constrain the link to a finite capacity.
    pub fn with_bandwidth_mbps(mut self, mbps: f64) -> Self {
        self.bandwidth_mbps = Some(mbps);
        self
    }

    /// Serialization time of `bytes` on this link ([`SimDuration::ZERO`]
    /// when unconstrained).
    pub fn serialization(&self, bytes: u32) -> SimDuration {
        match self.bandwidth_mbps {
            Some(mbps) if mbps > 0.0 => {
                SimDuration::from_nanos((bytes as f64 * 8.0 * 1_000.0 / mbps) as u64)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Add a window of constant extra delay.
    pub fn with_persistent_episode(mut self, e: CongestionEpisode) -> Self {
        self.persistent_episodes.push(e);
        self
    }

    /// Add a transient congestion episode.
    pub fn with_episode(mut self, e: CongestionEpisode) -> Self {
        self.episodes.push(e);
        self
    }

    /// Set the jitter mean.
    pub fn with_jitter_ms(mut self, ms: f64) -> Self {
        self.jitter_mean_ms = ms;
        self
    }

    /// Set a persistent extra delay.
    pub fn with_persistent_extra_ms(mut self, ms: f64) -> Self {
        self.persistent_extra_ms = ms;
        self
    }

    /// Sample the one-way delay for a frame entering the link at `now`.
    pub fn sample(&self, now: SimTime, rng: &mut StdRng) -> SimDuration {
        let mut extra_ms = self.persistent_extra_ms;
        if self.jitter_mean_ms > 0.0 {
            extra_ms += exponential(rng, 1.0 / self.jitter_mean_ms);
        }
        if self.jitter_uniform_ms > 0.0 {
            extra_ms += rng.random::<f64>() * self.jitter_uniform_ms;
        }
        for e in &self.episodes {
            if e.active_at(now) && e.extra_mean_ms > 0.0 {
                extra_ms += exponential(rng, 1.0 / e.extra_mean_ms);
            }
        }
        for e in &self.persistent_episodes {
            if e.active_at(now) {
                extra_ms += e.extra_mean_ms;
            }
        }
        // Touch the RNG even without jitter so enabling/disabling episodes
        // far in the future does not silently shift unrelated samples.
        let _ = rng.random::<u32>();
        self.base + SimDuration::from_millis_f64(extra_ms)
    }

    /// The minimum achievable one-way delay (no jitter, no episodes).
    #[inline]
    pub fn floor(&self) -> SimDuration {
        self.base + SimDuration::from_millis_f64(self.persistent_extra_ms)
    }

    /// A hard lower bound on *every* traversal of this link, at any time:
    /// `base`. All other terms — exponential and uniform jitter,
    /// persistent extras, congestion episodes, serialization, injected
    /// jitter spikes — only add delay. The sharded scheduler's
    /// conservative lookahead is the minimum of this bound over all
    /// cross-shard links: a shard that has processed everything before
    /// time `T` can never receive a cross-shard frame earlier than
    /// `T + min_one_way()`, which is what makes the epoch barrier safe.
    #[inline]
    pub fn min_one_way(&self) -> SimDuration {
        self.base
    }

    /// True when [`sample`](Self::sample) draws nothing from its RNG that
    /// affects the result: no exponential or uniform jitter, and no
    /// transient episode with a positive mean. Links with such models
    /// skip RNG construction and per-frame sampling entirely — each link
    /// owns an isolated random stream, so never touching it cannot shift
    /// any other stream.
    pub fn is_deterministic(&self) -> bool {
        self.jitter_mean_ms <= 0.0
            && self.jitter_uniform_ms <= 0.0
            && self.episodes.iter().all(|e| e.extra_mean_ms <= 0.0)
    }

    /// [`sample`](Self::sample) for deterministic models (see
    /// [`is_deterministic`](Self::is_deterministic)), computed without an
    /// RNG. Bit-identical to what `sample` returns on such a model.
    pub fn sample_deterministic(&self, now: SimTime) -> SimDuration {
        debug_assert!(self.is_deterministic());
        let mut extra_ms = self.persistent_extra_ms;
        for e in &self.persistent_episodes {
            if e.active_at(now) {
                extra_ms += e.extra_mean_ms;
            }
        }
        self.base + SimDuration::from_millis_f64(extra_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ideal_link_is_exact() {
        let m = DelayModel::ideal(SimDuration::from_millis(5));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(SimTime::ZERO, &mut r), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn jitter_only_adds() {
        let m = DelayModel::with_one_way_ms(1.0);
        let mut r = rng();
        for _ in 0..200 {
            let d = m.sample(SimTime::ZERO, &mut r);
            assert!(d >= m.base);
        }
    }

    #[test]
    fn episode_applies_only_inside_window() {
        let m = DelayModel::ideal(SimDuration::from_millis(1)).with_episode(CongestionEpisode {
            start: SimTime(1_000),
            end: SimTime(2_000),
            extra_mean_ms: 50.0,
        });
        let mut r = rng();
        // Outside: exact base.
        assert_eq!(m.sample(SimTime(0), &mut r), SimDuration::from_millis(1));
        assert_eq!(
            m.sample(SimTime(2_000), &mut r),
            SimDuration::from_millis(1)
        );
        // Inside: almost surely above base (mean 50 ms extra).
        let mut raised = 0;
        for _ in 0..50 {
            if m.sample(SimTime(1_500), &mut r) > SimDuration::from_millis(2) {
                raised += 1;
            }
        }
        assert!(raised > 45, "{raised}");
    }

    #[test]
    fn persistent_extra_raises_floor() {
        let m = DelayModel::ideal(SimDuration::from_millis(1)).with_persistent_extra_ms(3.0);
        assert_eq!(m.floor(), SimDuration::from_millis(4));
        let mut r = rng();
        assert!(m.sample(SimTime::ZERO, &mut r) >= SimDuration::from_millis(4));
    }

    #[test]
    fn persistent_episode_raises_the_floor_inside_its_window() {
        let m = DelayModel::ideal(SimDuration::from_millis(1)).with_persistent_episode(
            CongestionEpisode {
                start: SimTime(100),
                end: SimTime(200),
                extra_mean_ms: 6.0,
            },
        );
        let mut r = rng();
        assert_eq!(m.sample(SimTime(50), &mut r), SimDuration::from_millis(1));
        assert_eq!(m.sample(SimTime(150), &mut r), SimDuration::from_millis(7));
        assert_eq!(m.sample(SimTime(250), &mut r), SimDuration::from_millis(1));
    }

    #[test]
    fn uniform_jitter_is_bounded() {
        let m = DelayModel::ideal(SimDuration::from_millis(1)).with_jitter_uniform_ms(8.0);
        let mut r = rng();
        for _ in 0..500 {
            let d = m.sample(SimTime::ZERO, &mut r);
            assert!(d >= SimDuration::from_millis(1));
            assert!(d <= SimDuration::from_millis_f64(9.0));
        }
    }

    #[test]
    fn deterministic_models_sample_without_an_rng() {
        let windowed = CongestionEpisode {
            start: SimTime(100),
            end: SimTime(200),
            extra_mean_ms: 6.0,
        };
        let det = DelayModel::ideal(SimDuration::from_millis(2))
            .with_persistent_extra_ms(1.0)
            .with_persistent_episode(windowed);
        assert!(det.is_deterministic());
        let mut r = rng();
        for t in [SimTime(0), SimTime(150), SimTime(300)] {
            assert_eq!(det.sample_deterministic(t), det.sample(t, &mut r));
        }
        // Any stochastic term disqualifies the fast path.
        assert!(!DelayModel::with_one_way_ms(1.0).is_deterministic());
        assert!(!DelayModel::ideal(SimDuration::ZERO)
            .with_jitter_uniform_ms(1.0)
            .is_deterministic());
        assert!(!DelayModel::ideal(SimDuration::ZERO)
            .with_episode(windowed)
            .is_deterministic());
    }

    #[test]
    fn min_of_many_samples_approaches_floor() {
        // The measurement method's core assumption: repeated probing makes
        // min-RTT converge to propagation. Verify the substrate honors it.
        let m = DelayModel::with_one_way_ms(2.0).with_jitter_ms(0.5);
        let mut r = rng();
        let min = (0..500)
            .map(|_| m.sample(SimTime::ZERO, &mut r))
            .min()
            .unwrap();
        let slack = min - m.base;
        assert!(
            slack.as_millis_f64() < 0.05,
            "min {} vs base {}",
            min,
            m.base
        );
    }
}
