//! Deterministic link-level fault injection.
//!
//! A [`FaultInjector`] installed on a [`crate::Network`] intercepts every
//! frame at the moment it enters a link and may drop it (probe loss, link
//! flaps), duplicate it (reply duplication), delay it (jitter spikes), or
//! rewrite its IP TTL — the degradations the paper's conservative filters
//! exist to survive.
//!
//! Every decision draws from an RNG derived with [`seed::rng2`] from the
//! injector's seed, the link *direction* (`link × 2 + dir`), and a
//! per-direction decision counter. A direction is only ever driven by the
//! device transmitting on it, so each decision stream is a pure function
//! of that device's own execution history — independent of how the
//! network is partitioned into shards and of global event interleaving.
//! The same seed therefore replays the identical faults, frame for frame
//! (the replay invariant pinned by `rp-testkit`), at every shard count
//! (the shard-equivalence contract of `tests/shard_determinism.rs`).

use crate::frame::{Frame, IcmpMessage, Payload};
use rand::RngExt;
use rp_types::{seed, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The categories of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// An ICMP echo request silently dropped on its link.
    ProbeLoss,
    /// An ICMP echo reply delivered twice.
    ReplyDuplication,
    /// A one-off delay spike added to a frame's link traversal.
    JitterSpike,
    /// The IP TTL of an in-flight packet rewritten to a fixed value.
    TtlRewrite,
    /// A link dropping all traffic inside its flap window.
    LinkFlap,
}

impl FaultKind {
    /// All kinds, in report order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ProbeLoss,
        FaultKind::ReplyDuplication,
        FaultKind::JitterSpike,
        FaultKind::TtlRewrite,
        FaultKind::LinkFlap,
    ];

    /// Stable snake_case key for reports.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::ProbeLoss => "probe_loss",
            FaultKind::ReplyDuplication => "reply_duplication",
            FaultKind::JitterSpike => "jitter_spike",
            FaultKind::TtlRewrite => "ttl_rewrite",
            FaultKind::LinkFlap => "link_flap",
        }
    }
}

/// Per-fault probabilities and magnitudes; all probabilities are per
/// frame-transmission. A config with every probability at zero injects
/// nothing (and [`crate::Network`] behaves exactly as without an injector).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master seed of the fault streams (not the simulation seed — fault
    /// randomness is deliberately independent of the world's).
    pub seed: u64,
    /// Probability of dropping a frame carrying an ICMP echo request.
    pub probe_loss: f64,
    /// Probability of duplicating a frame carrying an ICMP echo reply.
    pub reply_duplication: f64,
    /// Probability of adding a delay spike to any frame.
    pub jitter_spike: f64,
    /// Magnitude of a jitter spike, in milliseconds.
    pub jitter_spike_ms: f64,
    /// Probability of rewriting the TTL of an IPv4 frame.
    pub ttl_rewrite: f64,
    /// The TTL value rewritten frames carry.
    pub ttl_rewrite_to: u8,
    /// Probability that a given link flaps (drops everything) inside the
    /// flap window.
    pub link_flap: f64,
    /// The flap window, absolute simulation times (`None` = no flaps).
    pub flap_window: Option<(SimTime, SimTime)>,
}

impl FaultConfig {
    /// A config that injects nothing.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            probe_loss: 0.0,
            reply_duplication: 0.0,
            jitter_spike: 0.0,
            jitter_spike_ms: 0.0,
            ttl_rewrite: 0.0,
            ttl_rewrite_to: 0,
            link_flap: 0.0,
            flap_window: None,
        }
    }

    /// The same config with its seed rebased onto a derived stream, so one
    /// template fans out into independent replayable per-network streams
    /// (`seed::derive2(seed, domain, index, subindex)`).
    pub fn derived(&self, domain: &str, index: u64, subindex: u64) -> Self {
        let mut cfg = self.clone();
        cfg.seed = seed::derive2(self.seed, domain, index, subindex);
        cfg
    }
}

/// Exact tallies of injected faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Frame transmissions the injector examined.
    pub decisions: u64,
    /// Echo requests dropped.
    pub probe_drops: u64,
    /// Echo replies duplicated.
    pub reply_duplicates: u64,
    /// Delay spikes added.
    pub jitter_spikes: u64,
    /// TTLs rewritten.
    pub ttl_rewrites: u64,
    /// Frames dropped inside flap windows.
    pub flap_drops: u64,
}

impl FaultCounts {
    /// Total faults injected (decisions excluded).
    pub fn total(&self) -> u64 {
        self.probe_drops
            + self.reply_duplicates
            + self.jitter_spikes
            + self.ttl_rewrites
            + self.flap_drops
    }

    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &FaultCounts) {
        self.decisions += other.decisions;
        self.probe_drops += other.probe_drops;
        self.reply_duplicates += other.reply_duplicates;
        self.jitter_spikes += other.jitter_spikes;
        self.ttl_rewrites += other.ttl_rewrites;
        self.flap_drops += other.flap_drops;
    }

    /// The tallies keyed like [`FaultKind::ALL`] (decisions excluded).
    pub fn by_kind(&self) -> [(FaultKind, u64); 5] {
        [
            (FaultKind::ProbeLoss, self.probe_drops),
            (FaultKind::ReplyDuplication, self.reply_duplicates),
            (FaultKind::JitterSpike, self.jitter_spikes),
            (FaultKind::TtlRewrite, self.ttl_rewrites),
            (FaultKind::LinkFlap, self.flap_drops),
        ]
    }
}

/// One injected fault, for the replay log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fired.
    pub at: SimTime,
    /// The link it fired on.
    pub link: u32,
    /// What happened.
    pub kind: FaultKind,
}

/// The replay log keeps at most this many events; [`FaultCounts`] stays
/// exact past the cap.
pub const FAULT_LOG_CAP: usize = 4096;

/// What the injector decided for one frame transmission.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxFaults {
    /// Drop the frame entirely.
    pub drop: bool,
    /// Deliver a second copy shortly after the first.
    pub duplicate: bool,
    /// Extra link delay for this traversal.
    pub extra_delay: SimDuration,
}

/// Gap between a frame and its injected duplicate.
pub const DUPLICATE_GAP: SimDuration = SimDuration::from_micros(90);

/// One log entry plus the metadata that orders it canonically: the
/// direction stream it belongs to (`link × 2 + dir`), the decision number
/// within that stream, and the record index within the decision (one
/// transmission can log several faults). The triple is unique, so sorting
/// by `(at, dirkey, seq, rec)` yields one total order that every shard
/// count reproduces — merged per-shard logs are byte-identical to a
/// single-shard run's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LogRecord {
    pub(crate) dirkey: u64,
    pub(crate) seq: u64,
    pub(crate) rec: u32,
    pub(crate) event: FaultEvent,
}

impl LogRecord {
    /// The canonical ordering key (times first, then stream coordinates).
    pub(crate) fn order(&self) -> (SimTime, u64, u64, u32) {
        (self.event.at, self.dirkey, self.seq, self.rec)
    }
}

/// Seeded fault state; install with [`crate::Network::install_faults`].
/// The sharded network keeps one injector per shard — each link direction
/// is driven by exactly one shard, so the per-direction streams never
/// interleave and tallies/logs merge losslessly.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    /// Per-direction decision counters, indexed `link × 2 + dir`; each is
    /// the `subindex` of that direction's next derived decision RNG.
    seqs: Vec<u64>,
    /// Memoized per-link flap verdicts (each a pure function of the seed).
    flapping: HashMap<u32, bool>,
    counts: FaultCounts,
    log: Vec<LogRecord>,
    /// Record counter within the current decision (resets per transmit).
    rec: u32,
}

impl FaultInjector {
    /// An injector drawing from `cfg`'s streams.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            seqs: Vec::new(),
            flapping: HashMap::new(),
            counts: FaultCounts::default(),
            log: Vec::new(),
            rec: 0,
        }
    }

    /// The configuration this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Exact fault tallies so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// This injector's raw log records (at most [`FAULT_LOG_CAP`]).
    pub(crate) fn records(&self) -> &[LogRecord] {
        &self.log
    }

    /// The injector's replay log in canonical `(time, direction, seq)`
    /// order.
    pub fn log(&self) -> Vec<FaultEvent> {
        Self::merge_logs(std::iter::once(self))
    }

    /// Merge the logs of several injectors (the per-shard injectors of one
    /// network) into the canonical order, capped at [`FAULT_LOG_CAP`].
    pub(crate) fn merge_logs<'a, I: IntoIterator<Item = &'a FaultInjector>>(
        injectors: I,
    ) -> Vec<FaultEvent> {
        let mut all: Vec<LogRecord> = injectors
            .into_iter()
            .flat_map(|i| i.records().iter().copied())
            .collect();
        all.sort_unstable_by_key(LogRecord::order);
        all.truncate(FAULT_LOG_CAP);
        all.into_iter().map(|r| r.event).collect()
    }

    fn record(&mut self, dirkey: u64, at: SimTime, link: u32, kind: FaultKind) {
        if self.log.len() < FAULT_LOG_CAP {
            let seq = self.seqs[dirkey as usize];
            self.log.push(LogRecord {
                dirkey,
                seq,
                rec: self.rec,
                event: FaultEvent { at, link, kind },
            });
            self.rec += 1;
        }
    }

    fn link_flaps(&mut self, link: u32) -> bool {
        let (s, p) = (self.cfg.seed, self.cfg.link_flap);
        *self
            .flapping
            .entry(link)
            .or_insert_with(|| seed::rng2(s, "fault-flap", link as u64, 0).random::<f64>() < p)
    }

    /// Decide the faults for one frame entering direction `dir` of `link`
    /// at `now`. May rewrite the frame's TTL in place.
    pub(crate) fn on_transmit(
        &mut self,
        now: SimTime,
        link: u32,
        dir: u8,
        frame: &mut Frame,
    ) -> TxFaults {
        let mut out = TxFaults::default();
        self.counts.decisions += 1;
        self.rec = 0;
        let dirkey = (link as u64) << 1 | dir as u64;
        if self.seqs.len() <= dirkey as usize {
            self.seqs.resize(dirkey as usize + 1, 0);
        }
        let mut rng = seed::rng2(
            self.cfg.seed,
            "fault-tx",
            dirkey,
            self.seqs[dirkey as usize],
        );

        if let Some((lo, hi)) = self.cfg.flap_window {
            if now >= lo && now < hi && self.link_flaps(link) {
                self.counts.flap_drops += 1;
                self.record(dirkey, now, link, FaultKind::LinkFlap);
                out.drop = true;
                self.seqs[dirkey as usize] += 1;
                return out;
            }
        }

        if let Payload::Ipv4(pkt) = &mut frame.payload {
            if matches!(pkt.payload, IcmpMessage::EchoRequest { .. })
                && rng.random::<f64>() < self.cfg.probe_loss
            {
                self.counts.probe_drops += 1;
                self.record(dirkey, now, link, FaultKind::ProbeLoss);
                out.drop = true;
                self.seqs[dirkey as usize] += 1;
                return out;
            }
            if matches!(pkt.payload, IcmpMessage::EchoReply { .. })
                && rng.random::<f64>() < self.cfg.reply_duplication
            {
                self.counts.reply_duplicates += 1;
                self.record(dirkey, now, link, FaultKind::ReplyDuplication);
                out.duplicate = true;
            }
            if rng.random::<f64>() < self.cfg.ttl_rewrite {
                pkt.ttl = self.cfg.ttl_rewrite_to;
                self.counts.ttl_rewrites += 1;
                self.record(dirkey, now, link, FaultKind::TtlRewrite);
            }
        }

        if rng.random::<f64>() < self.cfg.jitter_spike {
            out.extra_delay = SimDuration::from_nanos((self.cfg.jitter_spike_ms * 1e6) as u64);
            self.counts.jitter_spikes += 1;
            self.record(dirkey, now, link, FaultKind::JitterSpike);
        }
        self.seqs[dirkey as usize] += 1;
        out
    }
}
