//! An IP router / member edge device.
//!
//! Routers are where layer 3 happens: they answer ARP for their interface
//! addresses, reply to ICMP echo with a configurable initial TTL, and
//! *decrement TTL when forwarding* — which is how the paper's TTL-match
//! filter can tell a reply that crossed an extra IP hop from one that stayed
//! inside the IXP subnet.
//!
//! The pathologies of section 3.1 are all expressible as configuration:
//!
//! - **blackholing** — `blackhole_icmp` drops echo requests silently;
//! - **OS change mid-campaign** — `ttl_changes` swaps the initial TTL at
//!   given instants (the TTL-switch filter's target);
//! - **registry-stale target behind an extra hop** — build a front router
//!   with `add_proxy_arp` + `add_route` to a second router holding the
//!   probed address (the TTL-match filter's target);
//! - **reply from a different interface address** — `reply_from` overrides
//!   the source address of echo replies.

use crate::frame::{ArpOp, Frame, IcmpMessage, Ipv4Packet, MacAddr, Payload};
use crate::sim::{Action, PortId};
use rand::rngs::StdRng;
use rand::RngExt;
use rp_types::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// ICMP slow-path (control-plane policing) parameters.
#[derive(Debug, Clone, Copy)]
pub struct SlowPath {
    /// Probability that a reply takes the fast path (normal processing).
    pub fast_prob: f64,
    /// Uniform slow-path delay range, microseconds.
    pub slow_us: (u64, u64),
}

/// Responder behavior knobs.
#[derive(Debug, Clone)]
pub struct RouterBehavior {
    /// Initial TTL of locally-generated packets (ping replies). Typical
    /// operating systems use 64 or 255; 128 and 32 occur in the wild and the
    /// paper's TTL-match filter deliberately rejects them as infrequent.
    pub initial_ttl: u8,
    /// Scheduled initial-TTL changes `(effective from, new value)` —
    /// emulates an operating-system change during the measurement period.
    pub ttl_changes: Vec<(SimTime, u8)>,
    /// Silently drop ICMP echo requests.
    pub blackhole_icmp: bool,
    /// Probability of dropping an individual echo request (congestion loss
    /// at a saturated member port). 0.0 = lossless.
    pub drop_prob: f64,
    /// ICMP slow-path mode (control-plane policing): with probability
    /// `1 - fast_prob` a reply is generated only after a uniformly drawn
    /// `slow_us` delay instead of the normal processing delay. The bounded
    /// slow range keeps the minimum RTT honest while scattering most
    /// replies far from it — the signature the RTT-consistent filter
    /// rejects.
    pub slow_path: Option<SlowPath>,
    /// Uniform range of local processing delay for generated replies, in
    /// microseconds.
    pub proc_delay_us: (u64, u64),
    /// Send echo replies sourced from this address instead of the probed
    /// interface address.
    pub reply_from: Option<Ipv4Addr>,
}

impl Default for RouterBehavior {
    fn default() -> Self {
        RouterBehavior {
            initial_ttl: 64,
            ttl_changes: Vec::new(),
            blackhole_icmp: false,
            drop_prob: 0.0,
            slow_path: None,
            proc_delay_us: (20, 120),
            reply_from: None,
        }
    }
}

impl RouterBehavior {
    /// Initial TTL in effect at `now`, honoring scheduled changes.
    pub fn ttl_at(&self, now: SimTime) -> u8 {
        self.ttl_changes
            .iter()
            .rev()
            .find(|(t, _)| *t <= now)
            .map(|(_, ttl)| *ttl)
            .unwrap_or(self.initial_ttl)
    }
}

/// One bound interface: an IP address on a port.
#[derive(Debug, Clone, Copy)]
struct Iface {
    port: PortId,
    ip: Ipv4Addr,
    mac: MacAddr,
}

/// Static route: exact destination match, or the default route.
#[derive(Debug, Clone, Copy)]
struct RouteEntry {
    dst: Option<Ipv4Addr>,
    port: PortId,
}

/// Router state.
///
/// A router talks to a handful of layer-2 neighbors at most, so every
/// per-packet lookup structure is a short vector scanned linearly —
/// faster than hashing at these sizes, allocation-free on the hot path,
/// and with deterministic iteration order by construction.
#[derive(Debug)]
pub struct Router {
    behavior: RouterBehavior,
    ifaces: Vec<Iface>,
    proxy_arp: Vec<(PortId, Ipv4Addr)>,
    proxy_arp_all: Vec<PortId>,
    routes: Vec<RouteEntry>,
    /// ARP cache per (port, ip).
    arp_cache: Vec<((PortId, Ipv4Addr), MacAddr)>,
    /// Packets awaiting ARP resolution, keyed by (port, next-hop ip);
    /// drained in arrival order when the reply comes back.
    pending: Vec<((PortId, Ipv4Addr), Vec<Ipv4Packet>)>,
}

impl Router {
    /// A router with the given responder behavior and no interfaces yet.
    pub fn new(behavior: RouterBehavior) -> Self {
        Router {
            behavior,
            ifaces: Vec::new(),
            proxy_arp: Vec::new(),
            proxy_arp_all: Vec::new(),
            routes: Vec::new(),
            arp_cache: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Bind address `ip` with `mac` on `port`. A port may carry several
    /// addresses (members sometimes hold more than one address in an IXP
    /// subnet).
    pub fn bind(&mut self, port: PortId, ip: Ipv4Addr, mac: MacAddr) {
        self.ifaces.push(Iface { port, ip, mac });
    }

    /// Answer ARP requests for `ip` arriving on `port` even though the
    /// address is not bound here (the front half of the extra-hop gadget).
    pub fn add_proxy_arp(&mut self, port: PortId, ip: Ipv4Addr) {
        self.proxy_arp.push((port, ip));
    }

    /// Answer ARP for *any* address on `port` (gateway-for-everything on a
    /// point-to-point inner link).
    pub fn set_proxy_arp_all(&mut self, port: PortId) {
        if !self.proxy_arp_all.contains(&port) {
            self.proxy_arp_all.push(port);
        }
    }

    /// Install an exact-destination route out of `port`.
    pub fn add_route(&mut self, dst: Ipv4Addr, port: PortId) {
        self.routes.push(RouteEntry {
            dst: Some(dst),
            port,
        });
    }

    /// Install the default route out of `port`.
    pub fn set_default_route(&mut self, port: PortId) {
        self.routes.push(RouteEntry { dst: None, port });
    }

    /// The behavior configuration.
    pub fn behavior(&self) -> &RouterBehavior {
        &self.behavior
    }

    fn iface_on(&self, port: PortId) -> Option<Iface> {
        self.ifaces.iter().find(|i| i.port == port).copied()
    }

    fn owns_ip(&self, ip: Ipv4Addr) -> Option<Iface> {
        self.ifaces.iter().find(|i| i.ip == ip).copied()
    }

    fn lookup_route(&self, dst: Ipv4Addr) -> Option<PortId> {
        self.routes
            .iter()
            .find(|r| r.dst == Some(dst))
            .or_else(|| self.routes.iter().find(|r| r.dst.is_none()))
            .map(|r| r.port)
    }

    fn proc_delay(&self, rng: &mut StdRng) -> SimDuration {
        if let Some(slow) = self.behavior.slow_path {
            if rng.random::<f64>() >= slow.fast_prob {
                let (lo, hi) = slow.slow_us;
                let us = if hi > lo {
                    rng.random_range(lo..=hi)
                } else {
                    lo
                };
                return SimDuration::from_micros(us);
            }
        }
        let (lo, hi) = self.behavior.proc_delay_us;
        let us = if hi > lo {
            rng.random_range(lo..=hi)
        } else {
            lo
        };
        SimDuration::from_micros(us)
    }

    fn arp_lookup(&self, key: (PortId, Ipv4Addr)) -> Option<MacAddr> {
        self.arp_cache
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, mac)| mac)
    }

    fn arp_learn(&mut self, key: (PortId, Ipv4Addr), mac: MacAddr) {
        match self.arp_cache.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1 = mac,
            None => self.arp_cache.push((key, mac)),
        }
    }

    /// Emit `pkt` out of `port`, resolving the next-hop MAC (the packet's
    /// destination address — our routes are host routes on point-to-point
    /// segments) via ARP when needed.
    fn emit(&mut self, port: PortId, pkt: Ipv4Packet, out: &mut Vec<Action>) {
        let Some(iface) = self.iface_on(port) else {
            return; // unconfigured port: drop
        };
        let key = (port, pkt.dst);
        match self.arp_lookup(key) {
            Some(mac) => out.push(Action::send(
                port,
                Frame {
                    src: iface.mac,
                    dst: mac,
                    payload: Payload::Ipv4(pkt),
                },
            )),
            None => {
                match self.pending.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, queued)) => queued.push(pkt),
                    None => {
                        // First packet toward this next hop: queue it and
                        // ask who holds the address.
                        self.pending.push((key, vec![pkt]));
                        out.push(Action::send(
                            port,
                            Frame::arp_request(iface.ip, iface.mac, pkt.dst),
                        ));
                    }
                }
            }
        }
    }

    /// Handle a frame arriving on `port` at `now`, appending the
    /// resulting actions to `out`.
    pub fn on_frame_into(
        &mut self,
        now: SimTime,
        port: PortId,
        frame: Frame,
        rng: &mut StdRng,
        out: &mut Vec<Action>,
    ) {
        match frame.payload {
            Payload::Arp(arp) => match arp.op {
                ArpOp::Request => {
                    let iface = self.iface_on(port);
                    let answers = iface.map(|i| i.ip == arp.target_ip).unwrap_or(false)
                        || self
                            .owns_ip(arp.target_ip)
                            .map(|i| i.port == port)
                            .unwrap_or(false)
                        || self.proxy_arp.contains(&(port, arp.target_ip))
                        || self.proxy_arp_all.contains(&port);
                    if answers {
                        if let Some(i) = self.iface_on(port) {
                            out.push(Action::send(
                                port,
                                Frame::arp_reply(&arp, arp.target_ip, i.mac),
                            ));
                        }
                    }
                    // Routers also gratuitously learn the requester.
                    self.arp_learn((port, arp.sender_ip), arp.sender_mac);
                }
                ArpOp::Reply => {
                    self.arp_learn((port, arp.sender_ip), arp.sender_mac);
                    let key = (port, arp.sender_ip);
                    if let Some(pos) = self.pending.iter().position(|(k, _)| *k == key) {
                        let (_, queued) = self.pending.swap_remove(pos);
                        for pkt in queued {
                            self.emit(port, pkt, out);
                        }
                    }
                }
            },
            Payload::Ipv4(pkt) => {
                if let Some(iface) = self.owns_ip(pkt.dst) {
                    // Addressed to us: answer echo requests.
                    if let IcmpMessage::EchoRequest { id, seq } = pkt.payload {
                        let dropped = self.behavior.blackhole_icmp
                            || (self.behavior.drop_prob > 0.0
                                && rng.random::<f64>() < self.behavior.drop_prob);
                        if !dropped {
                            let reply = Ipv4Packet {
                                src: self.behavior.reply_from.unwrap_or(iface.ip),
                                dst: pkt.src,
                                ttl: self.behavior.ttl_at(now),
                                payload: IcmpMessage::EchoReply { id, seq },
                            };
                            // Reply goes back out the arrival port to the
                            // frame's sender (the last layer-2 hop toward
                            // the requester).
                            let reply_iface = self.iface_on(port).unwrap_or(iface);
                            out.push(Action::Send {
                                port,
                                frame: Frame {
                                    src: reply_iface.mac,
                                    dst: frame.src,
                                    payload: Payload::Ipv4(reply),
                                },
                                after: self.proc_delay(rng),
                            });
                        }
                    }
                } else if let Some(out_port) = self.lookup_route(pkt.dst) {
                    // Transit through us: the defining moment for the
                    // TTL-match filter. Decrement; at zero, answer with
                    // ICMP Time Exceeded (the traceroute signal).
                    if pkt.ttl > 1 {
                        let mut fwd = pkt;
                        fwd.ttl -= 1;
                        self.emit(out_port, fwd, out);
                    } else if let IcmpMessage::EchoRequest { id, seq } = pkt.payload {
                        if let Some(iface) = self.iface_on(port) {
                            let exceeded = Ipv4Packet {
                                src: iface.ip,
                                dst: pkt.src,
                                ttl: self.behavior.ttl_at(now),
                                payload: IcmpMessage::TimeExceeded {
                                    original_dst: pkt.dst,
                                    id,
                                    seq,
                                },
                            };
                            out.push(Action::Send {
                                port,
                                frame: Frame {
                                    src: iface.mac,
                                    dst: frame.src,
                                    payload: Payload::Ipv4(exceeded),
                                },
                                after: self.proc_delay(rng),
                            });
                        }
                    }
                }
                // No route: drop silently.
            }
        }
    }

    /// [`on_frame_into`](Self::on_frame_into), collecting into a fresh
    /// vector.
    pub fn on_frame(
        &mut self,
        now: SimTime,
        port: PortId,
        frame: Frame,
        rng: &mut StdRng,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_frame_into(now, port, frame, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ArpPacket;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    fn echo_to(dst: Ipv4Addr, src_mac: MacAddr) -> Frame {
        Frame {
            src: src_mac,
            dst: MacAddr::from_index(99),
            payload: Payload::Ipv4(Ipv4Packet {
                src: "10.0.0.1".parse().unwrap(),
                dst,
                ttl: 64,
                payload: IcmpMessage::EchoRequest { id: 7, seq: 1 },
            }),
        }
    }

    fn member() -> (Router, Ipv4Addr, MacAddr) {
        let ip: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mac = MacAddr::from_index(5);
        let mut r = Router::new(RouterBehavior::default());
        r.bind(PortId(0), ip, mac);
        (r, ip, mac)
    }

    #[test]
    fn answers_arp_for_own_address() {
        let (mut r, ip, mac) = member();
        let req = Frame::arp_request("10.0.0.1".parse().unwrap(), MacAddr::from_index(1), ip);
        let Payload::Arp(arp) = req.payload else {
            panic!()
        };
        let acts = r.on_frame(SimTime::ZERO, PortId(0), req, &mut rng());
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { frame, .. } => {
                let Payload::Arp(reply) = frame.payload else {
                    panic!()
                };
                assert_eq!(reply.op, ArpOp::Reply);
                assert_eq!(reply.sender_mac, mac);
                assert_eq!(reply.target_ip, arp.sender_ip);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn ignores_arp_for_other_addresses() {
        let (mut r, _ip, _) = member();
        let req = Frame::arp_request(
            "10.0.0.1".parse().unwrap(),
            MacAddr::from_index(1),
            "10.0.0.77".parse().unwrap(),
        );
        assert!(r
            .on_frame(SimTime::ZERO, PortId(0), req, &mut rng())
            .is_empty());
    }

    #[test]
    fn echo_reply_uses_initial_ttl_and_returns_to_sender() {
        let (mut r, ip, _) = member();
        let lg_mac = MacAddr::from_index(1);
        let acts = r.on_frame(SimTime::ZERO, PortId(0), echo_to(ip, lg_mac), &mut rng());
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { frame, after, .. } => {
                assert_eq!(frame.dst, lg_mac);
                let Payload::Ipv4(p) = frame.payload else {
                    panic!()
                };
                assert_eq!(p.ttl, 64);
                assert_eq!(p.src, ip);
                assert!(matches!(
                    p.payload,
                    IcmpMessage::EchoReply { id: 7, seq: 1 }
                ));
                assert!(after.nanos() >= 20_000, "processing delay applied");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn ttl_schedule_switches_mid_campaign() {
        let ip: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mut behavior = RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        };
        behavior.ttl_changes.push((SimTime(1_000_000), 64));
        let mut r = Router::new(behavior);
        r.bind(PortId(0), ip, MacAddr::from_index(5));
        let lg = MacAddr::from_index(1);
        let before = r.on_frame(SimTime(0), PortId(0), echo_to(ip, lg), &mut rng());
        let after = r.on_frame(SimTime(2_000_000), PortId(0), echo_to(ip, lg), &mut rng());
        let ttl_of = |acts: &[Action]| match &acts[0] {
            Action::Send { frame, .. } => match frame.payload {
                Payload::Ipv4(p) => p.ttl,
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(ttl_of(&before), 255);
        assert_eq!(ttl_of(&after), 64);
    }

    #[test]
    fn blackhole_drops_echo_silently() {
        let ip: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let mut r = Router::new(RouterBehavior {
            blackhole_icmp: true,
            ..Default::default()
        });
        r.bind(PortId(0), ip, MacAddr::from_index(5));
        let acts = r.on_frame(
            SimTime::ZERO,
            PortId(0),
            echo_to(ip, MacAddr::from_index(1)),
            &mut rng(),
        );
        assert!(acts.is_empty());
    }

    #[test]
    fn reply_from_override_changes_source_address() {
        let ip: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let other: Ipv4Addr = "192.168.1.1".parse().unwrap();
        let mut r = Router::new(RouterBehavior {
            reply_from: Some(other),
            ..Default::default()
        });
        r.bind(PortId(0), ip, MacAddr::from_index(5));
        let acts = r.on_frame(
            SimTime::ZERO,
            PortId(0),
            echo_to(ip, MacAddr::from_index(1)),
            &mut rng(),
        );
        match &acts[0] {
            Action::Send { frame, .. } => {
                let Payload::Ipv4(p) = frame.payload else {
                    panic!()
                };
                assert_eq!(p.src, other);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn forwarding_decrements_ttl_and_arps_for_next_hop() {
        // Front router: fabric on port 0, inner link on port 1.
        let target: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let mut front = Router::new(RouterBehavior::default());
        front.bind(
            PortId(0),
            "10.0.0.200".parse().unwrap(),
            MacAddr::from_index(20),
        );
        front.bind(
            PortId(1),
            "192.168.0.1".parse().unwrap(),
            MacAddr::from_index(21),
        );
        front.add_proxy_arp(PortId(0), target);
        front.add_route(target, PortId(1));

        // The echo request for the proxied address gets forwarded; with an
        // empty ARP cache the router first asks who holds the target.
        let acts = front.on_frame(
            SimTime::ZERO,
            PortId(0),
            echo_to(target, MacAddr::from_index(1)),
            &mut rng(),
        );
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { port, frame, .. } => {
                assert_eq!(*port, PortId(1));
                assert!(matches!(frame.payload, Payload::Arp(a) if a.op == ArpOp::Request));
            }
            _ => panic!(),
        }

        // ARP reply arrives; the queued packet flushes with TTL decremented.
        let inner_mac = MacAddr::from_index(30);
        let reply = Frame {
            src: inner_mac,
            dst: MacAddr::from_index(21),
            payload: Payload::Arp(ArpPacket {
                op: ArpOp::Reply,
                sender_ip: target,
                sender_mac: inner_mac,
                target_ip: "192.168.0.1".parse().unwrap(),
                target_mac: MacAddr::from_index(21),
            }),
        };
        let acts = front.on_frame(SimTime::ZERO, PortId(1), reply, &mut rng());
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { port, frame, .. } => {
                assert_eq!(*port, PortId(1));
                assert_eq!(frame.dst, inner_mac);
                let Payload::Ipv4(p) = frame.payload else {
                    panic!()
                };
                assert_eq!(p.ttl, 63, "TTL decremented by the IP hop");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn ttl_expiry_triggers_time_exceeded() {
        let target: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let mut r = Router::new(RouterBehavior::default());
        r.bind(
            PortId(0),
            "10.0.0.200".parse().unwrap(),
            MacAddr::from_index(20),
        );
        r.bind(
            PortId(1),
            "192.168.0.1".parse().unwrap(),
            MacAddr::from_index(21),
        );
        r.add_route(target, PortId(1));
        let mut f = echo_to(target, MacAddr::from_index(1));
        if let Payload::Ipv4(ref mut p) = f.payload {
            p.ttl = 1;
        }
        // The packet is not forwarded; instead the router answers with an
        // ICMP Time Exceeded back toward the sender — traceroute's signal.
        let acts = r.on_frame(SimTime::ZERO, PortId(0), f, &mut rng());
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { port, frame, .. } => {
                assert_eq!(*port, PortId(0));
                assert_eq!(frame.dst, MacAddr::from_index(1));
                let Payload::Ipv4(p) = frame.payload else {
                    panic!()
                };
                assert_eq!(p.src, "10.0.0.200".parse::<Ipv4Addr>().unwrap());
                assert!(matches!(
                    p.payload,
                    IcmpMessage::TimeExceeded { original_dst, id: 7, seq: 1 }
                        if original_dst == target
                ));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn proxy_arp_all_answers_everything_on_port() {
        let mut r = Router::new(RouterBehavior::default());
        r.bind(
            PortId(1),
            "192.168.0.1".parse().unwrap(),
            MacAddr::from_index(21),
        );
        r.set_proxy_arp_all(PortId(1));
        let req = Frame::arp_request(
            "192.168.0.2".parse().unwrap(),
            MacAddr::from_index(30),
            "10.0.0.1".parse().unwrap(), // arbitrary remote address
        );
        let acts = r.on_frame(SimTime::ZERO, PortId(1), req, &mut rng());
        assert_eq!(acts.len(), 1);
    }
}
