#![warn(missing_docs)]

//! # rp-netsim
//!
//! A deterministic, shardable, discrete-event packet simulator for
//! layer-2/layer-3 scenes — the substrate under the paper's ping-based
//! detection method (section 3). The data plane partitions into per-shard
//! event queues coupled by epoch barriers (see `sim.rs`); results are
//! bit-identical at every shard and thread count.
//!
//! The paper's six measurement filters are only meaningful if the network
//! artifacts they guard against can actually occur. This simulator models
//! them mechanically rather than by assumption:
//!
//! - **TTL semantics** — MAC-learning switches forward frames untouched, so
//!   a ping reply that stays inside an IXP's layer-2 subnet arrives with the
//!   responder's initial TTL (64 or 255, configurable, switchable
//!   mid-campaign to emulate OS changes). IP routers decrement TTL when
//!   forwarding, so a registry-stale target that actually sits behind an
//!   extra IP hop returns a reply whose TTL betrays the hop — exactly what
//!   the paper's TTL-match filter discards.
//! - **Geographic delay** — every link carries a propagation delay derived
//!   from fiber distance, so a remote peer's interface answers with an RTT
//!   that reflects where the router really is, not where the IXP is.
//! - **Congestion** — links can carry transient congestion episodes and
//!   persistent extra delay, giving the RTT-consistent and LG-consistent
//!   filters real work.
//! - **Blackholing** — responders can silently drop echo requests, which the
//!   sample-size filter must absorb.
//!
//! Design follows the event-driven, no-surprises spirit of `smoltcp`: plain
//! structs, no async runtime (the workload is pure computation), and a
//! strictly deterministic event order (time, then intrinsic creator key).

pub mod event;
pub mod fault;
pub mod frame;
pub mod host;
pub mod link;
pub mod router;
pub mod sim;
pub mod switch;

pub use fault::{FaultConfig, FaultCounts, FaultEvent, FaultInjector, FaultKind};
pub use frame::{ArpOp, ArpPacket, Frame, IcmpMessage, Ipv4Packet, MacAddr, Payload};
pub use host::{Host, PingOutcome, PingReply};
pub use link::{CongestionEpisode, DelayModel};
pub use router::{Router, RouterBehavior};
pub use sim::{Device, LinkClass, Network, NodeId, PortId};
pub use switch::Switch;

// The campaign runs one `Network` per worker thread, so the simulator types
// must stay `Send` (and the shared config types `Sync`). These assertions
// turn an accidental `Rc`/`RefCell`/raw-pointer regression into a compile
// error at the crate boundary instead of a trait-bound error deep inside a
// `par_iter` call chain.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<Network>();
    assert_sync::<Network>();
    assert_send::<RouterBehavior>();
    assert_sync::<RouterBehavior>();
    assert_send::<DelayModel>();
    assert_sync::<DelayModel>();
    assert_send::<CongestionEpisode>();
    assert_sync::<CongestionEpisode>();
    assert_send::<Host>();
    assert_send::<Router>();
    assert_send::<Switch>();
    assert_send::<FaultInjector>();
    assert_sync::<FaultConfig>();
};
