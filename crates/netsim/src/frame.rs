//! Frames and packets.
//!
//! The simulator models exactly the protocol surface the measurement method
//! touches: Ethernet-style frames carrying ARP or IPv4, and ICMP echo inside
//! IPv4. Payloads are plain enums rather than wire-format byte buffers —
//! nothing in the paper depends on serialization, and structured payloads
//! keep the hot path allocation-free.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The Ethernet broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A locally-administered unicast MAC derived from an index; the
    /// simulator hands these out sequentially.
    pub fn from_index(i: u64) -> Self {
        let b = i.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for the broadcast address.
    #[inline]
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// Inverse of [`from_index`](Self::from_index): the allocation index
    /// of a simulator-issued MAC, or `None` for any address outside that
    /// namespace (broadcast, hand-built test addresses). Lets switches
    /// keep their learned-port tables as dense arrays instead of hash
    /// maps.
    #[inline]
    pub fn as_index(self) -> Option<u64> {
        let b = self.0;
        if b[0] != 0x02 {
            return None;
        }
        Some(u64::from_be_bytes([0, 0, 0, b[1], b[2], b[3], b[4], b[5]]))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArpOp {
    /// Who-has query.
    Request,
    /// Is-at answer.
    Reply,
}

/// An ARP packet (the subset of RFC 826 the scenes need).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArpPacket {
    /// Request or reply.
    pub op: ArpOp,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Queried / answered protocol address.
    pub target_ip: Ipv4Addr,
    /// Zero-filled in requests.
    pub target_mac: MacAddr,
}

/// ICMP message: echo (ping) and Time Exceeded (traceroute's working
/// principle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// A ping.
    EchoRequest {
        /// Sender's ICMP identifier.
        id: u16,
        /// Probe sequence number.
        seq: u16,
    },
    /// A ping answer.
    EchoReply {
        /// Echoed identifier.
        id: u16,
        /// Echoed sequence number.
        seq: u16,
    },
    /// Sent by a router that decremented a packet's TTL to zero. Carries
    /// enough of the original header (destination, echo id/seq) for the
    /// sender to match it to its probe — exactly what traceroute needs and
    /// exactly what layer-2 pseudowires never generate.
    TimeExceeded {
        /// Destination of the expired packet.
        original_dst: Ipv4Addr,
        /// Echoed identifier of the expired probe.
        id: u16,
        /// Echoed sequence number of the expired probe.
        seq: u16,
    },
}

/// An IPv4 packet carrying ICMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time-to-live. Routers decrement on forward and drop at zero;
    /// layer-2 switches never touch it. The TTL observed by the paper's
    /// LG servers is the responder's initial TTL minus the number of IP
    /// hops on the reply path — the heart of the TTL-match filter.
    pub ttl: u8,
    /// The ICMP message carried.
    pub payload: IcmpMessage,
}

/// Frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Address resolution.
    Arp(ArpPacket),
    /// An IPv4 packet.
    Ipv4(Ipv4Packet),
}

/// An Ethernet-style frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Source hardware address.
    pub src: MacAddr,
    /// Destination hardware address ([`MacAddr::BROADCAST`] floods).
    pub dst: MacAddr,
    /// Carried payload.
    pub payload: Payload,
}

impl Frame {
    /// Nominal on-the-wire size in bytes, used by links with finite
    /// bandwidth to compute serialization delay: Ethernet + ARP is a
    /// minimum-size frame; ICMP echo carries the classic 56-byte ping
    /// payload.
    pub fn wire_size(&self) -> u32 {
        match self.payload {
            Payload::Arp(_) => 64,
            Payload::Ipv4(_) => 98,
        }
    }

    /// Build an ARP request asking who holds `target_ip`.
    pub fn arp_request(sender_ip: Ipv4Addr, sender_mac: MacAddr, target_ip: Ipv4Addr) -> Frame {
        Frame {
            src: sender_mac,
            dst: MacAddr::BROADCAST,
            payload: Payload::Arp(ArpPacket {
                op: ArpOp::Request,
                sender_ip,
                sender_mac,
                target_ip,
                target_mac: MacAddr([0; 6]),
            }),
        }
    }

    /// Build the ARP reply answering `req` on behalf of `ip`/`mac`.
    pub fn arp_reply(req: &ArpPacket, ip: Ipv4Addr, mac: MacAddr) -> Frame {
        Frame {
            src: mac,
            dst: req.sender_mac,
            payload: Payload::Arp(ArpPacket {
                op: ArpOp::Reply,
                sender_ip: ip,
                sender_mac: mac,
                target_ip: req.sender_ip,
                target_mac: req.sender_mac,
            }),
        }
    }
}

/// Handle into a [`FrameArena`]: a dense 4-byte index that in-flight
/// events carry instead of a 40-byte [`Frame`] copy.
///
/// Under `debug_assertions` the id also remembers which arena issued it,
/// so presenting a shard A frame id to shard B's arena panics instead of
/// silently reading an unrelated slot — the hazard the sharded data plane
/// introduces, since every shard owns a private arena and cross-shard
/// handoffs must carry frames *by value*, never by id. Equality ignores
/// the tag, so debug and release builds agree on id comparisons.
#[derive(Debug, Clone, Copy, Eq)]
pub struct FrameId {
    idx: u32,
    #[cfg(debug_assertions)]
    arena: u32,
}

impl PartialEq for FrameId {
    fn eq(&self, other: &Self) -> bool {
        self.idx == other.idx
    }
}

#[cfg(debug_assertions)]
static NEXT_ARENA_TAG: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Slab allocator for in-flight frames.
///
/// Every frame traversing a link lives in exactly one slot between its
/// `Send` and its arrival (or drop); the scheduler frees the slot the
/// moment the frame is handed to the receiving device, so the arena's
/// high-water mark tracks the number of *simultaneously* in-flight
/// frames — a few dozen per campaign — not the total frame count.
/// Freed slots are recycled LIFO so the hot path keeps touching the same
/// few cache lines.
///
/// Lifecycle misuse (double free, use after free, and — since each shard
/// owns its own arena — handing a [`FrameId`] to a foreign arena) is
/// caught by a slot-liveness bitmap and a per-arena tag under
/// `debug_assertions`; release builds pay nothing for either.
#[derive(Debug)]
pub struct FrameArena {
    slots: Vec<Frame>,
    free: Vec<u32>,
    #[cfg(debug_assertions)]
    live: Vec<bool>,
    #[cfg(debug_assertions)]
    tag: u32,
}

impl Default for FrameArena {
    fn default() -> Self {
        FrameArena {
            slots: Vec::new(),
            free: Vec::new(),
            #[cfg(debug_assertions)]
            live: Vec::new(),
            // The tag only ever feeds debug assertions, so drawing it from
            // a process-wide counter cannot perturb simulation results.
            #[cfg(debug_assertions)]
            tag: NEXT_ARENA_TAG.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

impl FrameArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(debug_assertions)]
    #[inline]
    fn check_owned(&self, id: FrameId) {
        debug_assert!(
            id.arena == self.tag,
            "foreign arena: {id:?} was issued by arena {}, not arena {} — \
             cross-shard frames must be handed off by value",
            id.arena,
            self.tag
        );
    }

    /// Store `frame`, reusing the most recently freed slot if any.
    #[inline]
    pub fn alloc(&mut self, frame: Frame) -> FrameId {
        let idx = if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = frame;
            #[cfg(debug_assertions)]
            {
                debug_assert!(!self.live[idx as usize], "allocating a live slot");
                self.live[idx as usize] = true;
            }
            idx
        } else {
            let idx = u32::try_from(self.slots.len()).expect("frame arena overflow");
            self.slots.push(frame);
            #[cfg(debug_assertions)]
            self.live.push(true);
            idx
        };
        FrameId {
            idx,
            #[cfg(debug_assertions)]
            arena: self.tag,
        }
    }

    /// Read a live frame.
    #[inline]
    pub fn get(&self, id: FrameId) -> &Frame {
        #[cfg(debug_assertions)]
        {
            self.check_owned(id);
            debug_assert!(self.live[id.idx as usize], "use after free: {id:?}");
        }
        &self.slots[id.idx as usize]
    }

    /// Copy the frame out and release its slot.
    #[inline]
    pub fn take(&mut self, id: FrameId) -> Frame {
        #[cfg(debug_assertions)]
        self.check_owned(id);
        let frame = self.slots[id.idx as usize];
        self.release(id);
        frame
    }

    /// Release a slot without reading it (dropped frames).
    #[inline]
    pub fn release(&mut self, id: FrameId) {
        #[cfg(debug_assertions)]
        {
            self.check_owned(id);
            debug_assert!(self.live[id.idx as usize], "double free: {id:?}");
            self.live[id.idx as usize] = false;
        }
        self.free.push(id.idx);
    }

    /// Number of frames currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the in-flight high-water mark).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_detection() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::from_index(3).is_broadcast());
    }

    #[test]
    fn macs_from_distinct_indices_differ() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
        // Locally administered, unicast.
        assert_eq!(a.0[0] & 0x03, 0x02);
    }

    #[test]
    fn mac_index_round_trips() {
        for i in [0u64, 1, 255, 256, 0xFFFF_FFFF, (1 << 40) - 1] {
            assert_eq!(MacAddr::from_index(i).as_index(), Some(i));
        }
        assert_eq!(MacAddr::BROADCAST.as_index(), None);
        assert_eq!(MacAddr([0xAA, 0, 0, 0, 0, 1]).as_index(), None);
    }

    #[test]
    fn mac_display() {
        assert_eq!(
            MacAddr([0x02, 0, 0, 0, 1, 0xAB]).to_string(),
            "02:00:00:00:01:ab"
        );
    }

    #[test]
    fn arp_round_trip() {
        let lg_ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        let lg_mac = MacAddr::from_index(1);
        let member_ip: Ipv4Addr = "10.0.0.7".parse().unwrap();
        let member_mac = MacAddr::from_index(2);
        let req = Frame::arp_request(lg_ip, lg_mac, member_ip);
        assert!(req.dst.is_broadcast());
        let Payload::Arp(arp) = req.payload else {
            panic!()
        };
        assert_eq!(arp.op, ArpOp::Request);
        let reply = Frame::arp_reply(&arp, member_ip, member_mac);
        assert_eq!(reply.dst, lg_mac);
        let Payload::Arp(rarp) = reply.payload else {
            panic!()
        };
        assert_eq!(rarp.op, ArpOp::Reply);
        assert_eq!(rarp.sender_ip, member_ip);
        assert_eq!(rarp.sender_mac, member_mac);
        assert_eq!(rarp.target_ip, lg_ip);
    }

    fn probe(seq: u16) -> Frame {
        Frame {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            payload: Payload::Ipv4(Ipv4Packet {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.0.0.2".parse().unwrap(),
                ttl: 64,
                payload: IcmpMessage::EchoRequest { id: 7, seq },
            }),
        }
    }

    #[test]
    fn arena_reuses_slots_lifo() {
        let mut arena = FrameArena::new();
        let a = arena.alloc(probe(0));
        let b = arena.alloc(probe(1));
        assert_ne!(a, b);
        assert_eq!(arena.in_flight(), 2);
        assert_eq!(arena.take(b), probe(1));
        assert_eq!(arena.in_flight(), 1);
        // LIFO recycling: the slot just freed is handed out again.
        let c = arena.alloc(probe(2));
        assert_eq!(c, b);
        assert_eq!(arena.capacity(), 2);
        assert_eq!(*arena.get(a), probe(0));
        assert_eq!(*arena.get(c), probe(2));
    }

    #[test]
    #[should_panic(expected = "double free")]
    #[cfg(debug_assertions)]
    fn arena_catches_double_free() {
        let mut arena = FrameArena::new();
        let id = arena.alloc(probe(0));
        arena.release(id);
        arena.release(id);
    }

    #[test]
    #[should_panic(expected = "use after free")]
    #[cfg(debug_assertions)]
    fn arena_catches_use_after_free() {
        let mut arena = FrameArena::new();
        let id = arena.alloc(probe(0));
        arena.release(id);
        let _ = arena.get(id);
    }

    #[test]
    #[should_panic(expected = "foreign arena")]
    #[cfg(debug_assertions)]
    fn arena_catches_foreign_release() {
        // Shard A's id freed into shard B's arena: the per-shard liveness
        // state must not be consulted with another shard's index.
        let mut shard_a = FrameArena::new();
        let mut shard_b = FrameArena::new();
        let id_a = arena_id(&mut shard_a);
        let _ = shard_b.alloc(probe(1)); // same slot index exists in B
        shard_b.release(id_a);
    }

    #[test]
    #[should_panic(expected = "foreign arena")]
    #[cfg(debug_assertions)]
    fn arena_catches_foreign_take() {
        let mut shard_a = FrameArena::new();
        let mut shard_b = FrameArena::new();
        let id_a = arena_id(&mut shard_a);
        let _ = shard_b.alloc(probe(1));
        let _ = shard_b.take(id_a);
    }

    #[test]
    #[should_panic(expected = "foreign arena")]
    #[cfg(debug_assertions)]
    fn arena_catches_foreign_get() {
        let mut shard_a = FrameArena::new();
        let mut shard_b = FrameArena::new();
        let id_a = arena_id(&mut shard_a);
        let _ = shard_b.alloc(probe(1));
        let _ = shard_b.get(id_a);
    }

    #[cfg(debug_assertions)]
    fn arena_id(arena: &mut FrameArena) -> FrameId {
        arena.alloc(probe(0))
    }
}
