//! The event queue.
//!
//! A binary heap ordered by `(time, insertion sequence)`. The sequence
//! number makes simultaneous events pop in insertion order, which is what
//! makes whole-simulation runs bit-reproducible.

use crate::frame::Frame;
use crate::sim::{NodeId, PortId};
use rp_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence.
#[derive(Debug, Clone)]
pub enum Event {
    /// A frame finishing its traversal of a link, arriving at a port.
    FrameArrival {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// The arriving frame.
        frame: Frame,
    },
    /// An application timer (hosts use these to send planned pings).
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Opaque token chosen at scheduling time.
        token: u64,
    },
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pop the earliest event (ties broken by insertion order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), timer(0, 0));
        q.push(SimTime(10), timer(0, 1));
        q.push(SimTime(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), timer(1, 1));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
