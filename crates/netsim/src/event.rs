//! The event queue.
//!
//! A hierarchical calendar (bucket) queue ordered by `(time, key)`, where
//! the [`EventKey`] is *intrinsic* to the event: the node that created it
//! plus that node's private creation counter. Intrinsic keys are what make
//! the sharded simulator bit-reproducible — a key does not depend on the
//! global interleaving of pushes, so any partition of the events across
//! shard queues pops in exactly the order one big queue would produce
//! (the shard-equivalence contract pinned by `tests/shard_determinism.rs`).
//!
//! # Structure
//!
//! Near-future events — the overwhelming majority: frame hops a few
//! microseconds to a few milliseconds out — land in a ring of
//! 1024 buckets, each [`BUCKET_WIDTH_NS`] wide, giving a
//! ~67 ms scheduling window with O(1) amortized push and pop. A 1024-bit
//! occupancy bitmap (16 words) finds the next non-empty bucket without
//! scanning vectors. Events beyond the window — the campaign's planned
//! ping timers, spread over simulated minutes — fall back to a binary
//! heap; each pop compares the earliest bucketed entry against the heap
//! top, so the merge is exact and no migration pass is ever needed.
//!
//! The window's base advances monotonically with popped event times
//! (simulated time never runs backwards, and devices never schedule into
//! the past), so a bucket index always maps to a unique time slot.

use crate::frame::FrameId;
use crate::sim::{NodeId, PortId};
use rp_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// A frame finishing its traversal of a link, arriving at a port.
    FrameArrival {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// The arriving frame, resident in the owning shard's frame arena.
        frame: FrameId,
    },
    /// An application timer (hosts use these to send planned pings).
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Opaque token chosen at scheduling time.
        token: u64,
    },
}

/// Intrinsic tie-break key of an event: who created it and how many events
/// that creator had produced before. Unlike a queue-global insertion
/// counter, the pair is a pure function of the creator's own execution
/// history, so it is identical at every shard count — the property that
/// lets cross-shard handoffs merge into a byte-identical trace.
///
/// Simultaneous events order by `(creator, seq)`; keys are globally unique
/// because each creator numbers its events densely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Node index of the creating device, or [`EventKey::PLAN_CREATOR`]
    /// for events planned before the run (scheduler pings, traceroutes).
    pub creator: u32,
    /// The creator's event-creation counter at push time.
    pub seq: u64,
}

impl EventKey {
    /// Sentinel creator for events scheduled during construction (before
    /// any device has run); their `seq` comes from the network-wide plan
    /// counter, which is fixed by construction order.
    pub const PLAN_CREATOR: u32 = u32::MAX;
}

/// Number of calendar buckets (must be a power of two).
const BUCKET_COUNT: usize = 1024;
const BUCKET_WORDS: usize = BUCKET_COUNT / 64;
/// log2 of each bucket's width in nanoseconds: 2^16 ns = 65.536 µs per
/// bucket, for a 67.1 ms scheduling window.
const WIDTH_SHIFT: u64 = 16;
/// Width of one bucket in nanoseconds.
pub const BUCKET_WIDTH_NS: u64 = 1 << WIDTH_SHIFT;

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    key: EventKey,
    event: Event,
}

impl Entry {
    #[inline]
    fn sort_key(&self) -> (SimTime, EventKey) {
        (self.at, self.key)
    }
}

/// Overflow-heap wrapper: reversed so `BinaryHeap` (a max-heap) pops the
/// earliest `(at, key)` first.
#[derive(Debug)]
struct HeapEntry(Entry);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.sort_key() == other.0.sort_key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.sort_key().cmp(&self.0.sort_key())
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue {
    /// Ring of buckets covering `[base_slot, base_slot + BUCKET_COUNT)`
    /// time slots. Pushes append unsorted (O(1) even for the burst of
    /// simultaneous arrivals an ARP flood schedules into one slot); a
    /// bucket is sorted *descending* by `(at, key)` the first time it is
    /// drained, after which its minimum is `last()` and popping is O(1).
    /// Keys are unique — each creator numbers its events densely — so the
    /// lazily sorted order is exactly the order eager insertion would have
    /// produced.
    buckets: Vec<Vec<Entry>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occ: [u64; BUCKET_WORDS],
    /// One bit per bucket: set iff the bucket has unsorted appends.
    dirty: [u64; BUCKET_WORDS],
    /// Absolute slot index (`nanos >> WIDTH_SHIFT`) of the earliest slot
    /// the ring can currently hold. Monotonically non-decreasing.
    base_slot: u64,
    /// Events resident in buckets (excludes the overflow heap).
    in_buckets: usize,
    /// Events at or beyond the ring's horizon.
    overflow: BinaryHeap<HeapEntry>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            occ: [0; BUCKET_WORDS],
            dirty: [0; BUCKET_WORDS],
            base_slot: 0,
            in_buckets: 0,
            overflow: BinaryHeap::new(),
        }
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at` under its intrinsic `key`.
    pub fn push(&mut self, at: SimTime, key: EventKey, event: Event) {
        let entry = Entry { at, key, event };
        // Devices never schedule into the past; the clamp is defensive
        // (a pre-base time would otherwise alias a future slot).
        let slot = (at.nanos() >> WIDTH_SHIFT).max(self.base_slot);
        if slot - self.base_slot >= BUCKET_COUNT as u64 {
            self.overflow.push(HeapEntry(entry));
            return;
        }
        let idx = (slot as usize) & (BUCKET_COUNT - 1);
        let bucket = &mut self.buckets[idx];
        bucket.push(entry);
        if bucket.len() > 1 {
            self.dirty[idx >> 6] |= 1 << (idx & 63);
        }
        self.occ[idx >> 6] |= 1 << (idx & 63);
        self.in_buckets += 1;
    }

    /// Restore the descending `(at, key)` order of `idx` if pushes have
    /// appended to it since it was last drained.
    #[inline]
    fn ensure_sorted(&mut self, idx: usize) {
        let mask = 1u64 << (idx & 63);
        if self.dirty[idx >> 6] & mask != 0 {
            self.buckets[idx].sort_unstable_by_key(|e| std::cmp::Reverse(e.sort_key()));
            self.dirty[idx >> 6] &= !mask;
        }
    }

    /// Ring index of the bucket holding the earliest bucketed event.
    #[inline]
    fn first_bucket(&self) -> Option<usize> {
        if self.in_buckets == 0 {
            return None;
        }
        // Scan the occupancy bitmap starting at the base slot's ring
        // index; bits below it belong to *later* slots (one lap ahead)
        // and are checked after the wrap.
        let start = (self.base_slot as usize) & (BUCKET_COUNT - 1);
        let mut widx = start >> 6;
        let mut word = self.occ[widx] & (!0u64 << (start & 63));
        for _ in 0..=BUCKET_WORDS {
            if word != 0 {
                return Some((widx << 6) | word.trailing_zeros() as usize);
            }
            widx = (widx + 1) & (BUCKET_WORDS - 1);
            word = self.occ[widx];
        }
        unreachable!("in_buckets > 0 but no occupancy bit set")
    }

    /// Key of the earliest entry in `idx` (sorting the bucket if needed).
    #[inline]
    fn bucket_min(&mut self, idx: usize) -> (SimTime, EventKey) {
        self.ensure_sorted(idx);
        self.buckets[idx]
            .last()
            .expect("occupied bucket")
            .sort_key()
    }

    fn pop_bucket(&mut self, idx: usize) -> (SimTime, Event) {
        let entry = self.buckets[idx].pop().expect("occupied bucket");
        if self.buckets[idx].is_empty() {
            self.occ[idx >> 6] &= !(1 << (idx & 63));
        }
        self.in_buckets -= 1;
        self.advance(entry.at);
        (entry.at, entry.event)
    }

    fn pop_overflow(&mut self) -> (SimTime, Event) {
        let entry = self.overflow.pop().expect("occupied overflow").0;
        self.advance(entry.at);
        (entry.at, entry.event)
    }

    /// Advance the ring base past everything already popped. Every
    /// remaining event is `>=` the one just popped, so remapping the ring
    /// origin never moves an occupied bucket.
    #[inline]
    fn advance(&mut self, at: SimTime) {
        let slot = at.nanos() >> WIDTH_SHIFT;
        if slot > self.base_slot {
            self.base_slot = slot;
        }
    }

    /// Pop the earliest event (ties broken by [`EventKey`] order).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let bucketed = self.first_bucket().map(|idx| (idx, self.bucket_min(idx)));
        let overflow = self.overflow.peek().map(|e| e.0.sort_key());
        match (bucketed, overflow) {
            (None, None) => None,
            (Some((idx, _)), None) => Some(self.pop_bucket(idx)),
            (None, Some(_)) => Some(self.pop_overflow()),
            (Some((idx, b)), Some(o)) => {
                if b <= o {
                    Some(self.pop_bucket(idx))
                } else {
                    Some(self.pop_overflow())
                }
            }
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        let bucketed = self.first_bucket().map(|idx| self.bucket_min(idx));
        let overflow = self.overflow.peek().map(|e| e.0.sort_key());
        match (bucketed, overflow) {
            (None, None) => None,
            (Some(b), None) => Some(b.0),
            (None, Some(o)) => Some(o.0),
            (Some(b), Some(o)) => Some(b.min(o).0),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> Event {
        Event::Timer {
            node: NodeId(node),
            token,
        }
    }

    fn key(creator: u32, seq: u64) -> EventKey {
        EventKey { creator, seq }
    }

    fn token_of(e: Event) -> u64 {
        match e {
            Event::Timer { token, .. } => token,
            Event::FrameArrival { .. } => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), key(0, 0), timer(0, 0));
        q.push(SimTime(10), key(0, 1), timer(0, 1));
        q.push(SimTime(20), key(0, 2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn ties_break_by_key_not_push_order() {
        // Push keys in reverse: pops must follow (creator, seq) order, not
        // arrival order — the property the sharded barrier merge relies on.
        let mut q = EventQueue::new();
        for i in (0..100u64).rev() {
            q.push(SimTime(5), key(0, i), timer(0, i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn simultaneous_events_order_by_creator_then_seq() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), key(2, 0), timer(2, 20));
        q.push(SimTime(5), key(0, 9), timer(0, 9));
        q.push(SimTime(5), key(1, 3), timer(1, 13));
        q.push(SimTime(5), key(0, 2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![2, 9, 13, 20]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), key(1, 0), timer(1, 1));
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_and_buckets_merge_exactly() {
        // Events far beyond the ring horizon (heap), inside the window
        // (buckets), and straddling ties across the two must pop in
        // global (time, key) order.
        let mut q = EventQueue::new();
        let horizon = BUCKET_WIDTH_NS * BUCKET_COUNT as u64;
        q.push(SimTime(horizon * 3), key(0, 0), timer(0, 0)); // far future: heap
        q.push(SimTime(40), key(0, 1), timer(0, 1)); // near: bucket
        q.push(SimTime(horizon + 5), key(0, 2), timer(0, 2)); // past horizon: heap
        q.push(SimTime(horizon - 1), key(0, 3), timer(0, 3)); // last bucket
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime(40)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn ties_across_heap_and_bucket_respect_key_order() {
        // An event lands in the heap (beyond the horizon); later, after
        // the window advances, an event at the *same time* but a smaller
        // key lands in a bucket. The bucketed one pops first: key order
        // wins regardless of which structure holds the entry.
        let mut q = EventQueue::new();
        let horizon = BUCKET_WIDTH_NS * BUCKET_COUNT as u64;
        let t = horizon + 100;
        q.push(SimTime(t), key(0, 7), timer(0, 0)); // heap (beyond horizon)
        q.push(SimTime(horizon - 1), key(0, 1), timer(0, 1)); // bucket
        let (at, e) = q.pop().unwrap();
        assert_eq!((at, token_of(e)), (SimTime(horizon - 1), 1));
        // Window has advanced near `t`; this push lands in a bucket with a
        // key *below* the heap-resident entry's.
        q.push(SimTime(t), key(0, 3), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| token_of(e))
            .collect();
        assert_eq!(order, vec![2, 0]);
    }

    #[test]
    fn window_advances_across_many_laps() {
        // Repeated pop-then-push cycles walk the window far past one
        // ring lap; ordering must hold throughout.
        let mut q = EventQueue::new();
        q.push(SimTime(0), key(0, 0), timer(0, 0));
        let mut popped = Vec::new();
        let mut next_token = 1;
        while let Some((at, e)) = q.pop() {
            popped.push((at, token_of(e)));
            if next_token <= 50 {
                // Hop ~1/3 of the ring forward each step: crosses the
                // ring boundary several times over the run.
                let jump = BUCKET_WIDTH_NS * 341 + 17;
                q.push(
                    SimTime(at.nanos() + jump),
                    key(0, next_token),
                    timer(0, next_token),
                );
                next_token += 1;
            }
        }
        assert_eq!(popped.len(), 51);
        for w in popped.windows(2) {
            assert!(w[0].0 < w[1].0, "out of order: {w:?}");
        }
    }

    #[test]
    fn dense_same_bucket_events_pop_in_key_order() {
        // Many events inside one bucket width with interleaved times.
        let mut q = EventQueue::new();
        for i in 0..32 {
            q.push(SimTime((i * 7) % 19), key(0, i), timer(0, i));
        }
        let mut last = (SimTime(0), 0);
        let mut n = 0;
        while let Some((at, e)) = q.pop() {
            let k = (at, token_of(e));
            if n > 0 {
                assert!(k.0 > last.0 || (k.0 == last.0 && k.1 > last.1));
            }
            last = k;
            n += 1;
        }
        assert_eq!(n, 32);
    }
}
