//! The network container and sharded event loop.
//!
//! `Network` owns every device and link, partitioned into one or more
//! *shards* — each with its own calendar event queue, frame arena, RNG
//! streams, and fault injector. Shards advance in lock-step *windows*
//! bounded by a conservative lookahead (the minimum one-way base delay of
//! any link that crosses a shard boundary); frames crossing shards are
//! buffered in per-destination outboxes and delivered at the epoch barrier
//! between windows.
//!
//! Determinism contract: the same construction sequence and seed produce
//! the same event trace, frame for frame, **at any shard count and on any
//! number of threads**. Every source of per-event state is keyed to an
//! entity that lives on exactly one shard:
//!
//! - event ordering uses the intrinsic [`EventKey`] `(creator, seq)` pair,
//!   a pure function of each creator's own history (see `event.rs`);
//! - link jitter draws from a per-*direction* stream owned by the
//!   transmitting side's shard;
//! - router per-event RNGs are indexed by a per-node dispatch counter;
//! - fault decisions draw from per-`(link, direction)` streams
//!   (see `fault.rs`).
//!
//! None of these depend on how entities are assigned to shards, so any
//! partition — including the trivial one-shard partition — yields
//! bit-identical observables. The epoch barrier guarantees no event is
//! dispatched before a cross-shard frame that precedes it: a shard that
//! has drained everything before `T` cannot receive a cross-shard frame
//! earlier than `T + lookahead` (every delay term is additive and
//! non-negative), and windows never extend past `t_min + lookahead`.

use crate::event::{Event, EventKey, EventQueue};
use crate::fault::{FaultCounts, FaultEvent, FaultInjector, TxFaults, DUPLICATE_GAP};
use crate::frame::{Frame, FrameArena, MacAddr, Payload};
use crate::host::Host;
use crate::link::DelayModel;
use crate::router::{Router, RouterBehavior};
use crate::switch::Switch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use rp_types::{seed, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Index of a node (device) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Index of a port on a node. Ports are allocated in [`Network::connect`]
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u16);

impl PortId {
    /// Index into per-port storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Something a device wants done after handling an event.
#[derive(Debug, Clone)]
pub enum Action {
    /// Transmit `frame` out of `port` after a local delay (processing time).
    Send {
        /// Egress port.
        port: PortId,
        /// Frame to transmit.
        frame: Frame,
        /// Local processing delay before the frame enters the link.
        after: SimDuration,
    },
    /// Fire a timer for this device at absolute time `at`.
    Schedule {
        /// When the timer fires.
        at: SimTime,
        /// Opaque token handed back to the device.
        token: u64,
    },
}

impl Action {
    /// A send with no local processing delay.
    pub fn send(port: PortId, frame: Frame) -> Action {
        Action::Send {
            port,
            frame,
            after: SimDuration::ZERO,
        }
    }
}

/// The device living at a node.
#[derive(Debug)]
pub enum Device {
    /// A MAC-learning layer-2 switch.
    Switch(Switch),
    /// An IP router.
    Router(Router),
    /// A measurement host.
    Host(Host),
}

#[derive(Debug, Clone, Copy)]
struct Attachment {
    far_node: NodeId,
    far_port: PortId,
    /// Shard owning the far node (frames to it may need a handoff).
    far_shard: u32,
    link: u32,
    /// Which direction of the (full-duplex) link this side transmits on.
    dir: u8,
    /// Index of this direction's [`DirState`] in the transmitting shard.
    dir_loc: u32,
}

/// Shard placement and port wiring of one node. Devices themselves live
/// inside their shard so the parallel window never touches shared state.
#[derive(Debug)]
struct NodeMeta {
    ports: Vec<Attachment>,
    /// Owning shard.
    shard: u32,
    /// Index into the owning shard's `devices`/`seqs`/`rx` vectors.
    loc: u32,
}

/// Topology role of a link, declared at [`Network::connect_classed`] time.
///
/// Classes exist for the deterministic timelines: traffic is attributed
/// to the *canonical* topology partition (what kind of link a frame
/// crossed), never to the physical shard layout — so the per-class byte
/// series are identical at `--shards 1` and `--shards 8`. In particular
/// `InterSite` marks the inter-fabric-site spans that *would* cross
/// shards at full sharding: its frame count is the canonical handoff
/// volume, defined even when the whole fabric runs on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LinkClass {
    /// Anything unclassified (fabric-internal hops, test rigs).
    #[default]
    Core,
    /// A member's access port onto the IXP fabric (port utilization).
    Access,
    /// A fiber span between fabric sites of one distributed IXP.
    InterSite,
    /// A remote-peering pseudowire long-haul segment.
    Pseudowire,
}

/// Immutable link description; per-direction mutable state ([`DirState`])
/// lives in the transmitting shard.
#[derive(Debug)]
struct LinkMeta {
    delay: DelayModel,
    a: NodeId,
    b: NodeId,
    class: LinkClass,
}

/// Mutable per-direction link state, owned by the shard of the node that
/// transmits in this direction.
#[derive(Debug)]
struct DirState {
    /// Jitter stream for this direction; `None` for fully deterministic
    /// delay models, which skip RNG construction and per-frame sampling.
    /// Streams are per-direction (not per-link) so both endpoints of a
    /// cross-shard link can sample without coordination — and so draws are
    /// a pure function of each direction's own traffic, independent of the
    /// shard layout.
    rng: Option<StdRng>,
    /// Transmit-queue horizon: the instant this direction's line becomes
    /// idle (finite-bandwidth links only).
    busy_until: SimTime,
}

/// A frame in transit to another shard, buffered until the next barrier.
#[derive(Debug)]
struct Xfer {
    at: SimTime,
    key: EventKey,
    node: NodeId,
    port: PortId,
    frame: Frame,
}

/// Read-only state every shard needs while draining a window. Shards hold
/// devices and queues by value; this is the only data shared between
/// worker threads, and it is never written during a window.
struct Ctx<'a> {
    nodes: &'a [NodeMeta],
    links: &'a [LinkMeta],
    router_key: seed::DomainKey,
    obs_active: bool,
    /// Debug-only skew added to cross-shard deliveries; see
    /// [`Network::debug_skew_cross_shard`].
    xshard_skew: SimDuration,
}

/// One shard of the data plane: a self-contained event loop over the
/// devices assigned to it, plus outboxes for frames leaving the shard.
struct Shard {
    /// This shard's index, so `deliver` can tell local from cross-shard.
    me: u32,
    devices: Vec<Device>,
    /// Per-device event-creation counters (the `seq` of [`EventKey`]),
    /// indexed by device `loc`.
    seqs: Vec<u64>,
    /// Per-device dispatched-event counters, indexed by `loc`; feeds the
    /// router per-event RNG index so it is independent of shard layout.
    rx: Vec<u64>,
    /// Per-direction link state, indexed by `Attachment::dir_loc`.
    dirs: Vec<DirState>,
    queue: EventQueue,
    /// Slab of in-flight frames: events carry 4-byte
    /// [`crate::frame::FrameId`]s instead of frame copies; slots are freed
    /// the moment a frame is delivered. Strictly per-shard — cross-shard
    /// frames travel by value and are re-allocated in the destination
    /// arena at the barrier.
    frames: FrameArena,
    now: SimTime,
    /// Stand-in generator passed to routers for ARP frames, whose handling
    /// never draws — ARP floods hit every member on a fabric, so skipping
    /// the per-event seeding there is a measurable win. Debug builds
    /// assert after every use that it was in fact never advanced.
    arp_rng: StdRng,
    /// Scratch buffer device handlers write their actions into; reused
    /// across every dispatch so the hot loop never allocates.
    scratch: Vec<Action>,
    /// Optional fault injection consulted on every frame transmission.
    /// Per-shard so the parallel window needs no locking; decision streams
    /// are keyed by `(link, dir)`, so the split cannot change outcomes.
    faults: Option<FaultInjector>,
    events_processed: u64,
    /// Frames dropped because a device transmitted on an unconnected port.
    dropped_unconnected: u64,
    /// Largest per-link transmit-queue depth seen (frames waiting ahead of
    /// a newly enqueued frame, plus itself). Only tracked while
    /// observability is on.
    queue_depth_hwm: u64,
    /// Commutative trace digest: the wrapping sum of a mixed hash of
    /// `(time, node, kind)` over every dispatched event. Addition commutes,
    /// so the merged digest is independent of how events interleave across
    /// shards — it pins *which* events ran at *what* times, which together
    /// with per-entity keying pins the whole trace.
    digest: u64,
    /// Frames bound for other shards, buffered until the next barrier.
    /// `outbox[dst]` for `dst == me` stays empty.
    outbox: Vec<Vec<Xfer>>,
    /// Total frames this shard handed to other shards.
    handoffs: u64,
    /// Sim-time timeline series recorded by this shard (only while
    /// observability is on); drained into the process registry by
    /// [`Network::flush_obs`]. Everything recorded here is a pure
    /// function of the shard-invariant event trace — see the
    /// `rp_obs::timeline` module docs for the rules.
    timeline: rp_obs::TimelineRecorder,
    /// Batched `netsim.events` count for the current sim-time bucket:
    /// dispatch is the hottest loop in the repo, so per-event recording
    /// folds into one add until the bucket changes.
    tl_ev_bucket: u64,
    tl_ev_accum: u64,
}

/// Minimum total pending events before a window is drained on the rayon
/// pool. Below this, thread spawn/handoff costs more than the work; the
/// serial path is bit-identical, so the threshold is pure policy.
const PAR_WINDOW_EVENTS: usize = 4096;

#[inline]
fn mix64(mut x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed, dependency-free.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[inline]
fn event_hash(at: SimTime, node: u32, kind: u64) -> u64 {
    mix64(
        at.nanos()
            .wrapping_add(mix64((u64::from(node) << 1) | kind)),
    )
}

impl Shard {
    fn new(me: u32, total: usize) -> Self {
        Shard {
            me,
            devices: Vec::new(),
            seqs: Vec::new(),
            rx: Vec::new(),
            dirs: Vec::new(),
            queue: EventQueue::new(),
            frames: FrameArena::new(),
            now: SimTime::ZERO,
            arp_rng: StdRng::seed_from_u64(0),
            scratch: Vec::new(),
            faults: None,
            events_processed: 0,
            dropped_unconnected: 0,
            queue_depth_hwm: 0,
            digest: 0,
            outbox: (0..total).map(|_| Vec::new()).collect(),
            handoffs: 0,
            timeline: rp_obs::TimelineRecorder::new(),
            tl_ev_bucket: 0,
            tl_ev_accum: 0,
        }
    }

    /// Count one dispatched event on the `netsim.events` rate series,
    /// batching within a bucket (events are near-sorted in time, so the
    /// common case is one register add).
    #[inline]
    fn tl_event(&mut self) {
        let b = rp_obs::timeline::bucket_of(self.now.nanos());
        if b != self.tl_ev_bucket {
            self.tl_flush_events();
            self.tl_ev_bucket = b;
        }
        self.tl_ev_accum += 1;
    }

    /// Flush the batched event count into the recorder.
    fn tl_flush_events(&mut self) {
        if self.tl_ev_accum > 0 {
            self.timeline
                .rate_bucket("netsim.events", self.tl_ev_bucket, self.tl_ev_accum);
            self.tl_ev_accum = 0;
        }
    }

    /// Mint the next event key for the device at `loc` (global id `node`).
    #[inline]
    fn next_key(&mut self, node: NodeId, loc: usize) -> EventKey {
        let seq = self.seqs[loc];
        self.seqs[loc] += 1;
        EventKey {
            creator: node.0,
            seq,
        }
    }

    /// Drain every event strictly before `horizon`.
    fn drain_window(&mut self, ctx: &Ctx<'_>, horizon: SimTime) {
        while let Some(at) = self.queue.peek_time() {
            if at >= horizon {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            self.dispatch(ctx, event);
        }
    }

    fn dispatch(&mut self, ctx: &Ctx<'_>, event: Event) {
        self.events_processed += 1;
        let (node, kind) = match &event {
            Event::FrameArrival { node, .. } => (*node, 0u64),
            Event::Timer { node, .. } => (*node, 1u64),
        };
        self.digest = self.digest.wrapping_add(event_hash(self.now, node.0, kind));
        if ctx.obs_active {
            self.tl_event();
        }
        let meta = &ctx.nodes[node.index()];
        let loc = meta.loc as usize;
        self.rx[loc] += 1;
        let mut actions = std::mem::take(&mut self.scratch);
        match event {
            Event::FrameArrival { port, frame, .. } => {
                // Copy the frame out of the arena and release its slot
                // immediately: delivery ends the in-flight lifetime.
                let frame = self.frames.take(frame);
                let n_ports = meta.ports.len() as u16;
                let now = self.now;
                match &mut self.devices[loc] {
                    Device::Switch(sw) => sw.on_frame_into(port, n_ports, frame, &mut actions),
                    Device::Router(r) => {
                        if matches!(frame.payload, Payload::Arp(_)) {
                            // The ARP arms never draw, so the per-event
                            // stream need not be derived at all: an
                            // untouched generator leaves no trace.
                            r.on_frame_into(now, port, frame, &mut self.arp_rng, &mut actions);
                            debug_assert_eq!(
                                self.arp_rng,
                                StdRng::seed_from_u64(0),
                                "router ARP handling drew from its RNG; \
                                 the ARP fast path is no longer sound"
                            );
                        } else {
                            // Derive a per-event RNG from (node, per-node
                            // dispatch count). The count is a property of
                            // the node's own history, so the stream is the
                            // same at every shard count.
                            let mut rng = seed::rng_from_key(
                                ctx.router_key,
                                (node.0 as u64) << 40 | self.rx[loc],
                            );
                            r.on_frame_into(now, port, frame, &mut rng, &mut actions);
                        }
                    }
                    Device::Host(h) => h.on_frame_into(now, port, frame, &mut actions),
                }
            }
            Event::Timer { token, .. } => {
                let now = self.now;
                if let Device::Host(h) = &mut self.devices[loc] {
                    h.on_timer_into(now, token, &mut actions);
                }
            }
        }
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    port,
                    mut frame,
                    after,
                } => {
                    let Some(att) = meta.ports.get(port.index()).copied() else {
                        self.dropped_unconnected += 1;
                        continue; // unconnected port: drop
                    };
                    let fx = match self.faults.as_mut() {
                        Some(inj) => inj.on_transmit(self.now, att.link, att.dir, &mut frame),
                        None => TxFaults::default(),
                    };
                    if fx.drop {
                        continue; // injected loss: the frame never transmits
                    }
                    let ready = self.now + after;
                    let delay_model = &ctx.links[att.link as usize].delay;
                    // Finite-bandwidth links serialize frames through a
                    // per-direction FIFO: transmission starts when both the
                    // frame and the line are ready.
                    let tx_time = delay_model.serialization(frame.wire_size());
                    let ds = &mut self.dirs[att.dir_loc as usize];
                    let start = ready.max(ds.busy_until);
                    if ctx.obs_active && (self.events_processed & 63) == 0 {
                        // Queue depth behind this frame, in frames: backlog
                        // wait divided by one serialization time, plus the
                        // frame itself. Sampled on power-of-two per-shard
                        // event counts so the gauge costs nothing in steady
                        // state. Pure read — never feeds back into the
                        // simulation (which is why a shard-count-dependent
                        // sampling phase is acceptable here).
                        let tx_ns = tx_time.nanos();
                        if tx_ns > 0 && start > ready {
                            let depth = (start.nanos() - ready.nanos()) / tx_ns + 1;
                            self.queue_depth_hwm = self.queue_depth_hwm.max(depth);
                        }
                    }
                    let tx_done = start + tx_time;
                    ds.busy_until = tx_done;
                    if ctx.obs_active {
                        // Per-class wire-byte timelines, keyed by transmit
                        // start (sim time) and the link's *canonical* role —
                        // both shard-invariant. InterSite frames are the
                        // canonical cross-shard handoff volume.
                        let bytes = frame.wire_size() as u64;
                        let t = start.nanos();
                        match ctx.links[att.link as usize].class {
                            LinkClass::Core => {}
                            LinkClass::Access => {
                                self.timeline.rate("netsim.access_bytes", t, bytes);
                            }
                            LinkClass::InterSite => {
                                self.timeline.rate("netsim.inter_site_bytes", t, bytes);
                                self.timeline.rate("netsim.inter_site_frames", t, 1);
                            }
                            LinkClass::Pseudowire => {
                                self.timeline.rate("netsim.pseudowire_bytes", t, bytes);
                            }
                        }
                    }
                    let delay = match ds.rng.as_mut() {
                        Some(rng) => delay_model.sample(start, rng),
                        None => delay_model.sample_deterministic(start),
                    };
                    let arrival = tx_done + delay + fx.extra_delay;
                    if fx.duplicate {
                        let key = self.next_key(node, loc);
                        self.deliver(ctx, &att, arrival + DUPLICATE_GAP, key, frame);
                    }
                    let key = self.next_key(node, loc);
                    self.deliver(ctx, &att, arrival, key, frame);
                }
                Action::Schedule { at, token } => {
                    if ctx.obs_active {
                        self.timeline
                            .level("netsim.queue_depth", self.now.nanos(), at.nanos(), 1);
                    }
                    let key = self.next_key(node, loc);
                    self.queue.push(at, key, Event::Timer { node, token });
                }
            }
        }
        self.scratch = actions;
    }

    /// Route a transmitted frame to its destination: locally if the far
    /// node shares this shard, otherwise into the outbox for delivery at
    /// the next epoch barrier.
    fn deliver(
        &mut self,
        ctx: &Ctx<'_>,
        att: &Attachment,
        at: SimTime,
        key: EventKey,
        frame: Frame,
    ) {
        if ctx.obs_active {
            // Both level series use (creation sim-time → scheduled
            // sim-time) intervals known right here, so the value at every
            // bucket boundary is exact and independent of which shard the
            // frame physically traverses. Queue depth counts pending
            // events (frames + timers); frames-in-flight is the logical
            // arena occupancy — frames between transmission and arrival.
            let (t0, t1) = (self.now.nanos(), at.nanos());
            self.timeline.level("netsim.queue_depth", t0, t1, 1);
            self.timeline.level("netsim.frames_in_flight", t0, t1, 1);
        }
        if att.far_shard == self.me {
            let frame = self.frames.alloc(frame);
            self.queue.push(
                at,
                key,
                Event::FrameArrival {
                    node: att.far_node,
                    port: att.far_port,
                    frame,
                },
            );
        } else {
            self.handoffs += 1;
            self.outbox[att.far_shard as usize].push(Xfer {
                at: at + ctx.xshard_skew,
                key,
                node: att.far_node,
                port: att.far_port,
                frame,
            });
        }
    }
}

/// A simulated network of switches, routers, and hosts, partitioned into
/// one or more independently scheduled shards.
pub struct Network {
    seed: u64,
    nodes: Vec<NodeMeta>,
    links: Vec<LinkMeta>,
    shards: Vec<Shard>,
    next_mac: u64,
    /// Counter for construction-time plans (`plan_ping`/`plan_traceroute`);
    /// their event keys use [`EventKey::PLAN_CREATOR`] with this sequence.
    plan_seq: u64,
    /// Precomputed `(seed, "router-frame")` key: the per-event router RNG
    /// is derived once per frame, so the domain-label hash is hoisted out
    /// of the hot loop.
    router_key: seed::DomainKey,
    /// `rp_obs::enabled()` sampled at run start: the event loop is the
    /// hottest code in the repo, so per-event work reads one bool instead
    /// of the atomic, and counters flush to the registry once per run.
    obs_active: bool,
    obs_flushed_events: u64,
    obs_flushed_drops: u64,
    obs_flushed_barriers: u64,
    obs_flushed_handoffs: u64,
    /// Cached conservative lookahead: `Some(None)` means "computed: no
    /// cross-shard links" (windows are unbounded); invalidated by
    /// [`Network::connect`].
    lookahead_cache: Option<Option<SimDuration>>,
    /// Number of epoch barriers executed.
    barrier_rounds: u64,
    /// Wall-clock nanoseconds spent inside barriers (obs runs only).
    barrier_wait_ns: u64,
    /// Debug-only extra delay on cross-shard deliveries; breaks the
    /// shard-count invariance on purpose so oracle tests can prove their
    /// checkers fire. Zero in all real runs.
    xshard_skew: SimDuration,
    /// Label for scoped timeline series (`<scope>.port_util_bytes`),
    /// typically `ixp.<ACRONYM>` set by the campaign layer. `None` keeps
    /// the aggregate series only.
    timeline_scope: Option<String>,
    /// Base track id for this network's shards in the Chrome trace, lazily
    /// allocated on the first traced window.
    trace_tracks: Option<u32>,
}

impl Network {
    /// An empty single-shard network. All per-device and per-link
    /// randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_shards(seed, 1)
    }

    /// An empty network with `shards` data-plane shards (clamped to at
    /// least 1). Devices are placed with [`Network::add_switch_on`] and
    /// friends; results are bit-identical at every shard count as long as
    /// the construction sequence is the same.
    pub fn with_shards(seed: u64, shards: usize) -> Self {
        let n = shards.max(1);
        Network {
            seed,
            nodes: Vec::new(),
            links: Vec::new(),
            shards: (0..n).map(|me| Shard::new(me as u32, n)).collect(),
            next_mac: 1,
            plan_seq: 0,
            router_key: seed::domain_key(seed, "router-frame"),
            obs_active: false,
            obs_flushed_events: 0,
            obs_flushed_drops: 0,
            obs_flushed_barriers: 0,
            obs_flushed_handoffs: 0,
            lookahead_cache: None,
            barrier_rounds: 0,
            barrier_wait_ns: 0,
            xshard_skew: SimDuration::ZERO,
            timeline_scope: None,
            trace_tracks: None,
        }
    }

    /// Label this network's scoped timeline series: the access-port byte
    /// series is additionally published as `<scope>.port_util_bytes`
    /// (the campaign passes `ixp.<ACRONYM>` so per-IXP port utilization
    /// survives the cross-IXP aggregation).
    pub fn set_timeline_scope(&mut self, scope: String) {
        self.timeline_scope = Some(scope);
    }

    /// Number of data-plane shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Install a fault injector; every subsequent frame transmission
    /// consults it. Replaces any previously installed injector. Each shard
    /// gets its own copy — decision streams are keyed by `(link, dir)`, so
    /// the copies never interfere and tallies/logs merge exactly.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        let cfg = injector.config().clone();
        for s in &mut self.shards {
            s.faults = Some(FaultInjector::new(cfg.clone()));
        }
    }

    /// Exact tallies of injected faults, merged across shards (all zero
    /// without an injector).
    pub fn fault_counts(&self) -> FaultCounts {
        let mut total = FaultCounts::default();
        for s in &self.shards {
            if let Some(inj) = &s.faults {
                total.merge(&inj.counts());
            }
        }
        total
    }

    /// The injector's replay log in canonical order, merged across shards
    /// (empty without an injector).
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        FaultInjector::merge_logs(self.shards.iter().filter_map(|s| s.faults.as_ref()))
    }

    fn add_node_on(&mut self, shard: usize, device: Device) -> NodeId {
        assert!(
            shard < self.shards.len(),
            "shard {shard} out of range: network has {} shards",
            self.shards.len()
        );
        let id = NodeId(self.nodes.len() as u32);
        let s = &mut self.shards[shard];
        let loc = s.devices.len() as u32;
        s.devices.push(device);
        s.seqs.push(0);
        s.rx.push(0);
        self.nodes.push(NodeMeta {
            ports: Vec::new(),
            shard: shard as u32,
            loc,
        });
        id
    }

    /// Add a MAC-learning layer-2 switch on shard 0.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_switch_on(0)
    }

    /// Add a MAC-learning layer-2 switch on the given shard.
    pub fn add_switch_on(&mut self, shard: usize) -> NodeId {
        self.add_node_on(shard, Device::Switch(Switch::new()))
    }

    /// Add an IP router with the given responder behavior on shard 0.
    pub fn add_router(&mut self, behavior: RouterBehavior) -> NodeId {
        self.add_router_on(0, behavior)
    }

    /// Add an IP router with the given responder behavior on the given
    /// shard.
    pub fn add_router_on(&mut self, shard: usize, behavior: RouterBehavior) -> NodeId {
        self.add_node_on(shard, Device::Router(Router::new(behavior)))
    }

    /// Add a measurement host on shard 0. Its ICMP id is derived from the
    /// node index.
    pub fn add_host(&mut self) -> NodeId {
        self.add_host_on(0)
    }

    /// Add a measurement host on the given shard. Its ICMP id is derived
    /// from the (global) node index, so placement cannot change it.
    pub fn add_host_on(&mut self, shard: usize) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.add_node_on(shard, Device::Host(Host::new(0x4000 | id.0 as u16)))
    }

    /// Allocate a fresh unicast MAC address.
    pub fn alloc_mac(&mut self) -> MacAddr {
        let m = MacAddr::from_index(self.next_mac);
        self.next_mac += 1;
        m
    }

    /// Connect `a` and `b` with a link; returns the allocated port on each
    /// side. Delay is sampled independently per traversal direction, from
    /// a stream owned by the transmitting side's shard.
    pub fn connect(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> (PortId, PortId) {
        self.connect_classed(a, b, delay, LinkClass::Core)
    }

    /// [`Network::connect`] with an explicit [`LinkClass`], so the
    /// deterministic timelines can attribute traffic to the canonical
    /// topology role of the link.
    pub fn connect_classed(
        &mut self,
        a: NodeId,
        b: NodeId,
        delay: DelayModel,
        class: LinkClass,
    ) -> (PortId, PortId) {
        let link_idx = self.links.len() as u32;
        let seed = self.seed;
        let deterministic = delay.is_deterministic();
        self.links.push(LinkMeta { delay, a, b, class });
        self.lookahead_cache = None;
        let (shard_a, shard_b) = (self.nodes[a.index()].shard, self.nodes[b.index()].shard);
        let dir_state = |shards: &mut Vec<Shard>, shard: u32, dir: u8| {
            let s = &mut shards[shard as usize];
            let loc = s.dirs.len() as u32;
            s.dirs.push(DirState {
                rng: if deterministic {
                    None
                } else {
                    Some(seed::rng2(seed, "link", link_idx as u64, dir as u64))
                },
                busy_until: SimTime::ZERO,
            });
            loc
        };
        // Direction 0 carries a→b (transmitter a), direction 1 carries b→a.
        let a_dir_loc = dir_state(&mut self.shards, shard_a, 0);
        let b_dir_loc = dir_state(&mut self.shards, shard_b, 1);
        let pa = PortId(self.nodes[a.index()].ports.len() as u16);
        let pb = PortId(self.nodes[b.index()].ports.len() as u16);
        self.nodes[a.index()].ports.push(Attachment {
            far_node: b,
            far_port: pb,
            far_shard: shard_b,
            link: link_idx,
            dir: 0,
            dir_loc: a_dir_loc,
        });
        self.nodes[b.index()].ports.push(Attachment {
            far_node: a,
            far_port: pa,
            far_shard: shard_a,
            link: link_idx,
            dir: 1,
            dir_loc: b_dir_loc,
        });
        (pa, pb)
    }

    fn device_mut(&mut self, id: NodeId) -> &mut Device {
        let meta = &self.nodes[id.index()];
        &mut self.shards[meta.shard as usize].devices[meta.loc as usize]
    }

    /// Mutable access to a router (panics if `id` is not a router).
    pub fn router_mut(&mut self, id: NodeId) -> &mut Router {
        match self.device_mut(id) {
            Device::Router(r) => r,
            other => panic!("{id} is not a router: {other:?}"),
        }
    }

    /// Shared access to a host (panics if `id` is not a host).
    pub fn host(&self, id: NodeId) -> &Host {
        let meta = &self.nodes[id.index()];
        match &self.shards[meta.shard as usize].devices[meta.loc as usize] {
            Device::Host(h) => h,
            other => panic!("{id} is not a host: {other:?}"),
        }
    }

    /// Mutable access to a host (panics if `id` is not a host).
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match self.device_mut(id) {
            Device::Host(h) => h,
            other => panic!("{id} is not a host: {other:?}"),
        }
    }

    /// Bind a host interface on `port` with address `ip` (MAC allocated
    /// internally).
    pub fn bind_host(&mut self, host: NodeId, port: PortId, ip: Ipv4Addr) {
        let mac = self.alloc_mac();
        self.host_mut(host).bind(port, ip, mac);
    }

    /// Bind a router interface on `port` with address `ip` (MAC allocated
    /// internally).
    pub fn bind_router(&mut self, router: NodeId, port: PortId, ip: Ipv4Addr) {
        let mac = self.alloc_mac();
        self.router_mut(router).bind(port, ip, mac);
    }

    /// Mint the key for a construction-time plan event.
    fn plan_key(&mut self) -> EventKey {
        let seq = self.plan_seq;
        self.plan_seq += 1;
        EventKey {
            creator: EventKey::PLAN_CREATOR,
            seq,
        }
    }

    /// Plan a ping from `host` to `target` at absolute time `at`.
    pub fn plan_ping(&mut self, host: NodeId, at: SimTime, target: Ipv4Addr) {
        let token = self.host_mut(host).register_plan(at, target);
        let key = self.plan_key();
        let shard = self.nodes[host.index()].shard as usize;
        if rp_obs::enabled() {
            // Plan timers sit in the queue from construction (sim t=0)
            // until they fire.
            self.shards[shard]
                .timeline
                .level("netsim.queue_depth", 0, at.nanos(), 1);
        }
        self.shards[shard]
            .queue
            .push(at, key, Event::Timer { node: host, token });
    }

    /// Plan a traceroute: one probe per hop TTL `1..=max_ttl`, one second
    /// apart, starting at `at`. Read the result with
    /// [`Host::traceroute_hops`].
    pub fn plan_traceroute(&mut self, host: NodeId, at: SimTime, target: Ipv4Addr, max_ttl: u8) {
        for hop in 1..=max_ttl {
            let t = at + SimDuration::from_secs(hop as u64 - 1);
            let token = self.host_mut(host).register_probe(t, target, hop);
            let key = self.plan_key();
            let shard = self.nodes[host.index()].shard as usize;
            if rp_obs::enabled() {
                self.shards[shard]
                    .timeline
                    .level("netsim.queue_depth", 0, t.nanos(), 1);
            }
            self.shards[shard]
                .queue
                .push(t, key, Event::Timer { node: host, token });
        }
    }

    /// Current simulated time: the furthest any shard has advanced.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total events processed so far, across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Frames dropped so far at unconnected ports.
    pub fn frames_dropped_unconnected(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped_unconnected).sum()
    }

    /// Largest per-link transmit-queue depth observed (0 unless a run
    /// executed with observability enabled).
    pub fn queue_depth_hwm(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queue_depth_hwm)
            .max()
            .unwrap_or(0)
    }

    /// Frames that crossed a shard boundary so far.
    pub fn cross_shard_handoffs(&self) -> u64 {
        self.shards.iter().map(|s| s.handoffs).sum()
    }

    /// Epoch barriers executed so far.
    pub fn barrier_rounds(&self) -> u64 {
        self.barrier_rounds
    }

    /// Commutative digest over `(time, node, kind)` of every dispatched
    /// event: each event contributes a mixed hash via wrapping addition,
    /// so the merged value is independent of dispatch interleaving — and
    /// therefore identical at every shard and thread count. Two runs that
    /// dispatch the same events at the same times — the bit-reproducibility
    /// contract — report the same digest regardless of how the event queue,
    /// frame storage, or shard layout is implemented.
    pub fn trace_digest(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.digest))
    }

    /// Debug/test hook: delay every cross-shard delivery by `skew`. This
    /// deliberately breaks the shard-count-invariance contract (a
    /// multi-shard run no longer matches `--shards 1`), so metamorphic
    /// broken-oracle tests can prove their checkers actually fire. Never
    /// call this outside tests.
    #[doc(hidden)]
    pub fn debug_skew_cross_shard(&mut self, skew: SimDuration) {
        self.xshard_skew = skew;
    }

    /// Conservative lookahead: the minimum one-way base delay over links
    /// whose endpoints live on different shards, or `None` when no link
    /// crosses a shard boundary (windows are then unbounded — the
    /// single-shard case). Panics on a zero-delay cross-shard link, which
    /// would force zero-length windows.
    fn lookahead(&mut self) -> Option<SimDuration> {
        if let Some(cached) = self.lookahead_cache {
            return cached;
        }
        let mut min: Option<SimDuration> = None;
        for lm in &self.links {
            let (sa, sb) = (
                self.nodes[lm.a.index()].shard,
                self.nodes[lm.b.index()].shard,
            );
            if sa == sb {
                continue;
            }
            let l = lm.delay.min_one_way();
            assert!(
                l > SimDuration::ZERO,
                "cross-shard link between {} and {} has zero base delay: \
                 the epoch-barrier scheduler needs positive lookahead on \
                 every link that crosses a shard boundary — keep such links \
                 inside one shard or give them a positive base delay",
                lm.a,
                lm.b
            );
            min = Some(match min {
                Some(m) => m.min(l),
                None => l,
            });
        }
        self.lookahead_cache = Some(min);
        min
    }

    /// Lazily reserve Chrome-trace tracks for this network's shards.
    fn trace_track_base(&mut self) -> u32 {
        if let Some(b) = self.trace_tracks {
            return b;
        }
        let label = self.timeline_scope.as_deref().unwrap_or("net");
        let b = rp_obs::trace::alloc_tracks(label, self.shards.len());
        self.trace_tracks = Some(b);
        b
    }

    /// Drain one window (all events strictly before `horizon`) on every
    /// shard, in parallel when it pays. With a trace sink installed, each
    /// shard's window becomes a slice on its own track.
    fn run_window(&mut self, horizon: SimTime) {
        let tracks = rp_obs::trace::active().then(|| self.trace_track_base());
        let ctx = Ctx {
            nodes: &self.nodes,
            links: &self.links,
            router_key: self.router_key,
            obs_active: self.obs_active,
            xshard_skew: self.xshard_skew,
        };
        let drain_traced = |s: &mut Shard| {
            let t0 = rp_obs::trace::clock_ns();
            let e0 = s.events_processed;
            s.drain_window(&ctx, horizon);
            (t0, e0)
        };
        let emit = |s: &Shard, base: u32, t0: u64, e0: u64| {
            if s.events_processed > e0 {
                rp_obs::trace::slice(
                    "window",
                    base + s.me,
                    t0,
                    rp_obs::trace::clock_ns(),
                    s.events_processed - e0,
                );
            }
        };
        let pending: usize = self.shards.iter().map(|s| s.queue.len()).sum();
        if self.shards.len() > 1 && pending >= PAR_WINDOW_EVENTS && rayon::current_num_threads() > 1
        {
            // Shards move through the pool by value: the vendored rayon
            // stand-in has no mutable borrows, and moving keeps every
            // worker's state provably disjoint. Results are bit-identical
            // to the serial branch — the split is pure policy.
            let shards = std::mem::take(&mut self.shards);
            self.shards = shards
                .into_par_iter()
                .map(|mut s| {
                    match tracks {
                        Some(base) => {
                            let (t0, e0) = drain_traced(&mut s);
                            emit(&s, base, t0, e0);
                        }
                        None => s.drain_window(&ctx, horizon),
                    }
                    s
                })
                .collect();
        } else {
            for s in &mut self.shards {
                match tracks {
                    Some(base) => {
                        let (t0, e0) = drain_traced(s);
                        emit(s, base, t0, e0);
                    }
                    None => s.drain_window(&ctx, horizon),
                }
            }
        }
    }

    /// Deliver buffered cross-shard frames into their destination queues
    /// and arenas. Runs between windows — the epoch barrier.
    fn deliver_handoffs(&mut self) {
        if self.shards.len() <= 1 {
            return;
        }
        let t0 = self.obs_active.then(std::time::Instant::now);
        self.barrier_rounds += 1;
        let n = self.shards.len();
        let mut moved = 0u64;
        for src in 0..n {
            for dst in 0..n {
                if src == dst || self.shards[src].outbox[dst].is_empty() {
                    continue;
                }
                let xs = std::mem::take(&mut self.shards[src].outbox[dst]);
                let d = &mut self.shards[dst];
                moved += xs.len() as u64;
                for x in xs {
                    let frame = d.frames.alloc(x.frame);
                    d.queue.push(
                        x.at,
                        x.key,
                        Event::FrameArrival {
                            node: x.node,
                            port: x.port,
                            frame,
                        },
                    );
                }
            }
        }
        if moved > 0 && rp_obs::trace::active() {
            rp_obs::trace::instant("netsim.barrier", moved);
        }
        if let Some(t0) = t0 {
            self.barrier_wait_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Push the run's event/drop deltas, queue-depth high-water mark, and
    /// (multi-shard runs) barrier statistics to the process-wide metrics
    /// registry.
    fn flush_obs(&mut self) {
        if !self.obs_active {
            return;
        }
        let events = self.events_processed();
        rp_obs::counter!("netsim.sim.events_processed").add(events - self.obs_flushed_events);
        self.obs_flushed_events = events;
        let drops = self.frames_dropped_unconnected();
        rp_obs::counter!("netsim.sim.frames_dropped_unconnected")
            .add(drops - self.obs_flushed_drops);
        self.obs_flushed_drops = drops;
        rp_obs::gauge!("netsim.link.queue_depth_hwm").record_max(self.queue_depth_hwm());
        if self.shards.len() > 1 {
            rp_obs::gauge!("netsim.shard.count").record_max(self.shards.len() as u64);
            rp_obs::counter!("netsim.shard.barriers")
                .add(self.barrier_rounds - self.obs_flushed_barriers);
            self.obs_flushed_barriers = self.barrier_rounds;
            let handoffs = self.cross_shard_handoffs();
            rp_obs::counter!("netsim.shard.handoffs").add(handoffs - self.obs_flushed_handoffs);
            self.obs_flushed_handoffs = handoffs;
            rp_obs::gauge!("netsim.shard.events_max").record_max(
                self.shards
                    .iter()
                    .map(|s| s.events_processed)
                    .max()
                    .unwrap_or(0),
            );
            rp_obs::gauge!("netsim.shard.barrier_wait_ns").record_max(self.barrier_wait_ns);
        }
        // Drain the per-shard timelines into the process registry, merged
        // in canonical shard order (the merge is commutative anyway — the
        // order is for reading the code, not for correctness). Scoped
        // port-utilization is re-published per IXP when a scope is set.
        let mut tl = rp_obs::TimelineRecorder::new();
        for s in &mut self.shards {
            s.tl_flush_events();
            tl.merge(&s.timeline);
            s.timeline = rp_obs::TimelineRecorder::new();
        }
        if !tl.is_empty() {
            if let Some(scope) = &self.timeline_scope {
                if let Some(data) = tl.series_data("netsim.access_bytes") {
                    rp_obs::timeline::publish_as(format!("{scope}.port_util_bytes"), data);
                }
            }
            rp_obs::timeline::publish(&tl);
        }
    }

    /// The bounded-lag event loop: repeatedly pick the global minimum
    /// pending time, drain every shard up to `t_min + lookahead`, then
    /// exchange cross-shard frames at the barrier.
    fn drain(&mut self, deadline: Option<SimTime>) {
        self.obs_active = rp_obs::enabled();
        let _sp = rp_obs::span("netsim.run");
        let lookahead = self.lookahead();
        loop {
            let t_min = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.peek_time())
                .min();
            let Some(t_min) = t_min else { break };
            if deadline.is_some_and(|d| t_min > d) {
                break;
            }
            // Window horizon is exclusive. With cross-shard links the
            // lookahead is positive (enforced above), so the window always
            // contains the t_min event: progress is guaranteed.
            let mut horizon = match lookahead {
                Some(l) => SimTime(t_min.nanos().saturating_add(l.nanos())),
                None => SimTime(u64::MAX),
            };
            if let Some(d) = deadline {
                horizon = horizon.min(SimTime(d.nanos().saturating_add(1)));
            }
            self.run_window(horizon);
            self.deliver_handoffs();
        }
        if let Some(d) = deadline {
            for s in &mut self.shards {
                s.now = s.now.max(d);
            }
        }
        self.flush_obs();
    }

    /// Run until the queue drains or the next event lies beyond `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.drain(Some(deadline));
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) {
        self.drain(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CongestionEpisode;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// The Figure 1 scene: an LG server and a direct member on the IXP
    /// fabric, plus a remote member reaching the fabric through a two-switch
    /// layer-2 pseudowire spanning real distance.
    struct Figure1 {
        net: Network,
        lg: NodeId,
        direct_ip: Ipv4Addr,
        remote_ip: Ipv4Addr,
    }

    fn figure1(seed: u64) -> Figure1 {
        figure1_sharded(seed, 1)
    }

    /// Same scene at any shard count: with more than one shard the remote
    /// provider chain (both provider switches and the remote router) lives
    /// on shard 1, coupled to shard 0 only through the fabric↔prov_ixp
    /// link. The construction sequence is identical at every shard count,
    /// so all observables must be too.
    fn figure1_sharded(seed: u64, shards: usize) -> Figure1 {
        let mut net = Network::with_shards(seed, shards);
        let far = shards.saturating_sub(1).min(1);
        let fabric = net.add_switch();

        // LG server in the IXP subnet.
        let lg = net.add_host();
        let (_, lg_port) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lg_port, ip("10.0.0.1"));

        // Direct member: colo cross-connect, ~0.4 ms one way.
        let direct = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let (_, dp) = net.connect(fabric, direct, DelayModel::with_one_way_ms(0.4));
        net.bind_router(direct, dp, ip("10.0.0.10"));

        // Remote member: provider switch at the IXP, long-haul span,
        // provider switch at the member metro, member access link.
        let prov_ixp = net.add_switch_on(far);
        let prov_far = net.add_switch_on(far);
        net.connect(fabric, prov_ixp, DelayModel::with_one_way_ms(0.05));
        net.connect(prov_ixp, prov_far, DelayModel::with_one_way_ms(12.0)); // ~2,400 km
        let remote = net.add_router_on(
            far,
            RouterBehavior {
                initial_ttl: 64,
                ..Default::default()
            },
        );
        let (_, rp) = net.connect(prov_far, remote, DelayModel::with_one_way_ms(0.3));
        net.bind_router(remote, rp, ip("10.0.0.20"));

        Figure1 {
            net,
            lg,
            direct_ip: ip("10.0.0.10"),
            remote_ip: ip("10.0.0.20"),
        }
    }

    fn ping_n(net: &mut Network, lg: NodeId, target: Ipv4Addr, n: u32) {
        for k in 0..n {
            let at = SimTime::ZERO + SimDuration::from_secs(1 + k as u64);
            net.plan_ping(lg, at, target);
        }
    }

    #[test]
    fn direct_member_answers_fast_with_max_ttl() {
        let mut f = figure1(1);
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        let outs: Vec<_> = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.target == f.direct_ip)
            .collect();
        assert_eq!(outs.len(), 5);
        for o in outs {
            let r = o.reply.expect("direct member replies");
            assert_eq!(r.ttl, 255, "no IP hop on the reply path");
            let ms = r.rtt.as_millis_f64();
            assert!((0.8..3.0).contains(&ms), "direct RTT {ms} ms");
        }
    }

    #[test]
    fn remote_member_keeps_max_ttl_but_shows_distance() {
        let mut f = figure1(2);
        ping_n(&mut f.net, f.lg, f.remote_ip, 5);
        f.net.run_to_completion();
        let min_rtt = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.target == f.remote_ip)
            .filter_map(|o| o.reply)
            .map(|r| {
                assert_eq!(r.ttl, 64, "pseudowire is pure layer 2");
                r.rtt
            })
            .min()
            .expect("remote member replies");
        let ms = min_rtt.as_millis_f64();
        assert!(
            (24.0..30.0).contains(&ms),
            "remote RTT {ms} ms reflects geography"
        );
    }

    /// The shard-equivalence contract in miniature: the same scene split
    /// across two shards (remote chain on shard 1, everything else on
    /// shard 0) must reproduce the single-shard run bit for bit — same
    /// outcomes, same event count, same trace digest.
    #[test]
    fn sharded_run_matches_single_shard_bit_for_bit() {
        let run = |shards: usize| {
            let mut f = figure1_sharded(42, shards);
            ping_n(&mut f.net, f.lg, f.direct_ip, 6);
            ping_n(&mut f.net, f.lg, f.remote_ip, 6);
            f.net.run_to_completion();
            (
                f.net.host(f.lg).outcomes().to_vec(),
                f.net.events_processed(),
                f.net.trace_digest(),
                f.net.cross_shard_handoffs(),
            )
        };
        let (out1, ev1, dig1, ho1) = run(1);
        let (out2, ev2, dig2, ho2) = run(2);
        assert_eq!(out1, out2, "outcomes must not depend on the shard count");
        assert_eq!(ev1, ev2, "event counts must not depend on the shard count");
        assert_eq!(
            dig1, dig2,
            "trace digests must not depend on the shard count"
        );
        assert_eq!(ho1, 0, "one shard can have no handoffs");
        assert!(ho2 > 0, "the remote chain must actually cross shards");
    }

    /// The broken-oracle hook: skewing cross-shard deliveries must change
    /// observables, proving the equivalence assertions above have teeth.
    #[test]
    fn cross_shard_skew_breaks_equivalence() {
        let run = |skew_us: u64| {
            let mut f = figure1_sharded(42, 2);
            f.net
                .debug_skew_cross_shard(SimDuration::from_micros(skew_us));
            ping_n(&mut f.net, f.lg, f.remote_ip, 6);
            f.net.run_to_completion();
            (f.net.host(f.lg).outcomes().to_vec(), f.net.trace_digest())
        };
        let (out_clean, dig_clean) = run(0);
        let (out_skewed, dig_skewed) = run(500);
        assert_ne!(dig_clean, dig_skewed, "skew must perturb the trace");
        assert_ne!(out_clean, out_skewed, "skew must perturb RTTs");
    }

    /// A zero-delay link may not cross shards: the scheduler needs positive
    /// lookahead, and collapsing windows silently would be worse.
    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_delay_cross_shard_link_panics() {
        let mut net = Network::with_shards(7, 2);
        let a = net.add_switch_on(0);
        let b = net.add_switch_on(1);
        net.connect(a, b, DelayModel::ideal(SimDuration::ZERO));
        let lg = net.add_host_on(0);
        let (_, lgp) = net.connect(a, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        net.plan_ping(
            lg,
            SimTime::ZERO + SimDuration::from_secs(1),
            ip("10.0.0.2"),
        );
        net.run_to_completion();
    }

    #[test]
    fn extra_ip_hop_decrements_reply_ttl() {
        // Registry-stale scenario: the probed address actually lives on an
        // inner router one IP hop behind the fabric-facing front router.
        let mut net = Network::new(3);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lgp, ip("10.0.0.1"));

        let target = ip("10.0.0.30");
        let front = net.add_router(RouterBehavior::default());
        let (_, f_fab) = net.connect(fabric, front, DelayModel::with_one_way_ms(0.3));
        net.bind_router(front, f_fab, ip("10.0.0.31"));
        let inner = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let (f_in, i_port) = net.connect(front, inner, DelayModel::with_one_way_ms(1.0));
        net.bind_router(front, f_in, ip("192.168.0.1"));
        net.bind_router(inner, i_port, target);

        let front_r = net.router_mut(front);
        front_r.add_proxy_arp(f_fab, target);
        front_r.add_route(target, f_in);
        front_r.set_default_route(f_fab);
        net.router_mut(inner).set_default_route(i_port);
        net.router_mut(inner).set_proxy_arp_all(i_port);
        // The inner router routes replies back via the front router; the
        // front router proxy-answers ARP on the inner segment.
        net.router_mut(front).set_proxy_arp_all(f_in);

        for k in 0..6 {
            net.plan_ping(lg, SimTime::ZERO + SimDuration::from_secs(k), target);
        }
        net.run_to_completion();
        let replies: Vec<_> = net
            .host(lg)
            .outcomes()
            .iter()
            .filter_map(|o| o.reply)
            .collect();
        assert!(!replies.is_empty(), "gadget must answer");
        for r in replies {
            assert_eq!(r.ttl, 254, "one forwarding hop eats one TTL");
        }
    }

    #[test]
    fn congestion_episode_inflates_rtt_but_min_recovers() {
        let mut net = Network::new(4);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let episode = CongestionEpisode {
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_secs(100),
            extra_mean_ms: 40.0,
        };
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::with_one_way_ms(0.4).with_episode(episode),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));

        // Probes both during and after the congestion window.
        for k in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(10 + k),
                ip("10.0.0.10"),
            );
        }
        for k in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(200 + k),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        assert_eq!(rtts.len(), 10);
        let during_max = rtts[..5].iter().cloned().fold(0.0, f64::max);
        let after_min = rtts[5..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(during_max > 5.0, "congestion visible: max {during_max} ms");
        assert!(after_min < 3.0, "min-RTT recovers: {after_min} ms");
    }

    #[test]
    fn finite_bandwidth_serializes_back_to_back_frames() {
        // A 1 Mbps member access link: a 98-byte ping takes 784 µs on the
        // wire, so five pings fired simultaneously drain as a FIFO and the
        // k-th reply is delayed by ~k·784 µs of queueing on the request
        // direction.
        let mut net = Network::new(11);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::ideal(SimDuration::from_micros(5)));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            proc_delay_us: (10, 10),
            ..Default::default()
        });
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::ideal(SimDuration::from_micros(50)).with_bandwidth_mbps(1.0),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));
        // Resolve ARP first so the burst is pure echo traffic.
        net.plan_ping(
            lg,
            SimTime::ZERO + SimDuration::from_secs(1),
            ip("10.0.0.10"),
        );
        for _ in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(2),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .skip(1)
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        assert_eq!(rtts.len(), 5);
        // Strictly increasing queueing delay across the burst...
        for w in rtts.windows(2) {
            assert!(
                w[1] > w[0] + 0.5,
                "queueing must separate replies: {rtts:?}"
            );
        }
        // ... by roughly one serialization time (0.784 ms) per position.
        let spread = rtts[4] - rtts[0];
        assert!(
            (2.5..5.0).contains(&spread),
            "spread {spread} ms over the burst"
        );
    }

    #[test]
    fn unconstrained_links_do_not_queue() {
        let mut net = Network::new(12);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::ideal(SimDuration::from_micros(5)));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            proc_delay_us: (10, 10),
            ..Default::default()
        });
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::ideal(SimDuration::from_micros(50)),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));
        net.plan_ping(
            lg,
            SimTime::ZERO + SimDuration::from_secs(1),
            ip("10.0.0.10"),
        );
        for _ in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(2),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .skip(1)
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        let spread = rtts.iter().cloned().fold(0.0, f64::max)
            - rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.01,
            "no queueing without a capacity: spread {spread} ms"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_outcomes() {
        let run = |seed| {
            let mut f = figure1(seed);
            ping_n(&mut f.net, f.lg, f.direct_ip, 8);
            ping_n(&mut f.net, f.lg, f.remote_ip, 8);
            f.net.run_to_completion();
            f.net.host(f.lg).outcomes().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fault_injection_replays_exactly_and_degrades_the_run() {
        use crate::fault::{FaultConfig, FaultInjector};
        let run = |fault_seed: u64, shards: usize| {
            let mut f = figure1_sharded(21, shards);
            f.net.install_faults(FaultInjector::new(FaultConfig {
                probe_loss: 0.3,
                reply_duplication: 0.2,
                jitter_spike: 0.2,
                jitter_spike_ms: 30.0,
                ttl_rewrite: 0.1,
                ttl_rewrite_to: 7,
                ..FaultConfig::quiet(fault_seed)
            }));
            ping_n(&mut f.net, f.lg, f.direct_ip, 30);
            f.net.run_to_completion();
            let outcomes = f.net.host(f.lg).outcomes().to_vec();
            (outcomes, f.net.fault_counts(), f.net.fault_log())
        };
        let (a_out, a_counts, a_log) = run(7, 1);
        let (b_out, b_counts, b_log) = run(7, 1);
        assert_eq!(a_out, b_out, "same fault seed must replay bit for bit");
        assert_eq!(a_counts, b_counts);
        assert_eq!(a_log, b_log);
        assert!(a_counts.total() > 0, "faults must actually fire");
        assert!(a_counts.probe_drops > 0, "{a_counts:?}");
        let lost = a_out.iter().filter(|o| o.reply.is_none()).count();
        assert!(lost > 0, "probe loss must cost replies");

        // Fault decisions key on (link, dir), so the shard layout cannot
        // change what fires — counts and merged log included.
        let (s_out, s_counts, s_log) = run(7, 2);
        assert_eq!(a_out, s_out, "fault outcomes must survive sharding");
        assert_eq!(a_counts, s_counts);
        assert_eq!(a_log, s_log);

        let (c_out, c_counts, _) = run(8, 1);
        assert!(
            a_out != c_out || a_counts != c_counts,
            "different fault seeds must differ somewhere"
        );
    }

    #[test]
    fn quiet_faults_change_nothing() {
        use crate::fault::{FaultConfig, FaultInjector};
        let run = |faulted: bool| {
            let mut f = figure1(22);
            if faulted {
                f.net
                    .install_faults(FaultInjector::new(FaultConfig::quiet(99)));
            }
            ping_n(&mut f.net, f.lg, f.remote_ip, 10);
            f.net.run_to_completion();
            f.net.host(f.lg).outcomes().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn ttl_rewrite_shows_up_in_replies() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut f = figure1(23);
        f.net.install_faults(FaultInjector::new(FaultConfig {
            ttl_rewrite: 1.0,
            ttl_rewrite_to: 9,
            ..FaultConfig::quiet(5)
        }));
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        for o in f.net.host(f.lg).outcomes() {
            if let Some(r) = o.reply {
                assert_eq!(r.ttl, 9, "every reply TTL is rewritten in flight");
            }
        }
    }

    #[test]
    fn flap_window_silences_flapping_links() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut f = figure1(24);
        let window = (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(1_000));
        f.net.install_faults(FaultInjector::new(FaultConfig {
            link_flap: 1.0, // every link flaps...
            flap_window: Some(window),
            ..FaultConfig::quiet(6)
        }));
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 0, "nothing crosses a flapping link");
        assert!(f.net.fault_counts().flap_drops > 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut f = figure1(5);
        ping_n(&mut f.net, f.lg, f.direct_ip, 5); // at t = 1..5 s
        f.net
            .run_until(SimTime::ZERO + SimDuration::from_millis(1_500));
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 1, "only the first probe fits before the deadline");
        f.net.run_to_completion();
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 5);
    }

    /// Deadlines compose with sharding: pausing at a deadline and resuming
    /// must land exactly where an uninterrupted run does.
    #[test]
    fn sharded_run_until_resumes_exactly() {
        let mut f = figure1_sharded(5, 2);
        ping_n(&mut f.net, f.lg, f.remote_ip, 5);
        f.net
            .run_until(SimTime::ZERO + SimDuration::from_millis(2_500));
        f.net.run_to_completion();
        let mut g = figure1_sharded(5, 2);
        ping_n(&mut g.net, g.lg, g.remote_ip, 5);
        g.net.run_to_completion();
        assert_eq!(
            f.net.host(f.lg).outcomes(),
            g.net.host(g.lg).outcomes(),
            "pause/resume must not perturb the run"
        );
        assert_eq!(f.net.trace_digest(), g.net.trace_digest());
    }
}
