//! The network container and event loop.
//!
//! `Network` owns every device, link, and pending event, and advances
//! simulated time by draining the event queue. Determinism contract: the
//! same construction sequence and seed produce the same event trace, frame
//! for frame.

use crate::event::{Event, EventQueue};
use crate::fault::{FaultCounts, FaultEvent, FaultInjector, TxFaults, DUPLICATE_GAP};
use crate::frame::{Frame, FrameArena, MacAddr, Payload};
use crate::host::Host;
use crate::link::DelayModel;
use crate::router::{Router, RouterBehavior};
use crate::switch::Switch;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rp_types::{seed, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Index of a node (device) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Index of a port on a node. Ports are allocated in [`Network::connect`]
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortId(pub u16);

impl PortId {
    /// Index into per-port storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Something a device wants done after handling an event.
#[derive(Debug, Clone)]
pub enum Action {
    /// Transmit `frame` out of `port` after a local delay (processing time).
    Send {
        /// Egress port.
        port: PortId,
        /// Frame to transmit.
        frame: Frame,
        /// Local processing delay before the frame enters the link.
        after: SimDuration,
    },
    /// Fire a timer for this device at absolute time `at`.
    Schedule {
        /// When the timer fires.
        at: SimTime,
        /// Opaque token handed back to the device.
        token: u64,
    },
}

impl Action {
    /// A send with no local processing delay.
    pub fn send(port: PortId, frame: Frame) -> Action {
        Action::Send {
            port,
            frame,
            after: SimDuration::ZERO,
        }
    }
}

/// The device living at a node.
#[derive(Debug)]
pub enum Device {
    /// A MAC-learning layer-2 switch.
    Switch(Switch),
    /// An IP router.
    Router(Router),
    /// A measurement host.
    Host(Host),
}

#[derive(Debug, Clone, Copy)]
struct Attachment {
    far_node: NodeId,
    far_port: PortId,
    link: u32,
    /// Which direction of the (full-duplex) link this side transmits on.
    dir: u8,
}

#[derive(Debug)]
struct Node {
    device: Device,
    ports: Vec<Attachment>,
}

#[derive(Debug)]
struct Link {
    delay: DelayModel,
    /// Per-link jitter stream; `None` for fully deterministic delay
    /// models, which skip RNG construction and per-frame sampling. Each
    /// link's stream is isolated, so the skip cannot shift any other
    /// stream's draws.
    rng: Option<StdRng>,
    /// Per-direction transmit-queue horizon: the instant each direction's
    /// line becomes idle (finite-bandwidth links only).
    busy_until: [SimTime; 2],
}

/// A simulated network of switches, routers, and hosts.
pub struct Network {
    seed: u64,
    nodes: Vec<Node>,
    links: Vec<Link>,
    queue: EventQueue,
    now: SimTime,
    next_mac: u64,
    events_processed: u64,
    /// Frames dropped because a device transmitted on an unconnected port.
    dropped_unconnected: u64,
    /// Largest per-link transmit-queue depth seen (frames waiting ahead of
    /// a newly enqueued frame, plus itself). Only tracked while
    /// observability is on — see `obs_active`.
    queue_depth_hwm: u64,
    /// `rp_obs::enabled()` sampled at run start: the event loop is the
    /// hottest code in the repo, so per-event work reads one bool instead
    /// of the atomic, and counters flush to the registry once per run.
    obs_active: bool,
    obs_flushed_events: u64,
    obs_flushed_drops: u64,
    /// Running FNV-1a digest of the first [`TRACE_DIGEST_EVENTS`] dispatched
    /// events, folding `(time, node, kind)` per event. Pins the exact event
    /// trace across scheduler/pool refactors; cost is a few ALU ops per
    /// event, so it is always on.
    trace_digest: u64,
    /// Slab of in-flight frames: events carry 4-byte [`crate::frame::FrameId`]s
    /// instead of frame copies; slots are freed the moment a frame is
    /// delivered, so the arena stays as small as the peak in-flight count.
    frames: FrameArena,
    /// Precomputed `(seed, "router-frame")` key: the per-event router RNG
    /// is derived once per frame, so the domain-label hash is hoisted out
    /// of the hot loop.
    router_key: seed::DomainKey,
    /// Stand-in generator passed to routers for ARP frames, whose handling
    /// never draws — ARP floods hit every member on a fabric, so skipping
    /// the per-event seeding there is a measurable win. Debug builds
    /// assert after every use that it was in fact never advanced.
    arp_rng: StdRng,
    /// Scratch buffer device handlers write their actions into; reused
    /// across every dispatch so the hot loop never allocates.
    scratch: Vec<Action>,
    /// Optional fault injection consulted on every frame transmission.
    faults: Option<FaultInjector>,
}

/// How many leading events the trace digest covers.
pub const TRACE_DIGEST_EVENTS: u64 = 10_000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

#[inline]
fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl Network {
    /// An empty network. All per-device and per-link randomness derives from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        Network {
            seed,
            nodes: Vec::new(),
            links: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            next_mac: 1,
            events_processed: 0,
            dropped_unconnected: 0,
            queue_depth_hwm: 0,
            obs_active: false,
            obs_flushed_events: 0,
            obs_flushed_drops: 0,
            trace_digest: FNV_OFFSET,
            frames: FrameArena::new(),
            router_key: seed::domain_key(seed, "router-frame"),
            arp_rng: StdRng::seed_from_u64(0),
            scratch: Vec::new(),
            faults: None,
        }
    }

    /// Install a fault injector; every subsequent frame transmission
    /// consults it. Replaces any previously installed injector.
    pub fn install_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Exact tallies of injected faults (all zero without an injector).
    pub fn fault_counts(&self) -> FaultCounts {
        self.faults
            .as_ref()
            .map(FaultInjector::counts)
            .unwrap_or_default()
    }

    /// The injector's replay log (empty without an injector).
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.as_ref().map(FaultInjector::log).unwrap_or(&[])
    }

    fn add_node(&mut self, device: Device) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            device,
            ports: Vec::new(),
        });
        id
    }

    /// Add a MAC-learning layer-2 switch.
    pub fn add_switch(&mut self) -> NodeId {
        self.add_node(Device::Switch(Switch::new()))
    }

    /// Add an IP router with the given responder behavior.
    pub fn add_router(&mut self, behavior: RouterBehavior) -> NodeId {
        self.add_node(Device::Router(Router::new(behavior)))
    }

    /// Add a measurement host. Its ICMP id is derived from the node index.
    pub fn add_host(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.add_node(Device::Host(Host::new(0x4000 | id.0 as u16)))
    }

    /// Allocate a fresh unicast MAC address.
    pub fn alloc_mac(&mut self) -> MacAddr {
        let m = MacAddr::from_index(self.next_mac);
        self.next_mac += 1;
        m
    }

    /// Connect `a` and `b` with a link; returns the allocated port on each
    /// side. Delay is sampled independently per traversal direction.
    pub fn connect(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> (PortId, PortId) {
        let link_idx = self.links.len() as u32;
        let rng = if delay.is_deterministic() {
            None
        } else {
            Some(seed::rng(self.seed, "link", link_idx as u64))
        };
        self.links.push(Link {
            delay,
            rng,
            busy_until: [SimTime::ZERO; 2],
        });
        let pa = PortId(self.nodes[a.index()].ports.len() as u16);
        let pb = PortId(self.nodes[b.index()].ports.len() as u16);
        self.nodes[a.index()].ports.push(Attachment {
            far_node: b,
            far_port: pb,
            link: link_idx,
            dir: 0,
        });
        self.nodes[b.index()].ports.push(Attachment {
            far_node: a,
            far_port: pa,
            link: link_idx,
            dir: 1,
        });
        (pa, pb)
    }

    /// Mutable access to a router (panics if `id` is not a router).
    pub fn router_mut(&mut self, id: NodeId) -> &mut Router {
        match &mut self.nodes[id.index()].device {
            Device::Router(r) => r,
            other => panic!("{id} is not a router: {other:?}"),
        }
    }

    /// Shared access to a host (panics if `id` is not a host).
    pub fn host(&self, id: NodeId) -> &Host {
        match &self.nodes[id.index()].device {
            Device::Host(h) => h,
            other => panic!("{id} is not a host: {other:?}"),
        }
    }

    /// Mutable access to a host (panics if `id` is not a host).
    pub fn host_mut(&mut self, id: NodeId) -> &mut Host {
        match &mut self.nodes[id.index()].device {
            Device::Host(h) => h,
            other => panic!("{id} is not a host: {other:?}"),
        }
    }

    /// Bind a host interface on `port` with address `ip` (MAC allocated
    /// internally).
    pub fn bind_host(&mut self, host: NodeId, port: PortId, ip: Ipv4Addr) {
        let mac = self.alloc_mac();
        self.host_mut(host).bind(port, ip, mac);
    }

    /// Bind a router interface on `port` with address `ip` (MAC allocated
    /// internally).
    pub fn bind_router(&mut self, router: NodeId, port: PortId, ip: Ipv4Addr) {
        let mac = self.alloc_mac();
        self.router_mut(router).bind(port, ip, mac);
    }

    /// Plan a ping from `host` to `target` at absolute time `at`.
    pub fn plan_ping(&mut self, host: NodeId, at: SimTime, target: Ipv4Addr) {
        let token = self.host_mut(host).register_plan(at, target);
        self.queue.push(at, Event::Timer { node: host, token });
    }

    /// Plan a traceroute: one probe per hop TTL `1..=max_ttl`, one second
    /// apart, starting at `at`. Read the result with
    /// [`Host::traceroute_hops`].
    pub fn plan_traceroute(&mut self, host: NodeId, at: SimTime, target: Ipv4Addr, max_ttl: u8) {
        for hop in 1..=max_ttl {
            let t = at + SimDuration::from_secs(hop as u64 - 1);
            let token = self.host_mut(host).register_probe(t, target, hop);
            self.queue.push(t, Event::Timer { node: host, token });
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Frames dropped so far at unconnected ports.
    pub fn frames_dropped_unconnected(&self) -> u64 {
        self.dropped_unconnected
    }

    /// Largest per-link transmit-queue depth observed (0 unless a run
    /// executed with observability enabled).
    pub fn queue_depth_hwm(&self) -> u64 {
        self.queue_depth_hwm
    }

    /// FNV-1a digest over `(time, node, kind)` of the first
    /// [`TRACE_DIGEST_EVENTS`] dispatched events. Two runs that dispatch
    /// the same events in the same order — the bit-reproducibility
    /// contract — report the same digest regardless of how the event queue
    /// or frame storage is implemented.
    pub fn trace_digest(&self) -> u64 {
        self.trace_digest
    }

    /// Push the run's event/drop deltas and queue-depth high-water mark to
    /// the process-wide metrics registry.
    fn flush_obs(&mut self) {
        if !self.obs_active {
            return;
        }
        rp_obs::counter!("netsim.sim.events_processed")
            .add(self.events_processed - self.obs_flushed_events);
        self.obs_flushed_events = self.events_processed;
        rp_obs::counter!("netsim.sim.frames_dropped_unconnected")
            .add(self.dropped_unconnected - self.obs_flushed_drops);
        self.obs_flushed_drops = self.dropped_unconnected;
        rp_obs::gauge!("netsim.link.queue_depth_hwm").record_max(self.queue_depth_hwm);
    }

    /// Run until the queue drains or the next event lies beyond `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.obs_active = rp_obs::enabled();
        let _sp = rp_obs::span("netsim.run");
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked");
            self.now = at;
            self.dispatch(event);
        }
        self.now = self.now.max(deadline);
        self.flush_obs();
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) {
        self.obs_active = rp_obs::enabled();
        let _sp = rp_obs::span("netsim.run");
        while let Some((at, event)) = self.queue.pop() {
            self.now = at;
            self.dispatch(event);
        }
        self.flush_obs();
    }

    fn dispatch(&mut self, event: Event) {
        self.events_processed += 1;
        if self.events_processed <= TRACE_DIGEST_EVENTS {
            let (node, kind) = match &event {
                Event::FrameArrival { node, .. } => (node.0, 0u64),
                Event::Timer { node, .. } => (node.0, 1u64),
            };
            let h = fnv1a_u64(self.trace_digest, self.now.nanos());
            let h = fnv1a_u64(h, u64::from(node));
            self.trace_digest = fnv1a_u64(h, kind);
        }
        let mut actions = std::mem::take(&mut self.scratch);
        let node_id = match event {
            Event::FrameArrival { node, port, frame } => {
                // Copy the frame out of the arena and release its slot
                // immediately: delivery ends the in-flight lifetime.
                let frame = self.frames.take(frame);
                let n_ports = self.nodes[node.index()].ports.len() as u16;
                let now = self.now;
                match &mut self.nodes[node.index()].device {
                    Device::Switch(sw) => sw.on_frame_into(port, n_ports, frame, &mut actions),
                    Device::Router(r) => {
                        if matches!(frame.payload, Payload::Arp(_)) {
                            // The ARP arms never draw, so the per-event
                            // stream need not be derived at all: an
                            // untouched generator leaves no trace.
                            r.on_frame_into(now, port, frame, &mut self.arp_rng, &mut actions);
                            debug_assert_eq!(
                                self.arp_rng,
                                StdRng::seed_from_u64(0),
                                "router ARP handling drew from its RNG; \
                                 the ARP fast path is no longer sound"
                            );
                        } else {
                            // Derive a per-event RNG from (node, event
                            // count) so device behavior stays deterministic
                            // and independent of unrelated devices.
                            let mut rng = seed::rng_from_key(
                                self.router_key,
                                (node.0 as u64) << 40 | self.events_processed,
                            );
                            r.on_frame_into(now, port, frame, &mut rng, &mut actions);
                        }
                    }
                    Device::Host(h) => h.on_frame_into(now, port, frame, &mut actions),
                }
                node
            }
            Event::Timer { node, token } => {
                let now = self.now;
                if let Device::Host(h) = &mut self.nodes[node.index()].device {
                    h.on_timer_into(now, token, &mut actions);
                }
                node
            }
        };
        for action in actions.drain(..) {
            match action {
                Action::Send {
                    port,
                    mut frame,
                    after,
                } => {
                    let Some(att) = self.nodes[node_id.index()].ports.get(port.index()).copied()
                    else {
                        self.dropped_unconnected += 1;
                        continue; // unconnected port: drop
                    };
                    let fx = match self.faults.as_mut() {
                        Some(inj) => inj.on_transmit(self.now, att.link, &mut frame),
                        None => TxFaults::default(),
                    };
                    if fx.drop {
                        continue; // injected loss: the frame never transmits
                    }
                    let ready = self.now + after;
                    let link = &mut self.links[att.link as usize];
                    // Finite-bandwidth links serialize frames through a
                    // per-direction FIFO: transmission starts when both the
                    // frame and the line are ready.
                    let tx_time = link.delay.serialization(frame.wire_size());
                    let dir = att.dir as usize;
                    let start = ready.max(link.busy_until[dir]);
                    if self.obs_active && (self.events_processed & 63) == 0 {
                        // Queue depth behind this frame, in frames: backlog
                        // wait divided by one serialization time, plus the
                        // frame itself. Sampled on power-of-two event
                        // counts so the gauge costs nothing in steady
                        // state. Pure read — never feeds back into the
                        // simulation.
                        let tx_ns = tx_time.nanos();
                        if tx_ns > 0 && start > ready {
                            let depth = (start.nanos() - ready.nanos()) / tx_ns + 1;
                            self.queue_depth_hwm = self.queue_depth_hwm.max(depth);
                        }
                    }
                    let tx_done = start + tx_time;
                    link.busy_until[dir] = tx_done;
                    let delay = match link.rng.as_mut() {
                        Some(rng) => link.delay.sample(start, rng),
                        None => link.delay.sample_deterministic(start),
                    };
                    let arrival = tx_done + delay + fx.extra_delay;
                    if fx.duplicate {
                        self.queue.push(
                            arrival + DUPLICATE_GAP,
                            Event::FrameArrival {
                                node: att.far_node,
                                port: att.far_port,
                                frame: self.frames.alloc(frame),
                            },
                        );
                    }
                    self.queue.push(
                        arrival,
                        Event::FrameArrival {
                            node: att.far_node,
                            port: att.far_port,
                            frame: self.frames.alloc(frame),
                        },
                    );
                }
                Action::Schedule { at, token } => {
                    self.queue.push(
                        at,
                        Event::Timer {
                            node: node_id,
                            token,
                        },
                    );
                }
            }
        }
        self.scratch = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::CongestionEpisode;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    /// The Figure 1 scene: an LG server and a direct member on the IXP
    /// fabric, plus a remote member reaching the fabric through a two-switch
    /// layer-2 pseudowire spanning real distance.
    struct Figure1 {
        net: Network,
        lg: NodeId,
        direct_ip: Ipv4Addr,
        remote_ip: Ipv4Addr,
    }

    fn figure1(seed: u64) -> Figure1 {
        let mut net = Network::new(seed);
        let fabric = net.add_switch();

        // LG server in the IXP subnet.
        let lg = net.add_host();
        let (_, lg_port) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lg_port, ip("10.0.0.1"));

        // Direct member: colo cross-connect, ~0.4 ms one way.
        let direct = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let (_, dp) = net.connect(fabric, direct, DelayModel::with_one_way_ms(0.4));
        net.bind_router(direct, dp, ip("10.0.0.10"));

        // Remote member: provider switch at the IXP, long-haul span,
        // provider switch at the member metro, member access link.
        let prov_ixp = net.add_switch();
        let prov_far = net.add_switch();
        net.connect(fabric, prov_ixp, DelayModel::with_one_way_ms(0.05));
        net.connect(prov_ixp, prov_far, DelayModel::with_one_way_ms(12.0)); // ~2,400 km
        let remote = net.add_router(RouterBehavior {
            initial_ttl: 64,
            ..Default::default()
        });
        let (_, rp) = net.connect(prov_far, remote, DelayModel::with_one_way_ms(0.3));
        net.bind_router(remote, rp, ip("10.0.0.20"));

        Figure1 {
            net,
            lg,
            direct_ip: ip("10.0.0.10"),
            remote_ip: ip("10.0.0.20"),
        }
    }

    fn ping_n(net: &mut Network, lg: NodeId, target: Ipv4Addr, n: u32) {
        for k in 0..n {
            let at = SimTime::ZERO + SimDuration::from_secs(1 + k as u64);
            net.plan_ping(lg, at, target);
        }
    }

    #[test]
    fn direct_member_answers_fast_with_max_ttl() {
        let mut f = figure1(1);
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        let outs: Vec<_> = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.target == f.direct_ip)
            .collect();
        assert_eq!(outs.len(), 5);
        for o in outs {
            let r = o.reply.expect("direct member replies");
            assert_eq!(r.ttl, 255, "no IP hop on the reply path");
            let ms = r.rtt.as_millis_f64();
            assert!((0.8..3.0).contains(&ms), "direct RTT {ms} ms");
        }
    }

    #[test]
    fn remote_member_keeps_max_ttl_but_shows_distance() {
        let mut f = figure1(2);
        ping_n(&mut f.net, f.lg, f.remote_ip, 5);
        f.net.run_to_completion();
        let min_rtt = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.target == f.remote_ip)
            .filter_map(|o| o.reply)
            .map(|r| {
                assert_eq!(r.ttl, 64, "pseudowire is pure layer 2");
                r.rtt
            })
            .min()
            .expect("remote member replies");
        let ms = min_rtt.as_millis_f64();
        assert!(
            (24.0..30.0).contains(&ms),
            "remote RTT {ms} ms reflects geography"
        );
    }

    #[test]
    fn extra_ip_hop_decrements_reply_ttl() {
        // Registry-stale scenario: the probed address actually lives on an
        // inner router one IP hop behind the fabric-facing front router.
        let mut net = Network::new(3);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lgp, ip("10.0.0.1"));

        let target = ip("10.0.0.30");
        let front = net.add_router(RouterBehavior::default());
        let (_, f_fab) = net.connect(fabric, front, DelayModel::with_one_way_ms(0.3));
        net.bind_router(front, f_fab, ip("10.0.0.31"));
        let inner = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let (f_in, i_port) = net.connect(front, inner, DelayModel::with_one_way_ms(1.0));
        net.bind_router(front, f_in, ip("192.168.0.1"));
        net.bind_router(inner, i_port, target);

        let front_r = net.router_mut(front);
        front_r.add_proxy_arp(f_fab, target);
        front_r.add_route(target, f_in);
        front_r.set_default_route(f_fab);
        net.router_mut(inner).set_default_route(i_port);
        net.router_mut(inner).set_proxy_arp_all(i_port);
        // The inner router routes replies back via the front router; the
        // front router proxy-answers ARP on the inner segment.
        net.router_mut(front).set_proxy_arp_all(f_in);

        for k in 0..6 {
            net.plan_ping(lg, SimTime::ZERO + SimDuration::from_secs(k), target);
        }
        net.run_to_completion();
        let replies: Vec<_> = net
            .host(lg)
            .outcomes()
            .iter()
            .filter_map(|o| o.reply)
            .collect();
        assert!(!replies.is_empty(), "gadget must answer");
        for r in replies {
            assert_eq!(r.ttl, 254, "one forwarding hop eats one TTL");
        }
    }

    #[test]
    fn congestion_episode_inflates_rtt_but_min_recovers() {
        let mut net = Network::new(4);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            ..Default::default()
        });
        let episode = CongestionEpisode {
            start: SimTime::ZERO,
            end: SimTime::ZERO + SimDuration::from_secs(100),
            extra_mean_ms: 40.0,
        };
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::with_one_way_ms(0.4).with_episode(episode),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));

        // Probes both during and after the congestion window.
        for k in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(10 + k),
                ip("10.0.0.10"),
            );
        }
        for k in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(200 + k),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        assert_eq!(rtts.len(), 10);
        let during_max = rtts[..5].iter().cloned().fold(0.0, f64::max);
        let after_min = rtts[5..].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(during_max > 5.0, "congestion visible: max {during_max} ms");
        assert!(after_min < 3.0, "min-RTT recovers: {after_min} ms");
    }

    #[test]
    fn finite_bandwidth_serializes_back_to_back_frames() {
        // A 1 Mbps member access link: a 98-byte ping takes 784 µs on the
        // wire, so five pings fired simultaneously drain as a FIFO and the
        // k-th reply is delayed by ~k·784 µs of queueing on the request
        // direction.
        let mut net = Network::new(11);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::ideal(SimDuration::from_micros(5)));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            proc_delay_us: (10, 10),
            ..Default::default()
        });
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::ideal(SimDuration::from_micros(50)).with_bandwidth_mbps(1.0),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));
        // Resolve ARP first so the burst is pure echo traffic.
        net.plan_ping(
            lg,
            SimTime::ZERO + SimDuration::from_secs(1),
            ip("10.0.0.10"),
        );
        for _ in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(2),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .skip(1)
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        assert_eq!(rtts.len(), 5);
        // Strictly increasing queueing delay across the burst...
        for w in rtts.windows(2) {
            assert!(
                w[1] > w[0] + 0.5,
                "queueing must separate replies: {rtts:?}"
            );
        }
        // ... by roughly one serialization time (0.784 ms) per position.
        let spread = rtts[4] - rtts[0];
        assert!(
            (2.5..5.0).contains(&spread),
            "spread {spread} ms over the burst"
        );
    }

    #[test]
    fn unconstrained_links_do_not_queue() {
        let mut net = Network::new(12);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::ideal(SimDuration::from_micros(5)));
        net.bind_host(lg, lgp, ip("10.0.0.1"));
        let member = net.add_router(RouterBehavior {
            initial_ttl: 255,
            proc_delay_us: (10, 10),
            ..Default::default()
        });
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::ideal(SimDuration::from_micros(50)),
        );
        net.bind_router(member, mp, ip("10.0.0.10"));
        net.plan_ping(
            lg,
            SimTime::ZERO + SimDuration::from_secs(1),
            ip("10.0.0.10"),
        );
        for _ in 0..5 {
            net.plan_ping(
                lg,
                SimTime::ZERO + SimDuration::from_secs(2),
                ip("10.0.0.10"),
            );
        }
        net.run_to_completion();
        let rtts: Vec<f64> = net
            .host(lg)
            .outcomes()
            .iter()
            .skip(1)
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .collect();
        let spread = rtts.iter().cloned().fold(0.0, f64::max)
            - rtts.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            spread < 0.01,
            "no queueing without a capacity: spread {spread} ms"
        );
    }

    #[test]
    fn identical_seeds_reproduce_identical_outcomes() {
        let run = |seed| {
            let mut f = figure1(seed);
            ping_n(&mut f.net, f.lg, f.direct_ip, 8);
            ping_n(&mut f.net, f.lg, f.remote_ip, 8);
            f.net.run_to_completion();
            f.net.host(f.lg).outcomes().to_vec()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fault_injection_replays_exactly_and_degrades_the_run() {
        use crate::fault::{FaultConfig, FaultInjector};
        let run = |fault_seed: u64| {
            let mut f = figure1(21);
            f.net.install_faults(FaultInjector::new(FaultConfig {
                probe_loss: 0.3,
                reply_duplication: 0.2,
                jitter_spike: 0.2,
                jitter_spike_ms: 30.0,
                ttl_rewrite: 0.1,
                ttl_rewrite_to: 7,
                ..FaultConfig::quiet(fault_seed)
            }));
            ping_n(&mut f.net, f.lg, f.direct_ip, 30);
            f.net.run_to_completion();
            let outcomes = f.net.host(f.lg).outcomes().to_vec();
            (outcomes, f.net.fault_counts(), f.net.fault_log().to_vec())
        };
        let (a_out, a_counts, a_log) = run(7);
        let (b_out, b_counts, b_log) = run(7);
        assert_eq!(a_out, b_out, "same fault seed must replay bit for bit");
        assert_eq!(a_counts, b_counts);
        assert_eq!(a_log, b_log);
        assert!(a_counts.total() > 0, "faults must actually fire");
        assert!(a_counts.probe_drops > 0, "{a_counts:?}");
        let lost = a_out.iter().filter(|o| o.reply.is_none()).count();
        assert!(lost > 0, "probe loss must cost replies");

        let (c_out, c_counts, _) = run(8);
        assert!(
            a_out != c_out || a_counts != c_counts,
            "different fault seeds must differ somewhere"
        );
    }

    #[test]
    fn quiet_faults_change_nothing() {
        use crate::fault::{FaultConfig, FaultInjector};
        let run = |faulted: bool| {
            let mut f = figure1(22);
            if faulted {
                f.net
                    .install_faults(FaultInjector::new(FaultConfig::quiet(99)));
            }
            ping_n(&mut f.net, f.lg, f.remote_ip, 10);
            f.net.run_to_completion();
            f.net.host(f.lg).outcomes().to_vec()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn ttl_rewrite_shows_up_in_replies() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut f = figure1(23);
        f.net.install_faults(FaultInjector::new(FaultConfig {
            ttl_rewrite: 1.0,
            ttl_rewrite_to: 9,
            ..FaultConfig::quiet(5)
        }));
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        for o in f.net.host(f.lg).outcomes() {
            if let Some(r) = o.reply {
                assert_eq!(r.ttl, 9, "every reply TTL is rewritten in flight");
            }
        }
    }

    #[test]
    fn flap_window_silences_flapping_links() {
        use crate::fault::{FaultConfig, FaultInjector};
        let mut f = figure1(24);
        let window = (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(1_000));
        f.net.install_faults(FaultInjector::new(FaultConfig {
            link_flap: 1.0, // every link flaps...
            flap_window: Some(window),
            ..FaultConfig::quiet(6)
        }));
        ping_n(&mut f.net, f.lg, f.direct_ip, 5);
        f.net.run_to_completion();
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 0, "nothing crosses a flapping link");
        assert!(f.net.fault_counts().flap_drops > 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut f = figure1(5);
        ping_n(&mut f.net, f.lg, f.direct_ip, 5); // at t = 1..5 s
        f.net
            .run_until(SimTime::ZERO + SimDuration::from_millis(1_500));
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 1, "only the first probe fits before the deadline");
        f.net.run_to_completion();
        let answered = f
            .net
            .host(f.lg)
            .outcomes()
            .iter()
            .filter(|o| o.reply.is_some())
            .count();
        assert_eq!(answered, 5);
    }
}
