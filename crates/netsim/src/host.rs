//! A measurement host — the simulator's looking-glass server.
//!
//! The paper probes member interfaces "from LG servers that PCH and RIPE NCC
//! maintain at IXP locations" (section 3.1). `Host` plays that role: it is
//! attached to the IXP fabric with an address inside the IXP subnet, sends
//! planned ICMP echo requests (resolving targets via ARP first), and records
//! for every planned probe whether it was sent, the observed RTT, and — the
//! detection-critical part — the TTL value carried by the reply.

use crate::frame::{ArpOp, Frame, IcmpMessage, Ipv4Packet, MacAddr, Payload};
use crate::sim::{Action, PortId};
use rp_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What kind of ICMP message answered a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyKind {
    /// The destination answered (ping success / traceroute's final hop).
    EchoReply,
    /// An intermediate router's TTL-exceeded notice (a traceroute hop).
    TimeExceeded,
}

/// A received ping reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PingReply {
    /// Round-trip time from echo-request transmission to reply arrival.
    pub rtt: SimDuration,
    /// TTL field of the reply as observed at the host. Equal to the
    /// responder's initial TTL when the reply never crossed an IP hop.
    pub ttl: u8,
    /// Source address of the reply (may differ from the probed address when
    /// the responder replies from another interface; for Time Exceeded it
    /// is the intermediate router).
    pub src: Ipv4Addr,
    /// Echo reply or Time Exceeded.
    pub kind: ReplyKind,
}

/// The outcome of one planned probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PingOutcome {
    /// Probed address.
    pub target: Ipv4Addr,
    /// TTL the probe was sent with (64 for plain pings; the hop number for
    /// traceroute probes).
    pub probe_ttl: u8,
    /// When the probe was planned to fire.
    pub planned_at: SimTime,
    /// When the echo request actually left the host (`None` when ARP never
    /// resolved — e.g. the registry listed an address nobody holds).
    pub sent_at: Option<SimTime>,
    /// The reply, if one came back.
    pub reply: Option<PingReply>,
}

/// Sentinel for "no in-flight probe with this sequence number".
const NOT_INFLIGHT: usize = usize::MAX;

/// Looking-glass host state.
///
/// An LG probes hundreds of member interfaces, so the per-packet lookup
/// structures are dense rather than hashed: the ARP cache and the
/// awaiting-ARP queue are vectors kept sorted by address (binary
/// search), and in-flight probes are a plain array indexed by the
/// probe's sequence number (sequence numbers are issued sequentially).
#[derive(Debug)]
pub struct Host {
    iface: Option<(PortId, Ipv4Addr, MacAddr)>,
    icmp_id: u16,
    plans: Vec<(SimTime, Ipv4Addr, u8)>,
    outcomes: Vec<PingOutcome>,
    /// Resolved neighbors, sorted by address.
    arp_cache: Vec<(Ipv4Addr, MacAddr)>,
    /// Plan indices waiting for ARP resolution of their target, sorted by
    /// address; each list drains in registration order on resolution.
    awaiting_arp: Vec<(Ipv4Addr, Vec<usize>)>,
    /// In-flight echo requests: plan index per sequence number
    /// ([`NOT_INFLIGHT`] marks free slots). Grows to the number of probes
    /// actually sent.
    inflight: Vec<usize>,
    next_seq: u16,
}

impl Host {
    /// A host that stamps its probes with `icmp_id`.
    pub fn new(icmp_id: u16) -> Self {
        Host {
            iface: None,
            icmp_id,
            plans: Vec::new(),
            outcomes: Vec::new(),
            arp_cache: Vec::new(),
            awaiting_arp: Vec::new(),
            inflight: Vec::new(),
            next_seq: 0,
        }
    }

    fn arp_lookup(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.arp_cache
            .binary_search_by_key(&ip, |&(k, _)| k)
            .ok()
            .map(|pos| self.arp_cache[pos].1)
    }

    fn arp_learn(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        match self.arp_cache.binary_search_by_key(&ip, |&(k, _)| k) {
            Ok(pos) => self.arp_cache[pos].1 = mac,
            Err(pos) => self.arp_cache.insert(pos, (ip, mac)),
        }
    }

    /// Attach the host's single interface.
    pub fn bind(&mut self, port: PortId, ip: Ipv4Addr, mac: MacAddr) {
        self.iface = Some((port, ip, mac));
    }

    /// The host's address.
    pub fn ip(&self) -> Option<Ipv4Addr> {
        self.iface.map(|(_, ip, _)| ip)
    }

    /// Register a planned probe; returns the timer token the network must
    /// schedule at `at`. (Use [`crate::Network::plan_ping`], which does
    /// both.)
    pub fn register_plan(&mut self, at: SimTime, target: Ipv4Addr) -> u64 {
        self.register_probe(at, target, 64)
    }

    /// Register a probe with an explicit TTL (traceroute hops).
    pub fn register_probe(&mut self, at: SimTime, target: Ipv4Addr, ttl: u8) -> u64 {
        let token = self.plans.len() as u64;
        self.plans.push((at, target, ttl));
        self.outcomes.push(PingOutcome {
            target,
            probe_ttl: ttl,
            planned_at: at,
            sent_at: None,
            reply: None,
        });
        token
    }

    /// Traceroute view: for each hop TTL probed toward `target`, the
    /// responding address (a router's Time Exceeded or the destination's
    /// echo reply), in ascending hop order.
    pub fn traceroute_hops(&self, target: Ipv4Addr) -> Vec<(u8, Option<Ipv4Addr>)> {
        let mut hops: Vec<(u8, Option<Ipv4Addr>)> = self
            .outcomes
            .iter()
            .filter(|o| o.target == target && o.probe_ttl != 64)
            .map(|o| (o.probe_ttl, o.reply.map(|r| r.src)))
            .collect();
        hops.sort_by_key(|(ttl, _)| *ttl);
        hops
    }

    /// All probe outcomes, in planning order. Valid after the simulation ran
    /// past the planned times (unanswered probes simply keep `reply: None`).
    pub fn outcomes(&self) -> &[PingOutcome] {
        &self.outcomes
    }

    /// Record `plan_idx` as in flight under the next sequence number.
    fn track_inflight(&mut self, plan_idx: usize) -> u16 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let slot = seq as usize;
        if slot >= self.inflight.len() {
            self.inflight.resize(slot + 1, NOT_INFLIGHT);
        }
        self.inflight[slot] = plan_idx;
        seq
    }

    /// The plan index in flight under `seq`, clearing the slot.
    fn untrack_inflight(&mut self, seq: u16) -> Option<usize> {
        let slot = self.inflight.get_mut(seq as usize)?;
        let plan_idx = std::mem::replace(slot, NOT_INFLIGHT);
        (plan_idx != NOT_INFLIGHT).then_some(plan_idx)
    }

    fn send_echo(&mut self, now: SimTime, plan_idx: usize, out: &mut Vec<Action>) {
        let (port, ip, mac) = self.iface.expect("host bound");
        let (_, target, probe_ttl) = self.plans[plan_idx];
        let Some(mac_target) = self.arp_lookup(target) else {
            return; // caller guarantees resolution; defensive
        };
        let seq = self.track_inflight(plan_idx);
        self.outcomes[plan_idx].sent_at = Some(now);
        out.push(Action::send(
            port,
            Frame {
                src: mac,
                dst: mac_target,
                payload: Payload::Ipv4(Ipv4Packet {
                    src: ip,
                    dst: target,
                    ttl: probe_ttl,
                    payload: IcmpMessage::EchoRequest {
                        id: self.icmp_id,
                        seq,
                    },
                }),
            },
        ));
    }

    /// Timer fired for plan `token`: send the probe, ARPing first if
    /// needed. Actions are appended to `out`.
    pub fn on_timer_into(&mut self, now: SimTime, token: u64, out: &mut Vec<Action>) {
        let plan_idx = token as usize;
        let Some(&(_, target, _)) = self.plans.get(plan_idx) else {
            return;
        };
        if self.arp_lookup(target).is_some() {
            self.send_echo(now, plan_idx, out);
        } else {
            let (port, ip, mac) = self.iface.expect("host bound");
            let waiting = match self.awaiting_arp.binary_search_by_key(&target, |(k, _)| *k) {
                Ok(pos) => &mut self.awaiting_arp[pos].1,
                Err(pos) => {
                    self.awaiting_arp.insert(pos, (target, Vec::new()));
                    &mut self.awaiting_arp[pos].1
                }
            };
            waiting.push(plan_idx);
            // Re-ARP on every new probe burst while unresolved, so a target
            // that was down earlier can still resolve later in the campaign.
            if waiting.len() % 8 == 1 {
                out.push(Action::send(port, Frame::arp_request(ip, mac, target)));
            }
        }
    }

    /// [`on_timer_into`](Self::on_timer_into), collecting into a fresh
    /// vector.
    pub fn on_timer(&mut self, now: SimTime, token: u64) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_timer_into(now, token, &mut out);
        out
    }

    /// Handle an incoming frame, appending the resulting actions to `out`.
    pub fn on_frame_into(
        &mut self,
        now: SimTime,
        _port: PortId,
        frame: Frame,
        out: &mut Vec<Action>,
    ) {
        let Some((port, ip, mac)) = self.iface else {
            return;
        };
        match frame.payload {
            Payload::Arp(arp) => match arp.op {
                ArpOp::Request => {
                    if arp.target_ip == ip {
                        out.push(Action::send(port, Frame::arp_reply(&arp, ip, mac)));
                    }
                    self.arp_learn(arp.sender_ip, arp.sender_mac);
                }
                ArpOp::Reply => {
                    self.arp_learn(arp.sender_ip, arp.sender_mac);
                    if let Ok(pos) = self
                        .awaiting_arp
                        .binary_search_by_key(&arp.sender_ip, |(k, _)| *k)
                    {
                        let (_, waiting) = self.awaiting_arp.remove(pos);
                        for plan_idx in waiting {
                            self.send_echo(now, plan_idx, out);
                        }
                    }
                }
            },
            Payload::Ipv4(pkt) => {
                if pkt.dst != ip {
                    return;
                }
                match pkt.payload {
                    IcmpMessage::EchoReply { id, seq } if id == self.icmp_id => {
                        if let Some(plan_idx) = self.untrack_inflight(seq) {
                            let sent = self.outcomes[plan_idx]
                                .sent_at
                                .expect("in-flight implies sent");
                            self.outcomes[plan_idx].reply = Some(PingReply {
                                rtt: now.since(sent),
                                ttl: pkt.ttl,
                                src: pkt.src,
                                kind: ReplyKind::EchoReply,
                            });
                        }
                    }
                    IcmpMessage::TimeExceeded { id, seq, .. } if id == self.icmp_id => {
                        if let Some(plan_idx) = self.untrack_inflight(seq) {
                            let sent = self.outcomes[plan_idx]
                                .sent_at
                                .expect("in-flight implies sent");
                            self.outcomes[plan_idx].reply = Some(PingReply {
                                rtt: now.since(sent),
                                ttl: pkt.ttl,
                                src: pkt.src,
                                kind: ReplyKind::TimeExceeded,
                            });
                        }
                    }
                    IcmpMessage::EchoRequest { id, seq } => {
                        // Be a good citizen: answer pings aimed at us.
                        out.push(Action::Send {
                            port,
                            frame: Frame {
                                src: mac,
                                dst: frame.src,
                                payload: Payload::Ipv4(Ipv4Packet {
                                    src: ip,
                                    dst: pkt.src,
                                    ttl: 64,
                                    payload: IcmpMessage::EchoReply { id, seq },
                                }),
                            },
                            after: SimDuration::from_micros(50),
                        });
                    }
                    IcmpMessage::EchoReply { .. } | IcmpMessage::TimeExceeded { .. } => {
                        // someone else's probes
                    }
                }
            }
        }
    }

    /// [`on_frame_into`](Self::on_frame_into), collecting into a fresh
    /// vector.
    pub fn on_frame(&mut self, now: SimTime, port: PortId, frame: Frame) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_frame_into(now, port, frame, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound_host() -> (Host, Ipv4Addr, MacAddr) {
        let mut h = Host::new(42);
        let ip = "10.0.0.1".parse().unwrap();
        let mac = MacAddr::from_index(1);
        h.bind(PortId(0), ip, mac);
        (h, ip, mac)
    }

    #[test]
    fn probe_without_arp_sends_arp_first() {
        let (mut h, _, _) = bound_host();
        let target: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let token = h.register_plan(SimTime(100), target);
        let acts = h.on_timer(SimTime(100), token);
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send { frame, .. } => {
                assert!(matches!(frame.payload, Payload::Arp(a) if a.op == ArpOp::Request));
            }
            _ => panic!(),
        }
        assert_eq!(h.outcomes()[0].sent_at, None);
    }

    #[test]
    fn arp_reply_flushes_pending_probes_and_reply_records_rtt_ttl() {
        let (mut h, _my_ip, my_mac) = bound_host();
        let target: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let t_mac = MacAddr::from_index(9);
        let t0 = h.register_plan(SimTime(100), target);
        let t1 = h.register_plan(SimTime(100), target);
        h.on_timer(SimTime(100), t0);
        h.on_timer(SimTime(100), t1);

        // ARP reply at t=200 → both queued echoes go out.
        let arp_reply = Frame {
            src: t_mac,
            dst: my_mac,
            payload: Payload::Arp(crate::frame::ArpPacket {
                op: ArpOp::Reply,
                sender_ip: target,
                sender_mac: t_mac,
                target_ip: "10.0.0.1".parse().unwrap(),
                target_mac: my_mac,
            }),
        };
        let acts = h.on_frame(SimTime(200), PortId(0), arp_reply);
        assert_eq!(acts.len(), 2);
        assert_eq!(h.outcomes()[0].sent_at, Some(SimTime(200)));

        // Echo reply for seq 0 arrives 1 ms later with TTL 255.
        let reply = Frame {
            src: t_mac,
            dst: my_mac,
            payload: Payload::Ipv4(Ipv4Packet {
                src: target,
                dst: "10.0.0.1".parse().unwrap(),
                ttl: 255,
                payload: IcmpMessage::EchoReply { id: 42, seq: 0 },
            }),
        };
        h.on_frame(SimTime(200 + 1_000_000), PortId(0), reply);
        let o = h.outcomes()[0];
        let r = o.reply.expect("reply recorded");
        assert_eq!(r.rtt, SimDuration::from_millis(1));
        assert_eq!(r.ttl, 255);
        assert_eq!(r.src, target);
        // Second probe still unanswered.
        assert!(h.outcomes()[1].reply.is_none());
    }

    #[test]
    fn foreign_icmp_id_is_ignored() {
        let (mut h, my_ip, my_mac) = bound_host();
        let target: Ipv4Addr = "10.0.0.9".parse().unwrap();
        let tok = h.register_plan(SimTime(0), target);
        h.arp_learn(target, MacAddr::from_index(9));
        h.on_timer(SimTime(0), tok);
        let reply = Frame {
            src: MacAddr::from_index(9),
            dst: my_mac,
            payload: Payload::Ipv4(Ipv4Packet {
                src: target,
                dst: my_ip,
                ttl: 255,
                payload: IcmpMessage::EchoReply { id: 1, seq: 0 }, // wrong id
            }),
        };
        h.on_frame(SimTime(500), PortId(0), reply);
        assert!(h.outcomes()[0].reply.is_none());
    }

    #[test]
    fn answers_arp_and_echo_requests() {
        let (mut h, my_ip, _) = bound_host();
        let req = Frame::arp_request("10.0.0.9".parse().unwrap(), MacAddr::from_index(9), my_ip);
        assert_eq!(h.on_frame(SimTime(0), PortId(0), req).len(), 1);
        let echo = Frame {
            src: MacAddr::from_index(9),
            dst: MacAddr::from_index(1),
            payload: Payload::Ipv4(Ipv4Packet {
                src: "10.0.0.9".parse().unwrap(),
                dst: my_ip,
                ttl: 33,
                payload: IcmpMessage::EchoRequest { id: 5, seq: 5 },
            }),
        };
        let acts = h.on_frame(SimTime(0), PortId(0), echo);
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn unresolvable_target_never_sends() {
        let (mut h, _, _) = bound_host();
        let ghost: Ipv4Addr = "10.0.0.250".parse().unwrap();
        for i in 0..5 {
            let tok = h.register_plan(SimTime(i), ghost);
            h.on_timer(SimTime(i), tok);
        }
        assert!(h
            .outcomes()
            .iter()
            .all(|o| o.sent_at.is_none() && o.reply.is_none()));
    }
}
