//! A transparent MAC-learning layer-2 switch.
//!
//! Switches are the invisible middlemen of the paper: IXP fabrics and
//! remote-peering pseudowires are built from them, and because a switch
//! never touches the IP header, traffic crossing half the planet through
//! one arrives with its TTL intact — indistinguishable on layer 3 from a
//! local hop. That invisibility is the phenomenon under study.

use crate::frame::{Frame, MacAddr};
use crate::sim::{Action, PortId};

/// Sentinel for "no port learned yet" in the dense table.
const UNLEARNED: u16 = u16::MAX;

/// MAC-learning switch state.
///
/// The simulator allocates MACs sequentially ([`MacAddr::from_index`]),
/// so the learned-port table is a dense array indexed by the MAC's
/// allocation index — one bounds-checked load per lookup instead of a
/// hash — with a tiny linear-scan side table for addresses outside the
/// allocator's namespace (hand-built test frames).
#[derive(Debug, Default)]
pub struct Switch {
    /// Learned egress port per MAC allocation index; [`UNLEARNED`] marks
    /// empty slots. Grows on demand to the highest index seen.
    by_index: Vec<u16>,
    /// Learned entries for non-allocator addresses.
    other: Vec<(MacAddr, PortId)>,
}

impl Switch {
    /// A switch with an empty MAC table.
    pub fn new() -> Self {
        Self::default()
    }

    fn learn(&mut self, mac: MacAddr, port: PortId) {
        match mac.as_index() {
            Some(idx) => {
                let idx = idx as usize;
                if idx >= self.by_index.len() {
                    self.by_index.resize(idx + 1, UNLEARNED);
                }
                self.by_index[idx] = port.0;
            }
            None => match self.other.iter_mut().find(|(m, _)| *m == mac) {
                Some(entry) => entry.1 = port,
                None => self.other.push((mac, port)),
            },
        }
    }

    fn lookup(&self, mac: MacAddr) -> Option<PortId> {
        match mac.as_index() {
            Some(idx) => match self.by_index.get(idx as usize) {
                Some(&p) if p != UNLEARNED => Some(PortId(p)),
                _ => None,
            },
            None => self.other.iter().find(|(m, _)| *m == mac).map(|&(_, p)| p),
        }
    }

    /// Handle a frame arriving on `in_port` of a switch with `n_ports`
    /// ports: learn the source, then forward (unicast if known, flood
    /// otherwise). Frames are forwarded unmodified — no TTL decrement, no
    /// address rewrite. Actions are appended to `out`.
    pub fn on_frame_into(
        &mut self,
        in_port: PortId,
        n_ports: u16,
        frame: Frame,
        out: &mut Vec<Action>,
    ) {
        self.learn(frame.src, in_port);
        match self.lookup(frame.dst) {
            Some(port) if !frame.dst.is_broadcast() => {
                // A hairpin (destination lives where the frame came from)
                // is dropped.
                if port != in_port {
                    out.push(Action::send(port, frame));
                }
            }
            _ => out.extend(
                (0..n_ports)
                    .map(PortId)
                    .filter(|p| *p != in_port)
                    .map(|p| Action::send(p, frame)),
            ),
        }
    }

    /// [`on_frame_into`](Self::on_frame_into), collecting into a fresh
    /// vector.
    pub fn on_frame(&mut self, in_port: PortId, n_ports: u16, frame: Frame) -> Vec<Action> {
        let mut out = Vec::new();
        self.on_frame_into(in_port, n_ports, frame, &mut out);
        out
    }

    /// Number of learned MAC entries (diagnostics).
    pub fn learned(&self) -> usize {
        self.by_index.iter().filter(|&&p| p != UNLEARNED).count() + self.other.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, IcmpMessage, Ipv4Packet, MacAddr, Payload};

    fn frame(src: u64, dst: MacAddr) -> Frame {
        Frame {
            src: MacAddr::from_index(src),
            dst,
            payload: Payload::Ipv4(Ipv4Packet {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.0.0.2".parse().unwrap(),
                ttl: 64,
                payload: IcmpMessage::EchoRequest { id: 1, seq: 1 },
            }),
        }
    }

    fn out_ports(actions: &[Action]) -> Vec<u16> {
        actions
            .iter()
            .map(|a| match a {
                Action::Send { port, .. } => port.0,
                _ => panic!("switch only sends"),
            })
            .collect()
    }

    #[test]
    fn floods_unknown_destination() {
        let mut sw = Switch::new();
        let acts = sw.on_frame(PortId(0), 4, frame(1, MacAddr::from_index(9)));
        assert_eq!(out_ports(&acts), vec![1, 2, 3]);
    }

    #[test]
    fn floods_broadcast() {
        let mut sw = Switch::new();
        let acts = sw.on_frame(PortId(2), 4, frame(1, MacAddr::BROADCAST));
        assert_eq!(out_ports(&acts), vec![0, 1, 3]);
    }

    #[test]
    fn learns_and_unicasts() {
        let mut sw = Switch::new();
        // A talks from port 0; B replies from port 3.
        sw.on_frame(PortId(0), 4, frame(1, MacAddr::BROADCAST));
        let acts = sw.on_frame(PortId(3), 4, frame(2, MacAddr::from_index(1)));
        assert_eq!(out_ports(&acts), vec![0]);
        assert_eq!(sw.learned(), 2);
    }

    #[test]
    fn drops_frame_hairpinning_to_ingress() {
        let mut sw = Switch::new();
        sw.on_frame(PortId(1), 4, frame(1, MacAddr::BROADCAST));
        let acts = sw.on_frame(PortId(1), 4, frame(2, MacAddr::from_index(1)));
        assert!(acts.is_empty());
    }

    #[test]
    fn learns_addresses_outside_the_allocator_namespace() {
        // A hand-built MAC (not from_index-decodable) must still be
        // learned and unicast to, via the side table.
        let mut sw = Switch::new();
        let foreign = MacAddr([0xAA, 1, 2, 3, 4, 5]);
        let mut f = frame(1, MacAddr::BROADCAST);
        f.src = foreign;
        sw.on_frame(PortId(2), 4, f);
        let acts = sw.on_frame(PortId(0), 4, frame(1, foreign));
        assert_eq!(out_ports(&acts), vec![2]);
        assert_eq!(sw.learned(), 2);
    }

    #[test]
    fn forwarding_preserves_payload_exactly() {
        let mut sw = Switch::new();
        let f = frame(1, MacAddr::from_index(9));
        let acts = sw.on_frame(PortId(0), 2, f);
        match &acts[0] {
            Action::Send { frame: out, .. } => assert_eq!(*out, f),
            _ => panic!(),
        }
    }
}
