//! A transparent MAC-learning layer-2 switch.
//!
//! Switches are the invisible middlemen of the paper: IXP fabrics and
//! remote-peering pseudowires are built from them, and because a switch
//! never touches the IP header, traffic crossing half the planet through
//! one arrives with its TTL intact — indistinguishable on layer 3 from a
//! local hop. That invisibility is the phenomenon under study.

use crate::frame::Frame;
use crate::sim::{Action, PortId};
use std::collections::HashMap;

/// MAC-learning switch state.
#[derive(Debug, Default)]
pub struct Switch {
    table: HashMap<crate::frame::MacAddr, PortId>,
}

impl Switch {
    /// A switch with an empty MAC table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle a frame arriving on `in_port` of a switch with `n_ports`
    /// ports: learn the source, then forward (unicast if known, flood
    /// otherwise). Frames are forwarded unmodified — no TTL decrement, no
    /// address rewrite.
    pub fn on_frame(&mut self, in_port: PortId, n_ports: u16, frame: Frame) -> Vec<Action> {
        self.table.insert(frame.src, in_port);
        match self.table.get(&frame.dst) {
            Some(&out) if !frame.dst.is_broadcast() => {
                if out == in_port {
                    // Destination lives where the frame came from; drop.
                    Vec::new()
                } else {
                    vec![Action::send(out, frame)]
                }
            }
            _ => (0..n_ports)
                .map(PortId)
                .filter(|p| *p != in_port)
                .map(|p| Action::send(p, frame))
                .collect(),
        }
    }

    /// Number of learned MAC entries (diagnostics).
    pub fn learned(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, IcmpMessage, Ipv4Packet, MacAddr, Payload};

    fn frame(src: u64, dst: MacAddr) -> Frame {
        Frame {
            src: MacAddr::from_index(src),
            dst,
            payload: Payload::Ipv4(Ipv4Packet {
                src: "10.0.0.1".parse().unwrap(),
                dst: "10.0.0.2".parse().unwrap(),
                ttl: 64,
                payload: IcmpMessage::EchoRequest { id: 1, seq: 1 },
            }),
        }
    }

    fn out_ports(actions: &[Action]) -> Vec<u16> {
        actions
            .iter()
            .map(|a| match a {
                Action::Send { port, .. } => port.0,
                _ => panic!("switch only sends"),
            })
            .collect()
    }

    #[test]
    fn floods_unknown_destination() {
        let mut sw = Switch::new();
        let acts = sw.on_frame(PortId(0), 4, frame(1, MacAddr::from_index(9)));
        assert_eq!(out_ports(&acts), vec![1, 2, 3]);
    }

    #[test]
    fn floods_broadcast() {
        let mut sw = Switch::new();
        let acts = sw.on_frame(PortId(2), 4, frame(1, MacAddr::BROADCAST));
        assert_eq!(out_ports(&acts), vec![0, 1, 3]);
    }

    #[test]
    fn learns_and_unicasts() {
        let mut sw = Switch::new();
        // A talks from port 0; B replies from port 3.
        sw.on_frame(PortId(0), 4, frame(1, MacAddr::BROADCAST));
        let acts = sw.on_frame(PortId(3), 4, frame(2, MacAddr::from_index(1)));
        assert_eq!(out_ports(&acts), vec![0]);
        assert_eq!(sw.learned(), 2);
    }

    #[test]
    fn drops_frame_hairpinning_to_ingress() {
        let mut sw = Switch::new();
        sw.on_frame(PortId(1), 4, frame(1, MacAddr::BROADCAST));
        let acts = sw.on_frame(PortId(1), 4, frame(2, MacAddr::from_index(1)));
        assert!(acts.is_empty());
    }

    #[test]
    fn forwarding_preserves_payload_exactly() {
        let mut sw = Switch::new();
        let f = frame(1, MacAddr::from_index(9));
        let acts = sw.on_frame(PortId(0), 2, f);
        match &acts[0] {
            Action::Send { frame: out, .. } => assert_eq!(*out, f),
            _ => panic!(),
        }
    }
}
