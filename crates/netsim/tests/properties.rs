//! Property-based tests on the packet simulator's invariants.

use proptest::prelude::*;
use rp_netsim::event::{Event, EventKey, EventQueue};
use rp_netsim::{
    CongestionEpisode, DelayModel, Frame, IcmpMessage, Ipv4Packet, MacAddr, Network, NodeId,
    Payload, PortId, RouterBehavior, Switch,
};
use rp_types::{seed, SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Run the epoch-barrier scheduler in miniature over bare event queues:
/// `n_shards` queues, windows bounded by `t_min + L`, and "cross-shard"
/// spawns delivered only at the barrier between windows. Returns the
/// canonical merged trace — per window, pops from all shards sorted by
/// `(time, key)`, windows concatenated.
///
/// Each entry is `(time, creator, spawn_target)`; a `Some` target makes the
/// popped event spawn a follow-up event at `time + L + (creator % 3)` keyed
/// by the spawner, exercising the epoch edge (`+ 0` lands exactly on the
/// next window's horizon).
fn run_barrier_model(n_shards: usize, entries: &[(u64, u32, Option<u32>)]) -> Vec<(u64, u32, u64)> {
    const L: u64 = 7;
    let shard_of = |c: u32| (c as usize) % n_shards;
    let mut queues: Vec<EventQueue> = (0..n_shards).map(|_| EventQueue::new()).collect();
    let mut seqs = [0u64; 8];
    let mut spawns: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    for &(t, c, spawn) in entries {
        let seq = seqs[c as usize];
        seqs[c as usize] += 1;
        let token = (u64::from(c) << 32) | seq;
        if let Some(d) = spawn {
            spawns.insert(token, d);
        }
        queues[shard_of(c)].push(
            SimTime(t),
            EventKey { creator: c, seq },
            Event::Timer {
                node: NodeId(c),
                token,
            },
        );
    }
    let mut trace: Vec<(u64, u32, u64)> = Vec::new();
    loop {
        let t_min = queues.iter_mut().filter_map(|q| q.peek_time()).min();
        let Some(t_min) = t_min else { break };
        let horizon = SimTime(t_min.0 + L);
        let mut window: Vec<(u64, u32, u64)> = Vec::new();
        let mut handoffs: Vec<(usize, SimTime, EventKey, Event)> = Vec::new();
        for q in queues.iter_mut() {
            while let Some(at) = q.peek_time() {
                if at >= horizon {
                    break;
                }
                let (at, ev) = q.pop().expect("peeked");
                let Event::Timer { node, token } = ev else {
                    unreachable!("model pushes only timers")
                };
                let (c, seq) = ((token >> 32) as u32, token & 0xffff_ffff);
                window.push((at.0, c, seq));
                if let Some(d) = spawns.remove(&token) {
                    let spawner = node.0;
                    let sseq = seqs[spawner as usize];
                    seqs[spawner as usize] += 1;
                    let skey = EventKey {
                        creator: spawner,
                        seq: sseq,
                    };
                    let stoken = (u64::from(spawner) << 32) | sseq;
                    let sat = SimTime(at.0 + L + u64::from(spawner) % 3);
                    handoffs.push((
                        shard_of(d),
                        sat,
                        skey,
                        Event::Timer {
                            node: NodeId(d),
                            token: stoken,
                        },
                    ));
                }
            }
        }
        // The canonical merge: within a window, order is (time, key).
        window.sort_unstable_by_key(|&(t, c, s)| (t, c, s));
        trace.extend(window);
        // The barrier: spawned events enter destination queues only now.
        for (dst, at, key, ev) in handoffs {
            queues[dst].push(at, key, ev);
        }
    }
    trace
}

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_key_order(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(
                SimTime(*t),
                EventKey { creator: 0, seq: i as u64 },
                Event::Timer { node: NodeId(0), token: i as u64 },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((at, Event::Timer { token, .. })) = q.pop() {
            if let Some((lt, ltok)) = last {
                prop_assert!(at >= lt, "time order");
                if at == lt {
                    prop_assert!(token > ltok, "key order within a tick");
                }
            }
            last = Some((at, token));
        }
    }

    /// The ordering theorem behind the sharded data plane: partition keyed
    /// events across any number of queues, run bounded-lag windows with
    /// barrier-deferred cross-shard spawns, and the concatenation of
    /// per-window `(time, key)` merges is exactly the single-queue global
    /// pop order — simultaneous timestamps and spawns landing precisely on
    /// a window horizon included.
    #[test]
    fn sharded_queues_merge_in_global_key_order(
        raw in proptest::collection::vec((0u64..40, 0u32..8, 0u32..16), 1..120),
        n_shards in 2usize..5,
    ) {
        // Third element doubles as the optional spawn target: values in
        // 0..8 spawn a cross-shard follow-up at that node, 8..16 spawn
        // nothing — the vendored proptest has no Option strategy.
        let entries: Vec<(u64, u32, Option<u32>)> = raw
            .iter()
            .map(|&(t, c, s)| (t, c, (s < 8).then_some(s)))
            .collect();
        let reference = run_barrier_model(1, &entries);
        let sharded = run_barrier_model(n_shards, &entries);
        prop_assert_eq!(&reference, &sharded, "merged trace must not depend on the partition");
        // And the merged trace really is globally sorted by (time, key).
        for w in reference.windows(2) {
            prop_assert!(w[0] <= w[1], "global (time, creator, seq) order: {w:?}");
        }
    }

    #[test]
    fn delay_samples_never_undershoot_the_floor(
        base_ms in 0.0f64..50.0,
        jitter in 0.0f64..20.0,
        uniform in 0.0f64..20.0,
        persistent in 0.0f64..10.0,
        rng_seed in any::<u64>(),
    ) {
        let model = DelayModel::with_one_way_ms(base_ms)
            .with_jitter_ms(jitter)
            .with_jitter_uniform_ms(uniform)
            .with_persistent_extra_ms(persistent);
        let mut rng = seed::rng(rng_seed, "delay", 0);
        for k in 0..50u64 {
            let d = model.sample(SimTime(k * 1_000), &mut rng);
            prop_assert!(d >= model.floor(), "{d} < {}", model.floor());
        }
    }

    #[test]
    fn episodes_only_raise_delay_inside_their_window(
        start in 0u64..1_000_000,
        len in 1u64..1_000_000,
        extra in 1.0f64..50.0,
        rng_seed in any::<u64>(),
    ) {
        let episode = CongestionEpisode {
            start: SimTime(start),
            end: SimTime(start + len),
            extra_mean_ms: extra,
        };
        let model = DelayModel::ideal(SimDuration::from_millis(1))
            .with_persistent_episode(episode);
        let mut rng = seed::rng(rng_seed, "episode", 0);
        let before = model.sample(SimTime(start.saturating_sub(1)), &mut rng);
        let inside = model.sample(SimTime(start), &mut rng);
        let after = model.sample(SimTime(start + len), &mut rng);
        prop_assert_eq!(before, SimDuration::from_millis(1));
        prop_assert_eq!(after, SimDuration::from_millis(1));
        prop_assert!(inside > SimDuration::from_millis(1));
    }

    #[test]
    fn switch_never_reflects_or_duplicates(
        in_port in 0u16..8,
        n_ports in 2u16..8,
        dst_idx in 0u64..12,
    ) {
        prop_assume!(in_port < n_ports);
        let mut sw = Switch::new();
        let frame = Frame {
            src: MacAddr::from_index(100),
            dst: MacAddr::from_index(dst_idx),
            payload: Payload::Ipv4(Ipv4Packet {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(10, 0, 0, 2),
                ttl: 64,
                payload: IcmpMessage::EchoRequest { id: 1, seq: 1 },
            }),
        };
        let actions = sw.on_frame(PortId(in_port), n_ports, frame);
        let mut out_ports: Vec<u16> = actions
            .iter()
            .map(|a| match a {
                rp_netsim::sim::Action::Send { port, .. } => port.0,
                _ => unreachable!("switches only send"),
            })
            .collect();
        // Never back out the ingress port.
        prop_assert!(!out_ports.contains(&in_port));
        // Never the same port twice.
        out_ports.sort_unstable();
        let n = out_ports.len();
        out_ports.dedup();
        prop_assert_eq!(n, out_ports.len());
        // Never an out-of-range port.
        prop_assert!(out_ports.iter().all(|p| *p < n_ports));
    }

    #[test]
    fn echo_rtt_scales_with_link_delay(one_way_ms in 0.1f64..80.0, seed_v in any::<u64>()) {
        let mut net = Network::new(seed_v);
        let fabric = net.add_switch();
        let lg = net.add_host();
        let (_, lgp) = net.connect(fabric, lg, DelayModel::ideal(SimDuration::from_micros(10)));
        net.bind_host(lg, lgp, Ipv4Addr::new(10, 0, 0, 1));
        let member = net.add_router(RouterBehavior { initial_ttl: 255, ..Default::default() });
        let (_, mp) = net.connect(
            fabric,
            member,
            DelayModel::ideal(SimDuration::from_millis_f64(one_way_ms)),
        );
        net.bind_router(member, mp, Ipv4Addr::new(10, 0, 0, 9));
        for k in 0..3u64 {
            net.plan_ping(lg, SimTime::ZERO + SimDuration::from_secs(k), Ipv4Addr::new(10, 0, 0, 9));
        }
        net.run_to_completion();
        let min = net
            .host(lg)
            .outcomes()
            .iter()
            .filter_map(|o| o.reply)
            .map(|r| r.rtt.as_millis_f64())
            .fold(f64::INFINITY, f64::min);
        // RTT ≥ twice the propagation; ≤ that plus a generous processing
        // allowance.
        prop_assert!(min >= 2.0 * one_way_ms);
        prop_assert!(min <= 2.0 * one_way_ms + 1.0, "{min} vs {one_way_ms}");
    }

    #[test]
    fn ttl_is_preserved_across_any_switch_chain(chain_len in 1usize..6, seed_v in any::<u64>()) {
        let mut net = Network::new(seed_v);
        let mut switches = vec![net.add_switch()];
        for _ in 1..=chain_len {
            let next = net.add_switch();
            let prev = *switches.last().unwrap();
            net.connect(prev, next, DelayModel::ideal(SimDuration::from_micros(100)));
            switches.push(next);
        }
        let lg = net.add_host();
        let (_, lgp) = net.connect(switches[0], lg, DelayModel::ideal(SimDuration::from_micros(10)));
        net.bind_host(lg, lgp, Ipv4Addr::new(10, 0, 0, 1));
        let member = net.add_router(RouterBehavior { initial_ttl: 255, ..Default::default() });
        let (_, mp) = net.connect(
            *switches.last().unwrap(),
            member,
            DelayModel::ideal(SimDuration::from_micros(10)),
        );
        net.bind_router(member, mp, Ipv4Addr::new(10, 0, 0, 9));
        net.plan_ping(lg, SimTime::ZERO + SimDuration::from_secs(1), Ipv4Addr::new(10, 0, 0, 9));
        net.run_to_completion();
        let reply = net.host(lg).outcomes()[0].reply.expect("reply arrives");
        prop_assert_eq!(reply.ttl, 255, "layer 2 must never touch TTL");
    }
}
