//! Random distributions used by the generators.
//!
//! Implemented here rather than pulled from `rand_distr` to keep the offline
//! dependency set to the sanctioned crates; each sampler is a handful of
//! lines and property-tested below.

use rand::RngExt;

/// Sample a standard normal via the Box–Muller transform.
pub fn standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0): map the open interval (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal with the given parameters of the *underlying* normal.
///
/// Used for the body of the traffic rank-size distribution and for per-AS
/// address-space sizes.
pub fn log_normal<R: RngExt + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Pareto (type I) with scale `x_min > 0` and shape `alpha > 0`.
///
/// Heavy tail for top traffic contributors and large customer cones.
pub fn pareto<R: RngExt + ?Sized>(rng: &mut R, x_min: f64, alpha: f64) -> f64 {
    debug_assert!(x_min > 0.0 && alpha > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>(); // u ∈ (0, 1]
    x_min / u.powf(1.0 / alpha)
}

/// Exponential with rate `lambda > 0` (mean `1/lambda`).
pub fn exponential<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / lambda
}

/// Zipf-like rank weight: `1 / rank^s`, normalized externally.
///
/// Deterministic helper (not a sampler) for rank-size scaffolding.
#[inline]
pub fn zipf_weight(rank: usize, s: f64) -> f64 {
    debug_assert!(rank >= 1);
    1.0 / (rank as f64).powf(s)
}

/// Sample an index in `[0, weights.len())` proportionally to `weights`.
///
/// Linear scan; the generators use it on small candidate sets (providers for
/// one AS, cities for one PoP). Returns `None` for an empty or all-zero
/// weight vector.
pub fn weighted_index<R: RngExt + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    let mut target = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if *w > 0.0 {
            target -= *w;
            if target <= 0.0 {
                return Some(i);
            }
        }
    }
    // Floating-point residue: fall back to the last positive weight.
    weights.iter().rposition(|w| *w > 0.0)
}

/// Bernoulli draw with probability `p` (clamped to [0, 1]).
pub fn coin<R: RngExt + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDECAF)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = rng();
        let n = 100_000;
        let mut above_10x = 0usize;
        for _ in 0..n {
            let x = pareto(&mut r, 2.0, 1.5);
            assert!(x >= 2.0);
            if x > 20.0 {
                above_10x += 1;
            }
        }
        // P(X > 10·x_min) = 10^-1.5 ≈ 0.0316.
        let frac = above_10x as f64 / n as f64;
        assert!((frac - 0.0316).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 1.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of log-normal is e^mu.
        assert!((median - 1.0f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_degenerate_inputs() {
        let mut r = rng();
        assert_eq!(weighted_index(&mut r, &[]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_index(&mut r, &[0.0, 5.0]), Some(1));
    }

    #[test]
    fn zipf_weights_decay() {
        assert!(zipf_weight(1, 1.0) > zipf_weight(2, 1.0));
        assert!((zipf_weight(4, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn coin_probability() {
        let mut r = rng();
        let hits = (0..50_000).filter(|_| coin(&mut r, 0.3)).count();
        let frac = hits as f64 / 50_000.0;
        assert!((frac - 0.3).abs() < 0.02, "frac {frac}");
        assert!(!coin(&mut r, 0.0));
        assert!(coin(&mut r, 1.0));
    }
}
