//! Geography: coordinates, great-circle distances, and fiber propagation
//! delay.
//!
//! The paper's detection method works because light in fiber is slow enough
//! that geography shows up in RTTs: roughly 1 ms of one-way delay per 100 km.
//! Its RTT buckets map onto distance scales — [10 ms, 20 ms) "inter-city",
//! [20 ms, 50 ms) "inter-country", [50 ms, ∞) "inter-continental" — and this
//! module is what makes those scales emerge naturally in the simulator
//! instead of being painted on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Propagation speed of light in optical fiber, km per millisecond.
///
/// c / n with n ≈ 1.468 for silica fiber gives ≈ 204 km/ms; published
/// measurement studies round this to ~200 km/ms (equivalently, RTT of
/// ~1 ms per 100 km of fiber path).
pub const FIBER_KM_PER_MS: f64 = 204.0;

/// Ratio of realistic fiber route length to great-circle distance. Real
/// cables follow coasts, rights-of-way, and patch panels; 1.3–1.5 is the
/// conventional "fiber stretch" factor, and we pick the middle.
pub const FIBER_PATH_STRETCH: f64 = 1.4;

/// A continent, used for IXP datasets and membership locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// Africa.
    Africa,
    /// Asia.
    Asia,
    /// Europe.
    Europe,
    /// North and Central America (incl. the Caribbean).
    NorthAmerica,
    /// Oceania.
    Oceania,
    /// South America.
    SouthAmerica,
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "South America",
        };
        f.write_str(name)
    }
}

/// A point on the Earth's surface (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees (positive = north).
    pub lat_deg: f64,
    /// Longitude in degrees (positive = east).
    pub lon_deg: f64,
}

impl GeoPoint {
    /// A point from latitude/longitude in degrees.
    pub const fn new(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint { lat_deg, lon_deg }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (lat2, lon2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// One-way fiber propagation delay to `other`, in milliseconds, assuming
    /// a realistic (stretched) fiber route.
    pub fn fiber_delay_ms(self, other: GeoPoint) -> f64 {
        self.distance_km(other) * FIBER_PATH_STRETCH / FIBER_KM_PER_MS
    }
}

/// A city: the geographic anchor for IXPs, network PoPs, and remote-peering
/// provider endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name (unique within [`WORLD_CITIES`]).
    pub name: &'static str,
    /// Country name.
    pub country: &'static str,
    /// Continent, for locality models.
    pub continent: Continent,
    /// Coordinates.
    pub location: GeoPoint,
}

impl City {
    /// A city record (generator datasets use literals).
    pub const fn new(
        name: &'static str,
        country: &'static str,
        continent: Continent,
        lat: f64,
        lon: f64,
    ) -> Self {
        City {
            name,
            country,
            continent,
            location: GeoPoint::new(lat, lon),
        }
    }
}

/// World city database covering every location named by the paper's two IXP
/// datasets plus enough additional metros to place remote members on all
/// populated continents.
pub const WORLD_CITIES: &[City] = &[
    // Europe
    City::new("Amsterdam", "Netherlands", Continent::Europe, 52.37, 4.90),
    City::new("Frankfurt", "Germany", Continent::Europe, 50.11, 8.68),
    City::new("London", "UK", Continent::Europe, 51.51, -0.13),
    City::new("Paris", "France", Continent::Europe, 48.86, 2.35),
    City::new("Warsaw", "Poland", Continent::Europe, 52.23, 21.01),
    City::new("Moscow", "Russia", Continent::Europe, 55.76, 37.62),
    City::new("Vienna", "Austria", Continent::Europe, 48.21, 16.37),
    City::new("Milan", "Italy", Continent::Europe, 45.46, 9.19),
    City::new("Turin", "Italy", Continent::Europe, 45.07, 7.69),
    City::new("Rome", "Italy", Continent::Europe, 41.90, 12.50),
    City::new("Padua", "Italy", Continent::Europe, 45.41, 11.88),
    City::new("Lyon", "France", Continent::Europe, 45.76, 4.84),
    City::new("Stockholm", "Sweden", Continent::Europe, 59.33, 18.06),
    City::new("Dublin", "Ireland", Continent::Europe, 53.35, -6.26),
    City::new("Madrid", "Spain", Continent::Europe, 40.42, -3.70),
    City::new("Barcelona", "Spain", Continent::Europe, 41.39, 2.17),
    City::new("Budapest", "Hungary", Continent::Europe, 47.50, 19.04),
    City::new("Prague", "Czechia", Continent::Europe, 50.08, 14.44),
    City::new("Zurich", "Switzerland", Continent::Europe, 47.37, 8.54),
    City::new("Brussels", "Belgium", Continent::Europe, 50.85, 4.35),
    City::new("Copenhagen", "Denmark", Continent::Europe, 55.68, 12.57),
    City::new("Oslo", "Norway", Continent::Europe, 59.91, 10.75),
    City::new("Helsinki", "Finland", Continent::Europe, 60.17, 24.94),
    City::new("Lisbon", "Portugal", Continent::Europe, 38.72, -9.14),
    City::new("Athens", "Greece", Continent::Europe, 37.98, 23.73),
    City::new("Bucharest", "Romania", Continent::Europe, 44.43, 26.10),
    City::new("Kyiv", "Ukraine", Continent::Europe, 50.45, 30.52),
    City::new("Istanbul", "Turkey", Continent::Europe, 41.01, 28.98),
    City::new("Geneva", "Switzerland", Continent::Europe, 46.20, 6.14),
    City::new("Manchester", "UK", Continent::Europe, 53.48, -2.24),
    // North America
    City::new("New York", "USA", Continent::NorthAmerica, 40.71, -74.01),
    City::new("Seattle", "USA", Continent::NorthAmerica, 47.61, -122.33),
    City::new("Toronto", "Canada", Continent::NorthAmerica, 43.65, -79.38),
    City::new("Miami", "USA", Continent::NorthAmerica, 25.76, -80.19),
    City::new(
        "Los Angeles",
        "USA",
        Continent::NorthAmerica,
        34.05,
        -118.24,
    ),
    City::new("Chicago", "USA", Continent::NorthAmerica, 41.88, -87.63),
    City::new("Ashburn", "USA", Continent::NorthAmerica, 39.04, -77.49),
    City::new("Dallas", "USA", Continent::NorthAmerica, 32.78, -96.80),
    City::new("San Jose", "USA", Continent::NorthAmerica, 37.34, -121.89),
    City::new("Montreal", "Canada", Continent::NorthAmerica, 45.50, -73.57),
    City::new(
        "Vancouver",
        "Canada",
        Continent::NorthAmerica,
        49.28,
        -123.12,
    ),
    City::new(
        "Mexico City",
        "Mexico",
        Continent::NorthAmerica,
        19.43,
        -99.13,
    ),
    City::new(
        "Panama City",
        "Panama",
        Continent::NorthAmerica,
        8.98,
        -79.52,
    ),
    // South America
    City::new(
        "Sao Paulo",
        "Brazil",
        Continent::SouthAmerica,
        -23.55,
        -46.63,
    ),
    City::new(
        "Buenos Aires",
        "Argentina",
        Continent::SouthAmerica,
        -34.60,
        -58.38,
    ),
    City::new(
        "Rio de Janeiro",
        "Brazil",
        Continent::SouthAmerica,
        -22.91,
        -43.17,
    ),
    City::new("Santiago", "Chile", Continent::SouthAmerica, -33.45, -70.67),
    City::new("Bogota", "Colombia", Continent::SouthAmerica, 4.71, -74.07),
    City::new("Lima", "Peru", Continent::SouthAmerica, -12.05, -77.04),
    City::new(
        "Caracas",
        "Venezuela",
        Continent::SouthAmerica,
        10.48,
        -66.90,
    ),
    City::new(
        "Porto Alegre",
        "Brazil",
        Continent::SouthAmerica,
        -30.03,
        -51.23,
    ),
    // Asia
    City::new("Hong Kong", "China", Continent::Asia, 22.32, 114.17),
    City::new("Tokyo", "Japan", Continent::Asia, 35.68, 139.69),
    City::new("Seoul", "South Korea", Continent::Asia, 37.57, 126.98),
    City::new("Singapore", "Singapore", Continent::Asia, 1.35, 103.82),
    City::new("Mumbai", "India", Continent::Asia, 19.08, 72.88),
    City::new("Jakarta", "Indonesia", Continent::Asia, -6.21, 106.85),
    City::new("Taipei", "Taiwan", Continent::Asia, 25.03, 121.57),
    City::new("Bangkok", "Thailand", Continent::Asia, 13.76, 100.50),
    City::new("Manila", "Philippines", Continent::Asia, 14.60, 120.98),
    City::new("Dubai", "UAE", Continent::Asia, 25.20, 55.27),
    #[allow(clippy::approx_constant)] // Kuala Lumpur really is at 3.14 N
    City::new("Kuala Lumpur", "Malaysia", Continent::Asia, 3.14, 101.69),
    // Africa
    City::new(
        "Johannesburg",
        "South Africa",
        Continent::Africa,
        -26.20,
        28.05,
    ),
    City::new("Nairobi", "Kenya", Continent::Africa, -1.29, 36.82),
    City::new("Lagos", "Nigeria", Continent::Africa, 6.52, 3.38),
    City::new("Cairo", "Egypt", Continent::Africa, 30.04, 31.24),
    City::new(
        "Cape Town",
        "South Africa",
        Continent::Africa,
        -33.92,
        18.42,
    ),
    // Oceania
    City::new("Sydney", "Australia", Continent::Oceania, -33.87, 151.21),
    City::new(
        "Auckland",
        "New Zealand",
        Continent::Oceania,
        -36.85,
        174.76,
    ),
];

/// Look up a city from [`WORLD_CITIES`] by name. Panics on a miss: dataset
/// construction uses literal names, so a miss is a programming error.
pub fn city(name: &str) -> City {
    *WORLD_CITIES
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown city: {name}"))
}

/// Look up a city by name, returning `None` on a miss.
pub fn try_city(name: &str) -> Option<City> {
    WORLD_CITIES.iter().find(|c| c.name == name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        // Amsterdam–London ≈ 360 km; Amsterdam–Hong Kong ≈ 9,300 km.
        let ams = city("Amsterdam").location;
        let lon = city("London").location;
        let hkg = city("Hong Kong").location;
        let d1 = ams.distance_km(lon);
        assert!((330.0..400.0).contains(&d1), "AMS-LON {d1} km");
        let d2 = ams.distance_km(hkg);
        assert!((9_000.0..9_600.0).contains(&d2), "AMS-HKG {d2} km");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = city("Tokyo").location;
        let b = city("Seattle").location;
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
        assert!(a.distance_km(a) < 1e-9);
    }

    #[test]
    fn fiber_delay_scales_with_paper_buckets() {
        // Intra-metro: well under the 10 ms remoteness threshold (RTT).
        let ams = city("Amsterdam").location;
        let fra = city("Frankfurt").location;
        let rtt_ms = 2.0 * ams.fiber_delay_ms(fra);
        assert!(rtt_ms < 10.0, "AMS-FRA RTT {rtt_ms} ms should be intercity");

        // Intra-European long haul: the 10–50 ms band.
        let mad = city("Madrid").location;
        let rtt_eu = 2.0 * ams.fiber_delay_ms(mad);
        assert!((10.0..50.0).contains(&rtt_eu), "AMS-MAD RTT {rtt_eu} ms");

        // Trans-continental: at or above 50 ms.
        let nyc = city("New York").location;
        let rtt_tc = 2.0 * ams.fiber_delay_ms(nyc);
        assert!(
            rtt_tc >= 50.0,
            "AMS-NYC RTT {rtt_tc} ms should be intercontinental"
        );
    }

    #[test]
    fn all_cities_have_sane_coordinates() {
        for c in WORLD_CITIES {
            assert!((-90.0..=90.0).contains(&c.location.lat_deg), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.location.lon_deg), "{}", c.name);
        }
    }

    #[test]
    fn city_names_are_unique() {
        let mut names: Vec<_> = WORLD_CITIES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn try_city_misses_gracefully() {
        assert!(try_city("Atlantis").is_none());
        assert_eq!(try_city("Tokyo").unwrap().country, "Japan");
    }
}
