//! Simulated time.
//!
//! The discrete-event simulator and the probing campaign both run on a
//! nanosecond-resolution virtual clock. A `u64` nanosecond counter covers
//! ~584 years, comfortably holding the paper's 4-month measurement window
//! (October 2013 – January 2014).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since scenario start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Scenario start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since scenario start.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking: callers comparing loosely-ordered timestamps (e.g. probe
    /// send/receive pairs reordered by filtering) get a sane floor.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3_600)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration::from_secs(d * 86_400)
    }

    /// Construct from fractional milliseconds (e.g. a sampled RTT component).
    /// Negative inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Nanoseconds in the span.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in fractional milliseconds — the unit of every RTT
    /// threshold in the paper.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Integer multiplication, for building schedules.
    #[allow(clippy::should_implement_trait)] // also provided as `ops::Mul` below
    #[inline]
    pub fn mul(self, k: u64) -> Self {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000_000;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        write!(f, "{d}d{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
    }

    #[test]
    fn millis_round_trip() {
        let d = SimDuration::from_millis_f64(12.345);
        assert!((d.as_millis_f64() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn negative_millis_clamp_to_zero() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(400);
        assert_eq!(b.since(a), SimDuration(300));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn four_month_campaign_fits() {
        let end = SimTime::ZERO + SimDuration::from_days(4 * 31);
        assert!(end.nanos() < u64::MAX / 1_000);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::ZERO + SimDuration::from_days(2) + SimDuration::from_secs(3_723);
        assert_eq!(t.to_string(), "2d01:02:03");
        assert_eq!(SimDuration::from_millis_f64(1.5).to_string(), "1.500ms");
    }
}
