//! Strongly-typed identifiers.
//!
//! Raw integers are easy to transpose (an ASN is not an IXP index); newtypes
//! make every cross-subsystem interface self-documenting and let the compiler
//! reject category errors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Autonomous System Number.
///
/// ASNs identify networks as economic/routing entities on layer 3. The paper
/// identifies probed IXP-subnet interfaces by mapping their IP addresses to
/// ASNs (section 3.1, "Identification of networks").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Dense index of a network (AS) inside a generated topology.
///
/// `NetworkId` is an array index, not an ASN: generators hand out ASNs with
/// gaps and reassignments (the ASN-change filter needs those), while
/// `NetworkId` stays stable for the lifetime of a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(pub u32);

impl NetworkId {
    /// Index into a per-network slice.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// Dense index of an organization. One organization may own several ASes
/// (the paper notes ASes are imperfect proxies of organizations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ORG{}", self.0)
    }
}

/// Dense index of an IXP in a scenario's IXP registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IxpId(pub u32);

impl IxpId {
    /// Index into a per-IXP slice.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IxpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IXP{}", self.0)
    }
}

/// Identifier of one member IP interface in one IXP subnet.
///
/// The unit of measurement in section 3 is the *interface*, not the network:
/// a network peering at five IXPs contributes five interfaces, and a network
/// may even hold several interfaces in a single IXP subnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterfaceId {
    /// The IXP whose subnet hosts the interface.
    pub ixp: IxpId,
    /// Position of the interface within that IXP's interface table.
    pub slot: u32,
}

impl fmt::Display for InterfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/if{}", self.ixp, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_forms() {
        assert_eq!(Asn(64500).to_string(), "AS64500");
        assert_eq!(NetworkId(7).to_string(), "N7");
        assert_eq!(OrgId(3).to_string(), "ORG3");
        assert_eq!(IxpId(2).to_string(), "IXP2");
        assert_eq!(
            InterfaceId {
                ixp: IxpId(2),
                slot: 11
            }
            .to_string(),
            "IXP2/if11"
        );
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for slot in 0..10 {
            for ixp in 0..4 {
                set.insert(InterfaceId {
                    ixp: IxpId(ixp),
                    slot,
                });
            }
        }
        assert_eq!(set.len(), 40);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = InterfaceId {
            ixp: IxpId(1),
            slot: 9,
        };
        let b = InterfaceId {
            ixp: IxpId(2),
            slot: 0,
        };
        assert!(a < b);
    }
}
