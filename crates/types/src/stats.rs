//! Replication statistics for Monte-Carlo sweeps.
//!
//! The scenario engine runs every cell of a sweep over N replicate seeds and
//! needs summaries that are (a) bit-reproducible regardless of the order in
//! which parallel workers deliver results, and (b) honest about uncertainty.
//! This module provides the pieces:
//!
//! * [`Accumulator`] — per-cell sample store keyed by replicate index, so
//!   merging partial accumulators is order-independent *exactly* (floating
//!   point summation happens once, over index-sorted values).
//! * [`t_interval`] — Student-t confidence interval for the mean.
//! * [`bootstrap_interval`] — percentile bootstrap CI, deterministically
//!   seeded through [`crate::seed`].
//! * [`paired_deltas`] — per-replicate differences between two cells that
//!   share replicate seeds (common random numbers), the low-variance way to
//!   compare arms.
//!
//! Quantiles: the inverse normal CDF uses Acklam's rational approximation
//! (relative error < 1.2e-9); Student-t quantiles are exact for 1 and 2
//! degrees of freedom and use the Abramowitz & Stegun 26.7.5 Cornish–Fisher
//! expansion otherwise (error < 1e-2 at df = 3, far below sampling noise at
//! the replicate counts sweeps use).

use rand::RngExt;

/// Point summary of one metric over a cell's replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of recorded replicates.
    pub n: usize,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Sample standard deviation, n-1 denominator (0.0 when n < 2).
    pub std_dev: f64,
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Sample store for one (cell, metric), keyed by replicate index.
///
/// Values are kept as `(replicate, value)` pairs and every statistic sorts
/// by replicate index before touching the floats, so two accumulators built
/// from the same observations in different orders — or merged from different
/// partitions — produce bit-identical summaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Accumulator {
    values: Vec<(u64, f64)>,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `value` for replicate `replicate`.
    pub fn record(&mut self, replicate: u64, value: f64) {
        self.values.push((replicate, value));
    }

    /// Absorb every observation from `other`.
    pub fn merge(&mut self, other: &Accumulator) {
        self.values.extend_from_slice(&other.values);
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Values sorted by replicate index (ties broken by bit pattern, so the
    /// order is total even for duplicate indices).
    pub fn ordered(&self) -> Vec<f64> {
        let mut pairs = self.values.clone();
        pairs.sort_by_key(|(rep, v)| (*rep, v.to_bits()));
        pairs.into_iter().map(|(_, v)| v).collect()
    }

    /// Mean / sample standard deviation over the ordered values.
    pub fn summary(&self) -> Summary {
        let xs = self.ordered();
        Summary {
            n: xs.len(),
            mean: mean(&xs),
            std_dev: sample_std(&xs),
        }
    }

    /// Student-t CI for the mean at `confidence` (e.g. 0.95).
    pub fn t_interval(&self, confidence: f64) -> Interval {
        t_interval(&self.ordered(), confidence)
    }

    /// Percentile bootstrap CI for the mean, seeded deterministically.
    pub fn bootstrap_interval(&self, confidence: f64, resamples: usize, seed: u64) -> Interval {
        bootstrap_interval(&self.ordered(), confidence, resamples, seed)
    }
}

/// Per-replicate deltas `a - b` over the replicate indices present in both
/// accumulators, in index order. With common random numbers this is the
/// paired sample whose CI is much tighter than the difference of
/// independent CIs.
pub fn paired_deltas(a: &Accumulator, b: &Accumulator) -> Vec<f64> {
    let mut left = a.values.clone();
    left.sort_by_key(|(rep, v)| (*rep, v.to_bits()));
    let mut right = b.values.clone();
    right.sort_by_key(|(rep, v)| (*rep, v.to_bits()));
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        match left[i].0.cmp(&right[j].0) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                out.push(left[i].1 - right[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation with n-1 denominator (0.0 when n < 2).
pub fn sample_std(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Student-t confidence interval for the mean of `xs`.
///
/// Degenerate inputs collapse to a point interval at the mean: empty or
/// single-observation samples have no spread estimate, so `lo == hi == mean`.
pub fn t_interval(xs: &[f64], confidence: f64) -> Interval {
    let m = mean(xs);
    if xs.len() < 2 {
        return Interval { lo: m, hi: m };
    }
    let df = (xs.len() - 1) as f64;
    let p = 0.5 + confidence.clamp(0.0, 1.0 - 1e-12) / 2.0;
    let half = t_quantile(p, df) * sample_std(xs) / (xs.len() as f64).sqrt();
    Interval {
        lo: m - half,
        hi: m + half,
    }
}

/// Percentile bootstrap CI for the mean of `xs`, resampling `resamples`
/// times with an RNG derived from `(seed, "bootstrap")`. Deterministic for
/// fixed inputs; degenerate inputs collapse to a point interval.
pub fn bootstrap_interval(xs: &[f64], confidence: f64, resamples: usize, seed: u64) -> Interval {
    let m = mean(xs);
    if xs.len() < 2 || resamples == 0 {
        return Interval { lo: m, hi: m };
    }
    let mut rng = crate::seed::rng(seed, "bootstrap", xs.len() as u64);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..xs.len() {
            sum += xs[rng.random_range(0..xs.len())];
        }
        means.push(sum / xs.len() as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let conf = confidence.clamp(0.0, 1.0);
    let alpha = (1.0 - conf) / 2.0;
    let pick = |p: f64| -> f64 {
        let idx = (p * (means.len() - 1) as f64).round() as usize;
        means[idx.min(means.len() - 1)]
    };
    Interval {
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
    }
}

/// Inverse standard normal CDF via Acklam's rational approximation.
///
/// Relative error below 1.2e-9 over (0, 1); `p` outside (0, 1) saturates to
/// ±infinity.
pub fn normal_quantile(p: f64) -> f64 {
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Inverse Student-t CDF for `df` degrees of freedom.
///
/// Exact closed forms for df = 1 (Cauchy) and df = 2; the A&S 26.7.5
/// Cornish–Fisher expansion around the normal quantile otherwise. The
/// expansion is strictly increasing in `p` for every df ≥ 1 (the negative
/// contributions to its derivative are bounded by 15/(384·df³) + 945/(92160·df⁴)
/// < 0.05), which the CI-monotonicity property test relies on.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(df >= 1.0, "t_quantile requires df >= 1 (got {df})");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if df < 1.5 {
        // Cauchy: F^{-1}(p) = tan(pi * (p - 1/2)).
        return (core::f64::consts::PI * (p - 0.5)).tan();
    }
    if df < 2.5 {
        // df = 2: F(t) = 1/2 + t / (2 sqrt(2 + t^2)).
        let a = 2.0 * p - 1.0;
        return a * (2.0 / (1.0 - a * a)).sqrt();
    }
    let x = normal_quantile(p);
    let (x2, v) = (x * x, df);
    let g1 = x * (x2 + 1.0) / 4.0;
    let g2 = x * ((5.0 * x2 + 16.0) * x2 + 3.0) / 96.0;
    let g3 = x * (((3.0 * x2 + 19.0) * x2 + 17.0) * x2 - 15.0) / 384.0;
    let g4 = x * ((((79.0 * x2 + 776.0) * x2 + 1482.0) * x2 - 1920.0) * x2 - 945.0) / 92160.0;
    x + g1 / v + g2 / (v * v) + g3 / (v * v * v) + g4 / (v * v * v * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_matches_reference() {
        // Reference values from standard normal tables.
        for (p, z) in [
            (0.5, 0.0),
            (0.975, 1.959963985),
            (0.995, 2.575829304),
            (0.9995, 3.290526731),
            (0.025, -1.959963985),
        ] {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-6,
                "Phi^-1({p}) = {} != {z}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn t_quantile_matches_reference() {
        // (p, df, t) triples from Student-t tables.
        for (p, df, t, tol) in [
            (0.975, 1.0, 12.7062, 1e-4),
            (0.975, 2.0, 4.30265, 1e-4),
            (0.975, 3.0, 3.18245, 2e-2),
            (0.975, 7.0, 2.36462, 2e-3),
            (0.975, 30.0, 2.04227, 1e-4),
            (0.95, 7.0, 1.89458, 2e-3),
        ] {
            let got = t_quantile(p, df);
            assert!(
                (got - t).abs() < tol,
                "t({p}, df={df}) = {got} != {t} (tol {tol})"
            );
        }
        // Converges to the normal quantile for large df.
        assert!((t_quantile(0.975, 1e6) - normal_quantile(0.975)).abs() < 1e-4);
    }

    #[test]
    fn summary_and_interval_basics() {
        let mut acc = Accumulator::new();
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            acc.record(i as u64, *v);
        }
        let s = acc.summary();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let ci = acc.t_interval(0.95);
        assert!(ci.lo < s.mean && s.mean < ci.hi);
        // half = t(0.975, 7) * std / sqrt(8)
        let expect = 2.36462 * s.std_dev / 8.0f64.sqrt();
        assert!((ci.half_width() - expect).abs() < 0.01);
    }

    #[test]
    fn degenerate_samples_collapse_to_point_intervals() {
        assert_eq!(t_interval(&[], 0.95), Interval { lo: 0.0, hi: 0.0 });
        assert_eq!(t_interval(&[3.5], 0.95), Interval { lo: 3.5, hi: 3.5 });
        assert_eq!(
            bootstrap_interval(&[3.5], 0.95, 100, 7),
            Interval { lo: 3.5, hi: 3.5 }
        );
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let a = bootstrap_interval(&xs, 0.95, 500, 42);
        let b = bootstrap_interval(&xs, 0.95, 500, 42);
        assert_eq!(a, b, "same seed must reproduce the same CI");
        let m = mean(&xs);
        assert!(a.lo <= m && m <= a.hi);
        let other = bootstrap_interval(&xs, 0.95, 500, 43);
        assert!(a != other, "different seeds should move the CI");
    }

    #[test]
    fn merge_is_exactly_order_independent() {
        let obs = [(0u64, 0.1), (1, 0.7), (2, 0.3), (3, 1.9), (4, -2.0)];
        let mut forward = Accumulator::new();
        for (r, v) in obs {
            forward.record(r, v);
        }
        let mut halves = (Accumulator::new(), Accumulator::new());
        for (r, v) in obs.iter().rev() {
            if r % 2 == 0 {
                halves.0.record(*r, *v);
            } else {
                halves.1.record(*r, *v);
            }
        }
        let mut merged = Accumulator::new();
        merged.merge(&halves.1);
        merged.merge(&halves.0);
        assert_eq!(forward.summary(), merged.summary());
        assert_eq!(forward.t_interval(0.95), merged.t_interval(0.95));
        assert_eq!(
            forward.bootstrap_interval(0.95, 200, 9),
            merged.bootstrap_interval(0.95, 200, 9)
        );
    }

    #[test]
    fn paired_deltas_match_by_replicate() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        a.record(0, 1.0);
        a.record(1, 2.0);
        a.record(3, 4.0);
        b.record(1, 0.5);
        b.record(2, 9.0);
        b.record(3, 1.0);
        assert_eq!(paired_deltas(&a, &b), vec![1.5, 3.0]);
    }
}
