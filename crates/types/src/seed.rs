//! Deterministic seed derivation.
//!
//! Every random decision in the workspace descends from one master seed via
//! [`derive()`]: a SplitMix64-style mixer keyed by a domain label and an index.
//! This gives two properties the experiments rely on:
//!
//! 1. **Reproducibility** — the same `WorldConfig` always builds bit-identical
//!    worlds, campaigns, and traffic, so EXPERIMENTS.md numbers regenerate.
//! 2. **Independence under refactoring** — subsystems draw from independent
//!    streams, so adding a random call in one generator cannot silently shift
//!    every downstream experiment (the classic "one extra `random()`" hazard
//!    of sharing a single RNG).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output permutation.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to key per-domain streams by name.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive a child seed from `(master, domain, index)`.
///
/// `domain` names the subsystem ("topology", "campaign", ...) and `index`
/// distinguishes entities within it (network id, interface slot, time bin).
pub fn derive(master: u64, domain: &str, index: u64) -> u64 {
    splitmix64(splitmix64(master ^ fnv1a(domain)).wrapping_add(splitmix64(index)))
}

/// A seeded [`StdRng`] for `(master, domain, index)`.
pub fn rng(master: u64, domain: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive(master, domain, index))
}

/// The `(master, domain)` half of [`derive()`], precomputed. Hot loops that
/// derive one child seed *per event* from a fixed domain (the simulator's
/// per-frame router streams) hash the domain label once and reuse the key,
/// instead of re-running FNV-1a over the label on every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainKey(u64);

/// Precompute the per-domain key for [`derive_from_key`]. For every
/// `index`, `derive_from_key(domain_key(m, d), index) == derive(m, d, index)`.
pub fn domain_key(master: u64, domain: &str) -> DomainKey {
    DomainKey(splitmix64(master ^ fnv1a(domain)))
}

/// [`derive()`] with the `(master, domain)` half precomputed.
#[inline]
pub fn derive_from_key(key: DomainKey, index: u64) -> u64 {
    splitmix64(key.0.wrapping_add(splitmix64(index)))
}

/// A seeded [`StdRng`] for a precomputed domain key and `index`.
#[inline]
pub fn rng_from_key(key: DomainKey, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_from_key(key, index))
}

/// Derive a child seed from `(master, domain, index, subindex)`.
///
/// For per-task streams addressed by two coordinates (IXP × member slot,
/// IXP × time bin). Mixes each coordinate through SplitMix64 separately, so
/// unlike bit-packing (`(a << 32) | b`) no coordinate range can alias
/// another.
pub fn derive2(master: u64, domain: &str, index: u64, subindex: u64) -> u64 {
    splitmix64(
        derive(master, domain, index).wrapping_add(splitmix64(subindex ^ 0xA5A5_A5A5_A5A5_A5A5)),
    )
}

/// A seeded [`StdRng`] for `(master, domain, index, subindex)`.
pub fn rng2(master: u64, domain: &str, index: u64, subindex: u64) -> StdRng {
    StdRng::seed_from_u64(derive2(master, domain, index, subindex))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive(42, "topology", 7), derive(42, "topology", 7));
    }

    #[test]
    fn domains_and_indices_separate_streams() {
        let mut seen = HashSet::new();
        for master in [0u64, 1, 42] {
            for domain in ["topology", "campaign", "traffic"] {
                for index in 0..100 {
                    assert!(
                        seen.insert(derive(master, domain, index)),
                        "collision at ({master}, {domain}, {index})"
                    );
                }
            }
        }
    }

    #[test]
    fn rngs_from_same_seed_agree() {
        let mut a = rng(9, "x", 3);
        let mut b = rng(9, "x", 3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn zero_master_is_not_degenerate() {
        // SplitMix64 of related inputs must still decorrelate.
        let a = derive(0, "d", 0);
        let b = derive(0, "d", 1);
        assert_ne!(a, b);
        assert_ne!(a & 0xFFFF_FFFF, b & 0xFFFF_FFFF);
    }
}
