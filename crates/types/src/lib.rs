#![warn(missing_docs)]

//! # rp-types
//!
//! Foundation crate for the `remote-peering` workspace: strongly-typed
//! identifiers, physical units, simulated time, geography, and the random
//! distributions shared by every substrate.
//!
//! Everything in this workspace is deterministic: randomness flows from a
//! single master seed through the [`seed`] module's mixing functions, so the
//! same configuration always reproduces the same world, the same probing
//! campaign, and the same experiment output.

pub mod dist;
pub mod geo;
pub mod ids;
pub mod seed;
pub mod stats;
pub mod time;
pub mod units;

pub use geo::{Continent, GeoPoint};
pub use ids::{Asn, InterfaceId, IxpId, NetworkId, OrgId};
pub use time::{SimDuration, SimTime};
pub use units::{Bps, Millis};
