//! Physical units: traffic rates and delay magnitudes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A traffic rate in bits per second.
///
/// Stored as `f64`: the studied rates span nine decades (figure 5a plots
/// contributions from ~10 bps to ~1 Gbps on a log axis), far past what makes
/// sense to track in integer bits.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bps(pub f64);

impl Bps {
    /// Zero traffic.
    pub const ZERO: Bps = Bps(0.0);

    /// From gigabits per second.
    #[inline]
    pub fn from_gbps(g: f64) -> Self {
        Bps(g * 1e9)
    }

    /// From megabits per second.
    #[inline]
    pub fn from_mbps(m: f64) -> Self {
        Bps(m * 1e6)
    }

    /// As gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// As megabits per second.
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 / 1e6
    }

    /// Fraction of `total` that `self` represents, in [0, 1]; zero when the
    /// total is zero (an empty traffic mix offloads nothing).
    #[inline]
    pub fn fraction_of(self, total: Bps) -> f64 {
        if total.0 <= 0.0 {
            0.0
        } else {
            (self.0 / total.0).clamp(0.0, 1.0)
        }
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, other: Bps) -> Bps {
        Bps(self.0.max(other.0))
    }

    /// True unless the value overflowed or went NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Bps {
    type Output = Bps;
    #[inline]
    fn add(self, rhs: Bps) -> Bps {
        Bps(self.0 + rhs.0)
    }
}

impl AddAssign for Bps {
    #[inline]
    fn add_assign(&mut self, rhs: Bps) {
        self.0 += rhs.0;
    }
}

impl Sub for Bps {
    type Output = Bps;
    /// Saturating at zero: offload arithmetic repeatedly subtracts realized
    /// potential from remaining traffic, and floating-point residue must not
    /// produce a negative rate.
    #[inline]
    fn sub(self, rhs: Bps) -> Bps {
        Bps((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Bps {
    type Output = Bps;
    #[inline]
    fn mul(self, rhs: f64) -> Bps {
        Bps(self.0 * rhs)
    }
}

impl Div<f64> for Bps {
    type Output = Bps;
    #[inline]
    fn div(self, rhs: f64) -> Bps {
        Bps(self.0 / rhs)
    }
}

impl Sum for Bps {
    fn sum<I: Iterator<Item = Bps>>(iter: I) -> Bps {
        iter.fold(Bps::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Bps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v >= 1e12 {
            write!(f, "{:.2} Tbps", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.2} Gbps", v / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.2} Mbps", v / 1e6)
        } else if v >= 1e3 {
            write!(f, "{:.2} Kbps", v / 1e3)
        } else {
            write!(f, "{:.0} bps", v)
        }
    }
}

/// A delay magnitude in milliseconds — the unit of every threshold in the
/// paper (10 ms remoteness, 20 ms inter-country, 50 ms inter-continental,
/// the 5 ms consistency bound).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Millis(pub f64);

impl Millis {
    /// Zero delay.
    pub const ZERO: Millis = Millis(0.0);

    /// Pointwise minimum.
    #[inline]
    pub fn min(self, other: Millis) -> Millis {
        Millis(self.0.min(other.0))
    }

    /// Pointwise maximum.
    #[inline]
    pub fn max(self, other: Millis) -> Millis {
        Millis(self.0.max(other.0))
    }
}

impl Add for Millis {
    type Output = Millis;
    #[inline]
    fn add(self, rhs: Millis) -> Millis {
        Millis(self.0 + rhs.0)
    }
}

impl Mul<f64> for Millis {
    type Output = Millis;
    #[inline]
    fn mul(self, rhs: f64) -> Millis {
        Millis(self.0 * rhs)
    }
}

impl fmt::Display for Millis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Bps::from_gbps(1.5).0, 1.5e9);
        assert_eq!(Bps::from_mbps(2.0).0, 2e6);
        assert!((Bps(2.5e9).as_gbps() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Bps(3.0) - Bps(5.0), Bps::ZERO);
        assert_eq!(Bps(5.0) - Bps(3.0), Bps(2.0));
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(Bps(5.0).fraction_of(Bps::ZERO), 0.0);
        assert!((Bps(1.0).fraction_of(Bps(4.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Bps = (1..=4).map(|i| Bps(i as f64)).sum();
        assert_eq!(total, Bps(10.0));
    }

    #[test]
    fn display_scales() {
        assert_eq!(Bps(5.48e12).to_string(), "5.48 Tbps");
        assert_eq!(Bps(1.6e9).to_string(), "1.60 Gbps");
        assert_eq!(Bps(230e6).to_string(), "230.00 Mbps");
        assert_eq!(Bps(100.0).to_string(), "100 bps");
        assert_eq!(Millis(10.0).to_string(), "10.000 ms");
    }
}
