//! Property-based tests on the replication-statistics layer: the interval
//! constructions must behave like confidence intervals (widen with the
//! confidence level, bracket the sample mean) and the accumulator must be
//! exactly order-independent, since the sweep engine feeds it from rayon
//! workers in whatever order they finish.

use proptest::prelude::*;
use rp_types::stats::{
    bootstrap_interval, mean, paired_deltas, t_interval, t_quantile, Accumulator,
};

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3f64..1e3, 2..24)
}

proptest! {
    #[test]
    fn t_interval_widens_monotonically_with_confidence(
        xs in arb_sample(),
        lo_conf in 0.5f64..0.9,
        extra in 0.01f64..0.099,
    ) {
        let narrow = t_interval(&xs, lo_conf);
        let wide = t_interval(&xs, lo_conf + extra);
        prop_assert!(
            wide.half_width() >= narrow.half_width() - 1e-12,
            "CI at {:.3} is narrower than at {:.3}: {} < {}",
            lo_conf + extra, lo_conf, wide.half_width(), narrow.half_width()
        );
        // Both always bracket the sample mean.
        let m = mean(&xs);
        prop_assert!(narrow.lo <= m + 1e-9 && m <= narrow.hi + 1e-9);
    }

    #[test]
    fn t_quantile_is_increasing_in_p(
        df in 1.0f64..60.0,
        p in 0.51f64..0.99,
        step in 0.001f64..0.009,
    ) {
        prop_assert!(t_quantile(p + step, df) > t_quantile(p, df));
        // Symmetry of the t distribution.
        prop_assert!((t_quantile(p, df) + t_quantile(1.0 - p, df)).abs() < 1e-9);
    }

    #[test]
    fn bootstrap_interval_contains_the_sample_mean(
        xs in arb_sample(),
        seed in any::<u64>(),
    ) {
        let ci = bootstrap_interval(&xs, 0.95, 300, seed);
        let m = mean(&xs);
        // Resample means concentrate around the sample mean; a 95%
        // percentile interval over 300 of them brackets it (tolerance
        // absorbs ulp-level ties when the sample is nearly constant).
        let tol = 1e-9 * (1.0 + m.abs());
        prop_assert!(
            ci.lo <= m + tol && m <= ci.hi + tol,
            "bootstrap CI [{}, {}] misses mean {m}", ci.lo, ci.hi
        );
        prop_assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn accumulator_statistics_ignore_arrival_order(
        values in proptest::collection::vec(-1e6f64..1e6, 1..32),
        seed in any::<u64>(),
    ) {
        // One worker delivering in index order vs. a shuffled partition
        // across two merged accumulators: bit-identical statistics.
        let mut ordered = Accumulator::new();
        for (r, v) in values.iter().enumerate() {
            ordered.record(r as u64, *v);
        }
        let mut indices: Vec<usize> = (0..values.len()).collect();
        // Deterministic pseudo-shuffle driven by the proptest-chosen seed.
        for i in (1..indices.len()).rev() {
            indices.swap(i, (seed as usize).wrapping_mul(i + 1) % (i + 1));
        }
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for (k, &i) in indices.iter().enumerate() {
            if k % 2 == 0 {
                a.record(i as u64, values[i]);
            } else {
                b.record(i as u64, values[i]);
            }
        }
        let mut merged = Accumulator::new();
        merged.merge(&b);
        merged.merge(&a);
        prop_assert_eq!(ordered.summary(), merged.summary());
        prop_assert_eq!(ordered.t_interval(0.95), merged.t_interval(0.95));
        prop_assert_eq!(
            ordered.bootstrap_interval(0.95, 100, 7),
            merged.bootstrap_interval(0.95, 100, 7)
        );
    }

    #[test]
    fn paired_deltas_are_antisymmetric_and_self_cancelling(
        values in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..24),
    ) {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for (r, (x, y)) in values.iter().enumerate() {
            a.record(r as u64, *x);
            b.record(r as u64, *y);
        }
        let ab = paired_deltas(&a, &b);
        let ba = paired_deltas(&b, &a);
        prop_assert_eq!(ab.len(), values.len());
        for (d, e) in ab.iter().zip(&ba) {
            prop_assert_eq!(*d, -e);
        }
        prop_assert!(paired_deltas(&a, &a).iter().all(|d| *d == 0.0));
    }
}
