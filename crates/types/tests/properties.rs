//! Property-based tests on the foundation types.

use proptest::prelude::*;
use rp_types::dist;
use rp_types::geo::{GeoPoint, EARTH_RADIUS_KM};
use rp_types::seed;
use rp_types::{Bps, SimDuration, SimTime};

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #[test]
    fn haversine_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let ab = a.distance_km(b);
        let ba = b.distance_km(a);
        prop_assert!((ab - ba).abs() < 1e-6, "symmetry");
        prop_assert!(ab >= 0.0);
        prop_assert!(ab <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6, "half circumference bound");
        // Triangle inequality (great-circle distance is a metric).
        let ac = a.distance_km(c);
        let cb = c.distance_km(b);
        prop_assert!(ab <= ac + cb + 1e-6, "triangle: {ab} > {ac} + {cb}");
    }

    #[test]
    fn fiber_delay_monotone_in_distance(a in arb_point(), b in arb_point(), c in arb_point()) {
        let (d1, d2) = (a.distance_km(b), a.distance_km(c));
        let (t1, t2) = (a.fiber_delay_ms(b), a.fiber_delay_ms(c));
        if d1 < d2 {
            prop_assert!(t1 <= t2 + 1e-9);
        }
        prop_assert!(t1 >= 0.0);
    }

    #[test]
    fn seed_derivation_never_collides_across_domains(master in any::<u64>(), index in 0u64..1_000) {
        let a = seed::derive(master, "alpha", index);
        let b = seed::derive(master, "beta", index);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn bps_subtraction_saturates_and_fraction_bounded(x in 0.0f64..1e12, y in 0.0f64..1e12) {
        let diff = Bps(x) - Bps(y);
        prop_assert!(diff.0 >= 0.0);
        let f = Bps(x).fraction_of(Bps(y));
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..1u64 << 40, d in 0u64..1u64 << 30) {
        let t = SimTime(a) + SimDuration(d);
        prop_assert_eq!(t.since(SimTime(a)), SimDuration(d));
        prop_assert_eq!(SimTime(a).since(t), SimDuration::ZERO);
    }

    #[test]
    fn pareto_respects_scale(seed in any::<u64>(), x_min in 0.1f64..10.0, alpha in 0.3f64..3.0) {
        let mut rng = seed::rng(seed, "prop", 0);
        for _ in 0..50 {
            let x = dist::pareto(&mut rng, x_min, alpha);
            prop_assert!(x >= x_min);
            prop_assert!(x.is_finite());
        }
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
    ) {
        let mut rng = seed::rng(seed, "prop-w", 1);
        match dist::weighted_index(&mut rng, &weights) {
            Some(i) => prop_assert!(weights[i] > 0.0),
            None => prop_assert!(weights.iter().all(|w| *w <= 0.0)),
        }
    }
}
