//! Property-based tests on routing: every seed, every origin — same laws.

use proptest::prelude::*;
use rp_bgp::{is_valley_free, propagate, propagate_iterative, RouteClass, RoutingView};
use rp_topology::{generate, TopologyConfig};
use rp_types::NetworkId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn staged_engine_matches_message_passing(seed in any::<u64>(), origin_pick in 0usize..50) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let origin = NetworkId((origin_pick % topo.len()) as u32);
        let fast = propagate(&topo, origin);
        let slow = propagate_iterative(&topo, origin);
        for id in topo.ids() {
            match (&fast[id.index()], &slow[id.index()]) {
                (Some(f), Some(s)) => {
                    prop_assert_eq!(f.class, s.class);
                    prop_assert_eq!(f.len(), s.len());
                    prop_assert_eq!(f.next_hop(), s.next_hop());
                }
                (None, None) => {}
                other => prop_assert!(false, "reachability disagreement: {other:?}"),
            }
        }
    }

    #[test]
    fn all_routes_are_valley_free_simple_and_terminate(seed in any::<u64>(), origin_pick in 0usize..50) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let origin = NetworkId((origin_pick % topo.len()) as u32);
        let routes = propagate(&topo, origin);
        for id in topo.ids() {
            let Some(r) = &routes[id.index()] else { continue };
            if id == origin {
                prop_assert_eq!(r.class, RouteClass::Origin);
                continue;
            }
            prop_assert_eq!(*r.path.last().unwrap(), origin);
            let mut full = vec![id];
            full.extend_from_slice(&r.path);
            prop_assert!(is_valley_free(&topo, &full), "{full:?}");
            let mut sorted = full.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), full.len(), "simple path");
        }
    }

    #[test]
    fn forward_paths_are_consistent_with_gateways(seed in any::<u64>()) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let vantage = topo.ids().next().unwrap();
        let view = RoutingView::new(&topo, vantage);
        for dest in topo.ids() {
            if dest == vantage { continue; }
            let (gw, fwd, len) = (
                view.gateway(dest),
                view.forward_path(dest),
                view.path_len(dest),
            );
            match (gw, fwd, len) {
                (Some(g), Some(f), Some(l)) => {
                    prop_assert_eq!(f[0], g);
                    prop_assert_eq!(f.len(), l);
                    prop_assert_eq!(*f.last().unwrap(), dest);
                }
                (None, None, None) => {}
                other => prop_assert!(false, "inconsistent view at {dest}: {other:?}"),
            }
        }
    }
}
