#![warn(missing_docs)]

//! # rp-bgp
//!
//! Valley-free inter-domain routing over an [`rp_topology::Topology`].
//!
//! The paper's section 4 study ""utilizes the BGP routing tables in the
//! ASBRs of RedIRIS to determine the AS-level path ... for each of the
//! traffic flows". This crate supplies that machinery for the synthetic
//! Internet: Gao–Rexford export rules (routes learned from customers export
//! to everyone; routes learned from peers or providers export only to
//! customers) and the standard selection order (customer > peer > provider,
//! then shortest AS path, then lowest next-hop ASN).
//!
//! Two engines compute the same answer:
//!
//! - [`propagate()`] — a staged single-origin computation (customer wave,
//!   peer step, provider relaxation) that runs in near-linear time and is
//!   what the paper-scale experiments use;
//! - [`propagate_iterative`] — a message-passing BGP emulation that
//!   converges by fixpoint, used to cross-validate the staged engine on
//!   small topologies (see the property tests).
//!
//! Both return, for every AS, its best route *toward* the origin AS. The
//! study network's own forwarding view is the reverse tree, exposed through
//! [`RoutingView`]; reversing a valley-free path preserves valley-freeness,
//! and using the reverse path as the forward path is the usual symmetry
//! approximation (documented in DESIGN.md).

pub mod infer;
pub mod propagate;
pub mod route;
pub mod view;

pub use infer::{collect_paths, evaluate, infer_gao, InferenceAccuracy, InferredRel};
pub use propagate::{propagate, propagate_iterative};
pub use route::{is_valley_free, RouteClass, RouteInfo};
pub use view::{GatewayClass, RoutingView};
