//! A vantage network's forwarding view of the Internet.
//!
//! Section 4 needs to know, for every remote network, *which kind of
//! first-hop* the study network (RedIRIS) uses to exchange traffic with it:
//! traffic whose first hop is a transit provider is the only traffic that
//! can contribute to the offload potential. `RoutingView` wraps a single
//! [`propagate`] run with the study network as origin and answers forward-
//! path questions by reversing the resulting tree (reversing a valley-free
//! path preserves valley-freeness).

use crate::propagate::propagate;
use crate::route::RouteInfo;
use rp_topology::Topology;
use rp_types::NetworkId;
use serde::{Deserialize, Serialize};

/// Relationship between the vantage network and the first hop on the
/// forward path toward a destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayClass {
    /// First hop is a transit customer of the vantage.
    Customer,
    /// First hop is a settlement-free peer (incl. IXP peers).
    Peer,
    /// First hop is a transit provider — this traffic is billable transit
    /// and is what remote peering could offload.
    Provider,
}

/// The forwarding view of one vantage network over the whole topology.
#[derive(Debug, Clone)]
pub struct RoutingView {
    vantage: NetworkId,
    /// Best route of every AS *toward* the vantage.
    routes: Vec<Option<RouteInfo>>,
}

impl RoutingView {
    /// Compute the view by propagating the vantage's prefix through the
    /// topology.
    pub fn new(topo: &Topology, vantage: NetworkId) -> Self {
        let _sp = rp_obs::span("bgp.routing_view");
        RoutingView {
            vantage,
            routes: propagate(topo, vantage),
        }
    }

    /// The vantage network.
    #[inline]
    pub fn vantage(&self) -> NetworkId {
        self.vantage
    }

    /// True when `dest` has any route to/from the vantage.
    pub fn reachable(&self, dest: NetworkId) -> bool {
        self.routes[dest.index()].is_some()
    }

    /// The forward AS path from the vantage to `dest`, excluding the vantage
    /// itself and including `dest` as the final element. `None` when
    /// unreachable or when `dest` is the vantage.
    pub fn forward_path(&self, dest: NetworkId) -> Option<Vec<NetworkId>> {
        if dest == self.vantage {
            return None;
        }
        let r = self.routes[dest.index()].as_ref()?;
        // r.path = [h1, ..., vantage] seen from dest; forward path from the
        // vantage is the reverse with dest appended and vantage dropped.
        let mut fwd: Vec<NetworkId> = Vec::with_capacity(r.path.len());
        for &hop in r.path.iter().rev().skip(1) {
            fwd.push(hop);
        }
        fwd.push(dest);
        Some(fwd)
    }

    /// First hop from the vantage toward `dest`.
    pub fn gateway(&self, dest: NetworkId) -> Option<NetworkId> {
        if dest == self.vantage {
            return None;
        }
        let r = self.routes[dest.index()].as_ref()?;
        Some(match r.path.len() {
            0 => unreachable!("non-vantage route with empty path"),
            1 => dest, // dest neighbors the vantage directly
            k => r.path[k - 2],
        })
    }

    /// Relationship class of the first hop toward `dest`.
    pub fn gateway_class(&self, topo: &Topology, dest: NetworkId) -> Option<GatewayClass> {
        let gw = self.gateway(dest)?;
        if topo.providers(self.vantage).contains(&gw) {
            Some(GatewayClass::Provider)
        } else if topo.customers(self.vantage).contains(&gw) {
            Some(GatewayClass::Customer)
        } else {
            debug_assert!(
                topo.peers(self.vantage).contains(&gw),
                "gateway not adjacent"
            );
            Some(GatewayClass::Peer)
        }
    }

    /// True when traffic to/from `dest` crosses one of the vantage's transit
    /// providers — i.e. when that traffic is offloadable in principle.
    pub fn uses_transit(&self, topo: &Topology, dest: NetworkId) -> bool {
        self.gateway_class(topo, dest) == Some(GatewayClass::Provider)
    }

    /// Hop count of the forward path (AS hops from vantage to `dest`).
    pub fn path_len(&self, dest: NetworkId) -> Option<usize> {
        self.routes[dest.index()].as_ref().map(|r| r.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::is_valley_free;
    use rp_topology::{generate, AsType, TopologyConfig};

    fn nren_view() -> (rp_topology::Topology, RoutingView) {
        let topo = generate(&TopologyConfig::test_scale(21));
        let nren = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, nren);
        (topo, view)
    }

    #[test]
    fn forward_paths_end_at_destination_and_are_valley_free() {
        let (topo, view) = nren_view();
        for dest in topo.ids() {
            if dest == view.vantage() {
                assert!(view.forward_path(dest).is_none());
                continue;
            }
            let fwd = view.forward_path(dest).expect("connected world");
            assert_eq!(*fwd.last().unwrap(), dest);
            let mut full = vec![view.vantage()];
            full.extend_from_slice(&fwd);
            assert!(is_valley_free(&topo, &full), "{dest}: {full:?}");
        }
    }

    #[test]
    fn gateway_is_first_forward_hop_and_adjacent() {
        let (topo, view) = nren_view();
        for dest in topo.ids() {
            if dest == view.vantage() {
                continue;
            }
            let fwd = view.forward_path(dest).unwrap();
            let gw = view.gateway(dest).unwrap();
            assert_eq!(fwd[0], gw);
            let adjacent = topo.providers(view.vantage()).contains(&gw)
                || topo.customers(view.vantage()).contains(&gw)
                || topo.peers(view.vantage()).contains(&gw);
            assert!(adjacent, "gateway {gw} not adjacent to vantage");
        }
    }

    #[test]
    fn most_destinations_use_transit_from_a_stub_nren() {
        // An NREN with two tier-1 providers and no peerings yet should reach
        // nearly everything via transit.
        let (topo, view) = nren_view();
        let transit_count = topo
            .ids()
            .filter(|&d| d != view.vantage() && view.uses_transit(&topo, d))
            .count();
        assert!(
            transit_count > topo.len() * 8 / 10,
            "only {transit_count}/{} via transit",
            topo.len()
        );
    }

    #[test]
    fn providers_are_gateways_for_themselves() {
        let (topo, view) = nren_view();
        for &p in topo.providers(view.vantage()) {
            assert_eq!(view.gateway(p), Some(p));
            assert_eq!(view.gateway_class(&topo, p), Some(GatewayClass::Provider));
            assert_eq!(view.path_len(p), Some(1));
        }
    }
}
