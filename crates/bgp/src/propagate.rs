//! Route propagation engines.
//!
//! Both engines compute, for a single origin AS, every other AS's best
//! valley-free route toward it under the standard policy model:
//!
//! - **export**: a route learned from a customer (or originated) is exported
//!   to all neighbors; a route learned from a peer or provider is exported
//!   only to customers;
//! - **selection**: prefer customer routes over peer routes over provider
//!   routes; break ties by shortest AS path, then lowest next-hop ASN.

use crate::route::{RouteClass, RouteInfo};
use rp_topology::Topology;
use rp_types::NetworkId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Staged single-origin computation: customer wave (BFS up the provider
/// edges), peer step, then provider relaxation (Dijkstra down the customer
/// edges). Near-linear in the number of edges; used at paper scale.
pub fn propagate(topo: &Topology, origin: NetworkId) -> Vec<Option<RouteInfo>> {
    let n = topo.len();
    let mut class: Vec<Option<RouteClass>> = vec![None; n];
    let mut next: Vec<Option<NetworkId>> = vec![None; n];
    let mut dist: Vec<usize> = vec![usize::MAX; n];

    class[origin.index()] = Some(RouteClass::Origin);
    dist[origin.index()] = 0;

    // --- Stage 1: customer routes climb from the origin via provider edges.
    let mut wave = vec![origin];
    while !wave.is_empty() {
        // Candidates discovered this wave: target -> best advertising
        // customer (lowest ASN wins among same-length candidates).
        let mut candidate: Vec<Option<NetworkId>> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        candidate.resize(n, None);
        for &u in &wave {
            for &p in topo.providers(u) {
                if class[p.index()].is_some() {
                    continue;
                }
                match candidate[p.index()] {
                    None => {
                        candidate[p.index()] = Some(u);
                        touched.push(p.index());
                    }
                    Some(prev) => {
                        if topo.node(u).asn < topo.node(prev).asn {
                            candidate[p.index()] = Some(u);
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        let mut next_wave = Vec::with_capacity(touched.len());
        for t in touched {
            let u = candidate[t].expect("touched implies candidate");
            class[t] = Some(RouteClass::Customer);
            next[t] = Some(u);
            dist[t] = dist[u.index()] + 1;
            next_wave.push(NetworkId(t as u32));
        }
        wave = next_wave;
    }

    // --- Stage 2: peer routes. An AS with a customer route (or the origin)
    // exports it across each peering edge; receivers without a better class
    // pick the peer minimizing (advertised length, peer ASN).
    let mut peer_assign: Vec<(usize, NetworkId)> = Vec::new();
    for v in 0..n {
        if class[v].is_some() {
            continue;
        }
        let mut best: Option<(usize, u32, NetworkId)> = None;
        for &w in topo.peers(NetworkId(v as u32)) {
            let exports = matches!(
                class[w.index()],
                Some(RouteClass::Origin) | Some(RouteClass::Customer)
            );
            if !exports {
                continue;
            }
            let key = (dist[w.index()], topo.node(w).asn.0, w);
            if best.map(|b| (key.0, key.1) < (b.0, b.1)).unwrap_or(true) {
                best = Some(key);
            }
        }
        if let Some((d, _, w)) = best {
            peer_assign.push((v, w));
            dist[v] = d + 1;
        }
    }
    for (v, w) in peer_assign {
        class[v] = Some(RouteClass::Peer);
        next[v] = Some(w);
    }

    // --- Stage 3: provider routes descend the customer edges; Dijkstra
    // keyed by (path length, next-hop ASN) so the first assignment is best.
    let mut heap: BinaryHeap<Reverse<(usize, u32, u32, u32)>> = BinaryHeap::new();
    for u in 0..n {
        if class[u].is_none() {
            continue;
        }
        for &c in topo.customers(NetworkId(u as u32)) {
            if class[c.index()].is_none() {
                heap.push(Reverse((
                    dist[u] + 1,
                    topo.node(NetworkId(u as u32)).asn.0,
                    c.0,
                    u as u32,
                )));
            }
        }
    }
    while let Some(Reverse((d, _asn, c, u))) = heap.pop() {
        let c_idx = c as usize;
        if class[c_idx].is_some() {
            continue;
        }
        class[c_idx] = Some(RouteClass::Provider);
        next[c_idx] = Some(NetworkId(u));
        dist[c_idx] = d;
        for &cc in topo.customers(NetworkId(c)) {
            if class[cc.index()].is_none() {
                heap.push(Reverse((d + 1, topo.node(NetworkId(c)).asn.0, cc.0, c)));
            }
        }
    }

    // --- Materialize paths by following next-hop pointers.
    (0..n)
        .map(|v| {
            let cls = class[v]?;
            let mut path = Vec::with_capacity(dist[v]);
            let mut cur = v;
            while let Some(h) = next[cur] {
                path.push(h);
                cur = h.index();
            }
            debug_assert_eq!(path.len(), dist[v]);
            Some(RouteInfo { class: cls, path })
        })
        .collect()
}

/// Preference key: smaller is better.
fn pref_key(topo: &Topology, r: &RouteInfo) -> (RouteClass, usize, u32) {
    let next_asn = r.next_hop().map(|h| topo.node(h).asn.0).unwrap_or(0);
    (r.class, r.len(), next_asn)
}

/// Message-passing BGP emulation: the origin announces to its neighbors and
/// updates propagate until no AS can improve its best route. Quadratic-ish
/// and allocation-heavy — use on small topologies to cross-validate
/// [`propagate`].
pub fn propagate_iterative(topo: &Topology, origin: NetworkId) -> Vec<Option<RouteInfo>> {
    let n = topo.len();
    let mut best: Vec<Option<RouteInfo>> = vec![None; n];
    best[origin.index()] = Some(RouteInfo {
        class: RouteClass::Origin,
        path: vec![],
    });

    // (receiver, sender, path advertised by sender).
    let mut queue: VecDeque<(NetworkId, NetworkId, Vec<NetworkId>)> = VecDeque::new();
    let announce =
        |queue: &mut VecDeque<_>, topo: &Topology, sender: NetworkId, route: &RouteInfo| {
            let export_all = matches!(route.class, RouteClass::Origin | RouteClass::Customer);
            let advertised = route.path.clone();
            for &c in topo.customers(sender) {
                queue.push_back((c, sender, advertised.clone()));
            }
            if export_all {
                for &p in topo.providers(sender) {
                    queue.push_back((p, sender, advertised.clone()));
                }
                for &w in topo.peers(sender) {
                    queue.push_back((w, sender, advertised.clone()));
                }
            }
        };

    let origin_route = best[origin.index()].clone().unwrap();
    announce(&mut queue, topo, origin, &origin_route);

    while let Some((recv, sender, sender_path)) = queue.pop_front() {
        // Loop prevention: BGP drops paths containing the receiver's ASN.
        if sender_path.contains(&recv) || recv == origin {
            continue;
        }
        let class = if topo.customers(recv).contains(&sender) {
            RouteClass::Customer
        } else if topo.peers(recv).contains(&sender) {
            RouteClass::Peer
        } else {
            RouteClass::Provider
        };
        let mut path = Vec::with_capacity(sender_path.len() + 1);
        path.push(sender);
        path.extend_from_slice(&sender_path);
        let candidate = RouteInfo { class, path };
        let better = match &best[recv.index()] {
            None => true,
            Some(cur) => pref_key(topo, &candidate) < pref_key(topo, cur),
        };
        if better {
            best[recv.index()] = Some(candidate.clone());
            announce(&mut queue, topo, recv, &candidate);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{is_simple, is_valley_free};
    use rp_topology::{generate, TopologyConfig};

    fn full_path(start: NetworkId, r: &RouteInfo) -> Vec<NetworkId> {
        let mut p = vec![start];
        p.extend_from_slice(&r.path);
        p
    }

    #[test]
    fn all_routes_reach_origin_on_generated_topology() {
        let topo = generate(&TopologyConfig::test_scale(11));
        let origin = topo.ids().next().unwrap();
        let routes = propagate(&topo, origin);
        for (v, r) in routes.iter().enumerate() {
            let r = r.as_ref().unwrap_or_else(|| panic!("N{v} unreachable"));
            if !r.is_empty() {
                assert_eq!(*r.path.last().unwrap(), origin);
            }
        }
    }

    #[test]
    fn routes_are_valley_free_and_simple() {
        let topo = generate(&TopologyConfig::test_scale(12));
        // Use an NREN as origin — mirrors the RedIRIS vantage.
        let origin = topo.of_type(rp_topology::AsType::Nren).next().unwrap().id;
        let routes = propagate(&topo, origin);
        for v in topo.ids() {
            if let Some(r) = &routes[v.index()] {
                let p = full_path(v, r);
                assert!(is_valley_free(&topo, &p), "{v}: {p:?}");
                assert!(is_simple(&p), "{v}: {p:?}");
            }
        }
    }

    #[test]
    fn customer_routes_preferred_over_shorter_provider_routes() {
        // Origin is a stub; its provider has both a customer route (via the
        // origin, length 1) and nothing better — while the provider's own
        // provider must use the customer chain.
        let topo = generate(&TopologyConfig::test_scale(13));
        let origin = topo
            .ids()
            .find(|id| !topo.customers(*id).is_empty() && !topo.providers(*id).is_empty())
            .unwrap();
        let routes = propagate(&topo, origin);
        for &p in topo.providers(origin) {
            let r = routes[p.index()].as_ref().unwrap();
            assert_eq!(r.class, RouteClass::Customer, "provider of origin");
            assert_eq!(r.len(), 1);
        }
        for &c in topo.customers(origin) {
            let r = routes[c.index()].as_ref().unwrap();
            // A customer of the origin can never hold a customer-class route
            // to it (the customer DAG has no cycles); it reaches the origin
            // via its provider or, if better, via a peer whose cone holds
            // the origin.
            assert_ne!(r.class, RouteClass::Customer, "customer of origin");
        }
    }

    #[test]
    fn engines_agree_on_generated_topologies() {
        for seed in 0..4u64 {
            let topo = generate(&TopologyConfig::test_scale(100 + seed));
            let origin = topo.ids().nth(seed as usize * 7 % topo.len()).unwrap();
            let fast = propagate(&topo, origin);
            let slow = propagate_iterative(&topo, origin);
            for v in topo.ids() {
                let (f, s) = (&fast[v.index()], &slow[v.index()]);
                match (f, s) {
                    (Some(f), Some(s)) => {
                        assert_eq!(f.class, s.class, "class at {v} (seed {seed})");
                        assert_eq!(f.len(), s.len(), "length at {v} (seed {seed})");
                        // Next-hop tie-breaking must agree as well.
                        assert_eq!(f.next_hop(), s.next_hop(), "next hop at {v}");
                    }
                    (None, None) => {}
                    _ => panic!("reachability disagreement at {v} (seed {seed})"),
                }
            }
        }
    }

    #[test]
    fn origin_route_is_origin() {
        let topo = generate(&TopologyConfig::test_scale(14));
        let origin = topo.ids().last().unwrap();
        let routes = propagate(&topo, origin);
        let r = routes[origin.index()].as_ref().unwrap();
        assert_eq!(r.class, RouteClass::Origin);
        assert!(r.is_empty());
    }
}
