//! Route representation and validity checks.

use rp_topology::Topology;
use rp_types::NetworkId;
use serde::{Deserialize, Serialize};

/// How an AS learned its best route toward the origin, in decreasing
/// preference order (the derived `Ord` encodes BGP local preference:
/// `Origin < Customer < Peer < Provider`, smaller = preferred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteClass {
    /// The AS *is* the origin.
    Origin,
    /// Learned from a transit customer (revenue route — most preferred).
    Customer,
    /// Learned from a settlement-free peer.
    Peer,
    /// Learned from a transit provider (costs money — least preferred).
    Provider,
}

/// An AS's best route toward the propagation origin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteInfo {
    /// Preference class of the route at this AS.
    pub class: RouteClass,
    /// AS path toward the origin: `path[0]` is the next hop, the last
    /// element is the origin itself. Empty exactly when `class == Origin`.
    pub path: Vec<NetworkId>,
}

impl RouteInfo {
    /// AS-path length in hops (0 for the origin itself).
    #[inline]
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True for the origin's own (empty-path) route.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Next hop toward the origin, `None` at the origin.
    #[inline]
    pub fn next_hop(&self) -> Option<NetworkId> {
        self.path.first().copied()
    }
}

/// Relationship step along a path, for valley-freeness checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Toward a provider ("uphill").
    Up,
    /// Across a peering edge ("flat").
    Flat,
    /// Toward a customer ("downhill").
    Down,
}

fn step(topo: &Topology, from: NetworkId, to: NetworkId) -> Option<Step> {
    if topo.providers(from).contains(&to) {
        Some(Step::Up)
    } else if topo.customers(from).contains(&to) {
        Some(Step::Down)
    } else if topo.peers(from).contains(&to) {
        Some(Step::Flat)
    } else {
        None
    }
}

/// Check that `full_path` (a sequence of adjacent ASes, *including* both
/// endpoints) is valley-free: a prefix of uphill steps, at most one flat
/// (peering) step, then downhill steps. Returns `false` if any consecutive
/// pair is not adjacent in the topology.
pub fn is_valley_free(topo: &Topology, full_path: &[NetworkId]) -> bool {
    // State machine over {uphill, flat-done, downhill}.
    #[derive(PartialEq, Clone, Copy)]
    enum Phase {
        Climbing,
        Peered,
        Descending,
    }
    let mut phase = Phase::Climbing;
    for w in full_path.windows(2) {
        let Some(s) = step(topo, w[0], w[1]) else {
            return false;
        };
        phase = match (phase, s) {
            (Phase::Climbing, Step::Up) => Phase::Climbing,
            (Phase::Climbing, Step::Flat) => Phase::Peered,
            (Phase::Climbing, Step::Down) => Phase::Descending,
            (Phase::Peered, Step::Down) => Phase::Descending,
            (Phase::Descending, Step::Down) => Phase::Descending,
            _ => return false,
        };
    }
    true
}

/// Check that a path visits no AS twice.
pub fn is_simple(full_path: &[NetworkId]) -> bool {
    let mut seen: Vec<NetworkId> = full_path.to_vec();
    seen.sort_unstable();
    seen.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_topology::{AsNode, AsType, PeeringPolicy, Topology};
    use rp_types::{Asn, OrgId};

    fn chain() -> Topology {
        // 0 (tier1) provides 1, which provides 2; 1 peers with 3 (tier1-ish
        // sibling also under 0).
        let mk = |i: u32, kind, level| AsNode {
            id: NetworkId(i),
            asn: Asn(100 + i),
            org: OrgId(i),
            kind,
            policy: PeeringPolicy::Open,
            home_city: 0,
            address_space: 1,
            prominence: 1.0,
            level,
        };
        use rp_topology::model::{Edge, Org, Relationship};
        let ases = vec![
            mk(0, AsType::Tier1, 0),
            mk(1, AsType::Transit, 1),
            mk(2, AsType::Enterprise, 2),
            mk(3, AsType::Transit, 1),
        ];
        let orgs = (0..4)
            .map(|i| Org {
                id: OrgId(i),
                name: format!("o{i}"),
                networks: vec![NetworkId(i)],
            })
            .collect();
        let edges = vec![
            Edge {
                a: NetworkId(0),
                b: NetworkId(1),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(1),
                b: NetworkId(2),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(0),
                b: NetworkId(3),
                rel: Relationship::ProviderOf,
            },
            Edge {
                a: NetworkId(1),
                b: NetworkId(3),
                rel: Relationship::PeerOf,
            },
        ];
        Topology::assemble(ases, orgs, edges)
    }

    #[test]
    fn class_ordering_matches_bgp_preference() {
        assert!(RouteClass::Origin < RouteClass::Customer);
        assert!(RouteClass::Customer < RouteClass::Peer);
        assert!(RouteClass::Peer < RouteClass::Provider);
    }

    #[test]
    fn valley_free_accepts_up_flat_down() {
        let t = chain();
        let n = |i: u32| NetworkId(i);
        // 2 → 1 (up) → 3 (flat): valid.
        assert!(is_valley_free(&t, &[n(2), n(1), n(3)]));
        // 2 → 1 → 0 (up, up): valid.
        assert!(is_valley_free(&t, &[n(2), n(1), n(0)]));
        // 0 → 1 → 2 (down, down): valid.
        assert!(is_valley_free(&t, &[n(0), n(1), n(2)]));
        // 3 (flat to 1) then up to 0: peer then up — a valley. Invalid.
        assert!(!is_valley_free(&t, &[n(3), n(1), n(0)]));
        // 0 → 1 (down) → 3 (flat): down then flat — invalid.
        assert!(!is_valley_free(&t, &[n(0), n(1), n(3)]));
        // Non-adjacent pair: invalid.
        assert!(!is_valley_free(&t, &[n(2), n(3)]));
    }

    #[test]
    fn simple_path_detection() {
        let n = |i: u32| NetworkId(i);
        assert!(is_simple(&[n(0), n(1), n(2)]));
        assert!(!is_simple(&[n(0), n(1), n(0)]));
    }

    #[test]
    fn route_info_accessors() {
        let r = RouteInfo {
            class: RouteClass::Peer,
            path: vec![NetworkId(4), NetworkId(9)],
        };
        assert_eq!(r.len(), 2);
        assert_eq!(r.next_hop(), Some(NetworkId(4)));
        assert!(!r.is_empty());
        let o = RouteInfo {
            class: RouteClass::Origin,
            path: vec![],
        };
        assert!(o.is_empty());
        assert_eq!(o.next_hop(), None);
    }
}
