//! AS-relationship inference from observed paths — the layer-3 lens the
//! paper argues against.
//!
//! Section 1: "economic relationships can be inferred from BGP ... While
//! being useful, layer-3 models struggle to detect and correctly classify a
//! significant portion of all economic relationships." This module
//! implements the classic degree-based inference of Gao (ToN 2001, the
//! paper's reference 30) over paths collected from route-collector
//! vantages, so the reproduction can measure exactly how much the layer-3
//! lens sees — and what it structurally cannot: a remote peering infers
//! identically to a direct peering, with the layer-2 intermediary absent
//! from the result by construction.

use crate::propagate::propagate;
use rp_topology::{Relationship, Topology};
use rp_types::NetworkId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Inferred relationship for an AS pair `(a, b)` with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferredRel {
    /// `a` is inferred to be the provider of `b`.
    FirstProvidesSecond,
    /// `b` is inferred to be the provider of `a`.
    SecondProvidesFirst,
    /// Settlement-free peering.
    Peer,
}

/// Collect full AS paths (`[source, ..., collector]`) from every AS toward
/// each collector — what a route-collector project sees.
pub fn collect_paths(topo: &Topology, collectors: &[NetworkId]) -> Vec<Vec<NetworkId>> {
    let mut paths = Vec::new();
    for &collector in collectors {
        let routes = propagate(topo, collector);
        for src in topo.ids() {
            if src == collector {
                continue;
            }
            if let Some(r) = &routes[src.index()] {
                let mut full = Vec::with_capacity(r.path.len() + 1);
                full.push(src);
                full.extend_from_slice(&r.path);
                if full.len() >= 2 {
                    paths.push(full);
                }
            }
        }
    }
    paths
}

fn key(a: NetworkId, b: NetworkId) -> (NetworkId, NetworkId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Gao-style inference over observed paths.
///
/// 1. Compute each AS's degree from path adjacencies.
/// 2. For each path, locate the highest-degree AS (the "top provider");
///    every edge before it points uphill (right side provides left), every
///    edge after it downhill.
/// 3. An edge voted in both directions, or an edge adjacent to a path's top
///    with near-balanced votes, is classified as peering; otherwise the
///    majority vote direction wins.
pub fn infer_gao(paths: &[Vec<NetworkId>]) -> HashMap<(NetworkId, NetworkId), InferredRel> {
    // Phase 1: degrees.
    let mut degree: HashMap<NetworkId, usize> = HashMap::new();
    {
        let mut seen: HashMap<(NetworkId, NetworkId), ()> = HashMap::new();
        for p in paths {
            for w in p.windows(2) {
                if seen.insert(key(w[0], w[1]), ()).is_none() {
                    *degree.entry(w[0]).or_insert(0) += 1;
                    *degree.entry(w[1]).or_insert(0) += 1;
                }
            }
        }
    }

    // Phase 2: uphill/downhill votes, and candidate peer edges at the top
    // of each path.
    let mut up_votes: HashMap<(NetworkId, NetworkId), (u32, u32)> = HashMap::new();
    let mut top_adjacent: HashMap<(NetworkId, NetworkId), u32> = HashMap::new();
    for p in paths {
        let top = p
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| degree.get(n).copied().unwrap_or(0))
            .map(|(i, _)| i)
            .unwrap_or(0);
        for (i, w) in p.windows(2).enumerate() {
            let k = key(w[0], w[1]);
            let entry = up_votes.entry(k).or_insert((0, 0));
            // Does the path travel from k.0 toward k.1 here?
            let forward = w[0] == k.0;
            // Before the top the right-hand AS provides; after it the
            // left-hand one does.
            let first_provides = if i < top { !forward } else { forward };
            if first_provides {
                entry.0 += 1;
            } else {
                entry.1 += 1;
            }
            if i + 1 == top || i == top {
                *top_adjacent.entry(k).or_insert(0) += 1;
            }
        }
    }

    // Phase 3: classify.
    let mut inferred = HashMap::new();
    for (k, (first, second)) in up_votes {
        let rel = if first > 0 && second > 0 {
            // Conflicting transit votes: the valley-free explanation is a
            // peering edge crossed at the top of different paths.
            InferredRel::Peer
        } else if first > 0 {
            InferredRel::FirstProvidesSecond
        } else if second > 0 {
            InferredRel::SecondProvidesFirst
        } else {
            continue;
        };
        // Degree heuristic: an edge adjacent to path tops whose endpoints
        // have comparable degrees is peering even with one-sided votes
        // (tier-1 meshes travel only one way from most collectors).
        let (da, db) = (
            degree.get(&k.0).copied().unwrap_or(1).max(1) as f64,
            degree.get(&k.1).copied().unwrap_or(1).max(1) as f64,
        );
        let ratio = da.max(db) / da.min(db);
        let rel = if top_adjacent.contains_key(&k) && ratio < 1.5 && rel != InferredRel::Peer {
            InferredRel::Peer
        } else {
            rel
        };
        inferred.insert(k, rel);
    }
    inferred
}

/// Accuracy of an inference against the generator's ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct InferenceAccuracy {
    /// Ground-truth transit edges observed in some path.
    pub transit_observed: usize,
    /// ... of which correctly classified with the right orientation.
    pub transit_correct: usize,
    /// Ground-truth peering edges observed in some path.
    pub peer_observed: usize,
    /// ... of which correctly classified as peering.
    pub peer_correct: usize,
    /// Edges in the inference that do not exist in the topology (never for
    /// paths collected from real routing — kept as a sanity field).
    pub phantom: usize,
}

impl InferenceAccuracy {
    /// Correctly classified fraction of observed transit edges.
    pub fn transit_accuracy(&self) -> f64 {
        if self.transit_observed == 0 {
            1.0
        } else {
            self.transit_correct as f64 / self.transit_observed as f64
        }
    }

    /// Correctly classified fraction of observed peering edges.
    pub fn peer_accuracy(&self) -> f64 {
        if self.peer_observed == 0 {
            1.0
        } else {
            self.peer_correct as f64 / self.peer_observed as f64
        }
    }
}

/// Score an inference against ground truth.
pub fn evaluate(
    topo: &Topology,
    inferred: &HashMap<(NetworkId, NetworkId), InferredRel>,
) -> InferenceAccuracy {
    let mut acc = InferenceAccuracy::default();
    for (&(a, b), &rel) in inferred {
        let a_provides_b = topo.providers(b).contains(&a);
        let b_provides_a = topo.providers(a).contains(&b);
        if a_provides_b || b_provides_a {
            acc.transit_observed += 1;
            let correct = match rel {
                InferredRel::FirstProvidesSecond => a_provides_b,
                InferredRel::SecondProvidesFirst => b_provides_a,
                InferredRel::Peer => false,
            };
            if correct {
                acc.transit_correct += 1;
            }
        } else if topo.peers(a).contains(&b) {
            acc.peer_observed += 1;
            if rel == InferredRel::Peer {
                acc.peer_correct += 1;
            }
        } else {
            acc.phantom += 1;
        }
    }
    let _ = Relationship::PeerOf; // ground-truth type referenced for clarity
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_topology::{generate, AsType, TopologyConfig};

    fn setup() -> (Topology, HashMap<(NetworkId, NetworkId), InferredRel>) {
        let topo = generate(&TopologyConfig::test_scale(121));
        // A handful of collectors of different kinds, like real route
        // collector projects.
        let collectors: Vec<NetworkId> = topo
            .of_type(AsType::Transit)
            .take(3)
            .map(|a| a.id)
            .chain(topo.of_type(AsType::Tier1).take(2).map(|a| a.id))
            .collect();
        let paths = collect_paths(&topo, &collectors);
        assert!(paths.len() > 500);
        let inferred = infer_gao(&paths);
        (topo, inferred)
    }

    #[test]
    fn inference_never_invents_edges() {
        let (topo, inferred) = setup();
        let acc = evaluate(&topo, &inferred);
        assert_eq!(acc.phantom, 0, "paths only cross real adjacencies");
    }

    #[test]
    fn transit_is_mostly_classified_correctly() {
        let (topo, inferred) = setup();
        let acc = evaluate(&topo, &inferred);
        assert!(acc.transit_observed > 100);
        assert!(
            acc.transit_accuracy() > 0.85,
            "transit accuracy {}",
            acc.transit_accuracy()
        );
    }

    #[test]
    fn peering_is_markedly_harder_to_classify() {
        // The paper's point: the layer-3 lens misclassifies a meaningful
        // share of (especially peering) relationships.
        let (topo, inferred) = setup();
        let acc = evaluate(&topo, &inferred);
        assert!(acc.peer_observed > 5, "{}", acc.peer_observed);
        assert!(
            acc.peer_accuracy() < acc.transit_accuracy(),
            "peer {} vs transit {}",
            acc.peer_accuracy(),
            acc.transit_accuracy()
        );
    }

    #[test]
    fn inference_is_deterministic_in_path_order() {
        let topo = generate(&TopologyConfig::test_scale(122));
        let collectors: Vec<NetworkId> = topo.ids().take(3).collect();
        let mut paths = collect_paths(&topo, &collectors);
        let a = infer_gao(&paths);
        paths.reverse();
        let b = infer_gao(&paths);
        assert_eq!(a, b, "vote counting is order-independent");
    }
}
