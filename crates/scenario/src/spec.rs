//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] names axes of parameter overrides; its cross product
//! is the grid of [`Cell`]s a sweep evaluates. Parameters come in two
//! kinds:
//!
//! - **world parameters** (pathology rates, remote-provider structure,
//!   vantage city) change the generated world, so cells differing in them
//!   need separate builds and probing campaigns;
//! - **method parameters** (remoteness threshold, filter mask, peer-group
//!   assumption) only reinterpret existing probe samples, so cells
//!   differing *only* in them share one world per replicate.
//!
//! The vendored `serde` is a no-op marker shim, so specs are parsed by
//! hand from [`serde_json::Value`] — which also gives error messages
//! anchored to the offending key instead of a generic derive failure.

use remote_peering::filters::{Discard, FilterConfig};
use remote_peering::ixp::membership::PathologyRates;
use remote_peering::metrics::MethodParams;
use remote_peering::offload::PeerGroup;
use remote_peering::world::WorldConfig;
use rp_types::geo::WORLD_CITIES;
use serde_json::{json, Value};

/// Error from parsing or validating a scenario spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong, with the offending key/value named.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(message: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError {
        message: message.into(),
    })
}

/// A sweepable parameter: an override over the world configuration or the
/// analysis methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Param {
    /// Registry staleness: rate of listed addresses with no device behind
    /// them (`PathologyRates::absent`).
    StaleListingRate,
    /// Registry churn: rate of mid-campaign ASN-mapping changes
    /// (`PathologyRates::asn_change`).
    AsnChurnRate,
    /// Rate of addresses no registry source maps to an ASN
    /// (`PathologyRates::unidentifiable`).
    UnidentifiableRate,
    /// Persistent congestion: rate of congested access ports
    /// (`PathologyRates::congested`).
    CongestionRate,
    /// Transient congestion: rate of late-epoch elevated floors
    /// (`PathologyRates::late_epoch`).
    LateEpochRate,
    /// Blackholing rate (`PathologyRates::blackhole`).
    BlackholeRate,
    /// Multiplier on every IXP's remote-member share
    /// (`SceneConfig::remote_share_scale`).
    RemoteShareScale,
    /// Multiplier on pseudowire propagation delay
    /// (`SceneConfig::pseudowire_slack`).
    PseudowireSlack,
    /// The study network's home city (`WorldConfig::vantage_city`).
    VantageCity,
    /// Remoteness threshold on the minimum RTT, ms.
    ThresholdMs,
    /// Filter ablation mask: `"none"` or one filter's snake_case key.
    FilterSkip,
    /// Peer-group assumption for the offload metrics.
    PeerGroupAssumption,
}

impl Param {
    /// Every parameter, in a stable order.
    pub const ALL: [Param; 12] = [
        Param::StaleListingRate,
        Param::AsnChurnRate,
        Param::UnidentifiableRate,
        Param::CongestionRate,
        Param::LateEpochRate,
        Param::BlackholeRate,
        Param::RemoteShareScale,
        Param::PseudowireSlack,
        Param::VantageCity,
        Param::ThresholdMs,
        Param::FilterSkip,
        Param::PeerGroupAssumption,
    ];

    /// Stable snake_case key used in spec files and output labels.
    pub fn key(self) -> &'static str {
        match self {
            Param::StaleListingRate => "stale_listing_rate",
            Param::AsnChurnRate => "asn_churn_rate",
            Param::UnidentifiableRate => "unidentifiable_rate",
            Param::CongestionRate => "congestion_rate",
            Param::LateEpochRate => "late_epoch_rate",
            Param::BlackholeRate => "blackhole_rate",
            Param::RemoteShareScale => "remote_share_scale",
            Param::PseudowireSlack => "pseudowire_slack",
            Param::VantageCity => "vantage_city",
            Param::ThresholdMs => "threshold_ms",
            Param::FilterSkip => "filter_skip",
            Param::PeerGroupAssumption => "peer_group",
        }
    }

    /// Inverse of [`Param::key`].
    pub fn from_key(key: &str) -> Option<Param> {
        Param::ALL.into_iter().find(|p| p.key() == key)
    }

    /// Method parameters reinterpret existing probes; world parameters
    /// require a rebuild.
    pub fn is_method(self) -> bool {
        matches!(
            self,
            Param::ThresholdMs | Param::FilterSkip | Param::PeerGroupAssumption
        )
    }

    /// Text-valued parameters (everything else is numeric).
    pub fn is_text(self) -> bool {
        matches!(
            self,
            Param::VantageCity | Param::FilterSkip | Param::PeerGroupAssumption
        )
    }

    /// The value this parameter has in an unmodified run — the baseline arm
    /// of a sweep, when present among an axis's values.
    pub fn default_value(self) -> AxisValue {
        let rates = PathologyRates::default();
        match self {
            Param::StaleListingRate => AxisValue::Num(rates.absent),
            Param::AsnChurnRate => AxisValue::Num(rates.asn_change),
            Param::UnidentifiableRate => AxisValue::Num(rates.unidentifiable),
            Param::CongestionRate => AxisValue::Num(rates.congested),
            Param::LateEpochRate => AxisValue::Num(rates.late_epoch),
            Param::BlackholeRate => AxisValue::Num(rates.blackhole),
            Param::RemoteShareScale => AxisValue::Num(1.0),
            Param::PseudowireSlack => AxisValue::Num(1.0),
            Param::VantageCity => AxisValue::Text("Madrid".to_string()),
            Param::ThresholdMs => AxisValue::Num(remote_peering::classify::REMOTENESS_THRESHOLD_MS),
            Param::FilterSkip => AxisValue::Text("none".to_string()),
            Param::PeerGroupAssumption => AxisValue::Text("all".to_string()),
        }
    }

    fn validate_value(self, value: &AxisValue) -> Result<(), SpecError> {
        match (self.is_text(), value) {
            (true, AxisValue::Num(_)) => {
                return err(format!("{} takes string values", self.key()));
            }
            (false, AxisValue::Text(_)) => {
                return err(format!("{} takes numeric values", self.key()));
            }
            _ => {}
        }
        match (self, value) {
            (_, AxisValue::Num(x)) if !x.is_finite() || *x < 0.0 => {
                err(format!("{} = {x} must be finite and >= 0", self.key()))
            }
            (Param::ThresholdMs, AxisValue::Num(x)) if *x <= 0.0 => {
                err(format!("threshold_ms = {x} must be positive"))
            }
            (Param::VantageCity, AxisValue::Text(city)) => {
                if WORLD_CITIES.iter().any(|c| c.name == city) {
                    Ok(())
                } else {
                    err(format!("unknown vantage_city {city:?}"))
                }
            }
            (Param::FilterSkip, AxisValue::Text(s)) => {
                if s == "none" || Discard::ORDER.iter().any(|d| d.key() == s) {
                    Ok(())
                } else {
                    err(format!(
                        "unknown filter_skip {s:?} (expected \"none\" or a filter key)"
                    ))
                }
            }
            (Param::PeerGroupAssumption, AxisValue::Text(s)) => {
                if parse_peer_group(s).is_some() {
                    Ok(())
                } else {
                    err(format!(
                        "unknown peer_group {s:?} (expected open, open_top10_selective, open_selective, or all)"
                    ))
                }
            }
            _ => Ok(()),
        }
    }
}

fn parse_peer_group(s: &str) -> Option<PeerGroup> {
    match s {
        "open" => Some(PeerGroup::Open),
        "open_top10_selective" => Some(PeerGroup::OpenTop10Selective),
        "open_selective" => Some(PeerGroup::OpenSelective),
        "all" => Some(PeerGroup::All),
        _ => None,
    }
}

fn peer_group_key(g: PeerGroup) -> &'static str {
    match g {
        PeerGroup::Open => "open",
        PeerGroup::OpenTop10Selective => "open_top10_selective",
        PeerGroup::OpenSelective => "open_selective",
        PeerGroup::All => "all",
    }
}

/// One coordinate value along an axis.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// A numeric value (rates, multipliers, the threshold).
    Num(f64),
    /// A text value (city names, filter keys, peer groups).
    Text(String),
}

impl AxisValue {
    /// Compact human label ("10", "0.05", "Nairobi").
    pub fn label(&self) -> String {
        match self {
            AxisValue::Num(x) => format!("{x}"),
            AxisValue::Text(s) => s.clone(),
        }
    }

    /// The value as JSON.
    pub fn to_json(&self) -> Value {
        match self {
            AxisValue::Num(x) => json!(*x),
            AxisValue::Text(s) => Value::String(s.clone()),
        }
    }

    fn parse(v: &Value, param: Param) -> Result<AxisValue, SpecError> {
        if let Some(s) = v.as_str() {
            return Ok(AxisValue::Text(s.to_string()));
        }
        if let Some(x) = v.as_f64() {
            return Ok(AxisValue::Num(x));
        }
        err(format!(
            "axis {}: values must be numbers or strings",
            param.key()
        ))
    }
}

/// One axis of the sweep grid: a parameter and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// The swept parameter.
    pub param: Param,
    /// The values the parameter takes, in spec order.
    pub values: Vec<AxisValue>,
    /// This axis's coordinate in the baseline arm.
    pub baseline: AxisValue,
}

/// A declarative sweep: named axes expanded into a cross-product grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Sweep name; also the output file stem (`results/sweeps/<name>.json`).
    pub name: String,
    /// One-line description echoed into the output.
    pub description: String,
    /// Replicates to run when the CLI doesn't override.
    pub default_replicates: u64,
    /// The sweep axes, in spec order.
    pub axes: Vec<Axis>,
}

/// Cap on the grid size, so a typo'd spec fails fast instead of scheduling
/// a million world builds.
pub const MAX_CELLS: usize = 4096;

impl ScenarioSpec {
    /// Parse and validate a spec from JSON text.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let v = serde_json::from_str(text).map_err(|e| SpecError {
            message: format!("JSON parse error: {e:?}"),
        })?;
        ScenarioSpec::parse(&v)
    }

    /// Parse and validate a spec from a JSON value.
    pub fn parse(v: &Value) -> Result<ScenarioSpec, SpecError> {
        let name = match v.get("name").and_then(Value::as_str) {
            Some(n) if !n.is_empty() => n.to_string(),
            _ => return err("missing or empty \"name\""),
        };
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return err(format!(
                "name {name:?} must be lowercase [a-z0-9_-] (it becomes a file stem)"
            ));
        }
        let description = v
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let default_replicates = match v.get("replicates") {
            None => 8,
            Some(r) => match r.as_u64() {
                Some(n) if n >= 1 => n,
                _ => return err("\"replicates\" must be a positive integer"),
            },
        };
        let axes_v = match v.get("axes").and_then(Value::as_array) {
            Some(a) if !a.is_empty() => a,
            _ => return err("missing or empty \"axes\""),
        };
        let mut axes = Vec::new();
        for av in axes_v {
            let key = match av.get("param").and_then(Value::as_str) {
                Some(k) => k,
                None => return err("every axis needs a \"param\" key"),
            };
            let param = match Param::from_key(key) {
                Some(p) => p,
                None => {
                    return err(format!(
                        "unknown param {key:?} (known: {})",
                        Param::ALL.map(|p| p.key()).join(", ")
                    ));
                }
            };
            if axes.iter().any(|a: &Axis| a.param == param) {
                return err(format!("axis {key} appears twice"));
            }
            let values_v = match av.get("values").and_then(Value::as_array) {
                Some(vs) if !vs.is_empty() => vs,
                _ => return err(format!("axis {key}: missing or empty \"values\"")),
            };
            let mut values = Vec::new();
            for raw in values_v {
                let value = AxisValue::parse(raw, param)?;
                param.validate_value(&value)?;
                if values.contains(&value) {
                    return err(format!("axis {key}: duplicate value {}", value.label()));
                }
                values.push(value);
            }
            let baseline = match av.get("baseline") {
                Some(raw) => {
                    let b = AxisValue::parse(raw, param)?;
                    param.validate_value(&b)?;
                    if !values.contains(&b) {
                        return err(format!(
                            "axis {key}: baseline {} not among the values",
                            b.label()
                        ));
                    }
                    b
                }
                None => {
                    let default = param.default_value();
                    if values.contains(&default) {
                        default
                    } else {
                        values[0].clone()
                    }
                }
            };
            axes.push(Axis {
                param,
                values,
                baseline,
            });
        }
        let cells: usize = axes.iter().map(|a| a.values.len()).product();
        if cells > MAX_CELLS {
            return err(format!("grid has {cells} cells (cap: {MAX_CELLS})"));
        }
        Ok(ScenarioSpec {
            name,
            description,
            default_replicates,
            axes,
        })
    }

    /// Resolve a spec *reference* from JSON: `{"preset": "smoke"}` names a
    /// built-in preset, any other object is parsed as an inline spec. The
    /// library form of the CLI's file-or-preset argument, so services can
    /// accept sweep submissions without shelling out.
    pub fn resolve_value(v: &Value) -> Result<ScenarioSpec, SpecError> {
        if let Some(name) = v.get("preset").and_then(Value::as_str) {
            return ScenarioSpec::preset(name).ok_or_else(|| SpecError {
                message: format!(
                    "no preset named {name:?} (presets: {})",
                    ScenarioSpec::preset_names().join(", ")
                ),
            });
        }
        ScenarioSpec::parse(v)
    }

    /// A built-in preset by name.
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        PRESETS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, text)| ScenarioSpec::from_json(text).expect("presets are valid"))
    }

    /// The names of every built-in preset.
    pub fn preset_names() -> Vec<&'static str> {
        PRESETS.iter().map(|(n, _)| *n).collect()
    }

    /// Expand the axes into the cross-product grid, last axis fastest.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = vec![Cell { coords: Vec::new() }];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(out.len() * axis.values.len());
            for cell in &out {
                for value in &axis.values {
                    let mut coords = cell.coords.clone();
                    coords.push((axis.param, value.clone()));
                    next.push(Cell { coords });
                }
            }
            out = next;
        }
        out
    }

    /// The spec as JSON (echoed into sweep outputs so a result file is
    /// self-describing).
    pub fn to_json(&self) -> Value {
        let axes: Vec<Value> = self
            .axes
            .iter()
            .map(|a| {
                json!({
                    "param": a.param.key(),
                    "values": a.values.iter().map(AxisValue::to_json).collect::<Vec<_>>(),
                    "baseline": a.baseline.to_json(),
                })
            })
            .collect();
        json!({
            "name": self.name,
            "description": self.description,
            "replicates": self.default_replicates,
            "axes": axes,
        })
    }
}

/// One grid cell: a full coordinate assignment, in axis order.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// `(param, value)` per axis, in spec axis order.
    pub coords: Vec<(Param, AxisValue)>,
}

impl Cell {
    /// Human-readable label, e.g. `threshold_ms=10,filter_skip=none`.
    pub fn label(&self) -> String {
        self.coords
            .iter()
            .map(|(p, v)| format!("{}={}", p.key(), v.label()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Label restricted to world parameters: cells with equal keys share
    /// one world build + probe per replicate.
    pub fn world_key(&self) -> String {
        self.coords
            .iter()
            .filter(|(p, _)| !p.is_method())
            .map(|(p, v)| format!("{}={}", p.key(), v.label()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Is this the baseline arm (every coordinate at its axis baseline)?
    pub fn is_baseline(&self, spec: &ScenarioSpec) -> bool {
        self.coords
            .iter()
            .zip(&spec.axes)
            .all(|((_, v), axis)| *v == axis.baseline)
    }

    /// The cell's parameters as a JSON object.
    pub fn params_json(&self) -> Value {
        Value::Object(
            self.coords
                .iter()
                .map(|(p, v)| (p.key().to_string(), v.to_json()))
                .collect(),
        )
    }

    /// Apply the cell's world overrides on top of `base`.
    pub fn apply_world(&self, base: &WorldConfig) -> WorldConfig {
        let mut cfg = base.clone();
        for (param, value) in &self.coords {
            match (param, value) {
                (Param::StaleListingRate, AxisValue::Num(x)) => cfg.scene.rates.absent = *x,
                (Param::AsnChurnRate, AxisValue::Num(x)) => cfg.scene.rates.asn_change = *x,
                (Param::UnidentifiableRate, AxisValue::Num(x)) => {
                    cfg.scene.rates.unidentifiable = *x
                }
                (Param::CongestionRate, AxisValue::Num(x)) => cfg.scene.rates.congested = *x,
                (Param::LateEpochRate, AxisValue::Num(x)) => cfg.scene.rates.late_epoch = *x,
                (Param::BlackholeRate, AxisValue::Num(x)) => cfg.scene.rates.blackhole = *x,
                (Param::RemoteShareScale, AxisValue::Num(x)) => cfg.scene.remote_share_scale = *x,
                (Param::PseudowireSlack, AxisValue::Num(x)) => cfg.scene.pseudowire_slack = *x,
                (Param::VantageCity, AxisValue::Text(city)) => cfg.vantage_city = city.clone(),
                _ => {} // method params don't touch the world
            }
        }
        cfg
    }

    /// The cell's analysis-time methodology parameters.
    pub fn method_params(&self) -> MethodParams {
        let mut params = MethodParams::default();
        for (param, value) in &self.coords {
            match (param, value) {
                (Param::ThresholdMs, AxisValue::Num(x)) => params.threshold_ms = *x,
                (Param::FilterSkip, AxisValue::Text(s)) => {
                    params.filters = FilterConfig {
                        skip: Discard::ORDER.iter().copied().find(|d| d.key() == s),
                        ..FilterConfig::default()
                    };
                }
                (Param::PeerGroupAssumption, AxisValue::Text(s)) => {
                    params.peer_group = parse_peer_group(s).expect("validated at parse time");
                }
                _ => {}
            }
        }
        params
    }
}

/// Expose the peer-group key mapping for output rendering.
pub fn peer_group_label(g: PeerGroup) -> &'static str {
    peer_group_key(g)
}

/// Built-in presets: the sweeps EXPERIMENTS.md reports, plus the CI smoke
/// sweep. The old one-off `threshold_sweep` / `filter_ablation` experiment
/// paths are the `threshold` and `ablation` presets' baseline structure
/// expressed through this engine.
const PRESETS: [(&str, &str); 7] = [
    (
        "threshold",
        r#"{
            "name": "threshold",
            "description": "Remoteness-threshold sensitivity: precision/recall asymmetry around the paper's 10 ms choice",
            "replicates": 8,
            "axes": [
                {"param": "threshold_ms", "values": [2, 4, 6, 8, 10, 15, 20, 30, 50]}
            ]
        }"#,
    ),
    (
        "ablation",
        r#"{
            "name": "ablation",
            "description": "Filter ablation: what each of the six conservative filters buys, as a sweep arm",
            "replicates": 8,
            "axes": [
                {"param": "filter_skip", "values": ["none", "sample_size", "ttl_switch", "ttl_match", "rtt_consistent", "lg_consistent", "asn_change"]}
            ]
        }"#,
    ),
    (
        "pathology",
        r#"{
            "name": "pathology",
            "description": "Congestion sensitivity: persistent (congested ports) and transient (late-epoch floors) pathologies plus blackholing",
            "replicates": 6,
            "axes": [
                {"param": "congestion_rate", "values": [0.05, 0.15]},
                {"param": "late_epoch_rate", "values": [0.004, 0.02]},
                {"param": "blackhole_rate", "values": [0.0025, 0.02]}
            ]
        }"#,
    ),
    (
        "registry",
        r#"{
            "name": "registry",
            "description": "Registry-quality sensitivity: stale listings, ASN churn, unidentifiable addresses",
            "replicates": 6,
            "axes": [
                {"param": "stale_listing_rate", "values": [0.0025, 0.02]},
                {"param": "asn_churn_rate", "values": [0.0011, 0.01]},
                {"param": "unidentifiable_rate", "values": [0.27, 0.45]}
            ]
        }"#,
    ),
    (
        "remote",
        r#"{
            "name": "remote",
            "description": "Remote-provider market structure: share of remote members and pseudowire length",
            "replicates": 6,
            "axes": [
                {"param": "remote_share_scale", "values": [0, 0.5, 1, 2]},
                {"param": "pseudowire_slack", "values": [0.5, 1, 2]}
            ]
        }"#,
    ),
    (
        "vantage",
        r#"{
            "name": "vantage",
            "description": "Study-network location and peer-group assumption: the section 5.2 Madrid-vs-Nairobi economics inside the sweep engine",
            "replicates": 6,
            "axes": [
                {"param": "vantage_city", "values": ["Madrid", "Nairobi"]},
                {"param": "peer_group", "values": ["all", "open"]}
            ]
        }"#,
    ),
    (
        "smoke",
        r#"{
            "name": "smoke",
            "description": "Tiny method-only sweep for CI: two axes, one shared world per replicate",
            "replicates": 3,
            "axes": [
                {"param": "threshold_ms", "values": [10, 20]},
                {"param": "filter_skip", "values": ["none", "rtt_consistent"]}
            ]
        }"#,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_expand() {
        for name in ScenarioSpec::preset_names() {
            let spec = ScenarioSpec::preset(name).unwrap();
            assert_eq!(spec.name, name);
            let cells = spec.cells();
            let expected: usize = spec.axes.iter().map(|a| a.values.len()).product();
            assert_eq!(cells.len(), expected, "{name}");
            // Exactly one baseline arm per preset.
            let baselines = cells.iter().filter(|c| c.is_baseline(&spec)).count();
            assert_eq!(baselines, 1, "{name}: {baselines} baseline cells");
        }
        assert!(ScenarioSpec::preset("no_such_preset").is_none());
    }

    #[test]
    fn threshold_preset_baseline_is_the_papers_choice() {
        let spec = ScenarioSpec::preset("threshold").unwrap();
        let baseline = spec
            .cells()
            .into_iter()
            .find(|c| c.is_baseline(&spec))
            .unwrap();
        assert_eq!(baseline.label(), "threshold_ms=10");
        assert_eq!(baseline.method_params().threshold_ms, 10.0);
    }

    #[test]
    fn cross_product_orders_last_axis_fastest() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "t", "axes": [
                {"param": "threshold_ms", "values": [10, 20]},
                {"param": "filter_skip", "values": ["none", "asn_change"]}
            ]}"#,
        )
        .unwrap();
        let labels: Vec<String> = spec.cells().iter().map(Cell::label).collect();
        assert_eq!(
            labels,
            vec![
                "threshold_ms=10,filter_skip=none",
                "threshold_ms=10,filter_skip=asn_change",
                "threshold_ms=20,filter_skip=none",
                "threshold_ms=20,filter_skip=asn_change",
            ]
        );
    }

    #[test]
    fn method_only_cells_share_a_world_key() {
        let spec = ScenarioSpec::preset("smoke").unwrap();
        let keys: std::collections::HashSet<String> =
            spec.cells().iter().map(Cell::world_key).collect();
        assert_eq!(keys.len(), 1, "smoke is method-only");
        let spec = ScenarioSpec::preset("remote").unwrap();
        let keys: std::collections::HashSet<String> =
            spec.cells().iter().map(Cell::world_key).collect();
        assert_eq!(keys.len(), 12, "every remote cell rebuilds its world");
    }

    #[test]
    fn world_overrides_land_in_the_config() {
        let spec = ScenarioSpec::from_json(
            r#"{"name": "w", "axes": [
                {"param": "remote_share_scale", "values": [0.5]},
                {"param": "congestion_rate", "values": [0.2]},
                {"param": "vantage_city", "values": ["Nairobi"]}
            ]}"#,
        )
        .unwrap();
        let cell = &spec.cells()[0];
        let cfg = cell.apply_world(&WorldConfig::test_scale(7));
        assert_eq!(cfg.scene.remote_share_scale, 0.5);
        assert_eq!(cfg.scene.rates.congested, 0.2);
        assert_eq!(cfg.vantage_city, "Nairobi");
        // Method params stay at their defaults.
        assert_eq!(cell.method_params().threshold_ms, 10.0);
    }

    #[test]
    fn invalid_specs_are_rejected_with_context() {
        let cases = [
            (r#"{"axes": []}"#, "name"),
            (r#"{"name": "x", "axes": []}"#, "axes"),
            (
                r#"{"name": "x", "axes": [{"param": "bogus", "values": [1]}]}"#,
                "bogus",
            ),
            (
                r#"{"name": "x", "axes": [{"param": "threshold_ms", "values": [0]}]}"#,
                "positive",
            ),
            (
                r#"{"name": "x", "axes": [{"param": "vantage_city", "values": ["Atlantis"]}]}"#,
                "Atlantis",
            ),
            (
                r#"{"name": "x", "axes": [{"param": "filter_skip", "values": ["everything"]}]}"#,
                "filter_skip",
            ),
            (
                r#"{"name": "x", "axes": [{"param": "threshold_ms", "values": [10, 10]}]}"#,
                "duplicate",
            ),
            (
                r#"{"name": "x", "axes": [
                    {"param": "threshold_ms", "values": [10]},
                    {"param": "threshold_ms", "values": [20]}
                ]}"#,
                "twice",
            ),
            (
                r#"{"name": "x", "axes": [{"param": "threshold_ms", "values": [10], "baseline": 20}]}"#,
                "baseline",
            ),
            (
                r#"{"name": "UPPER", "axes": [{"param": "threshold_ms", "values": [10]}]}"#,
                "lowercase",
            ),
        ];
        for (text, needle) in cases {
            let e = ScenarioSpec::from_json(text).unwrap_err();
            assert!(
                e.message.contains(needle),
                "{text}: error {:?} should mention {needle:?}",
                e.message
            );
        }
    }

    #[test]
    fn resolve_value_accepts_presets_and_inline_specs() {
        let preset = serde_json::from_str(r#"{"preset": "smoke"}"#).unwrap();
        assert_eq!(ScenarioSpec::resolve_value(&preset).unwrap().name, "smoke");
        let bogus = serde_json::from_str(r#"{"preset": "nope"}"#).unwrap();
        let e = ScenarioSpec::resolve_value(&bogus).unwrap_err();
        assert!(e.message.contains("nope"), "{}", e.message);
        let inline = serde_json::from_str(
            r#"{"name": "t", "axes": [{"param": "threshold_ms", "values": [5]}]}"#,
        )
        .unwrap();
        assert_eq!(ScenarioSpec::resolve_value(&inline).unwrap().name, "t");
    }

    #[test]
    fn defaults_match_the_unmodified_pipeline() {
        use remote_peering::ixp::membership::PathologyRates;
        let rates = PathologyRates::default();
        assert_eq!(
            Param::CongestionRate.default_value(),
            AxisValue::Num(rates.congested)
        );
        assert_eq!(
            Param::StaleListingRate.default_value(),
            AxisValue::Num(rates.absent)
        );
        let base = WorldConfig::test_scale(1);
        assert_eq!(
            Param::VantageCity.default_value(),
            AxisValue::Text(base.vantage_city)
        );
    }
}
