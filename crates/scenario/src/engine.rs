//! The Monte-Carlo replication engine.
//!
//! [`run_sweep`] evaluates every cell of a [`ScenarioSpec`] over N
//! replicate seeds and returns the full result as a JSON value. Three
//! properties are load-bearing:
//!
//! * **Common random numbers.** Replicate `r` uses the seed
//!   `seed::derive2(cfg.seed, "scenario-replicate", r, 0)` in *every*
//!   cell, so arms see the same sequence of worlds and their
//!   per-replicate differences cancel world-to-world variance. The
//!   paired-delta CIs in the output exploit exactly this pairing.
//! * **World sharing.** Cells that differ only in method parameters
//!   (threshold, filter mask, peer group) share one world build and
//!   probing campaign per replicate — the expensive 99% of the work.
//! * **Schedule independence.** The (world-group × replicate) tasks run
//!   on rayon, but every observation is keyed by `(cell, replicate)` and
//!   statistics are computed over index-sorted samples
//!   ([`rp_types::stats::Accumulator`]), so the output is bit-identical
//!   at any thread count.

use crate::spec::{Cell, ScenarioSpec};
use rayon::prelude::*;
use remote_peering::campaign::Campaign;
use remote_peering::metrics::{PreparedRun, RunMetrics};
use remote_peering::world::WorldConfig;
use rp_types::seed;
use rp_types::stats::{paired_deltas, t_interval, Accumulator};
use serde_json::{json, Value};

/// Engine configuration: seeding, world scale, and CI settings.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; replicate seeds derive from it.
    pub seed: u64,
    /// Build paper-scale worlds (minutes per replicate) instead of
    /// test-scale ones (sub-second).
    pub paper_scale: bool,
    /// Replicate seeds per cell.
    pub replicates: u64,
    /// Two-sided confidence level for every interval (e.g. 0.95).
    pub confidence: f64,
    /// Bootstrap resamples per (cell, metric) interval.
    pub resamples: usize,
    /// Data-plane shards per simulated IXP network (0 = one per fabric
    /// site, capped at the available cores). Pure performance policy:
    /// sweep results are bit-identical at every value, so the knob never
    /// appears in the output JSON.
    pub shards: usize,
    /// Reuse memoized world builds and probe sets across tasks (the
    /// default). `false` is the reference arm the differential harness
    /// compares against: every task rebuilds its world and re-probes from
    /// scratch, bypassing [`remote_peering::memo`] entirely. Like
    /// `shards`, pure performance policy — the output JSON is
    /// byte-identical either way, so the knob never appears in it.
    pub reuse: bool,
}

impl SweepConfig {
    /// Test-scale defaults: 8 replicates, 95% intervals, 400 resamples.
    pub fn test_default(seed: u64) -> Self {
        SweepConfig {
            seed,
            paper_scale: false,
            replicates: 8,
            confidence: 0.95,
            resamples: 400,
            shards: 0,
            reuse: true,
        }
    }
}

/// Run `spec` under `cfg` and return the sweep result as JSON.
///
/// The result echoes the spec and engine configuration, then lists one
/// object per cell: its parameters, whether it is the baseline arm, a
/// per-metric summary (`n`, `mean`, `std`, Student-t and bootstrap CIs),
/// and — for non-baseline cells — paired-delta CIs against the baseline
/// arm over the shared replicate seeds.
pub fn run_sweep(spec: &ScenarioSpec, cfg: &SweepConfig) -> Value {
    let _sp = rp_obs::span("scenario.run_sweep");
    let cells = spec.cells();

    // Group cells by their world signature, preserving first-appearance
    // order; each (group, replicate) pair is one schedulable task sharing
    // a single build + probe.
    let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
    for (idx, cell) in cells.iter().enumerate() {
        let key = cell.world_key();
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(idx),
            None => groups.push((key, vec![idx])),
        }
    }
    rp_obs::counter!("scenario.cells").add(cells.len() as u64);
    rp_obs::counter!("scenario.world_groups").add(groups.len() as u64);
    rp_obs::counter!("scenario.replicates").add(cfg.replicates);
    // Sweep shape over the group axis: how many cells share each world
    // group. Recorded before the parallel fan-out, so it is trivially
    // schedule-independent.
    for (g, (_, members)) in groups.iter().enumerate() {
        rp_obs::timeline::index_point("scenario.sweep.group_cells", g as u64, members.len() as u64);
    }

    let tasks: Vec<(usize, u64)> = (0..groups.len())
        .flat_map(|g| (0..cfg.replicates).map(move |r| (g, r)))
        .collect();

    // Worker results carry their (cell, replicate) key, so the order in
    // which rayon delivers them is irrelevant to the statistics below.
    let observations: Vec<Vec<(usize, u64, RunMetrics)>> = tasks
        .par_iter()
        .map(|&(g, r)| {
            let _tsp = rp_obs::span("scenario.task");
            let t0 = std::time::Instant::now();
            let members = &groups[g].1;
            // The same replicate seed in every group: common random numbers.
            let rep_seed = seed::derive2(cfg.seed, "scenario-replicate", r, 0);
            let base = if cfg.paper_scale {
                WorldConfig::paper_scale(rep_seed)
            } else {
                WorldConfig::test_scale(rep_seed)
            };
            let world_cfg = cells[members[0]].apply_world(&base);
            let campaign = Campaign {
                shards: cfg.shards,
                ..Campaign::default_paper()
            };
            // Memoized build + probe: tasks that revisit a (config,
            // campaign) pair — e.g. the baseline group across presets run
            // in one process — share the expensive work. The reference arm
            // (`reuse: false`) rebuilds and re-probes from scratch instead;
            // byte-identity of the two paths is what the fork-equivalence
            // harness pins.
            let run = if cfg.reuse {
                PreparedRun::probe_cached(&world_cfg, &campaign)
            } else {
                PreparedRun::probe(remote_peering::world::World::build(&world_cfg), &campaign)
            };
            let out: Vec<(usize, u64, RunMetrics)> = members
                .iter()
                .map(|&ci| (ci, r, RunMetrics::collect(&run, &cells[ci].method_params())))
                .collect();
            rp_obs::histogram!("scenario.task_ms", rp_obs::metrics::TASK_MS_BUCKETS)
                .observe(t0.elapsed().as_secs_f64() * 1_000.0);
            out
        })
        .collect();

    let n_metrics = RunMetrics::NAMES.len();
    let mut accs: Vec<Vec<Accumulator>> = (0..cells.len())
        .map(|_| vec![Accumulator::new(); n_metrics])
        .collect();
    for obs in observations.iter().flatten() {
        let (ci, r, metrics) = obs;
        for (mi, (_, value)) in metrics.named().iter().enumerate() {
            accs[*ci][mi].record(*r, *value);
        }
    }

    let baseline_idx = cells
        .iter()
        .position(|c| c.is_baseline(spec))
        .expect("every axis baseline is among its values, so the grid contains the baseline cell");

    let cell_objects: Vec<Value> = cells
        .iter()
        .enumerate()
        .map(|(ci, cell)| cell_json(cfg, cell, ci, &accs, baseline_idx))
        .collect();

    json!({
        "spec": spec.to_json(),
        "config": {
            "seed": cfg.seed,
            "scale": if cfg.paper_scale { "paper" } else { "test" },
            "replicates": cfg.replicates,
            "confidence": cfg.confidence,
            "bootstrap_resamples": cfg.resamples,
        },
        "cells": cell_objects,
    })
}

fn cell_json(
    cfg: &SweepConfig,
    cell: &Cell,
    ci: usize,
    accs: &[Vec<Accumulator>],
    baseline_idx: usize,
) -> Value {
    let mut metrics = Vec::with_capacity(RunMetrics::NAMES.len());
    for (mi, name) in RunMetrics::NAMES.iter().enumerate() {
        let acc = &accs[ci][mi];
        let s = acc.summary();
        let t = acc.t_interval(cfg.confidence);
        let boot_seed = seed::derive2(cfg.seed, "scenario-bootstrap", ci as u64, mi as u64);
        let b = acc.bootstrap_interval(cfg.confidence, cfg.resamples, boot_seed);
        metrics.push((
            name.to_string(),
            json!({
                "n": s.n,
                "mean": s.mean,
                "std": s.std_dev,
                "t_ci": [t.lo, t.hi],
                "bootstrap_ci": [b.lo, b.hi],
            }),
        ));
    }
    let is_baseline = ci == baseline_idx;
    let mut obj = vec![
        ("label".to_string(), Value::String(cell.label())),
        ("params".to_string(), cell.params_json()),
        ("baseline".to_string(), Value::Bool(is_baseline)),
        ("metrics".to_string(), Value::Object(metrics)),
    ];
    if !is_baseline {
        let mut deltas = Vec::with_capacity(RunMetrics::NAMES.len());
        for (mi, name) in RunMetrics::NAMES.iter().enumerate() {
            let ds = paired_deltas(&accs[ci][mi], &accs[baseline_idx][mi]);
            let t = t_interval(&ds, cfg.confidence);
            deltas.push((
                name.to_string(),
                json!({
                    "mean": rp_types::stats::mean(&ds),
                    "t_ci": [t.lo, t.hi],
                }),
            ));
        }
        obj.push(("delta_vs_baseline".to_string(), Value::Object(deltas)));
    }
    Value::Object(obj)
}
