#![warn(missing_docs)]

//! # rp-scenario
//!
//! Declarative sensitivity sweeps over the remote-peering pipeline.
//!
//! The paper's claims rest on point estimates: one Internet, one 10 ms
//! threshold, one month of NetFlow. The simulator knows full ground truth,
//! so it can do what the paper couldn't — quantify how detection
//! precision/recall, offload curves, and economic viability move as the
//! measurement pathologies, methodology knobs, and topology assumptions
//! vary. This crate turns that question into a declarative artifact:
//!
//! - [`spec`] — a [`spec::ScenarioSpec`] (JSON file or built-in preset)
//!   names axes of overrides over [`remote_peering::world::WorldConfig`]
//!   and the methodology parameters, expanded into a cross-product grid of
//!   cells.
//! - [`engine`] — [`engine::run_sweep`] runs every cell over N replicate
//!   seeds with *common random numbers*: the same replicate seed is paired
//!   across all arms (via [`rp_types::seed::derive2`]), so per-replicate
//!   arm deltas cancel the world-to-world variance and the paired-delta
//!   confidence intervals are much tighter than independent-seed ones.
//!   Cells that differ only in analysis-time parameters share one world
//!   build and probing campaign per replicate. The (world-group ×
//!   replicate) matrix runs on rayon with bit-identical results at any
//!   thread count.
//!
//! The statistics layer (mean/stddev, Student-t and bootstrap CIs, paired
//! deltas) lives in [`rp_types::stats`] so other crates can reuse it.

pub mod engine;
pub mod spec;

pub use engine::{run_sweep, SweepConfig};
pub use spec::{Axis, AxisValue, Cell, Param, ScenarioSpec, SpecError};
