//! End-to-end checks of the sweep engine against the per-run metrics layer
//! it aggregates: the engine must be a faithful (and world-sharing)
//! restatement of running [`RunMetrics::collect`] replicate by replicate.

use remote_peering::campaign::Campaign;
use remote_peering::metrics::{PreparedRun, RunMetrics};
use remote_peering::world::{World, WorldConfig};
use rp_scenario::{run_sweep, ScenarioSpec, SweepConfig};
use rp_types::seed;
use serde_json::Value;

fn cell<'a>(out: &'a Value, label: &str) -> &'a Value {
    out.get("cells")
        .and_then(Value::as_array)
        .expect("cells array")
        .iter()
        .find(|c| c.get("label").and_then(Value::as_str) == Some(label))
        .unwrap_or_else(|| panic!("no cell labelled {label}"))
}

fn metric_mean(cell: &Value, name: &str) -> f64 {
    cell.get("metrics")
        .and_then(|m| m.get(name))
        .and_then(|m| m.get("mean"))
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("metric {name} missing a mean"))
}

#[test]
fn smoke_sweep_structure_and_baseline_deltas() {
    let spec = ScenarioSpec::preset("smoke").expect("smoke preset exists");
    let cfg = SweepConfig {
        replicates: 3,
        ..SweepConfig::test_default(7)
    };
    let out = run_sweep(&spec, &cfg);

    let cells = out.get("cells").and_then(Value::as_array).expect("cells");
    assert_eq!(cells.len(), 4, "2x2 smoke grid");
    let baselines: Vec<&Value> = cells
        .iter()
        .filter(|c| c.get("baseline") == Some(&Value::Bool(true)))
        .collect();
    assert_eq!(baselines.len(), 1, "exactly one baseline arm");
    assert_eq!(
        baselines[0].get("label").and_then(Value::as_str),
        Some("threshold_ms=10,filter_skip=none")
    );
    assert!(
        baselines[0].get("delta_vs_baseline").is_none(),
        "the baseline arm has no delta against itself"
    );
    for c in cells {
        let metrics = c.get("metrics").expect("metrics object");
        for name in RunMetrics::NAMES {
            let m = metrics.get(name).expect("every metric is present");
            assert_eq!(m.get("n").and_then(Value::as_u64), Some(3));
            let mean = m.get("mean").and_then(Value::as_f64).unwrap();
            let t_ci = m.get("t_ci").and_then(Value::as_array).unwrap();
            let (lo, hi) = (t_ci[0].as_f64().unwrap(), t_ci[1].as_f64().unwrap());
            assert!(
                lo <= mean && mean <= hi,
                "{name}: mean {mean} outside its own CI [{lo}, {hi}]"
            );
        }
        if c.get("baseline") == Some(&Value::Bool(false)) {
            let deltas = c
                .get("delta_vs_baseline")
                .expect("non-baseline cells carry deltas");
            assert!(deltas.get("remote_fraction").is_some());
        }
    }
    // Echoes make the file self-describing.
    assert_eq!(
        out.get("spec")
            .and_then(|s| s.get("name"))
            .and_then(Value::as_str),
        Some("smoke")
    );
    assert_eq!(
        out.get("config")
            .and_then(|c| c.get("replicates"))
            .and_then(Value::as_u64),
        Some(3)
    );
}

#[test]
fn engine_means_equal_direct_per_replicate_collection() {
    // The engine's per-cell mean must be exactly the mean of running the
    // metrics layer by hand over the same derived replicate seeds — no
    // hidden seed drift, no extra aggregation steps.
    let spec = ScenarioSpec::from_json(
        r#"{"name": "pinned", "axes": [{"param": "threshold_ms", "values": [10, 20]}]}"#,
    )
    .unwrap();
    let cfg = SweepConfig {
        replicates: 2,
        ..SweepConfig::test_default(42)
    };
    let out = run_sweep(&spec, &cfg);

    let campaign = Campaign::default_paper();
    for (label, threshold) in [("threshold_ms=10", 10.0), ("threshold_ms=20", 20.0)] {
        let mut sum = 0.0;
        for r in 0..cfg.replicates {
            let s = seed::derive2(cfg.seed, "scenario-replicate", r, 0);
            let run = PreparedRun::probe(World::build(&WorldConfig::test_scale(s)), &campaign);
            let params = remote_peering::metrics::MethodParams {
                threshold_ms: threshold,
                ..Default::default()
            };
            sum += RunMetrics::collect(&run, &params).recall;
        }
        let by_hand = sum / cfg.replicates as f64;
        let engine = metric_mean(cell(&out, label), "recall");
        assert!(
            (engine - by_hand).abs() < 1e-12,
            "{label}: engine mean {engine} != direct mean {by_hand}"
        );
    }
}

#[test]
fn threshold_preset_reproduces_the_papers_operating_point() {
    // The baseline arm of the threshold preset (10 ms) must show the
    // paper's central property — perfect precision with useful recall —
    // and the grid must bracket it the way figure 2's RTT mass implies:
    // tighter thresholds trade precision away, looser ones trade recall.
    let spec = ScenarioSpec::preset("threshold").expect("threshold preset exists");
    let cfg = SweepConfig {
        replicates: 3,
        ..SweepConfig::test_default(7)
    };
    let out = run_sweep(&spec, &cfg);

    let base = cell(&out, "threshold_ms=10");
    assert_eq!(base.get("baseline"), Some(&Value::Bool(true)));
    assert_eq!(metric_mean(base, "precision"), 1.0);
    let base_recall = metric_mean(base, "recall");
    assert!(base_recall > 0.5 && base_recall <= 1.0);

    let tight = cell(&out, "threshold_ms=2");
    assert!(
        metric_mean(tight, "precision") < 1.0,
        "2 ms must catch locals"
    );
    assert!(metric_mean(tight, "recall") >= base_recall);

    let loose = cell(&out, "threshold_ms=50");
    assert_eq!(metric_mean(loose, "precision"), 1.0);
    assert!(metric_mean(loose, "recall") < base_recall);
}
