//! Closed-form optima (eqs. 11 and 13) and the numeric minimizer used to
//! cross-validate them.

use crate::cost::CostParams;
use serde::{Deserialize, Serialize};

/// The transit + direct-peering optimum (eq. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalDirect {
    /// Optimal number of directly peered IXPs, ñ (continuous; clamped at 0
    /// when direct peering never pays).
    pub n: f64,
    /// Traffic fraction offloaded via direct peering at the optimum, d̃.
    pub d: f64,
    /// Total cost at the optimum.
    pub cost: f64,
}

/// The remote-peering extension optimum (eq. 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalRemote {
    /// Optimal number of remotely peered extra IXPs, m̃ (continuous; clamped
    /// at 0 when remote peering never pays).
    pub m: f64,
    /// Total cost at (ñ, m̃).
    pub cost: f64,
}

/// Eq. 11: `ñ = ln(b·(p−u)/g) / b`, `d̃ = 1 − e^(−b·ñ)`.
///
/// When `b·(p−u) ≤ g` the marginal IXP never pays for itself and the
/// optimum clamps to `n = 0` (all-transit).
pub fn optimal_direct(params: &CostParams) -> OptimalDirect {
    let arg = params.b * (params.p - params.u) / params.g;
    let n = if arg > 1.0 { arg.ln() / params.b } else { 0.0 };
    let d = 1.0 - (-params.b * n).exp();
    OptimalDirect {
        n,
        d,
        cost: params.cost_direct_only(n),
    }
}

/// Eq. 13: the optimal number of remotely peered extra IXPs, continuing
/// from the direct optimum ñ.
///
/// The first-order condition on eq. 12 gives `ñ + m̃ = ln(b·(p−v)/h) / b`;
/// substituting the *interior* ñ of eq. 11 yields the paper's printed form
/// `m̃ = ln( g·(p−v) / (h·(p−u)) ) / b`. The printed form silently assumes
/// ñ is interior: when direct peering never pays (`b·(p−u) ≤ g`, so ñ
/// clamps to 0) the substitution is invalid and would overstate m̃. This
/// implementation solves the first-order condition against the actual
/// (possibly clamped) ñ, which reproduces eq. 13 exactly whenever ñ > 0 —
/// the regime the paper analyzes — and stays correct at the boundary. The
/// property tests cross-check both regimes against a numeric minimizer.
pub fn optimal_remote(params: &CostParams) -> OptimalRemote {
    let direct = optimal_direct(params);
    let arg = params.b * (params.p - params.v) / params.h;
    let total_k = if arg > 1.0 { arg.ln() / params.b } else { 0.0 };
    let m = (total_k - direct.n).max(0.0);
    OptimalRemote {
        m,
        cost: params.cost_with_remote(direct.n, m),
    }
}

/// The *joint* continuous optimum over (n, m) — a strictly stronger
/// solution than the paper's staged approach.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalJoint {
    /// Jointly optimal number of directly peered IXPs.
    pub n: f64,
    /// Jointly optimal number of remotely peered IXPs.
    pub m: f64,
    /// Total cost at the joint optimum.
    pub cost: f64,
}

/// Minimize eq. 12's cost over `n` and `m` *together*.
///
/// The paper optimizes sequentially: eq. 11 fixes ñ assuming no remote
/// peering, then eq. 13 adds m̃ on top. Sequential is not joint: once
/// remote peering is available, the optimal number of *direct* IXPs
/// changes (remote IXPs cover the margin more cheaply). Setting both
/// partial derivatives of eq. 12 to zero gives, in the interior,
///
/// ```text
/// n* = ln( b·(v−u) / (g−h) ) / b        (not eq. 11's ñ!)
/// n* + m* = ln( b·(p−v) / h ) / b
/// ```
///
/// with boundary clamps at n = 0 (all peering remote) and m = 0 (eq. 11
/// exactly). The cost function is jointly convex, so these candidates
/// exhaust the optimum. The staged solution's cost is an upper bound; the
/// gap is the price of the paper's sequential simplification.
pub fn optimal_joint(params: &CostParams) -> OptimalJoint {
    let b = params.b;
    let total_arg = b * (params.p - params.v) / params.h;
    let total_k = if total_arg > 1.0 {
        total_arg.ln() / b
    } else {
        0.0
    };

    let mut candidates: Vec<(f64, f64)> = Vec::new();
    // Interior stationary point.
    let n_arg = b * (params.v - params.u) / (params.g - params.h);
    if n_arg > 1.0 {
        let n = n_arg.ln() / b;
        if n <= total_k {
            candidates.push((n, total_k - n));
        }
    }
    // Boundary n = 0: remote-only peering.
    candidates.push((0.0, total_k));
    // Boundary m = 0: eq. 11's direct-only optimum.
    let direct = optimal_direct(params);
    candidates.push((direct.n, 0.0));
    // No peering at all.
    candidates.push((0.0, 0.0));

    let best = candidates
        .into_iter()
        .map(|(n, m)| (params.cost_with_remote(n, m), n, m))
        .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"))
        .expect("candidates non-empty");
    OptimalJoint {
        n: best.1,
        m: best.2,
        cost: best.0,
    }
}

/// The paper's eq. 13 exactly as printed: `m̃ = ln(g(p−v)/(h(p−u)))/b`,
/// valid in the interior-ñ regime. Exposed for the benches that reproduce
/// the section 5 analysis verbatim.
pub fn eq13_printed(params: &CostParams) -> f64 {
    let ratio = params.g * (params.p - params.v) / (params.h * (params.p - params.u));
    if ratio > 1.0 {
        ratio.ln() / params.b
    } else {
        0.0
    }
}

/// Golden-section minimizer over `[lo, hi]` for smooth unimodal scalar
/// functions — the numeric referee for the closed forms.
pub fn minimize_scalar(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    const PHI: f64 = 0.618_033_988_749_894_8;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - PHI * (b - a);
    let mut d = a + PHI * (b - a);
    let (mut fc, mut fd) = (f(c), f(d));
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + PHI * (b - a);
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn closed_form_direct_matches_numeric() {
        let params = CostParams::example();
        let analytic = optimal_direct(&params);
        let (n_num, c_num) = minimize_scalar(|n| params.cost_direct_only(n), 0.0, 50.0, 1e-9);
        assert!(
            (analytic.n - n_num).abs() < 1e-5,
            "{} vs {}",
            analytic.n,
            n_num
        );
        assert!((analytic.cost - c_num).abs() < 1e-9);
    }

    #[test]
    fn closed_form_remote_matches_numeric() {
        let params = CostParams::example();
        let direct = optimal_direct(&params);
        let analytic = optimal_remote(&params);
        let (m_num, c_num) =
            minimize_scalar(|m| params.cost_with_remote(direct.n, m), 0.0, 50.0, 1e-9);
        assert!(
            (analytic.m - m_num).abs() < 1e-5,
            "{} vs {}",
            analytic.m,
            m_num
        );
        assert!((analytic.cost - c_num).abs() < 1e-9);
    }

    #[test]
    fn clamps_when_peering_never_pays() {
        // Enormous per-IXP cost: stay on transit.
        let params = CostParams {
            g: 100.0,
            h: 50.0,
            ..CostParams::example()
        };
        params.validate().unwrap();
        let d = optimal_direct(&params);
        assert_eq!(d.n, 0.0);
        assert_eq!(d.d, 0.0);
        assert!((d.cost - params.p).abs() < 1e-12);
        // With h also enormous, remote peering never pays either:
        // b(p−v)/h ≪ 1.
        let r = optimal_remote(&params);
        assert_eq!(r.m, 0.0);
        assert!((r.cost - params.p).abs() < 1e-12);

        // But with a tiny h, remote peering pays even though direct still
        // does not — the regime where the printed eq. 13 would mislead.
        let params = CostParams {
            g: 100.0,
            h: 0.05,
            ..CostParams::example()
        };
        params.validate().unwrap();
        assert_eq!(optimal_direct(&params).n, 0.0);
        let r = optimal_remote(&params);
        assert!(r.m > 1.0, "m̃ = {}", r.m);
        assert!(
            r.m < eq13_printed(&params),
            "printed form overstates in clamped regime"
        );
        let (m_num, _) = minimize_scalar(|m| params.cost_with_remote(0.0, m), 0.0, 50.0, 1e-9);
        assert!((r.m - m_num).abs() < 1e-5, "{} vs numeric {}", r.m, m_num);
    }

    #[test]
    fn printed_eq13_matches_general_form_in_interior_regime() {
        let params = CostParams::example();
        assert!(optimal_direct(&params).n > 0.0, "interior regime");
        let general = optimal_remote(&params).m;
        assert!((general - eq13_printed(&params)).abs() < 1e-12);
    }

    #[test]
    fn adding_remote_never_costs_more_than_direct_only_optimum() {
        let params = CostParams::example();
        let d = optimal_direct(&params);
        let r = optimal_remote(&params);
        assert!(r.cost <= d.cost + 1e-12);
    }

    #[test]
    fn networks_with_global_traffic_use_more_remote_peering() {
        // Lower b (globally spread traffic) ⇒ larger m̃ — the paper's
        // conclusion that remote peering is "more viable for networks with
        // lower b values".
        let lo_b = CostParams {
            b: 0.2,
            ..CostParams::example()
        };
        let hi_b = CostParams {
            b: 1.2,
            ..CostParams::example()
        };
        assert!(optimal_remote(&lo_b).m > optimal_remote(&hi_b).m);
    }

    fn arb_params() -> impl Strategy<Value = CostParams> {
        // Generate invariant-respecting parameters: u < v < p, h < g, b > 0.
        (
            0.05f64..0.5,
            0.05f64..0.9,
            0.05f64..0.9,
            0.01f64..0.5,
            0.05f64..0.95,
            0.05f64..2.0,
        )
            .prop_map(|(u_frac, v_frac, g, h_frac, _spare, b)| {
                let p = 1.0;
                let u = u_frac * p;
                let v = u + v_frac * (p - u) * 0.99 + 1e-6;
                let h = h_frac * g * 0.99;
                CostParams { p, u, v, g, h, b }
            })
    }

    proptest! {
        #[test]
        fn prop_closed_forms_beat_numeric_grid(params in arb_params()) {
            prop_assume!(params.validate().is_ok());
            let d = optimal_direct(&params);
            // The closed form is no worse than any grid point.
            for k in 0..200 {
                let n = k as f64 * 0.25;
                prop_assert!(d.cost <= params.cost_direct_only(n) + 1e-9,
                    "n={n} beats closed form");
            }
            let r = optimal_remote(&params);
            for k in 0..200 {
                let m = k as f64 * 0.25;
                prop_assert!(r.cost <= params.cost_with_remote(d.n, m) + 1e-9,
                    "m={m} beats closed form");
            }
        }

        #[test]
        fn prop_offload_fraction_in_unit_interval(params in arb_params()) {
            prop_assume!(params.validate().is_ok());
            let d = optimal_direct(&params);
            prop_assert!((0.0..=1.0).contains(&d.d));
            prop_assert!(d.n >= 0.0);
        }
    }
}
