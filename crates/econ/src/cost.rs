//! Cost parameters and the total-cost functions (eqs. 1–10, 12).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the section 5 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Normalized transit price (per unit of traffic).
    pub p: f64,
    /// Per-unit traffic-dependent cost of direct peering.
    pub u: f64,
    /// Per-unit traffic-dependent cost of remote peering.
    pub v: f64,
    /// Per-IXP traffic-independent cost of direct peering (membership fees,
    /// equipment, infrastructure extension to the IXP location).
    pub g: f64,
    /// Per-IXP traffic-independent cost of remote peering (lower than `g`:
    /// the provider aggregates customers and buys IXP resources in bulk).
    pub h: f64,
    /// Decay rate of the transit fraction per reached IXP (eq. 3). Low `b`
    /// = globally spread traffic (a single IXP offloads little); high `b` =
    /// concentrated traffic.
    pub b: f64,
}

/// Violation of the model's structural assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParams(pub String);

impl fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cost parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParams {}

impl CostParams {
    /// Validate the paper's invariants: positivity, `h < g` (ineq. 7) and
    /// `u < v < p` (ineq. 8).
    pub fn validate(&self) -> Result<(), InvalidParams> {
        let all = [self.p, self.u, self.v, self.g, self.h, self.b];
        if all.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(InvalidParams(
                "all parameters must be finite and non-negative".into(),
            ));
        }
        if self.h >= self.g {
            return Err(InvalidParams(format!(
                "h ({}) must be below g ({}): remote peering has the lower per-IXP cost",
                self.h, self.g
            )));
        }
        if !(self.u < self.v && self.v < self.p) {
            return Err(InvalidParams(format!(
                "need u < v < p, got u={} v={} p={}",
                self.u, self.v, self.p
            )));
        }
        if self.b <= 0.0 {
            return Err(InvalidParams("b must be positive".into()));
        }
        Ok(())
    }

    /// A plausible mid-market parameterization used by examples and
    /// benches: transit at the normalized price 1, direct peering cheap per
    /// bit but expensive per IXP, remote peering in between.
    pub fn example() -> Self {
        CostParams {
            p: 1.0,
            u: 0.2,
            v: 0.45,
            g: 0.12,
            h: 0.035,
            b: 0.55,
        }
    }

    /// Remaining transit traffic fraction after peering (directly or
    /// remotely) at `k = n + m` IXPs (eq. 3).
    pub fn transit_fraction(&self, k: f64) -> f64 {
        (-self.b * k).exp()
    }

    /// Total cost under transit + direct peering only (eq. 10):
    /// `C = (p − u)·e^(−b·n) + u + g·n`.
    pub fn cost_direct_only(&self, n: f64) -> f64 {
        (self.p - self.u) * (-self.b * n).exp() + self.u + self.g * n
    }

    /// Total cost with direct peering fixed at `n` IXPs plus remote peering
    /// at `m` extra IXPs (eq. 12):
    /// `C = (p − v)·e^(−b·(n+m)) + (v − u)·e^(−b·n) + g·n + u + h·m`.
    pub fn cost_with_remote(&self, n: f64, m: f64) -> f64 {
        (self.p - self.v) * (-self.b * (n + m)).exp()
            + (self.v - self.u) * (-self.b * n).exp()
            + self.g * n
            + self.u
            + self.h * m
    }

    /// The general three-way cost (eq. 9) for explicit traffic fractions:
    /// `C = p·t + g·n + u·d + h·m + v·r` with `t = e^(−b·(n+m))`,
    /// `d + r = 1 − t` split as given.
    ///
    /// `d` is the fraction delivered via direct peering; the remote fraction
    /// is whatever else is not transit. Panics in debug builds if `d`
    /// exceeds the non-transit fraction.
    pub fn cost_general(&self, n: f64, m: f64, d: f64) -> f64 {
        let t = self.transit_fraction(n + m);
        let r = 1.0 - t - d;
        debug_assert!(
            r >= -1e-12,
            "d={d} exceeds non-transit fraction {}",
            1.0 - t
        );
        self.p * t + self.g * n + self.u * d + self.h * m + self.v * r.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_params_are_valid() {
        CostParams::example().validate().unwrap();
    }

    #[test]
    fn invariants_are_enforced() {
        let mut p = CostParams::example();
        p.h = p.g; // violates ineq. 7
        assert!(p.validate().is_err());

        let mut p = CostParams::example();
        p.v = p.p; // violates ineq. 8
        assert!(p.validate().is_err());

        let mut p = CostParams::example();
        p.v = p.u; // violates ineq. 8 the other way
        assert!(p.validate().is_err());

        let mut p = CostParams::example();
        p.b = 0.0;
        assert!(p.validate().is_err());

        let mut p = CostParams::example();
        p.g = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn transit_fraction_decays_from_one() {
        let p = CostParams::example();
        assert!((p.transit_fraction(0.0) - 1.0).abs() < 1e-12);
        assert!(p.transit_fraction(1.0) < 1.0);
        assert!(p.transit_fraction(10.0) < p.transit_fraction(5.0));
    }

    #[test]
    fn cost_formulations_agree() {
        // Eq. 10 is eq. 9 with m = 0 and everything non-transit direct.
        let params = CostParams::example();
        for n in [0.0, 1.0, 2.5, 7.0] {
            let d = 1.0 - params.transit_fraction(n);
            let a = params.cost_direct_only(n);
            let b = params.cost_general(n, 0.0, d);
            assert!((a - b).abs() < 1e-12, "n={n}: {a} vs {b}");
        }
        // Eq. 12 is eq. 9 with d frozen at the direct-only optimum's level.
        for (n, m) in [(1.0, 0.0), (2.0, 1.0), (1.5, 3.0)] {
            let d = 1.0 - params.transit_fraction(n);
            let a = params.cost_with_remote(n, m);
            let b = params.cost_general(n, m, d);
            assert!((a - b).abs() < 1e-12, "n={n} m={m}: {a} vs {b}");
        }
    }

    #[test]
    fn no_peering_costs_exactly_transit() {
        let p = CostParams::example();
        assert!((p.cost_direct_only(0.0) - p.p).abs() < 1e-12);
        assert!((p.cost_with_remote(0.0, 0.0) - p.p).abs() < 1e-12);
    }

    #[test]
    fn remote_extension_at_zero_m_matches_direct_only() {
        let p = CostParams::example();
        for n in [0.0, 1.0, 3.0] {
            assert!((p.cost_with_remote(n, 0.0) - p.cost_direct_only(n)).abs() < 1e-12);
        }
    }
}
