//! The economic-viability condition for remote peering (eq. 14).
//!
//! Remote peering at one or more IXPs reduces total cost exactly when
//! `m̃ ≥ 1`, i.e. `g·(p−v) / (h·(p−u)) ≥ e^b`. The condition explains two of
//! the paper's observations: remote peering favors networks with *global*
//! traffic (low `b`), and it favors regions where the per-IXP cost gap is
//! extreme — "in regions such as Africa, h tends to be much smaller than g
//! because local IXPs offer little opportunities to offload traffic, and
//! transit is expensive," which is why remote peering is economically
//! attractive for African networks.

use crate::cost::CostParams;

/// The left-hand side of eq. 14 divided by its right-hand side:
/// `g(p−v) / (h(p−u)) / e^b`. Remote peering is viable when the margin is
/// at least 1.
pub fn viability_margin(params: &CostParams) -> f64 {
    let lhs = params.g * (params.p - params.v) / (params.h * (params.p - params.u));
    lhs / params.b.exp()
}

/// Eq. 14: does remote peering at one or more IXPs reduce the total cost?
pub fn viable(params: &CostParams) -> bool {
    viability_margin(params) >= 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimum::optimal_remote;
    use proptest::prelude::*;

    #[test]
    fn example_market_is_viable() {
        assert!(viable(&CostParams::example()));
    }

    #[test]
    fn viability_equals_m_tilde_at_least_one() {
        // The condition is exactly m̃ ≥ 1.
        for b in [0.1, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0] {
            let params = CostParams {
                b,
                ..CostParams::example()
            };
            let m = optimal_remote(&params).m;
            assert_eq!(viable(&params), m >= 1.0, "b={b}, m̃={m}");
        }
    }

    #[test]
    fn boundary_is_exact() {
        // Choose b so that the condition holds with equality:
        // b = ln(g(p−v)/(h(p−u))).
        let base = CostParams::example();
        let b = (base.g * (base.p - base.v) / (base.h * (base.p - base.u))).ln();
        let params = CostParams { b, ..base };
        assert!((viability_margin(&params) - 1.0).abs() < 1e-12);
        assert!(viable(&params));
        let slightly_more_local = CostParams {
            b: b + 1e-6,
            ..base
        };
        assert!(!viable(&slightly_more_local));
    }

    #[test]
    fn african_market_case_study() {
        // Same traffic profile; the only difference is the h/g gap and the
        // transit price. With a large gap (distant well-connected IXPs vs
        // little local offload opportunity), remote peering turns viable.
        let europe = CostParams {
            p: 1.0,
            u: 0.3,
            v: 0.6,
            g: 0.1,
            h: 0.07,
            b: 1.0,
        };
        europe.validate().unwrap();
        let africa = CostParams {
            p: 2.4,
            u: 0.3,
            v: 0.6,
            g: 0.45,
            h: 0.05,
            b: 1.0,
        };
        africa.validate().unwrap();
        assert!(
            !viable(&europe),
            "modest gap, concentrated traffic: not viable"
        );
        assert!(viable(&africa), "h ≪ g and expensive transit: viable");
    }

    #[test]
    fn global_traffic_favors_viability() {
        let base = CostParams::example();
        let margins: Vec<f64> = [0.2, 0.5, 1.0, 2.0]
            .iter()
            .map(|&b| viability_margin(&CostParams { b, ..base }))
            .collect();
        for w in margins.windows(2) {
            assert!(w[1] < w[0], "margin must fall as b grows: {margins:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_viability_iff_remote_helps_by_one_ixp(
            u in 0.05f64..0.4,
            v_frac in 0.1f64..0.9,
            g in 0.02f64..0.4,
            h_frac in 0.05f64..0.95,
            b in 0.05f64..2.5,
        ) {
            let p = 1.0;
            let v = u + v_frac * (p - u) * 0.99 + 1e-9;
            let h = h_frac * g * 0.99;
            let params = CostParams { p, u, v, g, h, b };
            prop_assume!(params.validate().is_ok());
            // In the interior-ñ regime the paper analyzes, viability means
            // peering remotely at one extra IXP beats stopping at the
            // direct optimum. (With ñ clamped at 0 eq. 14 can overstate —
            // see `optimal_remote` — so the forward direction is only
            // asserted when ñ is interior.)
            let n = crate::optimum::optimal_direct(&params).n;
            let without = params.cost_with_remote(n, 0.0);
            let with_one = params.cost_with_remote(n, 1.0);
            if viable(&params) && n > 0.0 {
                prop_assert!(with_one <= without + 1e-12);
            }
            if !viable(&params) {
                // eq. 14 false implies m̃ < 1 in *both* regimes: the
                // clamped-ñ m̃ is bounded by the interior formula.
                let m_tilde = optimal_remote(&params).m;
                prop_assert!(m_tilde < 1.0);
            }
        }
    }
}
