#![warn(missing_docs)]

//! # rp-econ
//!
//! The paper's section 5 economic model, implemented exactly as published
//! and cross-validated numerically.
//!
//! A network delivers its global traffic through three options — transit,
//! direct peering at `n` distant IXPs, and remote peering at `m` IXPs — with
//! traffic fractions `t + d + r = 1` (eq. 1). Generalizing the empirically
//! observed diminishing marginal utility of reaching an extra IXP
//! (figures 9 and 10), the transit fraction decays exponentially in the
//! number of reached IXPs: `t = e^(−b·(n+m))` (eq. 3). Costs (eqs. 4–6)
//! combine a normalized transit price `p`, per-IXP traffic-independent costs
//! `g` (direct) and `h` (remote), and per-unit traffic-dependent costs `u`
//! (direct) and `v` (remote), under the paper's cost-structure invariants
//! `h < g` and `u < v < p` (eqs. 7–8).
//!
//! The crate provides:
//!
//! - [`CostParams`] and the total-cost functions of eqs. 9, 10, and 12;
//! - the closed-form optima ñ (eq. 11) and m̃ (eq. 13);
//! - the economic-viability condition `g(p−v)/(h(p−u)) ≥ e^b` (eq. 14);
//! - numeric cross-validation ([`optimum::minimize_scalar`]) used by the
//!   property tests to confirm the closed forms;
//! - least-squares fitting of the decay parameter `b` to empirical
//!   remaining-transit curves ([`fit`]), connecting section 4's
//!   measurements to section 5's model;
//! - integer-constrained optima ([`integer`]) — networks reach whole IXPs;
//!   convexity confines the integer optimum to the integers bracketing the
//!   continuous one, and the integrality gap is exact.

pub mod cost;
pub mod fit;
pub mod integer;
pub mod optimum;
pub mod viability;

pub use cost::CostParams;
pub use fit::{fit_decay, DecayFit};
pub use integer::{integrality_gap, optimal_integer, staging_penalty, IntegerOptimum};
pub use optimum::{
    optimal_direct, optimal_joint, optimal_remote, OptimalDirect, OptimalJoint, OptimalRemote,
};
pub use viability::{viability_margin, viable};
