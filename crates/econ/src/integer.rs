//! Integer-constrained optima.
//!
//! The paper's closed forms treat the numbers of peered IXPs as continuous
//! (eqs. 11 and 13); a network, of course, reaches a whole number of IXPs.
//! Because the cost functions are convex in `n` and in `m`, the integer
//! optimum is always one of the two integers bracketing the continuous one
//! — this module computes it exactly and exposes how much the continuous
//! relaxation under-estimates the cost (it is a lower bound).

use crate::cost::CostParams;
use crate::optimum::{optimal_joint, optimal_remote};
use serde::{Deserialize, Serialize};

/// Integer-constrained joint optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegerOptimum {
    /// Optimal whole number of directly peered IXPs.
    pub n: u32,
    /// Optimal whole number of remotely peered IXPs (given `n`).
    pub m: u32,
}

/// Cost of the integer plan `(n, m)` under the paper's staged strategy
/// (direct peering fixed first, remote peering added).
pub fn integer_cost(params: &CostParams, plan: IntegerOptimum) -> f64 {
    params.cost_with_remote(plan.n as f64, plan.m as f64)
}

/// Exact integer optimum by bracketing the *joint* continuous solution.
///
/// Eq. 12's cost is jointly convex in (n, m), so the integer optimum lies
/// in the unit box around the continuous joint optimum or on the n = 0
/// boundary; for each candidate `n` the best integer `m` brackets the
/// continuous optimum given that `n` (re-solved, since the optimal m
/// depends on n).
pub fn optimal_integer(params: &CostParams) -> IntegerOptimum {
    let joint = optimal_joint(params);
    let n_candidates = [
        joint.n.floor().max(0.0) as u32,
        joint.n.ceil().max(0.0) as u32,
        0,
    ];

    let mut best: Option<(f64, IntegerOptimum)> = None;
    for &n in &n_candidates {
        // Continuous m given this integer n: first-order condition of
        // eq. 12, n fixed.
        let arg = params.b * (params.p - params.v) / params.h;
        let total_k = if arg > 1.0 { arg.ln() / params.b } else { 0.0 };
        let m_cont = (total_k - n as f64).max(0.0);
        for m in [m_cont.floor() as u32, m_cont.ceil() as u32] {
            let plan = IntegerOptimum { n, m };
            let cost = integer_cost(params, plan);
            if best.map(|(c, _)| cost < c).unwrap_or(true) {
                best = Some((cost, plan));
            }
        }
    }
    best.expect("candidates exist").1
}

/// The integrality gap: how much the continuous joint relaxation's cost
/// (a true lower bound) underestimates the achievable integer cost, as a
/// fraction.
pub fn integrality_gap(params: &CostParams) -> f64 {
    let cont = optimal_joint(params).cost;
    let int = integer_cost(params, optimal_integer(params));
    (int - cont) / cont.max(f64::MIN_POSITIVE)
}

/// The staging penalty: how much the paper's sequential approach (eq. 11
/// then eq. 13) costs relative to the joint continuous optimum, as a
/// fraction. Zero when the stages happen to agree; positive otherwise.
pub fn staging_penalty(params: &CostParams) -> f64 {
    let staged = optimal_remote(params).cost;
    let joint = optimal_joint(params).cost;
    (staged - joint) / joint.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_optimum_brackets_continuous_joint() {
        let params = CostParams::example();
        let joint = optimal_joint(&params);
        let int = optimal_integer(&params);
        assert!(
            (int.n as f64 - joint.n).abs() <= 1.0 || int.n == 0,
            "integer n {} vs joint {}",
            int.n,
            joint.n
        );
    }

    #[test]
    fn staged_is_never_better_than_joint() {
        for b in [0.05, 0.2, 0.5, 0.9, 1.5, 2.4] {
            let params = CostParams {
                b,
                ..CostParams::example()
            };
            assert!(staging_penalty(&params) >= -1e-12, "b={b}");
        }
        // And the penalty is strictly positive somewhere: the paper's
        // sequential optimization genuinely leaves money on the table.
        let cheap_remote = CostParams {
            p: 1.0,
            u: 0.24,
            v: 0.26,
            g: 0.02,
            h: 0.001,
            b: 0.05,
        };
        cheap_remote.validate().unwrap();
        assert!(
            staging_penalty(&cheap_remote) > 1e-4,
            "{}",
            staging_penalty(&cheap_remote)
        );
    }

    #[test]
    fn integer_cost_bounds_continuous_cost() {
        for b in [0.2, 0.4, 0.7, 1.1, 1.9] {
            let params = CostParams {
                b,
                ..CostParams::example()
            };
            let gap = integrality_gap(&params);
            assert!(
                gap >= -1e-12,
                "continuous must lower-bound integer: gap {gap}"
            );
            assert!(gap < 0.25, "gap should be modest: {gap} at b={b}");
        }
    }

    #[test]
    fn all_transit_when_peering_never_pays() {
        let params = CostParams {
            g: 100.0,
            h: 50.0,
            ..CostParams::example()
        };
        let int = optimal_integer(&params);
        assert_eq!(int, IntegerOptimum { n: 0, m: 0 });
        assert!((integer_cost(&params, int) - params.p).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_integer_beats_all_neighbors(
            u in 0.05f64..0.4,
            v_frac in 0.1f64..0.9,
            g in 0.02f64..0.4,
            h_frac in 0.05f64..0.95,
            b in 0.05f64..2.5,
        ) {
            let p = 1.0;
            let v = u + v_frac * (p - u) * 0.99 + 1e-9;
            let h = h_frac * g * 0.99;
            let params = CostParams { p, u, v, g, h, b };
            prop_assume!(params.validate().is_ok());
            let int = optimal_integer(&params);
            let c0 = integer_cost(&params, int);
            // The chosen plan beats an exhaustive small grid (the optimum
            // is provably inside it for these parameter ranges).
            for n in 0..40u32 {
                for m in 0..40u32 {
                    let c = integer_cost(&params, IntegerOptimum { n, m });
                    prop_assert!(
                        c0 <= c + 1e-9,
                        "(n={n}, m={m}) cost {c} beats chosen {:?} cost {c0}",
                        int
                    );
                }
            }
        }
    }
}
