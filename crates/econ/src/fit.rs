//! Fitting the decay model to empirical offload curves.
//!
//! Section 5.1: "we fit the RedIRIS data to exponential decay and model the
//! transit traffic fraction as `t = e^(−b·(n+m))`". This module performs
//! that fit: log-linear least squares through the origin (the model pins
//! `t(0) = 1`), with an R² goodness measure computed in log space.

use serde::{Deserialize, Serialize};

/// Result of fitting `t_k = e^(−b·k)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayFit {
    /// Fitted decay rate.
    pub b: f64,
    /// Coefficient of determination in log space (1 = perfect exponential).
    pub r_squared: f64,
}

impl DecayFit {
    /// Model prediction for `k` reached IXPs.
    pub fn predict(&self, k: f64) -> f64 {
        (-self.b * k).exp()
    }
}

/// Fit the decay rate to a remaining-transit-fraction curve.
///
/// `fractions[k]` is the transit fraction remaining after reaching `k` IXPs
/// (`fractions[0]` should be 1). Zero or negative fractions are excluded
/// (log undefined); fewer than two usable points yield `None`.
pub fn fit_decay(fractions: &[f64]) -> Option<DecayFit> {
    let _sp = rp_obs::span("econ.fit.decay");
    rp_obs::counter!("econ.fit.calls").inc();
    let points: Vec<(f64, f64)> = fractions
        .iter()
        .enumerate()
        .skip(1) // k = 0 carries no information for a through-origin fit
        .filter(|(_, t)| **t > 0.0 && t.is_finite())
        .map(|(k, t)| (k as f64, t.ln()))
        .collect();
    if points.len() < 2 {
        return None;
    }
    rp_obs::counter!("econ.fit.points").add(points.len() as u64);
    // Least squares for y = −b·k through the origin: b = −Σk·y / Σk².
    let sum_ky: f64 = points.iter().map(|(k, y)| k * y).sum();
    let sum_kk: f64 = points.iter().map(|(k, _)| k * k).sum();
    let b = -sum_ky / sum_kk;

    // R² in log space against the through-origin model.
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|(k, y)| (y + b * k).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(DecayFit { b, r_squared })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_exponential() {
        let b_true = 0.42;
        let curve: Vec<f64> = (0..20).map(|k| (-b_true * k as f64).exp()).collect();
        let fit = fit_decay(&curve).unwrap();
        assert!((fit.b - b_true).abs() < 1e-12);
        assert!(fit.r_squared > 0.999_999);
        assert!((fit.predict(3.0) - curve[3]).abs() < 1e-12);
    }

    #[test]
    fn tolerates_noise() {
        let b_true = 0.3;
        let noisy: Vec<f64> = (0..15)
            .map(|k| (-b_true * k as f64).exp() * (1.0 + 0.05 * ((k * 7 % 3) as f64 - 1.0)))
            .collect();
        let fit = fit_decay(&noisy).unwrap();
        assert!((fit.b - b_true).abs() < 0.05, "{}", fit.b);
        assert!(fit.r_squared > 0.95);
    }

    #[test]
    fn detects_non_exponential_shape() {
        // Linear decay fits an exponential poorly at this depth.
        let linear: Vec<f64> = (0..20).map(|k| 1.0 - 0.045 * k as f64).collect();
        let fit = fit_decay(&linear).unwrap();
        let exact: Vec<f64> = (0..20).map(|k| (-fit.b * k as f64).exp()).collect();
        let exact_fit = fit_decay(&exact).unwrap();
        assert!(fit.r_squared < exact_fit.r_squared);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_decay(&[]).is_none());
        assert!(fit_decay(&[1.0]).is_none());
        assert!(
            fit_decay(&[1.0, 0.5]).is_none(),
            "one usable point is not enough"
        );
        assert!(fit_decay(&[1.0, 0.0, -1.0]).is_none());
        assert!(fit_decay(&[1.0, 0.6, 0.4]).is_some());
    }

    #[test]
    fn offload_floor_curves_still_fit() {
        // Realistic shape: decay toward a floor (not all traffic is
        // offloadable). The fit underestimates nothing catastrophically and
        // stays positive.
        let curve: Vec<f64> = (0..30)
            .map(|k| 0.75 + 0.25 * (-0.8 * k as f64).exp())
            .collect();
        let fit = fit_decay(&curve).unwrap();
        assert!(
            fit.b > 0.0 && fit.b < 0.1,
            "gentle effective decay: {}",
            fit.b
        );
    }
}
