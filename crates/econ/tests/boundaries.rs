//! Exact-boundary tests for the section 5 model (eqs. 1–14): the
//! viability condition at exact equality, and the degenerate optima where
//! peering stops paying for itself (zero IXPs) or pays for exactly one.

use rp_econ::{
    optimal_direct, optimal_joint, optimal_remote, viability_margin, viable, CostParams,
};

/// Parameters whose viability ratio `g(p−v)/(h(p−u))` is exactly `E`, so
/// `b = 1` sits precisely on the eq. 14 equality.
fn knife_edge() -> CostParams {
    let p = CostParams {
        p: 2.0,
        u: 0.0,
        v: 1.0,
        g: 0.2 * std::f64::consts::E,
        h: 0.1,
        b: 1.0,
    };
    p.validate()
        .expect("knife-edge parameters are structurally valid");
    p
}

#[test]
fn viability_at_exact_equality() {
    let p = knife_edge();
    // g(p−v)/(h(p−u)) = 0.2E/0.2 = E and e^b = e^1: the margin is 1 up to
    // one ulp of exp(). Equality counts as viable (eq. 14 is ≥).
    let m = viability_margin(&p);
    assert!((m - 1.0).abs() < 1e-12, "margin at equality was {m}");
    assert!(viable(&p));

    // The verdict must flip across the edge in the right direction.
    let mut cheaper = p;
    cheaper.b = 1.0 - 1e-6;
    assert!(viability_margin(&cheaper) > 1.0);
    assert!(viable(&cheaper));

    let mut dearer = p;
    dearer.b = 1.0 + 1e-6;
    assert!(viability_margin(&dearer) < 1.0);
    assert!(!viable(&dearer));
}

/// Parameters sitting exactly on eq. 11's participation boundary
/// `b·(p−u) = g`: the marginal first IXP saves exactly what it costs.
fn direct_boundary() -> CostParams {
    let p = CostParams {
        p: 1.2,
        u: 0.2,
        v: 0.5,
        g: 0.5, // b·(p−u) = 0.5·1.0 = 0.5 = g
        h: 0.1,
        b: 0.5,
    };
    p.validate()
        .expect("boundary parameters are structurally valid");
    assert_eq!(p.b * (p.p - p.u), p.g);
    p
}

#[test]
fn zero_ixp_optimum_at_the_participation_boundary() {
    let p = direct_boundary();
    let d = optimal_direct(&p);
    // At exact equality the optimum clamps to all-transit: n = 0, no
    // traffic offloaded, total cost = the transit bill p·1.
    assert_eq!(d.n, 0.0);
    assert_eq!(d.d, 0.0);
    assert!(
        (d.cost - p.p).abs() < 1e-12,
        "all-transit cost was {}",
        d.cost
    );

    // Zero traffic offloaded must also be what any n > 0 loses money on:
    // the clamped optimum is a real minimum, not a truncation artifact.
    for n in [0.25, 0.5, 1.0, 2.0] {
        assert!(
            p.cost_direct_only(n) >= d.cost - 1e-12,
            "n = {n} beat the clamped optimum"
        );
    }

    // Just past the boundary the interior formula takes over continuously.
    let mut inside = p;
    inside.g = 0.5 - 1e-9;
    let di = optimal_direct(&inside);
    assert!(
        di.n > 0.0 && di.n < 1e-6,
        "n jumped discontinuously: {}",
        di.n
    );
}

#[test]
fn remote_extension_clamps_to_zero_when_it_never_pays() {
    // b·(p−v) = h exactly: the first remote IXP saves exactly its fee,
    // while direct peering stays interior (b·(p−u) = 0.375 > g).
    let p = CostParams {
        p: 2.0,
        u: 0.5,
        v: 1.0,
        g: 0.3,
        h: 0.25, // b·(p−v) = 0.25·1.0 = 0.25 = h
        b: 0.25,
    };
    p.validate().unwrap();
    let r = optimal_remote(&p);
    assert_eq!(r.m, 0.0, "remote peering at the boundary must clamp to 0");
    // With m = 0, eq. 12 must degrade exactly to eq. 10 at ñ.
    let d = optimal_direct(&p);
    assert!((r.cost - d.cost).abs() < 1e-12);
}

#[test]
fn single_ixp_optimum_lands_exactly_on_one() {
    // b = 1 and (p−u)/g = e give ñ = ln(e)/1 = 1: the model's cleanest
    // non-degenerate point — direct peering at exactly one IXP.
    let p = CostParams {
        p: 1.2,
        u: 0.2,
        v: 0.5,
        g: 1.0 / std::f64::consts::E,
        h: 0.05,
        b: 1.0,
    };
    p.validate().unwrap();
    let d = optimal_direct(&p);
    assert!((d.n - 1.0).abs() < 1e-12, "expected ñ = 1, got {}", d.n);
    // d̃ = 1 − e^(−b·ñ) = 1 − 1/e.
    assert!((d.d - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    // It really is the minimum of eq. 10.
    for n in [0.0, 0.5, 0.9, 1.1, 2.0] {
        assert!(
            p.cost_direct_only(n) >= d.cost - 1e-12,
            "n = {n} beat ñ = 1"
        );
    }
}

#[test]
fn joint_optimum_never_loses_to_the_staged_one() {
    // At every boundary case above, the joint optimum must cost at most
    // the staged (eq. 11 then eq. 13) solution — including the degenerate
    // corners where both clamp.
    for p in [knife_edge(), direct_boundary(), CostParams::example()] {
        let staged = optimal_remote(&p);
        let joint = optimal_joint(&p);
        assert!(
            joint.cost <= staged.cost + 1e-12,
            "joint {} vs staged {}",
            joint.cost,
            staged.cost
        );
    }
}
