//! Golden-snapshot tests for the section 5 closed forms (eqs. 1–14).
//!
//! Each case pins the exact numeric output of the published formulas at a
//! committed parameter point. Unlike the property tests (which check
//! *relationships* between the forms), these catch silent value drift: a
//! refactor that changes any closed form by even 1e-9 at these points
//! fails loudly with the offending equation's name.

// The golden arrays commit full f64 precision on purpose.
#![allow(clippy::excessive_precision)]

use rp_econ::cost::CostParams;
use rp_econ::optimum::eq13_printed;
use rp_econ::{
    integrality_gap, optimal_direct, optimal_integer, optimal_joint, optimal_remote,
    staging_penalty, viability_margin, viable,
};

/// Compare against a committed value to 1e-9 absolute — far below any
/// economically meaningful difference, far above f64 noise for these
/// magnitudes.
fn check(name: &str, actual: f64, expected: f64) {
    assert!(
        (actual - expected).abs() < 1e-9,
        "{name}: got {actual:.15}, golden {expected:.15}"
    );
}

/// The African-market parameterization of the viability case study
/// (expensive transit, large h/g gap).
fn africa() -> CostParams {
    CostParams {
        p: 2.4,
        u: 0.3,
        v: 0.6,
        g: 0.45,
        h: 0.05,
        b: 1.0,
    }
}

#[test]
fn golden_example_market() {
    let p = CostParams::example();
    p.validate().unwrap();

    // Eq. 3: transit fraction decay.
    check("eq3 t(0)", p.transit_fraction(0.0), GOLDEN_EX[0]);
    check("eq3 t(1)", p.transit_fraction(1.0), GOLDEN_EX[1]);
    check("eq3 t(4.5)", p.transit_fraction(4.5), GOLDEN_EX[2]);

    // Eq. 10: transit + direct-peering cost curve.
    check("eq10 C(0)", p.cost_direct_only(0.0), GOLDEN_EX[3]);
    check("eq10 C(2)", p.cost_direct_only(2.0), GOLDEN_EX[4]);
    check("eq10 C(5.25)", p.cost_direct_only(5.25), GOLDEN_EX[5]);

    // Eq. 9: general three-way cost with an explicit direct fraction.
    check(
        "eq9 C(2,1,0.3)",
        p.cost_general(2.0, 1.0, 0.3),
        GOLDEN_EX[6],
    );
    check(
        "eq9 C(1,3,0.25)",
        p.cost_general(1.0, 3.0, 0.25),
        GOLDEN_EX[7],
    );

    // Eq. 11: direct-peering optimum.
    let d = optimal_direct(&p);
    check("eq11 n~", d.n, GOLDEN_EX[8]);
    check("eq11 d~", d.d, GOLDEN_EX[9]);
    check("eq11 cost", d.cost, GOLDEN_EX[10]);

    // Eq. 12: remote-extension cost curve from n~.
    check("eq12 C(n~,1)", p.cost_with_remote(d.n, 1.0), GOLDEN_EX[11]);
    check("eq12 C(n~,3)", p.cost_with_remote(d.n, 3.0), GOLDEN_EX[12]);

    // Eq. 13: remote-peering optimum (general and printed forms agree in
    // the interior regime).
    let r = optimal_remote(&p);
    check("eq13 m~", r.m, GOLDEN_EX[13]);
    check("eq13 cost", r.cost, GOLDEN_EX[14]);
    check("eq13 printed", eq13_printed(&p), GOLDEN_EX[15]);

    // Eq. 14: viability margin.
    check("eq14 margin", viability_margin(&p), GOLDEN_EX[16]);
    assert!(viable(&p), "example market must be viable");

    // Joint and integer refinements built on the closed forms.
    let j = optimal_joint(&p);
    check("joint n*", j.n, GOLDEN_EX[17]);
    check("joint m*", j.m, GOLDEN_EX[18]);
    check("joint cost", j.cost, GOLDEN_EX[19]);
    let i = optimal_integer(&p);
    check("integer n", i.n as f64, GOLDEN_EX[20]);
    check("integer m", i.m as f64, GOLDEN_EX[21]);
    check("integrality gap", integrality_gap(&p), GOLDEN_EX[22]);
    check("staging penalty", staging_penalty(&p), GOLDEN_EX[23]);
}

#[test]
fn golden_african_market() {
    let p = africa();
    p.validate().unwrap();

    let d = optimal_direct(&p);
    check("africa eq11 n~", d.n, GOLDEN_AF[0]);
    check("africa eq11 cost", d.cost, GOLDEN_AF[1]);
    let r = optimal_remote(&p);
    check("africa eq13 m~", r.m, GOLDEN_AF[2]);
    check("africa eq13 cost", r.cost, GOLDEN_AF[3]);
    check("africa eq14 margin", viability_margin(&p), GOLDEN_AF[4]);
    assert!(viable(&p), "the African case study must be viable");
    let j = optimal_joint(&p);
    check("africa joint n*", j.n, GOLDEN_AF[5]);
    check("africa joint m*", j.m, GOLDEN_AF[6]);
    check("africa joint cost", j.cost, GOLDEN_AF[7]);
}

#[test]
#[ignore = "regenerates the golden arrays; run with --ignored --nocapture"]
fn print_golden_values() {
    let p = CostParams::example();
    let d = optimal_direct(&p);
    let r = optimal_remote(&p);
    let j = optimal_joint(&p);
    let i = optimal_integer(&p);
    let ex = [
        p.transit_fraction(0.0),
        p.transit_fraction(1.0),
        p.transit_fraction(4.5),
        p.cost_direct_only(0.0),
        p.cost_direct_only(2.0),
        p.cost_direct_only(5.25),
        p.cost_general(2.0, 1.0, 0.3),
        p.cost_general(1.0, 3.0, 0.25),
        d.n,
        d.d,
        d.cost,
        p.cost_with_remote(d.n, 1.0),
        p.cost_with_remote(d.n, 3.0),
        r.m,
        r.cost,
        eq13_printed(&p),
        viability_margin(&p),
        j.n,
        j.m,
        j.cost,
        i.n as f64,
        i.m as f64,
        integrality_gap(&p),
        staging_penalty(&p),
    ];
    println!("GOLDEN_EX:");
    for v in ex {
        println!("    {v:.15e},");
    }
    let p = africa();
    let d = optimal_direct(&p);
    let r = optimal_remote(&p);
    let j = optimal_joint(&p);
    let af = [
        d.n,
        d.cost,
        r.m,
        r.cost,
        viability_margin(&p),
        j.n,
        j.m,
        j.cost,
    ];
    println!("GOLDEN_AF:");
    for v in af {
        println!("    {v:.15e},");
    }
}

// Committed expected values, generated by `print_golden_values` (above) at
// the current, property-test-validated implementation.
const GOLDEN_EX: [f64; 24] = [
    1.000000000000000e0,
    5.769498103804866e-1,
    8.416299025731036e-2,
    1.000000000000000e0,
    7.062968669584637e-1,
    8.745722615707971e-1,
    7.556274497414147e-1,
    6.734417370992837e-1,
    2.362332698418657e0,
    7.272727272727273e-1,
    7.016617419920570e-1,
    6.732042135491300e-1,
    6.854692282851700e-1,
    1.559000421547675e0,
    6.698631203825892e-1,
    1.559000421547675e0,
    1.359953124468290e0,
    8.744957465751084e-1,
    3.046837373391223e0,
    6.297606158395240e-1,
    1.000000000000000e0,
    3.000000000000000e0,
    6.646554966339325e-4,
    6.367896552185177e-2,
];
const GOLDEN_AF: [f64; 8] = [
    1.540445040947149e0,
    1.443200268426217e0,
    2.043073897508961e0,
    1.209639677587379e0,
    2.837927117608269e0,
    0.000000000000000e0,
    3.583518938456110e0,
    8.291759469228054e-1,
];
