//! The differential harness: fork + incremental recompute versus a
//! from-scratch rebuild, held to *byte* identity.
//!
//! The copy-on-write fork machinery ([`remote_peering::fork`]) makes one
//! promise: a forked world with its delta log applied, probed
//! incrementally (dirty IXPs re-run, everything else reused from the
//! parent), is indistinguishable — down to the last bit — from rebuilding
//! the world from scratch, applying the same deltas in place, and probing
//! everything. This module is the enforcement: it generates randomized
//! delta sequences, runs both arms, and compares the probe bytes and every
//! derived [`RunMetrics`] value by exact `f64` bit pattern.
//!
//! Two more differentials cover the artifact surfaces consumers actually
//! ship: [`check_report_differential`] runs the whole `repro check`
//! pipeline with the fork path and with `reference_rebuild` and compares
//! report JSON bytes; [`sweep_differential`] does the same for sweep JSON
//! with probe reuse on and off.
//!
//! A differential harness that cannot fail proves nothing, so every run
//! includes a *broken oracle*: a deliberately stale fork whose probe set
//! reuses the parent's samples for dirty IXPs too. Its comparison is
//! expected to MISMATCH; if it ever matches, the harness has lost the
//! sensitivity it exists for.

use crate::check::{run_check, CheckConfig};
use rand::RngExt;
use remote_peering::campaign::Campaign;
use remote_peering::fork::{apply_delta_in_place, Delta};
use remote_peering::memo;
use remote_peering::metrics::{MethodParams, PreparedRun, RunMetrics};
use remote_peering::probe::InterfaceSamples;
use remote_peering::world::{World, WorldConfig};
use rp_ixp::model::{
    Access, IxpInstance, LgOperator, ListingInfo, MemberInterface, ResponderProfile,
};
use rp_types::{seed, IxpId, NetworkId};

/// One arm's probed output, reduced to the things the comparison needs:
/// the probe set's content address and the full metric vector.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Fingerprint of the raw per-IXP probe samples.
    pub probes_fp: u64,
    /// Every named run metric, in [`RunMetrics::NAMES`] order.
    pub metrics: Vec<(&'static str, f64)>,
}

/// One differential comparison: did the arms agree, and were they
/// supposed to?
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// Human-readable row label (`shards=2 round=1 deltas=3`, ...).
    pub label: String,
    /// The arms agreed byte-for-byte.
    pub matched: bool,
    /// Whether agreement was the expected verdict (`false` for the
    /// broken-oracle rows: a stale fork MUST be caught).
    pub expected: bool,
}

impl DiffOutcome {
    /// The row behaved as the contract demands.
    pub fn ok(&self) -> bool {
        self.matched == self.expected
    }
}

/// An unlisted direct member for the next slot of `ixp` — the standard
/// synthetic row the offload invariant also uses.
fn next_member(ixp: IxpId, slot: u32) -> MemberInterface {
    MemberInterface {
        network: NetworkId(0),
        ip: IxpInstance::ip_for_slot(ixp, slot),
        access: Access::Direct {
            colo_delay_ms: 0.3,
            site: 0,
        },
        profile: ResponderProfile::default(),
        listing: ListingInfo {
            listed: false,
            identifiable: false,
            asn_change: false,
        },
    }
}

/// A randomized, always-valid delta sequence against `world`. Validity is
/// tracked on a scratch copy (copy-on-write makes the clone near-free), so
/// slots stay in range even as earlier deltas add and remove members.
/// Deterministic in `(world, stream_seed, n)`.
pub fn random_deltas(world: &World, stream_seed: u64, n: usize) -> Vec<Delta> {
    let mut scratch = world.clone();
    let mut rng = seed::rng(stream_seed, "diff-deltas", 0);
    let studied = world.studied_ixps();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ixp = studied[rng.random::<u64>() as usize % studied.len()];
        let members = scratch.scene.ixp(ixp).members.len();
        let slot = if members > 0 {
            (rng.random::<u64>() as usize % members) as u32
        } else {
            0
        };
        let d = match rng.random::<u64>() % 6 {
            0 => Delta::MemberAdd {
                ixp,
                member: next_member(ixp, members as u32),
            },
            1 if members > 1 => Delta::MemberRemove { ixp },
            2 if members > 0 => Delta::RowStale { ixp, slot },
            3 => Delta::LgDrop {
                ixp,
                keep: &[LgOperator::Pch],
            },
            4 if members > 0 => Delta::Pathology {
                ixp,
                slot,
                congested_extra_ms: 1.0 + rng.random::<f64>() * 6.0,
                congested_drop: rng.random::<f64>() * 0.4,
            },
            5 if members > 0 => Delta::PortUpgrade {
                ixp,
                slot,
                delay_ms: 0.02 + rng.random::<f64>() * 0.4,
            },
            _ => continue,
        };
        apply_delta_in_place(&mut scratch, &d);
        out.push(d);
    }
    out
}

fn arm_result(world: World, probed: Vec<(IxpId, Vec<InterfaceSamples>)>) -> ArmResult {
    let probes_fp = memo::fingerprint(&probed);
    let run = PreparedRun {
        world: std::sync::Arc::new(world),
        probed: std::sync::Arc::new(probed),
    };
    ArmResult {
        probes_fp,
        metrics: RunMetrics::collect(&run, &MethodParams::default())
            .named()
            .to_vec(),
    }
}

/// The fast arm: fork `world`, apply the deltas, re-probe incrementally
/// against the parent's probe set.
pub fn incremental_arm(
    world: &World,
    parent_probes: &[(IxpId, Vec<InterfaceSamples>)],
    campaign: &Campaign,
    deltas: &[Delta],
) -> ArmResult {
    let mut fork = world.fork();
    for d in deltas {
        fork.apply(d.clone());
    }
    let probed = campaign.probe_all_incremental(&fork, parent_probes);
    arm_result(fork.into_world(), probed)
}

/// The reference arm: build the world again from its config, apply the
/// same deltas in place under a mutation nonce, probe everything.
pub fn rebuild_arm(cfg: &WorldConfig, campaign: &Campaign, deltas: &[Delta]) -> ArmResult {
    let mut world = World::build(cfg);
    world.mark_mutated();
    for d in deltas {
        apply_delta_in_place(&mut world, d);
    }
    let probed = campaign.probe_all(&world);
    arm_result(world, probed)
}

/// The broken oracle: fork and apply like [`incremental_arm`], then serve
/// the *parent's* probe set unchanged — as if the dirty set had been lost
/// (a stale-cone fork). Whenever a delta visibly changes probe bytes, the
/// comparison against the rebuild MUST fail; that failure is the proof the
/// differential checker has teeth.
pub fn stale_fork_arm(
    world: &World,
    parent_probes: &[(IxpId, Vec<InterfaceSamples>)],
    deltas: &[Delta],
) -> ArmResult {
    let mut fork = world.fork();
    for d in deltas {
        fork.apply(d.clone());
    }
    arm_result(fork.into_world(), parent_probes.to_vec())
}

/// Exact equality: same probe bytes, same metric names, every value
/// identical down to the `f64` bit pattern.
pub fn arms_identical(a: &ArmResult, b: &ArmResult) -> bool {
    a.probes_fp == b.probes_fp
        && a.metrics.len() == b.metrics.len()
        && a.metrics
            .iter()
            .zip(&b.metrics)
            .all(|((na, va), (nb, vb))| na == nb && va.to_bits() == vb.to_bits())
}

/// A `RowStale` delta guaranteed to change probe bytes: the first listed,
/// present member of the first studied IXP stops answering. (An unlisted
/// `MemberAdd` would not do — the campaign only probes listed rows — which
/// is exactly why the broken-oracle rows use this.)
fn visible_delta(world: &World) -> Option<Delta> {
    for ixp in world.studied_ixps() {
        for (slot, m) in world.scene.ixp(ixp).members.iter().enumerate() {
            if m.listing.listed && !m.profile.absent {
                return Some(Delta::RowStale {
                    ixp,
                    slot: slot as u32,
                });
            }
        }
    }
    None
}

/// Run the probe/metrics differential: `rounds` randomized delta
/// sequences per shard count, each compared fork-incremental vs rebuild,
/// plus one broken-oracle row per shard count. Deterministic in `seed`.
pub fn run_differential(seed: u64, rounds: u64, shard_counts: &[usize]) -> Vec<DiffOutcome> {
    let world_cfg = WorldConfig::test_scale(seed);
    let world = World::build(&world_cfg);
    let mut out = Vec::new();
    for &shards in shard_counts {
        let campaign = Campaign {
            shards,
            ..Campaign::default_paper()
        };
        let parent_probes = campaign.probe_all(&world);
        for round in 0..rounds {
            let stream = seed::derive2(seed, "diff-round", round, shards as u64);
            let deltas = random_deltas(&world, stream, 1 + round as usize % 5);
            let inc = incremental_arm(&world, &parent_probes, &campaign, &deltas);
            let reb = rebuild_arm(&world_cfg, &campaign, &deltas);
            out.push(DiffOutcome {
                label: format!("shards={shards} round={round} deltas={}", deltas.len()),
                matched: arms_identical(&inc, &reb),
                expected: true,
            });
        }
        if let Some(d) = visible_delta(&world) {
            let deltas = [d];
            let stale = stale_fork_arm(&world, &parent_probes, &deltas);
            let reb = rebuild_arm(&world_cfg, &campaign, &deltas);
            out.push(DiffOutcome {
                label: format!("shards={shards} broken-oracle"),
                matched: arms_identical(&stale, &reb),
                expected: false,
            });
        }
    }
    out
}

/// Run the full check pipeline twice — fork path and
/// `reference_rebuild` — and compare the report JSON byte for byte.
pub fn check_report_differential(cfg: &CheckConfig) -> DiffOutcome {
    let fork_cfg = CheckConfig {
        reference_rebuild: false,
        ..cfg.clone()
    };
    let ref_cfg = CheckConfig {
        reference_rebuild: true,
        ..cfg.clone()
    };
    let a = serde_json::to_string(&run_check(&fork_cfg).to_json()).expect("render check report");
    let b = serde_json::to_string(&run_check(&ref_cfg).to_json()).expect("render check report");
    DiffOutcome {
        label: format!("check seed={} shards={}", cfg.seed, cfg.shards),
        matched: a == b,
        expected: true,
    }
}

/// Run one sweep twice — probe reuse on and off — and compare the sweep
/// JSON byte for byte.
pub fn sweep_differential(preset: &str, cfg: &rp_scenario::SweepConfig) -> DiffOutcome {
    let spec = rp_scenario::ScenarioSpec::preset(preset).expect("known preset");
    let reuse = rp_scenario::SweepConfig {
        reuse: true,
        ..cfg.clone()
    };
    let rebuild = rp_scenario::SweepConfig {
        reuse: false,
        ..cfg.clone()
    };
    let a = serde_json::to_string(&rp_scenario::run_sweep(&spec, &reuse)).expect("render sweep");
    let b = serde_json::to_string(&rp_scenario::run_sweep(&spec, &rebuild)).expect("render sweep");
    DiffOutcome {
        label: format!("sweep {preset} seed={} shards={}", cfg.seed, cfg.shards),
        matched: a == b,
        expected: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_rebuild_for_random_delta_sequences() {
        let rows = run_differential(11, 3, &[1, 2]);
        let equivalence: Vec<_> = rows.iter().filter(|r| r.expected).collect();
        assert!(equivalence.len() >= 6);
        for r in &equivalence {
            assert!(
                r.ok(),
                "fork+incremental diverged from rebuild: {}",
                r.label
            );
        }
    }

    #[test]
    fn broken_oracle_is_caught() {
        let rows = run_differential(11, 1, &[1]);
        let oracles: Vec<_> = rows.iter().filter(|r| !r.expected).collect();
        assert!(!oracles.is_empty(), "the broken-oracle row must exist");
        for r in &oracles {
            assert!(
                !r.matched,
                "a stale fork slipped past the differential: {}",
                r.label
            );
            assert!(r.ok());
        }
    }

    #[test]
    fn check_report_bytes_match_between_fork_and_rebuild() {
        let row = check_report_differential(&CheckConfig {
            seed: 9,
            fault_trials: 12,
            fuzz_iters: 20,
            paper_scale: false,
            shards: 0,
            reference_rebuild: false,
        });
        assert!(row.ok(), "check artifacts diverged: {}", row.label);
    }

    #[test]
    fn sweep_bytes_match_between_reuse_and_rebuild() {
        let row = sweep_differential(
            "smoke",
            &rp_scenario::SweepConfig {
                replicates: 2,
                ..rp_scenario::SweepConfig::test_default(13)
            },
        );
        assert!(row.ok(), "sweep artifacts diverged: {}", row.label);
    }
}
