#![warn(missing_docs)]

//! # rp-testkit
//!
//! The correctness harness of the reproduction: deterministic fault
//! injection, a metamorphic invariant suite, and structure-aware parser
//! fuzzing — wired together by `repro check`.
//!
//! A reproduction of a measurement paper lives or dies on its pipeline
//! behaving *sanely under degradation*: the paper's six filters exist
//! precisely because real probing campaigns see loss, duplication, jitter,
//! stale registries, and flapping links. This crate injects exactly those
//! degradations, replayably, and checks the properties that must survive
//! them:
//!
//! - [`faults`] — the fault *policy*: a [`faults::FaultPlan`] combining the
//!   link-level template ([`rp_netsim::fault`] is the mechanism) with
//!   scene-level degradations (stale registry rows, missing looking-glass
//!   vantages). Every decision derives from one seed via
//!   [`rp_types::seed`], so a fault sequence replays frame for frame.
//! - [`invariants`] — metamorphic relations with provable oracles:
//!   classification monotone in RTT, filters order-blind and
//!   inflation-stable, sample-size discards absorbing under loss, offload
//!   potential monotone under membership growth, eq. 14's viability
//!   margin scale-free, paired deltas antisymmetric, seeded runs replay
//!   exact, spec round-trips stable. Each checker takes the function
//!   under test as a closure; the unit tests pass mutated oracles and
//!   assert the harness flags them.
//! - [`fuzz`] — seeded corpus mutation against the vendored
//!   [`serde_json::from_str`] and [`rp_scenario::ScenarioSpec::from_json`]
//!   under `catch_unwind`; clean errors are fine, panics are findings.
//! - [`check`] — the orchestrator behind
//!   `repro check [--faults N] [--fuzz N]`: one clean campaign, one
//!   faulted campaign, the invariant suite over both, the fuzzer, and a
//!   deterministic JSON report of injected faults vs. caught violations.
//! - [`differential`] — the fork-equivalence harness: randomized delta
//!   sequences run fork+incremental and from-scratch-rebuild arms, held
//!   to byte identity over probe sets, run metrics, check reports, and
//!   sweep JSON; a deliberately stale broken-oracle arm proves the
//!   comparison can fail.

pub mod check;
pub mod differential;
pub mod faults;
pub mod fuzz;
pub mod invariants;

pub use check::{run_check, CheckConfig, CheckOutcome};
pub use differential::{run_differential, DiffOutcome};
pub use faults::{FaultPlan, SceneFaults};
pub use fuzz::{FuzzReport, FuzzTarget};
pub use invariants::{Harness, Violation};
