//! The metamorphic invariant suite.
//!
//! Each checker states a *metamorphic relation*: a provable statement
//! about how a pipeline stage's output must change (or not change) under a
//! controlled perturbation of its input. No golden values — the oracle is
//! the relation itself, so the suite keeps working when scales, seeds, and
//! datasets move.
//!
//! Every checker takes the function under test as a closure, never calling
//! the production code directly. Production wiring (in [`crate::check`])
//! passes the real pipeline functions; the unit tests below pass
//! deliberately broken ones and assert the harness flags them — a mutated
//! oracle per invariant, proving each check can actually fail.
//!
//! Relations that are *not* provable are deliberately absent. "Dropping
//! probes never flips a filter from discard to keep" is false in general
//! (losing exactly the replies that carried a second TTL value un-trips
//! the TTL-switch filter), so the loss invariant here is restricted to the
//! sample-size stage, where removal provably cannot help.

use rand::rngs::StdRng;
use rand::RngExt;
use remote_peering::filters::Discard;
use remote_peering::probe::InterfaceSamples;
use rp_econ::CostParams;
use rp_types::stats::Accumulator;
use serde_json::{json, Value};
use std::fmt::Debug;

/// One violated invariant, with enough detail to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the violated invariant.
    pub invariant: &'static str,
    /// What was observed (inputs and outputs, rendered).
    pub detail: String,
}

/// Accumulates check outcomes across the suite.
#[derive(Debug, Default)]
pub struct Harness {
    /// Individual relations evaluated.
    pub checks: u64,
    /// Relations that did not hold.
    pub violations: Vec<Violation>,
}

impl Harness {
    /// An empty harness.
    pub fn new() -> Harness {
        Harness::default()
    }

    /// Record one relation's outcome. `detail` is only rendered on
    /// failure.
    pub fn check(&mut self, invariant: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations.push(Violation {
                invariant,
                detail: detail(),
            });
        }
    }

    /// True when nothing has been violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Report rendering: total checks plus every violation.
    pub fn to_json(&self) -> Value {
        json!({
            "checks": self.checks,
            "violations": Value::Array(
                self.violations
                    .iter()
                    .map(|v| json!({ "invariant": v.invariant, "detail": v.detail }))
                    .collect(),
            ),
        })
    }
}

// ---------------------------------------------------------------------------
// Classification invariants
// ---------------------------------------------------------------------------

/// Classification is monotone in RTT: adding a non-negative delta to a
/// minimum RTT never moves its class *toward* local. `classify` maps an
/// RTT to its class index (0 = most local).
pub fn classify_monotone(
    h: &mut Harness,
    classify: &dyn Fn(f64) -> usize,
    rtts: &[f64],
    deltas: &[f64],
) {
    for &rtt in rtts {
        for &delta in deltas {
            let (a, b) = (classify(rtt), classify(rtt + delta));
            h.check("classify_monotone", b >= a, || {
                format!("class({rtt}) = {a} but class({rtt} + {delta}) = {b}")
            });
        }
    }
}

/// The remote count is non-increasing in the remoteness threshold:
/// raising the bar never makes *more* interfaces remote. `remote_count`
/// maps a threshold (ms) to the number of interfaces called remote.
pub fn threshold_monotone(
    h: &mut Harness,
    remote_count: &dyn Fn(f64) -> usize,
    thresholds: &[f64],
) {
    let mut sorted = thresholds.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite thresholds"));
    for pair in sorted.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let (a, b) = (remote_count(lo), remote_count(hi));
        h.check("threshold_monotone", b <= a, || {
            format!("remote({lo} ms) = {a} but remote({hi} ms) = {b}")
        });
    }
}

// ---------------------------------------------------------------------------
// Filter invariants
// ---------------------------------------------------------------------------

/// The filter verdict ignores reply order: shuffling the replies within
/// each LG server's list leaves the outcome bit-identical (the filters
/// aggregate over sets — counts, minima, TTL sets).
pub fn permutation_invariant<K: PartialEq + Debug>(
    h: &mut Harness,
    apply: &dyn Fn(&InterfaceSamples) -> K,
    samples: &InterfaceSamples,
    rng: &mut StdRng,
) {
    let before = apply(samples);
    let mut shuffled = samples.clone();
    for (_, replies) in &mut shuffled.per_lg {
        // Fisher–Yates with the harness's own stream.
        for i in (1..replies.len()).rev() {
            let j = rng.random_range(0..(i + 1));
            replies.swap(i, j);
        }
    }
    let after = apply(&shuffled);
    h.check("filter_permutation_invariant", before == after, || {
        format!("{} reorder flipped {before:?} to {after:?}", samples.ip)
    });
}

/// Sample-size discards are absorbing under further loss: once an
/// interface lacks replies, removing another reply cannot resurrect it.
/// (Restricted to the sample-size stage on purpose — see the module docs.)
pub fn loss_conservative<K: Debug>(
    h: &mut Harness,
    apply: &dyn Fn(&InterfaceSamples) -> Result<K, Discard>,
    samples: &InterfaceSamples,
    rng: &mut StdRng,
) {
    if !matches!(apply(samples), Err(Discard::SampleSize)) {
        return;
    }
    let mut thinner = samples.clone();
    let populated: Vec<usize> = thinner
        .per_lg
        .iter()
        .enumerate()
        .filter(|(_, (_, r))| !r.is_empty())
        .map(|(i, _)| i)
        .collect();
    if populated.is_empty() {
        return;
    }
    let lg = populated[rng.random_range(0..populated.len())];
    let replies = &mut thinner.per_lg[lg].1;
    let victim = rng.random_range(0..replies.len());
    replies.remove(victim);
    let after = apply(&thinner);
    h.check(
        "filter_loss_conservative",
        matches!(after, Err(Discard::SampleSize)),
        || {
            format!(
                "{} was a sample-size discard but became {after:?} after losing a reply",
                samples.ip
            )
        },
    );
}

/// Uniform RTT inflation never discards a kept interface, and moves its
/// classification only toward remote. Provable for the paper's filters:
/// the RTT-consistency bound `min + max(5, 0.1·min)` grows at least as
/// fast as the minimum itself, so every reply near the old minimum stays
/// near the new one; the same argument covers the LG cross-check.
pub fn inflation_preserves_keep<K>(
    h: &mut Harness,
    apply: &dyn Fn(&InterfaceSamples) -> Result<K, Discard>,
    classify: &dyn Fn(f64) -> usize,
    samples: &InterfaceSamples,
    delta_ms: f64,
) {
    debug_assert!(delta_ms >= 0.0);
    if apply(samples).is_err() {
        return;
    }
    let before_min = samples.min_rtt_ms().expect("kept interfaces have replies");
    let mut inflated = samples.clone();
    for (_, replies) in &mut inflated.per_lg {
        for s in replies {
            s.rtt_ms += delta_ms;
        }
    }
    match apply(&inflated) {
        Err(d) => h.check("filter_inflation_keeps_keep", false, || {
            format!(
                "{} kept at min {before_min} ms but discarded ({d:?}) after +{delta_ms} ms",
                samples.ip
            )
        }),
        Ok(_) => {
            let after_min = inflated.min_rtt_ms().expect("still has replies");
            let (a, b) = (classify(before_min), classify(after_min));
            h.check("filter_inflation_keeps_keep", b >= a, || {
                format!(
                    "{} moved toward local under inflation: class {a} at {before_min} ms, \
                     class {b} at {after_min} ms",
                    samples.ip
                )
            });
        }
    }
}

/// Rewriting one reply's TTL to a value outside the accepted set always
/// discards a previously kept interface — through the TTL-switch stage
/// (two distinct TTLs now present) or, when the rewritten reply is the
/// only one, the TTL-match stage.
pub fn ttl_rewrite_discards<K: Debug>(
    h: &mut Harness,
    apply: &dyn Fn(&InterfaceSamples) -> Result<K, Discard>,
    samples: &InterfaceSamples,
    bad_ttl: u8,
    rng: &mut StdRng,
) {
    if apply(samples).is_err() {
        return;
    }
    let mut rewritten = samples.clone();
    let populated: Vec<usize> = rewritten
        .per_lg
        .iter()
        .enumerate()
        .filter(|(_, (_, r))| !r.is_empty())
        .map(|(i, _)| i)
        .collect();
    if populated.is_empty() {
        return;
    }
    let lg = populated[rng.random_range(0..populated.len())];
    let replies = &mut rewritten.per_lg[lg].1;
    let victim = rng.random_range(0..replies.len());
    if replies[victim].ttl == bad_ttl {
        return; // the rewrite would be a no-op; nothing to assert
    }
    replies[victim].ttl = bad_ttl;
    let after = apply(&rewritten);
    h.check(
        "filter_ttl_rewrite_discards",
        matches!(after, Err(Discard::TtlSwitch) | Err(Discard::TtlMatch)),
        || {
            format!(
                "{} kept, then TTL {bad_ttl} injected, expected a TTL discard but got {after:?}",
                samples.ip
            )
        },
    );
}

// ---------------------------------------------------------------------------
// Offload, econ, stats, and round-trip invariants
// ---------------------------------------------------------------------------

/// Offload potential is monotone under membership growth: adding a member
/// to an IXP never shrinks any peer group's offload potential there. The
/// caller evaluates the potentials before and after the addition and
/// passes the pairs; this checker owns only the relation.
pub fn cone_monotone(h: &mut Harness, pairs: &[(&'static str, f64, f64)]) {
    for &(label, before, after) in pairs {
        h.check("offload_member_add_monotone", after >= before, || {
            format!("{label}: potential fell from {before} to {after} after adding a member")
        })
    }
}

/// Eq. 14's viability verdict is scale-free: multiplying all per-traffic
/// prices `(p, u, v)` by a common factor — or both per-IXP costs
/// `(g, h)` — leaves the viability margin unchanged (the margin is a
/// ratio of price *differences*).
pub fn econ_scale_invariant(
    h: &mut Harness,
    margin: &dyn Fn(&CostParams) -> f64,
    params: &CostParams,
    lambdas: &[f64],
) {
    let base = margin(params);
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for &l in lambdas {
        let mut traffic = *params;
        traffic.p *= l;
        traffic.u *= l;
        traffic.v *= l;
        let mt = margin(&traffic);
        h.check("econ_viability_scale_invariant", close(mt, base), || {
            format!("margin {base} became {mt} after scaling (p,u,v) by {l}")
        });
        let mut fixed = *params;
        fixed.g *= l;
        fixed.h *= l;
        let mf = margin(&fixed);
        h.check("econ_viability_scale_invariant", close(mf, base), || {
            format!("margin {base} became {mf} after scaling (g,h) by {l}")
        });
    }
}

/// Paired deltas are antisymmetric: swapping the two accumulators negates
/// every delta — the property that makes paired comparisons direction-
/// agnostic, and one that survives arbitrary fault-induced value changes.
pub fn paired_delta_antisymmetric(
    h: &mut Harness,
    deltas: &dyn Fn(&Accumulator, &Accumulator) -> Vec<f64>,
    a: &Accumulator,
    b: &Accumulator,
) {
    let fwd = deltas(a, b);
    let rev = deltas(b, a);
    let ok = fwd.len() == rev.len()
        && fwd
            .iter()
            .zip(&rev)
            .all(|(x, y)| (x + y).abs() <= 1e-12 * x.abs().max(y.abs()).max(1.0));
    h.check("paired_delta_antisymmetry", ok, || {
        format!("deltas(a,b) = {fwd:?} but deltas(b,a) = {rev:?}")
    });
}

/// Shard-partition invariance: the sharded data plane's contract is that
/// the fabric→shard assignment is a pure performance policy — the same
/// world must produce *bit-identical* metrics at every shard count.
/// `metrics` maps a shard count to the run's named metric values; a count
/// of 1 is the single-queue reference every partition is held to. The
/// comparison is on the float bits, not within a tolerance: the epoch
/// barrier guarantees the merged event trace byte for byte, so any drift
/// at all is a barrier-ordering bug.
pub fn shard_partition_invariant(
    h: &mut Harness,
    metrics: &dyn Fn(usize) -> Vec<(&'static str, f64)>,
    shard_counts: &[usize],
) {
    let reference = metrics(1);
    for &shards in shard_counts {
        let got = metrics(shards);
        let ok = got.len() == reference.len()
            && got
                .iter()
                .zip(&reference)
                .all(|((gn, gv), (rn, rv))| gn == rn && gv.to_bits() == rv.to_bits());
        h.check("shard_partition_invariant", ok, || {
            let diffs: Vec<String> = reference
                .iter()
                .zip(&got)
                .filter(|((_, rv), (_, gv))| rv.to_bits() != gv.to_bits())
                .map(|((name, rv), (_, gv))| format!("{name}: {rv} vs {gv}"))
                .collect();
            format!(
                "{shards}-shard run diverged from the single-queue reference: {}",
                if diffs.is_empty() {
                    "metric sets differ in shape".to_string()
                } else {
                    diffs.join(", ")
                }
            )
        });
    }
}

/// Fork commutativity: applying deltas A then B on one fork must equal
/// forking twice (A on one child, B on the other) and merging the second
/// into the first. `sequential` and `merged` each build their fork chain
/// and render a digest of the resulting world (content fingerprint of
/// the scene plus the fork's memo key); the two digests must be
/// identical — a divergence means delta application depends on which
/// fork object replayed it, exactly the aliasing bug copy-on-write
/// forking must not have.
pub fn fork_commutative(
    h: &mut Harness,
    sequential: &dyn Fn() -> String,
    merged: &dyn Fn() -> String,
) {
    let (a, b) = (sequential(), merged());
    h.check("fork_commutative", a == b, || {
        format!("sequential fork digest {a} but fork-and-merge digest {b}")
    });
}

/// Replay exactness: running the same seeded computation twice produces
/// bit-identical results. This is the invariant the whole fault harness
/// rests on — a fault sequence must be a pure function of its seed.
pub fn replay_exact<T: PartialEq + Debug>(
    h: &mut Harness,
    label: &'static str,
    run: &dyn Fn() -> T,
) {
    let (a, b) = (run(), run());
    h.check("replay_exact", a == b, || {
        format!("{label}: first run {a:?}, second run {b:?}")
    });
}

/// Serialization round-trips are stable: re-serializing a parsed document
/// reproduces it exactly, so specs survive being written, read, and
/// written again. `reserialize` parses `text` and renders it back.
pub fn roundtrip_stable(
    h: &mut Harness,
    reserialize: &dyn Fn(&str) -> Result<String, String>,
    name: &str,
    text: &str,
) {
    match reserialize(text) {
        Err(e) => h.check("spec_roundtrip_stable", false, || {
            format!("{name}: canonical form failed to re-parse: {e}")
        }),
        Ok(once) => match reserialize(&once) {
            Err(e) => h.check("spec_roundtrip_stable", false, || {
                format!("{name}: round-tripped form failed to re-parse: {e}")
            }),
            Ok(twice) => h.check("spec_roundtrip_stable", once == twice, || {
                format!("{name}: round-trip unstable:\n  first:  {once}\n  second: {twice}")
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remote_peering::classify::RttRange;
    use remote_peering::filters::{self, FilterConfig};
    use remote_peering::probe::Sample;
    use rp_econ::viability_margin;
    use rp_ixp::{LgOperator, ListingEntry};
    use rp_scenario::ScenarioSpec;
    use rp_types::stats::paired_deltas;
    use rp_types::{seed, Asn, SimTime};
    use std::cell::Cell;

    fn rng() -> StdRng {
        seed::rng(7, "invariant-test", 0)
    }

    fn class_index(rtt: f64) -> usize {
        RttRange::ALL
            .iter()
            .position(|r| *r == RttRange::of(rtt))
            .expect("RttRange::of returns a member of ALL")
    }

    /// Samples with `n` healthy replies per LG around `rtt` ms at `ttl`.
    fn healthy(n: usize, rtt: f64, ttl: u8) -> InterfaceSamples {
        let replies = |base: f64| -> Vec<Sample> {
            (0..n)
                .map(|k| Sample {
                    sent_at: SimTime::ZERO,
                    rtt_ms: base + 0.02 * k as f64,
                    ttl,
                })
                .collect()
        };
        InterfaceSamples {
            ip: "10.1.2.2".parse().unwrap(),
            per_lg: vec![
                (LgOperator::Pch, replies(rtt)),
                (LgOperator::RipeNcc, replies(rtt + 0.4)),
            ],
            unanswered: vec![(LgOperator::Pch, 0), (LgOperator::RipeNcc, 0)],
        }
    }

    fn real_apply(
        s: &InterfaceSamples,
    ) -> Result<remote_peering::filters::AnalyzedInterface, Discard> {
        let entry = ListingEntry {
            ip: s.ip,
            asns: vec![Asn(64500)],
        };
        filters::apply(s, &entry, &FilterConfig::default())
    }

    const RTTS: [f64; 6] = [0.4, 8.0, 11.0, 19.5, 42.0, 120.0];
    const DELTAS: [f64; 4] = [0.0, 0.5, 9.0, 60.0];

    #[test]
    fn classify_monotone_real_and_mutated() {
        let mut h = Harness::new();
        classify_monotone(&mut h, &class_index, &RTTS, &DELTAS);
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: an inverted classifier must be flagged.
        let mut h = Harness::new();
        classify_monotone(&mut h, &|r| if r > 15.0 { 0 } else { 3 }, &RTTS, &DELTAS);
        assert!(!h.ok());
        assert!(h
            .violations
            .iter()
            .all(|v| v.invariant == "classify_monotone"));
    }

    #[test]
    fn threshold_monotone_real_and_mutated() {
        let mins = [0.5, 3.0, 9.9, 10.0, 14.0, 33.0, 80.0];
        let count = |t: f64| mins.iter().filter(|&&m| m >= t).count();
        let mut h = Harness::new();
        threshold_monotone(&mut h, &count, &[5.0, 10.0, 20.0, 50.0]);
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: a count that *grows* with the threshold.
        let mut h = Harness::new();
        threshold_monotone(&mut h, &|t| t as usize, &[5.0, 10.0, 20.0]);
        assert!(!h.ok());
    }

    #[test]
    fn permutation_invariant_real_and_mutated() {
        let mut h = Harness::new();
        permutation_invariant(&mut h, &real_apply, &healthy(9, 2.0, 255), &mut rng());
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: an order-sensitive "filter" (returns the first
        // reply's RTT) must be flagged.
        let first = |s: &InterfaceSamples| s.per_lg[0].1.first().map(|r| r.rtt_ms.to_bits());
        let mut h = Harness::new();
        permutation_invariant(&mut h, &first, &healthy(9, 2.0, 255), &mut rng());
        assert!(!h.ok());
    }

    #[test]
    fn loss_conservative_real_and_mutated() {
        // 5 replies per LG < the default 8 → a sample-size discard.
        let starved = healthy(5, 2.0, 255);
        let mut h = Harness::new();
        for i in 0..20 {
            let mut r = seed::rng(7, "loss", i);
            loss_conservative(&mut h, &real_apply, &starved, &mut r);
        }
        assert!(h.ok(), "{:?}", h.violations);
        assert!(h.checks > 0);

        // Mutated oracle: discards at exactly 10 total replies and keeps
        // below — losing a reply then flips discard→keep.
        let flip = |s: &InterfaceSamples| -> Result<(), Discard> {
            if s.reply_count() == 10 {
                Err(Discard::SampleSize)
            } else {
                Ok(())
            }
        };
        let mut h = Harness::new();
        loss_conservative(&mut h, &flip, &starved, &mut rng());
        assert!(!h.ok());
    }

    #[test]
    fn inflation_preserves_keep_real_and_mutated() {
        let mut h = Harness::new();
        for &rtt in &RTTS {
            for &d in &DELTAS {
                inflation_preserves_keep(
                    &mut h,
                    &real_apply,
                    &class_index,
                    &healthy(9, rtt, 255),
                    d,
                );
            }
        }
        assert!(h.ok(), "{:?}", h.violations);
        assert!(h.checks > 0);

        // Mutated oracle: a filter with an absolute RTT ceiling is not
        // inflation-stable.
        let ceiling = |s: &InterfaceSamples| -> Result<(), Discard> {
            match s.min_rtt_ms() {
                Some(m) if m > 30.0 => Err(Discard::RttConsistent),
                Some(_) => Ok(()),
                None => Err(Discard::SampleSize),
            }
        };
        let mut h = Harness::new();
        inflation_preserves_keep(&mut h, &ceiling, &class_index, &healthy(9, 2.0, 255), 60.0);
        assert!(!h.ok());
    }

    #[test]
    fn ttl_rewrite_discards_real_and_mutated() {
        let mut h = Harness::new();
        ttl_rewrite_discards(&mut h, &real_apply, &healthy(9, 2.0, 255), 7, &mut rng());
        assert!(h.ok(), "{:?}", h.violations);
        assert_eq!(h.checks, 1);

        // Mutated oracle: a TTL-blind filter must be flagged.
        let blind = |_: &InterfaceSamples| -> Result<(), Discard> { Ok(()) };
        let mut h = Harness::new();
        ttl_rewrite_discards(&mut h, &blind, &healthy(9, 2.0, 255), 7, &mut rng());
        assert!(!h.ok());
    }

    #[test]
    fn cone_monotone_real_and_mutated() {
        let mut h = Harness::new();
        cone_monotone(&mut h, &[("open", 10.0, 10.0), ("all", 10.0, 12.5)]);
        assert!(h.ok(), "{:?}", h.violations);

        let mut h = Harness::new();
        cone_monotone(&mut h, &[("open", 10.0, 9.0)]);
        assert!(!h.ok());
    }

    #[test]
    fn econ_scale_invariant_real_and_mutated() {
        let margin = |p: &CostParams| viability_margin(p);
        let mut h = Harness::new();
        econ_scale_invariant(
            &mut h,
            &margin,
            &CostParams::example(),
            &[0.25, 2.0, 1000.0],
        );
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: a margin that depends on the absolute price.
        let absolute = |p: &CostParams| p.g * (p.p - p.v) / p.h;
        let mut h = Harness::new();
        econ_scale_invariant(&mut h, &absolute, &CostParams::example(), &[2.0]);
        assert!(!h.ok());
    }

    #[test]
    fn paired_delta_antisymmetry_real_and_mutated() {
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for i in 0..8u64 {
            a.record(i, i as f64 * 1.5);
            b.record(i, 10.0 - i as f64);
        }
        b.record(99, 3.0); // unpaired replicate, must be ignored symmetrically
        let mut h = Harness::new();
        paired_delta_antisymmetric(&mut h, &|x, y| paired_deltas(x, y), &a, &b);
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: a direction-blind delta.
        let mut h = Harness::new();
        paired_delta_antisymmetric(&mut h, &|_, _| vec![1.0], &a, &b);
        assert!(!h.ok());
    }

    /// Probe a two-fabric network partitioned over `shards` shards and
    /// return its event-trace digest as the sole "metric". `skew_ns`
    /// artificially delays cross-shard handoffs — the barrier-ordering
    /// bug the shard-partition invariant exists to catch (0 = correct).
    fn sharded_digest(shards: usize, skew_ns: u64) -> Vec<(&'static str, f64)> {
        use rp_netsim::{DelayModel, Network, RouterBehavior};
        use rp_types::SimDuration;
        let mut net = Network::with_shards(7, shards);
        net.debug_skew_cross_shard(SimDuration(skew_ns));
        let far = (net.shard_count() as usize - 1).min(1);
        let fabric_a = net.add_switch_on(0);
        let fabric_b = net.add_switch_on(far);
        net.connect(
            fabric_a,
            fabric_b,
            DelayModel::ideal(rp_types::SimDuration::from_millis(2)),
        );
        let lg = net.add_host_on(0);
        let (_, lgp) = net.connect(
            fabric_a,
            lg,
            DelayModel::ideal(rp_types::SimDuration::from_micros(10)),
        );
        net.bind_host(lg, lgp, "10.0.0.1".parse().unwrap());
        let member = net.add_router_on(far, RouterBehavior::default());
        let (_, mp) = net.connect(
            fabric_b,
            member,
            DelayModel::ideal(rp_types::SimDuration::from_micros(10)),
        );
        net.bind_router(member, mp, "10.0.0.9".parse().unwrap());
        for k in 0..4u64 {
            net.plan_ping(
                lg,
                SimTime::ZERO + rp_types::SimDuration::from_millis(1 + k),
                "10.0.0.9".parse().unwrap(),
            );
        }
        net.run_to_completion();
        vec![("trace_digest", f64::from_bits(net.trace_digest()))]
    }

    #[test]
    fn shard_partition_invariant_real_and_mutated() {
        let mut h = Harness::new();
        shard_partition_invariant(&mut h, &|s| sharded_digest(s, 0), &[2, 3]);
        assert!(h.ok(), "{:?}", h.violations);
        assert_eq!(h.checks, 2);

        // Mutated oracle: cross-shard arrivals skewed by half a
        // millisecond — events cross the epoch barrier late, the merged
        // trace reorders, and the checker must fire. (The single-shard
        // reference is immune: it has no cross-shard handoffs to skew.)
        let mut h = Harness::new();
        shard_partition_invariant(&mut h, &|s| sharded_digest(s, 500_000), &[2]);
        assert!(!h.ok());
        assert!(h
            .violations
            .iter()
            .all(|v| v.invariant == "shard_partition_invariant"));
    }

    #[test]
    fn fork_commutative_real_and_mutated() {
        use remote_peering::fork::Delta;
        use remote_peering::world::{World, WorldConfig};
        let world = World::build(&WorldConfig::test_scale(23));
        let ixps = world.studied_ixps();
        let da = Delta::RowStale {
            ixp: ixps[0],
            slot: 0,
        };
        let db = Delta::PortUpgrade {
            ixp: ixps[1],
            slot: 0,
            delay_ms: 0.05,
        };
        let digest = |f: &remote_peering::fork::WorldFork| {
            format!(
                "{:016x}:{:016x}",
                f.fingerprint(),
                remote_peering::memo::fingerprint(&f.world().scene)
            )
        };

        let mut h = Harness::new();
        fork_commutative(
            &mut h,
            &|| {
                let mut f = world.fork();
                f.apply(da.clone());
                f.apply(db.clone());
                digest(&f)
            },
            &|| {
                let mut fa = world.fork();
                fa.apply(da.clone());
                let mut fb = world.fork();
                fb.apply(db.clone());
                fa.absorb(&fb);
                digest(&fa)
            },
        );
        assert!(h.ok(), "{:?}", h.violations);
        assert_eq!(h.checks, 1);

        // Mutated oracle: a merge that silently drops the other fork's
        // deltas — the worlds diverge and the checker must fire.
        let mut h = Harness::new();
        fork_commutative(
            &mut h,
            &|| {
                let mut f = world.fork();
                f.apply(da.clone());
                f.apply(db.clone());
                digest(&f)
            },
            &|| {
                let mut fa = world.fork();
                fa.apply(da.clone());
                let _dropped = world.fork();
                digest(&fa)
            },
        );
        assert!(!h.ok());
        assert!(h
            .violations
            .iter()
            .all(|v| v.invariant == "fork_commutative"));
    }

    #[test]
    fn replay_exact_real_and_mutated() {
        let mut h = Harness::new();
        replay_exact(&mut h, "seeded-draw", &|| {
            seed::rng(11, "replay", 0).random::<u64>()
        });
        assert!(h.ok(), "{:?}", h.violations);

        // Mutated oracle: hidden state across runs.
        let calls = Cell::new(0u64);
        let mut h = Harness::new();
        replay_exact(&mut h, "stateful", &|| {
            calls.set(calls.get() + 1);
            calls.get()
        });
        assert!(!h.ok());
    }

    #[test]
    fn roundtrip_stable_real_and_mutated() {
        let reser = |text: &str| -> Result<String, String> {
            ScenarioSpec::from_json(text)
                .map(|s| serde_json::to_string(&s.to_json()).expect("spec renders"))
                .map_err(|e| e.to_string())
        };
        let mut h = Harness::new();
        for name in ScenarioSpec::preset_names() {
            let spec = ScenarioSpec::preset(name).expect("listed preset exists");
            let text = serde_json::to_string(&spec.to_json()).expect("spec renders");
            roundtrip_stable(&mut h, &reser, name, &text);
        }
        assert!(h.ok(), "{:?}", h.violations);
        assert!(h.checks > 0);

        // Mutated oracle: a re-serializer that keeps appending.
        let growing = |text: &str| -> Result<String, String> { Ok(format!("{text} ")) };
        let mut h = Harness::new();
        roundtrip_stable(&mut h, &growing, "growing", "{}");
        assert!(!h.ok());
    }
}
