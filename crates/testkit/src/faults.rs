//! Fault *policy* — which faults to inject, where, and how hard.
//!
//! The mechanism lives in [`rp_netsim::fault`]: a [`FaultConfig`] installed
//! on a per-IXP network decides frame by frame. This module owns the
//! campaign-level plan on top of it: the standard link-fault template used
//! by `repro check`, plus the *scene*-level degradations the link layer
//! cannot express — registry rows gone stale (the listed device no longer
//! answers) and looking-glass vantages missing (an IXP probed from one
//! server instead of two, starving the LG-consistent filter).
//!
//! Everything derives from one seed via [`rp_types::seed`], so a plan
//! replays exactly: same seed, same stale rows, same flapping links, same
//! per-frame fault sequence.

use rand::RngExt;
use remote_peering::campaign::Campaign;
use remote_peering::fork::{apply_delta_in_place, Delta, WorldFork};
use remote_peering::world::World;
use rp_ixp::LgOperator;
use rp_netsim::FaultConfig;
use rp_types::{seed, SimDuration, SimTime};

/// A single looking-glass vantage, substituted for an IXP's full LG list by
/// the missing-vantage fault.
const ONE_LG: &[LgOperator] = &[LgOperator::Pch];

/// Scene-level fault tallies from [`FaultPlan::degrade_scene`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SceneFaults {
    /// Listed registry rows whose device was marked absent (stale rows).
    pub stale_rows: u64,
    /// Looking-glass vantages removed (IXPs reduced to a single LG).
    pub dropped_lgs: u64,
}

/// A replayable campaign-level fault plan: a link-fault template plus
/// scene-degradation probabilities.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Link-level fault template; each probed IXP derives its own stream
    /// from it (see [`Campaign::probe_ixp_full`]).
    pub link: FaultConfig,
    /// Probability that a listed member's registry row is stale — the
    /// device behind it no longer answers.
    pub stale_membership: f64,
    /// Probability that an IXP with two LG vantages loses one.
    pub missing_lg: f64,
}

impl FaultPlan {
    /// The standard plan `repro check` runs: every fault kind active at a
    /// moderate rate, the flap window in the campaign's second quarter.
    ///
    /// The rates are chosen so a faulted run is visibly degraded (the
    /// filter funnel shifts, replies go missing) while enough interfaces
    /// still survive all six filters for the keep-preserving invariants to
    /// have material to work on.
    pub fn standard(seed: u64, campaign: SimDuration) -> FaultPlan {
        let quarter = SimDuration::from_nanos(campaign.nanos() / 4);
        let lo = SimTime::ZERO + quarter;
        let hi = lo + SimDuration::from_nanos(campaign.nanos() / 10);
        FaultPlan {
            link: FaultConfig {
                seed,
                probe_loss: 0.05,
                reply_duplication: 0.03,
                jitter_spike: 0.04,
                jitter_spike_ms: 25.0,
                ttl_rewrite: 0.002,
                ttl_rewrite_to: 7,
                link_flap: 0.02,
                flap_window: Some((lo, hi)),
            },
            stale_membership: 0.03,
            missing_lg: 0.15,
        }
    }

    /// A plan that injects nothing anywhere — the control arm.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            link: FaultConfig::quiet(seed),
            stale_membership: 0.0,
            missing_lg: 0.0,
        }
    }

    /// The paper's campaign with this plan's link faults wired in.
    pub fn campaign(&self) -> Campaign {
        let mut c = Campaign::default_paper();
        c.faults = Some(self.link.clone());
        c
    }

    /// Decide the scene-level degradations for `world` without applying
    /// them: the [`Delta`] list (in deterministic per-IXP, per-slot order)
    /// plus the tallies. Every verdict draws from
    /// `seed::rng2(link.seed, "scene-fault", ixp, member)`, so the same
    /// plan degrades the same world identically every time — whether the
    /// deltas are then applied in place ([`FaultPlan::degrade_scene`]) or
    /// through a copy-on-write fork ([`FaultPlan::degrade_fork`]).
    pub fn scene_deltas(&self, world: &World) -> (Vec<Delta>, SceneFaults) {
        let mut deltas = Vec::new();
        let mut out = SceneFaults::default();
        for inst in world.scene.ixps.iter() {
            let ixp = inst.id.0 as u64;
            for (slot, member) in inst.members.iter().enumerate() {
                if !member.listing.listed || member.profile.absent {
                    continue;
                }
                let mut rng = seed::rng2(self.link.seed, "scene-fault", ixp, slot as u64);
                if rng.random::<f64>() < self.stale_membership {
                    deltas.push(Delta::RowStale {
                        ixp: inst.id,
                        slot: slot as u32,
                    });
                    out.stale_rows += 1;
                }
            }
            if inst.meta.lg.len() >= 2 {
                let mut rng = seed::rng2(self.link.seed, "scene-fault-lg", ixp, 0);
                if rng.random::<f64>() < self.missing_lg {
                    deltas.push(Delta::LgDrop {
                        ixp: inst.id,
                        keep: ONE_LG,
                    });
                    out.dropped_lgs += 1;
                }
            }
        }
        (deltas, out)
    }

    /// Apply the scene-level faults to a built world, in place.
    ///
    /// Stale rows: listed, present members flip to `absent = true` — the
    /// registry still lists them (that is what *stale* means) but pings go
    /// unanswered, which the sample-size filter must absorb. Missing LGs:
    /// an IXP with two vantages keeps only one, disabling the
    /// LG-consistent cross-check there. The verdicts come from
    /// [`FaultPlan::scene_deltas`]; prefer [`FaultPlan::degrade_fork`],
    /// which leaves the input world untouched and keeps a delta log for
    /// incremental re-probing.
    pub fn degrade_scene(&self, world: &mut World) -> SceneFaults {
        // Even a quiet plan counts as a mutation: the world may no longer
        // match its config, so it must never alias the pristine build in
        // the probe memo.
        world.mark_mutated();
        let (deltas, out) = self.scene_deltas(world);
        for d in &deltas {
            apply_delta_in_place(world, d);
        }
        out
    }

    /// Fork `world` and apply the scene-level faults to the fork. Same
    /// verdicts, same bytes as [`FaultPlan::degrade_scene`] on a clone —
    /// proven by `degrade_fork_matches_degrade_scene` below — but the
    /// parent stays pristine, the clone cost is refcount bumps, and the
    /// fork's dirty set scopes any later incremental re-probe.
    pub fn degrade_fork(&self, world: &World) -> (WorldFork, SceneFaults) {
        let (deltas, out) = self.scene_deltas(world);
        let mut fork = world.fork();
        for d in deltas {
            fork.apply(d);
        }
        (fork, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remote_peering::world::WorldConfig;

    #[test]
    fn degrade_scene_replays_exactly() {
        let cfg = WorldConfig::test_scale(11);
        let plan = FaultPlan::standard(99, SimDuration::from_days(14));

        let mut a = World::build(&cfg);
        let fa = plan.degrade_scene(&mut a);
        let mut b = World::build(&cfg);
        let fb = plan.degrade_scene(&mut b);

        assert_eq!(fa, fb);
        assert!(fa.stale_rows > 0, "standard plan should stale some rows");
        for (xa, xb) in a.scene.ixps.iter().zip(&b.scene.ixps) {
            assert_eq!(xa.meta.lg, xb.meta.lg);
            for (ma, mb) in xa.members.iter().zip(&xb.members) {
                assert_eq!(ma.profile.absent, mb.profile.absent);
            }
        }
    }

    #[test]
    fn degrade_fork_matches_degrade_scene() {
        let cfg = WorldConfig::test_scale(11);
        let plan = FaultPlan::standard(99, SimDuration::from_days(14));
        let parent = World::build(&cfg);
        let (fork, ff) = plan.degrade_fork(&parent);
        let mut in_place = World::build(&cfg);
        let fi = plan.degrade_scene(&mut in_place);
        assert_eq!(ff, fi);
        assert!(ff.stale_rows > 0);
        for (xa, xb) in fork.world().scene.ixps.iter().zip(&in_place.scene.ixps) {
            assert_eq!(
                format!("{xa:?}"),
                format!("{xb:?}"),
                "fork and in-place degradation must agree byte-for-byte"
            );
        }
        // The fork's parent is untouched, and the dirty set names exactly
        // the IXPs the deltas hit.
        let pristine = World::build(&cfg);
        for (xa, xb) in parent.scene.ixps.iter().zip(&pristine.scene.ixps) {
            assert_eq!(format!("{xa:?}"), format!("{xb:?}"));
        }
        let touched: std::collections::BTreeSet<_> =
            fork.deltas().iter().map(|d| d.touches()).collect();
        assert_eq!(&touched, fork.dirty_ixps());
    }

    #[test]
    fn quiet_plan_degrades_nothing() {
        let cfg = WorldConfig::test_scale(11);
        let clean = World::build(&cfg);
        let mut w = World::build(&cfg);
        let f = FaultPlan::quiet(3).degrade_scene(&mut w);
        assert_eq!(f, SceneFaults::default());
        for (xa, xb) in clean.scene.ixps.iter().zip(&w.scene.ixps) {
            assert_eq!(xa.meta.lg, xb.meta.lg);
            for (ma, mb) in xa.members.iter().zip(&xb.members) {
                assert_eq!(ma.profile.absent, mb.profile.absent);
            }
        }
    }

    #[test]
    fn stale_rows_stay_listed() {
        let cfg = WorldConfig::test_scale(11);
        let clean = World::build(&cfg);
        let mut w = World::build(&cfg);
        let plan = FaultPlan::standard(99, SimDuration::from_days(14));
        plan.degrade_scene(&mut w);
        // The whole point of a *stale* row: the registry keeps listing it.
        for (xa, xb) in clean.scene.ixps.iter().zip(&w.scene.ixps) {
            for (ma, mb) in xa.members.iter().zip(&xb.members) {
                assert_eq!(ma.listing, mb.listing);
            }
        }
        assert_eq!(clean.registry.total_entries(), w.registry.total_entries());
    }
}
