//! The `repro check` orchestrator: one clean run, one faulted run, the
//! invariant suite over both, and the parser fuzzer — producing a single
//! deterministic report of *injected faults vs. caught violations*.
//!
//! Everything is a pure function of [`CheckConfig`]: the probing fans out
//! over IXPs with rayon but collects keyed results in IXP order, the
//! perturbation trials run serially from per-trial seeds, and the fuzzer
//! is serial by construction — so the report JSON is bit-identical across
//! thread counts and replays exactly under the same seed.

use crate::faults::{FaultPlan, SceneFaults};
use crate::fuzz::{self, FuzzReport};
use crate::invariants::{self, Harness};
use rand::RngExt;
use rayon::prelude::*;
use remote_peering::campaign::Campaign;
use remote_peering::classify::RttRange;
use remote_peering::filters::{self, AnalyzedInterface, Discard, FilterConfig};
use remote_peering::metrics::{MethodParams, PreparedRun, RunMetrics};
use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::probe::InterfaceSamples;
use remote_peering::world::{World, WorldConfig};
use rp_econ::{viability_margin, CostParams};
use rp_ixp::model::ListingInfo;
use rp_ixp::{IxpInstance, ListingEntry, MemberInterface, ResponderProfile};
use rp_netsim::FaultCounts;
use rp_topology::PeeringPolicy;
use rp_types::stats::{paired_deltas, Accumulator};
use rp_types::{seed, Asn, IxpId};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What to run and how hard.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// Perturbation trials for the sample-level invariants.
    pub fault_trials: u64,
    /// Fuzzer iterations against each parser target.
    pub fuzz_iters: u64,
    /// Build the full paper-scale world instead of the test-scale one.
    pub paper_scale: bool,
    /// Data-plane shards per simulated IXP network (0 = one per fabric
    /// site, capped at the available cores). Deliberately absent from the
    /// report JSON: the shard-partition invariant below asserts it cannot
    /// change a single byte of the outcome, so recording it would turn a
    /// performance policy into spurious report churn.
    pub shards: usize,
    /// Run the faulted arm as a from-scratch reference: rebuild the world
    /// (bypassing the memo pool) and degrade it in place, instead of the
    /// default copy-on-write fork of the clean build. Like `shards`, this
    /// is deliberately absent from the report JSON — the fork path's
    /// whole contract is that it cannot change a byte of the outcome,
    /// which is exactly what the differential harness asserts by running
    /// `repro check` both ways and comparing artifacts.
    pub reference_rebuild: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 42,
            fault_trials: 200,
            fuzz_iters: 500,
            paper_scale: false,
            shards: 0,
            reference_rebuild: false,
        }
    }
}

impl CheckConfig {
    /// Parse a check configuration from a JSON object — the library form
    /// of the `repro check` flags, so services can accept check
    /// submissions without shelling out. Recognized keys (all optional,
    /// defaulting to the CLI's defaults): `seed`, `faults`, `fuzz`,
    /// `scale` (`"test"` or `"paper"`), `shards`, `reference_rebuild`.
    /// Unknown keys are rejected so a typo'd knob fails loudly instead of
    /// silently running the default.
    pub fn from_value(v: &Value) -> Result<CheckConfig, String> {
        let obj = v
            .as_object()
            .ok_or_else(|| "check config must be a JSON object".to_string())?;
        let mut cfg = CheckConfig::default();
        for (key, val) in obj {
            match key.as_str() {
                "kind" => {} // the job envelope's discriminant, not a knob
                "seed" => {
                    cfg.seed = val.as_u64().ok_or_else(|| {
                        format!("\"seed\" must be a non-negative integer, got {val}")
                    })?
                }
                "faults" => {
                    cfg.fault_trials = val.as_u64().ok_or_else(|| {
                        format!("\"faults\" must be a non-negative integer, got {val}")
                    })?
                }
                "fuzz" => {
                    cfg.fuzz_iters = val.as_u64().ok_or_else(|| {
                        format!("\"fuzz\" must be a non-negative integer, got {val}")
                    })?
                }
                "scale" => match val.as_str() {
                    Some("test") => cfg.paper_scale = false,
                    Some("paper") => cfg.paper_scale = true,
                    _ => {
                        return Err(format!(
                            "\"scale\" must be \"test\" or \"paper\", got {val}"
                        ))
                    }
                },
                "shards" => {
                    cfg.shards = val.as_u64().ok_or_else(|| {
                        format!("\"shards\" must be a non-negative integer, got {val}")
                    })? as usize
                }
                "reference_rebuild" => {
                    cfg.reference_rebuild = val.as_bool().ok_or_else(|| {
                        format!("\"reference_rebuild\" must be a boolean, got {val}")
                    })?
                }
                other => return Err(format!("unknown check config key {other:?}")),
            }
        }
        Ok(cfg)
    }
}

/// Everything one check run produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The configuration that produced this outcome.
    pub config: CheckConfig,
    /// Link-level faults injected across the faulted campaign.
    pub injected: FaultCounts,
    /// Scene-level faults applied before the faulted campaign.
    pub scene: SceneFaults,
    /// Interfaces surviving all six filters in the clean run.
    pub clean_analyzed: usize,
    /// Interfaces surviving all six filters in the faulted run.
    pub faulted_analyzed: usize,
    /// The invariant suite's tally.
    pub harness: Harness,
    /// The fuzzer's tally.
    pub fuzz: FuzzReport,
}

impl CheckOutcome {
    /// True when no invariant was violated and no parser panicked.
    pub fn passed(&self) -> bool {
        self.harness.ok() && self.fuzz.panics.is_empty()
    }

    /// The check report document (deterministic: no wall-clock content).
    pub fn to_json(&self) -> Value {
        let by_kind = Value::Object(
            self.injected
                .by_kind()
                .iter()
                .map(|(k, n)| (k.key().to_string(), json!(n)))
                .collect(),
        );
        json!({
            "config": {
                "seed": self.config.seed,
                "fault_trials": self.config.fault_trials,
                "fuzz_iters": self.config.fuzz_iters,
                "scale": if self.config.paper_scale { "paper" } else { "test" },
            },
            "faults": {
                "link": by_kind,
                "link_total": self.injected.total(),
                "decisions": self.injected.decisions,
                "stale_rows": self.scene.stale_rows,
                "dropped_lgs": self.scene.dropped_lgs,
            },
            "pipeline": {
                "clean_analyzed": self.clean_analyzed,
                "faulted_analyzed": self.faulted_analyzed,
            },
            "invariants": self.harness.to_json(),
            "fuzz": self.fuzz.to_json(),
            "passed": self.passed(),
        })
    }
}

/// One probed world's per-interface material, with registry entries
/// attached (the ASN-change filter needs them).
struct ProbedRun {
    /// `(ixp, samples, entry)` for every listed interface, in IXP order.
    interfaces: Vec<(IxpId, InterfaceSamples, ListingEntry)>,
    /// Analyzed (all-filters-passed) count per IXP, in IXP order.
    analyzed_per_ixp: Vec<(IxpId, usize)>,
}

impl ProbedRun {
    fn analyzed(&self) -> usize {
        self.analyzed_per_ixp.iter().map(|(_, n)| n).sum()
    }
}

fn attach_entries(
    world: &World,
    probed: Vec<(IxpId, Vec<InterfaceSamples>)>,
    fcfg: &FilterConfig,
) -> ProbedRun {
    let mut interfaces = Vec::new();
    let mut analyzed_per_ixp = Vec::new();
    for (ixp, samples) in probed {
        let by_ip: HashMap<Ipv4Addr, &ListingEntry> = world
            .registry
            .entries(ixp)
            .iter()
            .map(|e| (e.ip, e))
            .collect();
        let mut analyzed = 0usize;
        for s in samples {
            let entry = by_ip
                .get(&s.ip)
                .map(|e| (*e).clone())
                .unwrap_or(ListingEntry {
                    ip: s.ip,
                    asns: vec![Asn(64500)],
                });
            if filters::apply(&s, &entry, fcfg).is_ok() {
                analyzed += 1;
            }
            interfaces.push((ixp, s, entry));
        }
        analyzed_per_ixp.push((ixp, analyzed));
    }
    ProbedRun {
        interfaces,
        analyzed_per_ixp,
    }
}

/// The position of an RTT's class in [`RttRange::ALL`] (0 = most local).
fn class_index(rtt: f64) -> usize {
    RttRange::ALL
        .iter()
        .position(|r| *r == RttRange::of(rtt))
        .expect("RttRange::of returns a member of ALL")
}

/// Offload monotonicity under member addition, on the real world: add an
/// open-policy non-member to a non-home studied IXP and compare per-group
/// potentials. Group 2 (open + top-10 selective) is excluded on purpose:
/// its membership is itself data-dependent, so monotonicity is not a
/// theorem there.
///
/// The addition happens on a copy-on-write fork (a `MemberAdd` delta), or
/// — in reference-rebuild mode — as the legacy in-place push on a marked
/// clone; both leave `world` itself untouched, and the differential
/// harness holds the two paths to identical report bytes.
fn offload_invariant(h: &mut Harness, world: &World, reference_rebuild: bool) {
    let home = world.home_ixps.clone();
    let Some(target) = world.studied_ixps().into_iter().find(|i| !home.contains(i)) else {
        return;
    };
    let members: std::collections::HashSet<_> = world
        .scene
        .ixp(target)
        .members
        .iter()
        .map(|m| m.network)
        .collect();
    let Some(net) = world
        .topology
        .ases
        .iter()
        .find(|a| a.policy == PeeringPolicy::Open && !members.contains(&a.id))
        .map(|a| a.id)
    else {
        return;
    };
    const GROUPS: [(&str, PeerGroup); 3] = [
        ("open", PeerGroup::Open),
        ("open+selective", PeerGroup::OpenSelective),
        ("all", PeerGroup::All),
    ];
    let potentials = |world: &World| -> Vec<(f64, f64)> {
        let study = OffloadStudy::new(world);
        GROUPS
            .iter()
            .map(|&(_, g)| {
                let (inbound, outbound) = study.potential(&[target], g);
                (inbound.0, outbound.0)
            })
            .collect()
    };
    let before = potentials(world);
    let slot = world.scene.ixp(target).members.len() as u32;
    let member = MemberInterface {
        network: net,
        ip: IxpInstance::ip_for_slot(target, slot),
        access: rp_ixp::Access::Direct {
            colo_delay_ms: 0.3,
            site: 0,
        },
        profile: ResponderProfile::default(),
        listing: ListingInfo {
            listed: false,
            identifiable: false,
            asn_change: false,
        },
    };
    let after = if reference_rebuild {
        // Legacy path, kept as the differential reference: push the
        // member onto a marked clone (the mark retires the clone's memo
        // key so no probe memoization can alias the perturbed state).
        let mut perturbed = world.clone();
        perturbed.mark_mutated();
        remote_peering::fork::apply_delta_in_place(
            &mut perturbed,
            &remote_peering::fork::Delta::MemberAdd {
                ixp: target,
                member,
            },
        );
        potentials(&perturbed)
    } else {
        let mut fork = world.fork();
        fork.apply(remote_peering::fork::Delta::MemberAdd {
            ixp: target,
            member,
        });
        potentials(fork.world())
    };

    let mut pairs: Vec<(&'static str, f64, f64)> = Vec::new();
    for (i, &(label, _)) in GROUPS.iter().enumerate() {
        pairs.push((label, before[i].0, after[i].0));
        pairs.push((label, before[i].1, after[i].1));
    }
    invariants::cone_monotone(h, &pairs);
}

/// Run the whole correctness harness. See the module docs for the shape.
pub fn run_check(cfg: &CheckConfig) -> CheckOutcome {
    let _sp = rp_obs::span("testkit.check");
    let world_cfg = if cfg.paper_scale {
        WorldConfig::paper_scale(cfg.seed)
    } else {
        WorldConfig::test_scale(cfg.seed)
    };
    let fcfg = FilterConfig::default();

    // Clean arm. The default path pulls the build *and* its probe set
    // from the process-wide memo, so repeated checks in one process (a
    // `repro serve` worker, the bench's fork-vs-rebuild pair) pay for the
    // clean arm once; reference mode rebuilds and re-probes from scratch,
    // bypassing every cache, so the differential comparison covers the
    // memo layer too.
    let clean_campaign = Campaign {
        shards: cfg.shards,
        ..Campaign::default_paper()
    };
    let (clean_world, clean_probed) = {
        let _sp = rp_obs::span("testkit.check.clean");
        if cfg.reference_rebuild {
            let world = std::sync::Arc::new(World::build(&world_cfg));
            let probed = clean_campaign.probe_all(&world);
            (world, probed)
        } else {
            let prepared = PreparedRun::probe_cached(&world_cfg, &clean_campaign);
            (prepared.world, (*prepared.probed).clone())
        }
    };
    let clean = attach_entries(&clean_world, clean_probed, &fcfg);

    // Faulted arm: same config, degraded scene, fault-injecting campaign.
    let plan = FaultPlan::standard(
        seed::derive(cfg.seed, "testkit-plan", 0),
        clean_world.campaign_duration(),
    );
    // Fork the clean build and apply the degradations as deltas — the
    // parent stays pristine and the fork gets a deterministic content
    // address. Reference mode replays the legacy path instead: a fresh
    // build degraded in place under a mutation nonce. Identical bytes
    // either way (the fork-equivalence harness holds the report to it).
    let (faulted_world, scene) = if cfg.reference_rebuild {
        let mut rebuilt = World::build(&world_cfg);
        let scene = plan.degrade_scene(&mut rebuilt);
        (rebuilt, scene)
    } else {
        let (fork, scene) = plan.degrade_fork(&clean_world);
        (fork.into_world(), scene)
    };
    let campaign = Campaign {
        shards: cfg.shards,
        ..plan.campaign()
    };
    let results: Vec<((IxpId, Vec<InterfaceSamples>), FaultCounts)> = {
        let _sp = rp_obs::span("testkit.check.faulted");
        faulted_world
            .studied_ixps()
            .par_iter()
            .map(|&ixp| {
                let (samples, _, counts) = campaign.probe_ixp_full(&faulted_world, ixp, false);
                ((ixp, samples), counts)
            })
            .collect()
    };
    let (probed, counts): (Vec<_>, Vec<FaultCounts>) = results.into_iter().unzip();
    let mut injected = FaultCounts::default();
    for c in &counts {
        injected.merge(c);
    }
    rp_obs::counter!("testkit.faults.injected").add(injected.total());
    let faulted = attach_entries(&faulted_world, probed, &fcfg);

    let mut h = Harness::new();
    let apply = |s: &InterfaceSamples,
                 entry: &ListingEntry|
     -> Result<AnalyzedInterface, Discard> { filters::apply(s, entry, &fcfg) };

    // Classification invariants over the observed minima plus a boundary
    // grid straddling the 10/20/50 ms class edges.
    {
        let _sp = rp_obs::span("testkit.check.invariants");
        let mut rtts: Vec<f64> = vec![0.3, 9.99, 10.0, 19.99, 20.0, 49.99, 50.0, 180.0];
        rtts.extend(
            clean
                .interfaces
                .iter()
                .chain(faulted.interfaces.iter())
                .filter_map(|(_, s, _)| s.min_rtt_ms())
                .take(64),
        );
        invariants::classify_monotone(&mut h, &class_index, &rtts, &[0.0, 0.01, 5.0, 40.0]);

        let minima: Vec<f64> = clean
            .interfaces
            .iter()
            .chain(faulted.interfaces.iter())
            .filter_map(|(_, s, _)| s.min_rtt_ms())
            .collect();
        let remote_count = |t: f64| -> usize { minima.iter().filter(|&&m| m >= t).count() };
        invariants::threshold_monotone(&mut h, &remote_count, &[2.0, 5.0, 10.0, 20.0, 50.0, 100.0]);

        // Sample-level perturbation trials, drawn round-robin from the
        // clean and faulted interface pools.
        let pool: Vec<&(IxpId, InterfaceSamples, ListingEntry)> = clean
            .interfaces
            .iter()
            .chain(faulted.interfaces.iter())
            .collect();
        if !pool.is_empty() {
            for trial in 0..cfg.fault_trials {
                let mut rng = seed::rng2(cfg.seed, "testkit-trial", trial, 0);
                let (_, s, entry) = pool[trial as usize % pool.len()];
                let bound = |s: &InterfaceSamples| apply(s, entry);
                invariants::permutation_invariant(&mut h, &bound, s, &mut rng);
                invariants::loss_conservative(&mut h, &bound, s, &mut rng);
                let delta = rng.random::<f64>() * 60.0;
                invariants::inflation_preserves_keep(&mut h, &bound, &class_index, s, delta);
                invariants::ttl_rewrite_discards(&mut h, &bound, s, 7, &mut rng);
            }
        }

        // Offload monotonicity on the (degraded) world.
        offload_invariant(&mut h, &faulted_world, cfg.reference_rebuild);

        // Fork commutativity on the clean world: two deltas applied
        // sequentially on one fork must equal two single-delta forks
        // merged — the metamorphic form of "a fork is its delta log".
        {
            let ixps = clean_world.studied_ixps();
            if ixps.len() >= 2 {
                let da = remote_peering::fork::Delta::RowStale {
                    ixp: ixps[0],
                    slot: 0,
                };
                let db = remote_peering::fork::Delta::PortUpgrade {
                    ixp: ixps[1],
                    slot: 0,
                    delay_ms: 0.05,
                };
                let digest = |f: &remote_peering::fork::WorldFork| {
                    format!(
                        "{:016x}:{:016x}",
                        f.fingerprint(),
                        remote_peering::memo::fingerprint(&f.world().scene)
                    )
                };
                invariants::fork_commutative(
                    &mut h,
                    &|| {
                        let mut f = clean_world.fork();
                        f.apply(da.clone());
                        f.apply(db.clone());
                        digest(&f)
                    },
                    &|| {
                        let mut fa = clean_world.fork();
                        fa.apply(da.clone());
                        let mut fb = clean_world.fork();
                        fb.apply(db.clone());
                        fa.absorb(&fb);
                        digest(&fa)
                    },
                );
            }
        }

        // Shard-partition invariance on the clean world: re-probe at
        // explicit shard counts and demand bit-identical run metrics
        // against the single-queue reference. This is the end-to-end
        // form of the netsim epoch-barrier contract — every metric the
        // sweeps track, not just the event trace.
        let shard_metrics = |shards: usize| -> Vec<(&'static str, f64)> {
            let campaign = Campaign {
                shards,
                ..Campaign::default_paper()
            };
            let run = PreparedRun::probe((*clean_world).clone(), &campaign);
            RunMetrics::collect(&run, &MethodParams::default())
                .named()
                .to_vec()
        };
        invariants::shard_partition_invariant(&mut h, &shard_metrics, &[2, 4]);

        // Econ scale invariance at the example point and seeded nearby ones.
        let mut rng = seed::rng(cfg.seed, "testkit-econ", 0);
        let mut params = vec![CostParams::example()];
        for _ in 0..8 {
            let mut p = CostParams::example();
            p.p *= 1.0 + rng.random::<f64>();
            p.b = 0.1 + rng.random::<f64>() * 2.0;
            params.push(p);
        }
        for p in &params {
            invariants::econ_scale_invariant(
                &mut h,
                &|q: &CostParams| viability_margin(q),
                p,
                &[0.25, 2.0, 1000.0],
            );
        }

        // Paired-delta antisymmetry on the clean-vs-faulted analyzed
        // counts — the exact comparison shape `rp-scenario` sweeps use,
        // surviving the injected faults.
        let mut acc_clean = Accumulator::new();
        let mut acc_faulted = Accumulator::new();
        for (ixp, n) in &clean.analyzed_per_ixp {
            acc_clean.record(ixp.0 as u64, *n as f64);
        }
        for (ixp, n) in &faulted.analyzed_per_ixp {
            acc_faulted.record(ixp.0 as u64, *n as f64);
        }
        invariants::paired_delta_antisymmetric(
            &mut h,
            &|a, b| paired_deltas(a, b),
            &acc_clean,
            &acc_faulted,
        );

        // Replay exactness of a full faulted single-IXP probe.
        if let Some(&ixp) = faulted_world.studied_ixps().first() {
            invariants::replay_exact(&mut h, "faulted-probe", &|| {
                let (samples, _, counts) = campaign.probe_ixp_full(&faulted_world, ixp, false);
                (samples, counts)
            });
        }

        // Spec round-trip stability for every preset.
        let reser = |text: &str| -> Result<String, String> {
            rp_scenario::ScenarioSpec::from_json(text)
                .map(|s| serde_json::to_string(&s.to_json()).expect("spec renders"))
                .map_err(|e| e.to_string())
        };
        for name in rp_scenario::ScenarioSpec::preset_names() {
            let spec = rp_scenario::ScenarioSpec::preset(name).expect("listed preset exists");
            let text = serde_json::to_string(&spec.to_json()).expect("spec renders");
            invariants::roundtrip_stable(&mut h, &reser, name, &text);
        }
    }

    // Parser fuzzing.
    let fuzz = {
        let _sp = rp_obs::span("testkit.check.fuzz");
        fuzz::run(seed::derive(cfg.seed, "testkit-fuzz", 0), cfg.fuzz_iters)
    };

    rp_obs::counter!("testkit.invariants.checks").add(h.checks);
    rp_obs::counter!("testkit.invariants.violations").add(h.violations.len() as u64);

    CheckOutcome {
        config: cfg.clone(),
        injected,
        scene,
        clean_analyzed: clean.analyzed(),
        faulted_analyzed: faulted.analyzed(),
        harness: h,
        fuzz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CheckConfig {
        CheckConfig {
            seed: 5,
            fault_trials: 24,
            fuzz_iters: 40,
            paper_scale: false,
            shards: 0,
            reference_rebuild: false,
        }
    }

    #[test]
    fn check_passes_and_replays_bit_identically() {
        let a = run_check(&small());
        assert!(a.passed(), "{:?} {:?}", a.harness.violations, a.fuzz.panics);
        assert!(a.injected.total() > 0, "the standard plan must inject");
        assert!(a.scene.stale_rows > 0);
        assert!(a.harness.checks > 50);
        assert!(
            a.faulted_analyzed < a.clean_analyzed,
            "faults should cost analyzed interfaces ({} vs {})",
            a.faulted_analyzed,
            a.clean_analyzed
        );

        let b = run_check(&small());
        assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap(),
            "check report must be a pure function of its config"
        );
    }

    #[test]
    fn check_config_parses_from_json_and_rejects_typos() {
        let v = serde_json::from_str(
            r#"{"kind": "check", "seed": 7, "faults": 10, "fuzz": 20, "scale": "paper", "shards": 2}"#,
        )
        .unwrap();
        let cfg = CheckConfig::from_value(&v).unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.fault_trials, 10);
        assert_eq!(cfg.fuzz_iters, 20);
        assert!(cfg.paper_scale);
        assert_eq!(cfg.shards, 2);

        let defaults = CheckConfig::from_value(&serde_json::from_str("{}").unwrap()).unwrap();
        assert_eq!(defaults.fault_trials, 200);
        assert_eq!(defaults.fuzz_iters, 500);

        let typo = serde_json::from_str(r#"{"fautls": 10}"#).unwrap();
        assert!(CheckConfig::from_value(&typo)
            .unwrap_err()
            .contains("fautls"));
        let scale = serde_json::from_str(r#"{"scale": "huge"}"#).unwrap();
        assert!(CheckConfig::from_value(&scale).is_err());
    }

    #[test]
    fn different_seed_injects_differently() {
        let a = run_check(&small());
        let mut cfg = small();
        cfg.seed = 6;
        let b = run_check(&cfg);
        assert!(b.passed(), "{:?} {:?}", b.harness.violations, b.fuzz.panics);
        assert_ne!(a.injected, b.injected);
    }
}
