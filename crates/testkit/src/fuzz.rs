//! Deterministic structure-aware fuzzing of the JSON surfaces.
//!
//! No external fuzzer: a seeded corpus (every scenario preset's canonical
//! JSON plus regression cases from previously fixed parser bugs) is run
//! through seeded structural mutations — truncation, byte splices, digit
//! inflation, surrogate-escape injection, deep-nest wrapping — and each
//! mutant is fed to the vendored [`serde_json::from_str`] and to
//! [`rp_scenario::ScenarioSpec::from_json`] under `catch_unwind`. `Ok` and
//! clean `Err` are both fine; a panic is a finding. The iteration count is
//! the only knob, so `repro check --fuzz N` replays bit-identically.

use rand::rngs::StdRng;
use rand::RngExt;
use rp_scenario::ScenarioSpec;
use rp_types::seed;
use serde_json::{json, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome tallies of one fuzz run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutants executed (per target).
    pub iterations: u64,
    /// Inputs each target accepted.
    pub accepted: Vec<(&'static str, u64)>,
    /// Inputs each target rejected with a clean error.
    pub rejected: Vec<(&'static str, u64)>,
    /// Panics caught, rendered as `target: message (input prefix)`.
    pub panics: Vec<String>,
}

impl FuzzReport {
    /// Report rendering.
    pub fn to_json(&self) -> Value {
        let tally = |v: &[(&'static str, u64)]| {
            Value::Object(
                v.iter()
                    .map(|(name, n)| (name.to_string(), json!(n)))
                    .collect(),
            )
        };
        json!({
            "iterations": self.iterations,
            "accepted": tally(&self.accepted),
            "rejected": tally(&self.rejected),
            "panics": Value::Array(self.panics.iter().map(|p| json!(p)).collect()),
        })
    }
}

/// The seed corpus: every preset's canonical JSON, a hand-written minimal
/// spec, and one regression case per parser bug previously fixed in the
/// vendored `serde_json` (deep nesting, lone surrogates, overflowing
/// numbers) so those inputs are re-attacked on every run.
pub fn corpus() -> Vec<String> {
    let mut out: Vec<String> = ScenarioSpec::preset_names()
        .into_iter()
        .filter_map(ScenarioSpec::preset)
        .map(|s| serde_json::to_string(&s.to_json()).expect("preset renders"))
        .collect();
    out.push(r#"{"name":"tiny","base":{},"axes":[]}"#.to_string());
    // Regression: unbounded recursion used to overflow the parser stack.
    out.push(format!("{}1{}", "[".repeat(200), "]".repeat(200)));
    // Regression: a lone high surrogate used to produce an invalid char.
    out.push(r#"{"s":"\uD800"}"#.to_string());
    out.push(r#"{"s":"𝄞"}"#.to_string());
    // Regression: overflow to infinity used to slip through as a value.
    out.push(r#"{"n":1e999,"m":-1e999,"k":123456789012345678901234567890}"#.to_string());
    out
}

/// One seeded structural mutation of `input`.
fn mutate(rng: &mut StdRng, input: &str) -> String {
    let mut bytes = input.as_bytes().to_vec();
    let rounds = 1 + rng.random_range(0..3usize);
    for _ in 0..rounds {
        if bytes.is_empty() {
            bytes.extend_from_slice(b"{}");
        }
        match rng.random_range(0..8u32) {
            // Truncate at a random point.
            0 => {
                let at = rng.random_range(0..bytes.len());
                bytes.truncate(at);
            }
            // Splice a random byte in.
            1 => {
                let at = rng.random_range(0..(bytes.len() + 1));
                bytes.insert(at, (rng.random::<u64>() & 0xff) as u8);
            }
            // Delete a random range.
            2 => {
                let from = rng.random_range(0..bytes.len());
                let to = (from + 1 + rng.random_range(0..8usize)).min(bytes.len());
                bytes.drain(from..to);
            }
            // Duplicate a random slice (repeats keys, brackets, commas).
            3 => {
                let from = rng.random_range(0..bytes.len());
                let to = (from + 1 + rng.random_range(0..12usize)).min(bytes.len());
                let slice: Vec<u8> = bytes[from..to].to_vec();
                let at = rng.random_range(0..(bytes.len() + 1));
                bytes.splice(at..at, slice);
            }
            // Inflate a digit run (number overflow territory).
            4 => {
                if let Some(pos) = bytes.iter().position(|b| b.is_ascii_digit()) {
                    let extra = 1 + rng.random_range(0..320usize);
                    let digits: Vec<u8> = (0..extra)
                        .map(|_| b'0' + (rng.random::<u64>() % 10) as u8)
                        .collect();
                    bytes.splice(pos..pos, digits);
                }
            }
            // Inject an escape sequence into string territory.
            5 => {
                const ESCAPES: [&[u8]; 5] = [
                    br"\uD800",
                    br"\uDC00",
                    "\u{ffff}".as_bytes(),
                    br"\x",
                    br"\u12",
                ];
                let esc = ESCAPES[rng.random_range(0..ESCAPES.len())];
                let at = rng.random_range(0..(bytes.len() + 1));
                bytes.splice(at..at, esc.iter().copied());
            }
            // Wrap in deep nesting (sometimes past the parser's cap).
            6 => {
                let depth = 1 + rng.random_range(0..200usize);
                let mut wrapped = Vec::with_capacity(bytes.len() + 2 * depth);
                wrapped.extend(std::iter::repeat(b'[').take(depth));
                wrapped.extend_from_slice(&bytes);
                wrapped.extend(std::iter::repeat(b']').take(depth));
                bytes = wrapped;
            }
            // Flip one byte to a structural character.
            _ => {
                const STRUCT: [u8; 8] = [b'{', b'}', b'[', b']', b':', b',', b'"', b'\\'];
                let at = rng.random_range(0..bytes.len());
                bytes[at] = STRUCT[rng.random_range(0..STRUCT.len())];
            }
        }
    }
    // Parsers take &str, so mutants must be valid UTF-8; lossy conversion
    // keeps the structural damage while fixing up the encoding.
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A named parse target: consumes the input, returns whether it accepted.
pub type FuzzTarget<'a> = (&'static str, &'a dyn Fn(&str) -> bool);

/// Fuzz arbitrary targets. Exposed so the tests can aim the machinery at
/// a deliberately panicking parser and watch it get caught.
pub fn run_targets(master_seed: u64, iterations: u64, targets: &[FuzzTarget<'_>]) -> FuzzReport {
    let corpus = corpus();
    let mut report = FuzzReport {
        iterations,
        accepted: targets.iter().map(|(n, _)| (*n, 0)).collect(),
        rejected: targets.iter().map(|(n, _)| (*n, 0)).collect(),
        panics: Vec::new(),
    };
    // A caught panic still prints the default hook's backtrace; silence it
    // for the duration of the (strictly serial) fuzz loop.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for i in 0..iterations {
        let mut rng = seed::rng2(master_seed, "fuzz", i, 0);
        let base = &corpus[rng.random_range(0..corpus.len())];
        let input = mutate(&mut rng, base);
        for (t, (name, target)) in targets.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| target(&input))) {
                Ok(true) => report.accepted[t].1 += 1,
                Ok(false) => report.rejected[t].1 += 1,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let prefix: String = input.chars().take(80).collect();
                    report
                        .panics
                        .push(format!("{name}: panicked: {msg} (input: {prefix})"));
                }
            }
        }
    }
    std::panic::set_hook(prev_hook);
    report
}

/// Fuzz the production surfaces: the vendored JSON parser and the
/// scenario-spec parser layered on it.
pub fn run(master_seed: u64, iterations: u64) -> FuzzReport {
    run_targets(
        master_seed,
        iterations,
        &[
            ("serde_json::from_str", &|s: &str| {
                serde_json::from_str(s).is_ok()
            }),
            ("ScenarioSpec::from_json", &|s: &str| {
                ScenarioSpec::from_json(s).is_ok()
            }),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_is_deterministic() {
        let a = run(42, 150);
        let b = run(42, 150);
        assert_eq!(a, b);
        let c = run(43, 150);
        assert_ne!(a, c, "different seeds should explore different mutants");
    }

    #[test]
    fn production_parsers_survive_the_corpus() {
        let report = run(42, 300);
        assert!(report.panics.is_empty(), "{:?}", report.panics);
        // The mutator must exercise both outcomes, or it is too tame /
        // too destructive to mean anything.
        for t in 0..2 {
            assert!(report.rejected[t].1 > 0, "nothing rejected: {report:?}");
        }
        assert!(
            report.accepted[0].1 > 0,
            "no mutant stayed valid JSON: {report:?}"
        );
    }

    #[test]
    fn a_panicking_parser_is_caught() {
        let bomb = |s: &str| -> bool {
            if s.contains('7') {
                panic!("boom on digit");
            }
            true
        };
        let report = run_targets(42, 60, &[("bomb", &bomb)]);
        assert!(
            !report.panics.is_empty(),
            "the corpus is full of digits; the bomb must trip"
        );
        assert!(report.panics[0].contains("boom on digit"));
    }

    #[test]
    fn corpus_keeps_the_regression_cases() {
        let c = corpus();
        assert!(c.iter().any(|s| s.contains(r"\uD800")));
        assert!(c.iter().any(|s| s.contains("1e999")));
        assert!(c.iter().any(|s| s.starts_with("[[")));
    }
}
