//! Property-based tests on the six filters: invariances the paper's
//! methodology implies but never states.

use proptest::prelude::*;
use remote_peering::filters::{apply, AnalyzedInterface, Discard, FilterConfig};
use remote_peering::probe::{InterfaceSamples, Sample};
use rp_ixp::registry::ListingEntry;
use rp_ixp::LgOperator;
use rp_types::{Asn, SimTime};

fn samples_from(replies: &[(f64, u8)], second_lg: Option<&[(f64, u8)]>) -> InterfaceSamples {
    let mk = |v: &[(f64, u8)]| -> Vec<Sample> {
        v.iter()
            .enumerate()
            .map(|(k, (rtt, ttl))| Sample {
                sent_at: SimTime(k as u64 * 60_000_000_000),
                rtt_ms: *rtt,
                ttl: *ttl,
            })
            .collect()
    };
    let mut per_lg = vec![(LgOperator::Pch, mk(replies))];
    if let Some(second) = second_lg {
        per_lg.push((LgOperator::RipeNcc, mk(second)));
    }
    InterfaceSamples {
        ip: "10.0.2.2".parse().unwrap(),
        per_lg,
        unanswered: vec![],
    }
}

fn entry() -> ListingEntry {
    ListingEntry {
        ip: "10.0.2.2".parse().unwrap(),
        asns: vec![Asn(64500)],
    }
}

fn arb_replies() -> impl Strategy<Value = Vec<(f64, u8)>> {
    proptest::collection::vec(
        (
            0.1f64..300.0,
            prop_oneof![Just(64u8), Just(255u8), Just(254u8), Just(128u8)],
        ),
        0..60,
    )
}

proptest! {
    #[test]
    fn verdict_is_invariant_under_reply_order(mut replies in arb_replies()) {
        let cfg = FilterConfig::default();
        let a = apply(&samples_from(&replies, None), &entry(), &cfg);
        replies.reverse();
        let b = apply(&samples_from(&replies, None), &entry(), &cfg);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.min_rtt_ms, y.min_rtt_ms);
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            other => prop_assert!(false, "order changed the verdict: {other:?}"),
        }
    }

    #[test]
    fn analyzed_min_is_the_true_minimum(replies in arb_replies()) {
        let cfg = FilterConfig::default();
        if let Ok(AnalyzedInterface { min_rtt_ms, .. }) =
            apply(&samples_from(&replies, None), &entry(), &cfg)
        {
            let true_min = replies.iter().map(|(r, _)| *r).fold(f64::INFINITY, f64::min);
            prop_assert_eq!(min_rtt_ms, true_min);
        }
    }

    #[test]
    fn duplicating_a_healthy_reply_never_flips_accept_to_reject(
        rtt in 0.5f64..5.0,
        n in 8usize..30,
    ) {
        // A clean interface (uniform TTL, tight RTTs) must stay accepted as
        // replies accumulate — the filters are monotone in evidence for
        // well-behaved interfaces.
        let cfg = FilterConfig::default();
        let base: Vec<(f64, u8)> = (0..n).map(|k| (rtt + 0.01 * k as f64, 255)).collect();
        let first = apply(&samples_from(&base, None), &entry(), &cfg);
        prop_assert!(first.is_ok());
        let mut more = base.clone();
        more.extend_from_slice(&base);
        let second = apply(&samples_from(&more, None), &entry(), &cfg);
        prop_assert!(second.is_ok());
    }

    #[test]
    fn mixed_ttls_always_reject(replies in arb_replies()) {
        let cfg = FilterConfig::default();
        let distinct: std::collections::HashSet<u8> =
            replies.iter().map(|(_, t)| *t).collect();
        if distinct.len() > 1 && replies.len() >= cfg.min_replies_per_lg {
            let outcome = apply(&samples_from(&replies, None), &entry(), &cfg);
            prop_assert_eq!(outcome, Err(Discard::TtlSwitch));
        }
    }

    #[test]
    fn lg_agreement_is_symmetric(
        a in proptest::collection::vec((0.5f64..50.0,), 8..20),
        b in proptest::collection::vec((0.5f64..50.0,), 8..20),
    ) {
        let cfg = FilterConfig::default();
        let ra: Vec<(f64, u8)> = a.iter().map(|(r,)| (*r, 255)).collect();
        let rb: Vec<(f64, u8)> = b.iter().map(|(r,)| (*r, 255)).collect();
        let ab = apply(&samples_from(&ra, Some(&rb)), &entry(), &cfg);
        let ba = apply(&samples_from(&rb, Some(&ra)), &entry(), &cfg);
        // The LG-consistency verdict cannot depend on which operator is
        // listed first.
        prop_assert_eq!(ab.is_ok(), ba.is_ok());
        if let (Err(x), Err(y)) = (&ab, &ba) {
            prop_assert_eq!(x, y);
        }
    }
}
