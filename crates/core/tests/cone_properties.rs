//! Property tests for [`OffloadStudy::reachable_cone`] and the offload
//! potential: monotonicity in the reached-IXP set, for every peer group,
//! plus exact agreement between the memoized cone cache and the uncached
//! reference computation.
//!
//! The world and study are built once behind `OnceLock`s — each generated
//! case only runs set algebra, keeping the property sweep fast.

use proptest::prelude::*;
use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};
use rp_types::IxpId;
use std::sync::OnceLock;

static WORLD: OnceLock<World> = OnceLock::new();

fn study() -> OffloadStudy<'static> {
    OffloadStudy::new(WORLD.get_or_init(|| World::build(&WorldConfig::test_scale(77))))
}

static STUDY: OnceLock<OffloadStudy<'static>> = OnceLock::new();

fn shared_study() -> &'static OffloadStudy<'static> {
    STUDY.get_or_init(study)
}

fn ixp_count() -> usize {
    WORLD
        .get_or_init(|| World::build(&WorldConfig::test_scale(77)))
        .scene
        .ixps
        .len()
}

/// Dedup and bound a generated position list into a concrete IXP set.
fn to_ixps(positions: &[usize]) -> Vec<IxpId> {
    let n = ixp_count();
    let mut out: Vec<IxpId> = Vec::new();
    for &p in positions {
        let id = IxpId((p % n) as u32);
        if !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adding_an_ixp_never_shrinks_the_cone(
        positions in proptest::collection::vec(0usize..64, 0..6),
        extra in 0usize..64,
    ) {
        let study = shared_study();
        let base = to_ixps(&positions);
        let extra = IxpId((extra % ixp_count()) as u32);
        let mut larger = base.clone();
        if !larger.contains(&extra) {
            larger.push(extra);
        }
        for group in PeerGroup::ALL {
            let small = study.reachable_cone(&base, group);
            let big = study.reachable_cone(&larger, group);
            for net in small.iter() {
                prop_assert!(
                    big.contains(net),
                    "{group:?}: {net} fell out of the cone when adding {extra}"
                );
            }
            prop_assert!(big.count() >= small.count());
        }
    }

    #[test]
    fn potential_is_non_decreasing_in_the_ixp_set(
        positions in proptest::collection::vec(0usize..64, 0..6),
        extra in 0usize..64,
    ) {
        let study = shared_study();
        let base = to_ixps(&positions);
        let extra = IxpId((extra % ixp_count()) as u32);
        let mut larger = base.clone();
        if !larger.contains(&extra) {
            larger.push(extra);
        }
        for group in PeerGroup::ALL {
            let (i1, o1) = study.potential(&base, group);
            let (i2, o2) = study.potential(&larger, group);
            prop_assert!(
                i2.0 >= i1.0 - 1e-9,
                "{group:?}: inbound potential shrank {i1} -> {i2}"
            );
            prop_assert!(
                o2.0 >= o1.0 - 1e-9,
                "{group:?}: outbound potential shrank {o1} -> {o2}"
            );
        }
    }

    #[test]
    fn cone_cache_matches_uncached_reference(
        positions in proptest::collection::vec(0usize..64, 0..6),
    ) {
        let study = shared_study();
        let ixps = to_ixps(&positions);
        for group in PeerGroup::ALL {
            prop_assert_eq!(
                study.reachable_cone(&ixps, group),
                study.reachable_cone_uncached(&ixps, group)
            );
        }
    }

    #[test]
    fn peer_groups_nest_for_any_ixp_set(
        positions in proptest::collection::vec(0usize..64, 1..6),
    ) {
        // Widening the peer group can only widen the cone: each group's
        // member set at every IXP contains the previous group's.
        let study = shared_study();
        let ixps = to_ixps(&positions);
        let mut last = 0usize;
        for group in PeerGroup::ALL {
            let count = study.reachable_cone(&ixps, group).count();
            prop_assert!(
                count >= last,
                "{group:?} shrank the cone: {count} < {last}"
            );
            last = count;
        }
    }
}
