//! Property tests for [`remote_peering::fork`]: randomized
//! fork/mutate/drop interleavings never alias mutable state.
//!
//! The harness interprets a generated op list over a small population of
//! live forks of one shared parent. After every interleaving:
//!
//! * the parent's scene bytes are exactly what they were before any fork
//!   existed (child mutations never write through);
//! * every surviving fork equals a from-scratch replay of its own delta
//!   log onto a parent clone, byte for byte;
//! * per-IXP instances are shared with the parent exactly when the fork's
//!   log never touched them (copy-on-write copies all of what it writes
//!   and nothing else);
//! * fork keys are content-addressed: re-applying the same log to a fresh
//!   fork reproduces the same fingerprint.
//!
//! A second property pins the in-place path: mutating a clone directly
//! still requires — and gets — a fresh [`World::mark_mutated`] nonce, so
//! in-place mutants can never alias the pristine world (or each other) in
//! the probe memo.

use proptest::prelude::*;
use remote_peering::fork::{apply_delta_in_place, Delta, WorldFork};
use remote_peering::memo;
use remote_peering::world::{World, WorldConfig};
use rp_ixp::model::{
    Access, IxpInstance, LgOperator, ListingInfo, MemberInterface, ResponderProfile,
};
use rp_types::{IxpId, NetworkId};
use std::collections::BTreeSet;
use std::sync::OnceLock;

static WORLD: OnceLock<(World, u64)> = OnceLock::new();

/// The shared parent world plus its pristine scene fingerprint, captured
/// before any test forks it.
fn parent() -> &'static (World, u64) {
    WORLD.get_or_init(|| {
        let w = World::build(&WorldConfig::test_scale(77));
        let fp = memo::fingerprint(&w.scene);
        (w, fp)
    })
}

/// An unlisted direct member for the next slot of `ixp`.
fn new_member(ixp: IxpId, slot: u32) -> MemberInterface {
    MemberInterface {
        network: NetworkId(0),
        ip: IxpInstance::ip_for_slot(ixp, slot),
        access: Access::Direct {
            colo_delay_ms: 0.3,
            site: 0,
        },
        profile: ResponderProfile::default(),
        listing: ListingInfo {
            listed: false,
            identifiable: false,
            asn_change: false,
        },
    }
}

/// Build a valid delta against `w`'s *current* state (slots in range,
/// removes only from non-empty IXPs). `None` when the generated kind has
/// no valid target — the interpreter just skips the op.
fn make_delta(w: &World, ixp_sel: u8, slot_sel: u8, kind: u8) -> Option<Delta> {
    let studied = w.studied_ixps();
    let ixp = studied[ixp_sel as usize % studied.len()];
    let members = w.scene.ixp(ixp).members.len();
    let slot = |n: usize| (slot_sel as usize % n) as u32;
    Some(match kind % 6 {
        0 => Delta::MemberAdd {
            ixp,
            member: new_member(ixp, members as u32),
        },
        1 if members > 0 => Delta::MemberRemove { ixp },
        2 if members > 0 => Delta::RowStale {
            ixp,
            slot: slot(members),
        },
        3 => Delta::LgDrop {
            ixp,
            keep: &[LgOperator::Pch],
        },
        4 if members > 0 => Delta::Pathology {
            ixp,
            slot: slot(members),
            congested_extra_ms: 2.0,
            congested_drop: 0.25,
        },
        5 if members > 0 => Delta::PortUpgrade {
            ixp,
            slot: slot(members),
            delay_ms: 0.09,
        },
        _ => None?,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_forks_never_alias_mutable_state(
        // (op, target, ixp, slot, kind): op 0 forks, 1 mutates, 2 drops.
        ops in proptest::collection::vec(
            (0u8..3, any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..24,
        ),
    ) {
        let (w, pristine_scene) = parent();
        let mut forks: Vec<WorldFork> = Vec::new();
        for &(op, target, ixp_sel, slot_sel, kind) in &ops {
            match op {
                0 if forks.len() < 4 => forks.push(w.fork()),
                1 if !forks.is_empty() => {
                    let idx = target as usize % forks.len();
                    let f = &mut forks[idx];
                    if let Some(d) = make_delta(f.world(), ixp_sel, slot_sel, kind) {
                        f.apply(d);
                    }
                }
                2 if !forks.is_empty() => {
                    let idx = target as usize % forks.len();
                    drop(forks.swap_remove(idx));
                }
                _ => {}
            }
            // The parent never changes, no matter how the children churn.
            prop_assert_eq!(memo::fingerprint(&w.scene), *pristine_scene);
        }

        for f in &forks {
            // Every surviving fork is exactly its own log replayed onto a
            // parent clone.
            let mut replay = w.clone();
            for d in f.deltas() {
                apply_delta_in_place(&mut replay, d);
            }
            prop_assert_eq!(
                memo::fingerprint(&f.world().scene),
                memo::fingerprint(&replay.scene),
                "fork drifted from its own delta log"
            );
            // Copy-on-write copies what the log touched and nothing else.
            let touched: BTreeSet<IxpId> = f.deltas().iter().map(|d| d.touches()).collect();
            prop_assert_eq!(&touched, f.dirty_ixps());
            for id in w.studied_ixps() {
                prop_assert_eq!(
                    w.scene.shares_ixp_with(&f.world().scene, id),
                    !touched.contains(&id),
                    "instance sharing must mirror the dirty set at {id:?}"
                );
            }
            // Content-addressed keys: the same log on a fresh fork lands
            // on the same fingerprint.
            let mut again = w.fork();
            for d in f.deltas() {
                again.apply(d.clone());
            }
            prop_assert_eq!(again.fingerprint(), f.fingerprint());
            if f.deltas().is_empty() {
                prop_assert_eq!(f.fingerprint(), w.fingerprint());
            } else {
                prop_assert_ne!(f.fingerprint(), w.fingerprint());
            }
        }
    }

    #[test]
    fn mark_mutated_nonce_still_fires_on_in_place_paths(
        ixp_sel in any::<u8>(),
        slot_sel in any::<u8>(),
        kind in any::<u8>(),
    ) {
        let (w, pristine_scene) = parent();
        let Some(d) = make_delta(w, ixp_sel, slot_sel, kind) else {
            return;
        };
        let mut a = w.clone();
        let mut b = w.clone();
        apply_delta_in_place(&mut a, &d);
        a.mark_mutated();
        apply_delta_in_place(&mut b, &d);
        b.mark_mutated();
        // Same bytes, but in-place mutants may never alias the pristine
        // world — or each other — in the probe memo: nonces are one-shot.
        prop_assert_eq!(
            memo::fingerprint(&a.scene),
            memo::fingerprint(&b.scene)
        );
        prop_assert_ne!(a.fingerprint(), w.fingerprint());
        prop_assert_ne!(b.fingerprint(), w.fingerprint());
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
        // And the clones wrote nothing through to the parent.
        prop_assert_eq!(memo::fingerprint(&w.scene), *pristine_scene);
    }
}
