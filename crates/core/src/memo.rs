//! Content-addressed memoization of world builds and campaign probes.
//!
//! Building a [`World`] and probing it are by far the
//! most expensive steps in the pipeline, and several callers repeat them
//! with identical inputs: `repro check` builds the same world for its clean
//! and faulted arms, the sweep engine re-derives the same replicate seeds
//! across presets, and `repro all` re-enters the detection report per
//! experiment group. Both artifacts are pure functions of their
//! configuration, so they are cached here under a *content address*: the
//! FNV-64 fingerprint of the configuration's canonical JSON encoding.
//!
//! Keying rules:
//!
//! - A world's key is the fingerprint of its
//!   [`WorldConfig`](crate::world::WorldConfig)
//!   (which embeds the seed, so "same knobs, different seed" never
//!   collides by construction).
//! - A probe set's key is the pair `(world key, campaign fingerprint)`.
//! - Mutating a cached world in place (fault injection, invariant probes)
//!   must go through [`World::mark_mutated`],
//!   which swaps the key for a process-unique nonce: the mutated world can
//!   still be probed, but its results are filed under the nonce and can
//!   never be confused with the pristine build.
//!
//! The probe cache is a small bounded LRU (eight entries — enough to keep
//! a sweep preset's replicate set resident) guarded by a plain mutex. The
//! world cache is the **world pool**: the same LRU discipline, but with a
//! configurable entry cap and an optional byte budget
//! ([`configure_world_pool`]) so a long-running `repro serve` process can
//! keep many warm worlds resident without unbounded growth. Eviction is a
//! pure performance policy — results are identical with a cold pool. The
//! lock is **not** held while building or probing: two threads racing on
//! the same key may both compute, but the results are deterministic and
//! identical, so the loser's copy is simply dropped.

use crate::probe::InterfaceSamples;
use crate::world::World;
use rp_types::IxpId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Raw per-IXP campaign output, as produced by
/// [`Campaign::probe_all`](crate::campaign::Campaign::probe_all).
pub type ProbeSet = Vec<(IxpId, Vec<InterfaceSamples>)>;

/// Entries kept per cache. A sweep preset probes at most a handful of
/// distinct worlds per replicate seed; eight slots keep a full replicate
/// set resident without letting a long campaign pin unbounded memory.
const CACHE_CAP: usize = 8;

/// FNV-1a 64 fingerprint of a configuration's `Debug` encoding.
///
/// The derived `Debug` output is canonical enough here: the config structs
/// are plain field structs of scalars, strings, and nested config structs,
/// so equal values render identical text (floats included — Rust's float
/// formatting is the exact shortest round-trip form). Only ever hash plain
/// data this way; anything whose `Debug` prints addresses or other
/// run-varying state would break the content addressing.
pub fn fingerprint<T: std::fmt::Debug>(value: &T) -> u64 {
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for &b in s.as_bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    use std::fmt::Write;
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    write!(h, "{value:?}").expect("the FNV sink never errors");
    h.0
}

/// A process-unique key that can never hit the cache again.
///
/// The high bit tags nonces apart from JSON fingerprints in debug output;
/// correctness only needs the counter's uniqueness.
pub(crate) fn mutation_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(1);
    (1 << 63) | NONCE.fetch_add(1, Ordering::Relaxed)
}

/// A bounded LRU of `(key, shared value)` pairs behind a mutex. The back
/// of the deque is most-recently-used; eviction pops the front.
type LruCache<K, V> = Mutex<VecDeque<(K, Arc<V>)>>;

/// The world pool: LRU entries annotated with their estimated resident
/// size so the byte budget can evict by weight, not just count.
struct WorldPool {
    entries: Mutex<VecDeque<(u64, Arc<World>, u64)>>,
    /// Entry cap (always >= 1).
    max_entries: AtomicUsize,
    /// Byte budget; 0 means "entry cap only".
    max_bytes: AtomicU64,
}

fn world_pool() -> &'static WorldPool {
    static POOL: OnceLock<WorldPool> = OnceLock::new();
    POOL.get_or_init(|| WorldPool {
        entries: Mutex::new(VecDeque::new()),
        max_entries: AtomicUsize::new(CACHE_CAP),
        max_bytes: AtomicU64::new(0),
    })
}

/// Configure the world pool's bounds: an entry cap and an optional byte
/// budget over [`World::approx_bytes`] estimates. The default is the
/// eight-entry cap with no byte budget — right for one-shot CLI runs;
/// `repro serve` raises the entry cap and sets a budget so a long-lived
/// process bounds its resident set by memory, not by a guess at how many
/// distinct configs its clients rotate through. Shrinking the bounds
/// evicts immediately (oldest first). Purely a performance knob: cached
/// and freshly built worlds are bit-identical.
pub fn configure_world_pool(max_entries: usize, max_bytes: Option<u64>) {
    let pool = world_pool();
    pool.max_entries
        .store(max_entries.max(1), Ordering::Relaxed);
    pool.max_bytes
        .store(max_bytes.unwrap_or(0), Ordering::Relaxed);
    let mut entries = pool.entries.lock().expect("memo cache lock");
    evict_to_bounds(pool, &mut entries);
}

/// Resident world-pool load: `(entries, estimated bytes)`.
pub fn world_pool_stats() -> (usize, u64) {
    let entries = world_pool().entries.lock().expect("memo cache lock");
    let bytes = entries.iter().map(|(_, _, b)| b).sum();
    (entries.len(), bytes)
}

/// Look up a resident world by content address without building on a
/// miss. The pool's entries double as *snapshot parents* for
/// [`World::fork`]: a long-running server job that wants to perturb a
/// hot world forks the pooled snapshot (refcount bumps) instead of
/// rebuilding, and the fork's incremental probe finds the parent's probe
/// set under the same address. A hit counts as a use (moves the entry to
/// most-recently-used).
pub fn world_snapshot(fp: u64) -> Option<Arc<World>> {
    let pool = world_pool();
    let mut entries = pool.entries.lock().expect("memo cache lock");
    let pos = entries.iter().position(|(k, _, _)| *k == fp)?;
    let entry = entries.remove(pos).expect("position came from this deque");
    let world = entry.1.clone();
    entries.push_back(entry);
    Some(world)
}

/// Drop least-recently-used entries until both bounds hold. The byte
/// budget never evicts the last entry: a single world larger than the
/// budget still caches (evicting it would just thrash rebuilds).
fn evict_to_bounds(pool: &WorldPool, entries: &mut VecDeque<(u64, Arc<World>, u64)>) {
    let max_entries = pool.max_entries.load(Ordering::Relaxed).max(1);
    let max_bytes = pool.max_bytes.load(Ordering::Relaxed);
    let mut total: u64 = entries.iter().map(|(_, _, b)| b).sum();
    while entries.len() > max_entries || (max_bytes > 0 && total > max_bytes && entries.len() > 1) {
        if let Some((_, _, b)) = entries.pop_front() {
            total -= b;
            rp_obs::counter!("core.memo.world_evict").add(1);
        }
    }
    rp_obs::gauge!("core.memo.world_bytes").record_max(total);
}

fn probe_cache() -> &'static LruCache<(u64, u64), ProbeSet> {
    static CACHE: OnceLock<LruCache<(u64, u64), ProbeSet>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Look `key` up in `cache`, computing (outside the lock) and inserting on
/// a miss; hits move to the back (most-recently-used). On a concurrent
/// double-compute the first inserter wins and the second copy is dropped —
/// both are deterministic, so either is correct.
fn get_or_insert<K: Eq + Copy, V>(
    cache: &LruCache<K, V>,
    key: K,
    compute: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(hit) = lru_find(&mut cache.lock().expect("memo cache lock"), key) {
        return hit;
    }
    let value = Arc::new(compute());
    let mut c = cache.lock().expect("memo cache lock");
    if let Some(raced) = lru_find(&mut c, key) {
        return raced;
    }
    while c.len() >= CACHE_CAP {
        c.pop_front();
    }
    c.push_back((key, value.clone()));
    value
}

/// Find `key`, moving its entry to the most-recently-used position.
fn lru_find<K: Eq + Copy, V>(entries: &mut VecDeque<(K, Arc<V>)>, key: K) -> Option<Arc<V>> {
    let pos = entries.iter().position(|(k, _)| *k == key)?;
    let entry = entries.remove(pos).expect("position came from this deque");
    let value = entry.1.clone();
    entries.push_back(entry);
    Some(value)
}

/// Fetch or build the world keyed `fp` (the fingerprint of its config).
pub(crate) fn world_cached(fp: u64, build: impl FnOnce() -> World) -> Arc<World> {
    let pool = world_pool();
    {
        let mut entries = pool.entries.lock().expect("memo cache lock");
        if let Some(pos) = entries.iter().position(|(k, _, _)| *k == fp) {
            let entry = entries.remove(pos).expect("position came from this deque");
            let world = entry.1.clone();
            entries.push_back(entry);
            rp_obs::counter!("core.memo.world_hit").add(1);
            return world;
        }
    }
    let world = Arc::new(build());
    let bytes = world.approx_bytes();
    let mut entries = pool.entries.lock().expect("memo cache lock");
    if let Some(pos) = entries.iter().position(|(k, _, _)| *k == fp) {
        let entry = entries.remove(pos).expect("position came from this deque");
        let raced = entry.1.clone();
        entries.push_back(entry);
        rp_obs::counter!("core.memo.world_hit").add(1);
        return raced;
    }
    entries.push_back((fp, world.clone(), bytes));
    evict_to_bounds(pool, &mut entries);
    drop(entries);
    rp_obs::counter!("core.memo.world_miss").add(1);
    world
}

/// Look up the probe set keyed `(world key, campaign key)` without
/// computing on a miss. This is how a fork finds its parent's probe set
/// to seed [`Campaign::probe_all_incremental`](crate::Campaign::probe_all_incremental):
/// the world pool keeps snapshot parents resident across jobs, and their
/// probe sets sit here under the parent's content address.
pub(crate) fn probes_lookup(key: (u64, u64)) -> Option<Arc<ProbeSet>> {
    lru_find(&mut probe_cache().lock().expect("memo cache lock"), key)
}

/// Fetch or compute the probe set keyed `(world key, campaign key)`.
pub(crate) fn probes_cached(key: (u64, u64), probe: impl FnOnce() -> ProbeSet) -> Arc<ProbeSet> {
    let mut missed = false;
    let probes = get_or_insert(probe_cache(), key, || {
        missed = true;
        probe()
    });
    if missed {
        rp_obs::counter!("core.memo.probe_miss").add(1);
    } else {
        rp_obs::counter!("core.memo.probe_hit").add(1);
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::world::WorldConfig;

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let a = WorldConfig::test_scale(7);
        let b = WorldConfig::test_scale(7);
        let c = WorldConfig::test_scale(8);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn same_config_shares_one_world_build() {
        let cfg = WorldConfig::test_scale(4201);
        let a = World::build_cached(&cfg);
        let b = World::build_cached(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second build should be a cache hit");
    }

    #[test]
    fn cached_world_equals_direct_build() {
        let cfg = WorldConfig::test_scale(4202);
        let cached = World::build_cached(&cfg);
        let direct = World::build(&cfg);
        assert_eq!(cached.vantage, direct.vantage);
        assert_eq!(cached.contributions.inbound, direct.contributions.inbound);
        assert_eq!(cached.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn probe_sets_are_shared_per_world_and_campaign() {
        let cfg = WorldConfig::test_scale(4203);
        let world = World::build_cached(&cfg);
        let campaign = Campaign::default_paper();
        let a = campaign.probe_all_cached(&world);
        let b = campaign.probe_all_cached(&world);
        assert!(Arc::ptr_eq(&a, &b), "second probe should be a cache hit");
        assert_eq!(*a, campaign.probe_all(&world));
    }

    #[test]
    fn mutation_invalidates_the_key() {
        let cfg = WorldConfig::test_scale(4204);
        let pristine = World::build_cached(&cfg);
        let mut mutated = (*pristine).clone();
        let before = mutated.fingerprint();
        mutated.mark_mutated();
        assert_ne!(mutated.fingerprint(), before);
        assert_ne!(mutated.fingerprint(), pristine.fingerprint());
        // And a re-mark moves the key again: each mutation event is unique.
        let first = mutated.fingerprint();
        mutated.mark_mutated();
        assert_ne!(mutated.fingerprint(), first);
    }

    #[test]
    fn lru_hit_protects_an_entry_from_eviction() {
        let cache: Mutex<VecDeque<(u64, Arc<u64>)>> = Mutex::new(VecDeque::new());
        for k in 0..CACHE_CAP as u64 {
            get_or_insert(&cache, k, || k);
        }
        // Touching key 0 makes it most-recently-used, so the next insert
        // evicts key 1 instead.
        let hit = get_or_insert(&cache, 0, || 999);
        assert_eq!(*hit, 0, "must be a hit, not a recompute");
        get_or_insert(&cache, 100, || 100);
        let c = cache.lock().unwrap();
        assert!(c.iter().any(|(k, _)| *k == 0), "recently used key survives");
        assert!(
            !c.iter().any(|(k, _)| *k == 1),
            "oldest untouched key evicts"
        );
    }

    #[test]
    fn byte_budget_evicts_oldest_first_but_keeps_the_last_entry() {
        let world = Arc::new(World::build(&WorldConfig::test_scale(4301)));
        assert!(world.approx_bytes() > 0);
        let pool = WorldPool {
            entries: Mutex::new(VecDeque::new()),
            max_entries: AtomicUsize::new(8),
            max_bytes: AtomicU64::new(0),
        };
        let mut e = pool.entries.lock().unwrap();
        for k in 0..4u64 {
            e.push_back((k, world.clone(), 100));
        }
        // No budget: everything under the entry cap stays.
        evict_to_bounds(&pool, &mut e);
        assert_eq!(e.len(), 4);
        // 250-byte budget: the two oldest 100-byte entries go.
        pool.max_bytes.store(250, Ordering::Relaxed);
        evict_to_bounds(&pool, &mut e);
        assert_eq!(e.len(), 2);
        assert_eq!(e.front().unwrap().0, 2);
        // A budget smaller than any single entry keeps the last survivor:
        // evicting it would only thrash rebuilds.
        pool.max_bytes.store(10, Ordering::Relaxed);
        evict_to_bounds(&pool, &mut e);
        assert_eq!(e.len(), 1);
        assert_eq!(e.front().unwrap().0, 3);
    }

    #[test]
    fn caches_stay_bounded_and_evict_oldest_first() {
        let cache: Mutex<VecDeque<(u64, Arc<u64>)>> = Mutex::new(VecDeque::new());
        for k in 0..(3 * CACHE_CAP as u64) {
            let v = get_or_insert(&cache, k, || k * 10);
            assert_eq!(*v, k * 10);
        }
        let c = cache.lock().unwrap();
        assert_eq!(c.len(), CACHE_CAP);
        // FIFO: only the newest CACHE_CAP keys survive.
        let oldest_kept = 3 * CACHE_CAP as u64 - CACHE_CAP as u64;
        assert!(c.iter().all(|(k, _)| *k >= oldest_kept));
    }
}
