//! Content-addressed memoization of world builds and campaign probes.
//!
//! Building a [`World`] and probing it are by far the
//! most expensive steps in the pipeline, and several callers repeat them
//! with identical inputs: `repro check` builds the same world for its clean
//! and faulted arms, the sweep engine re-derives the same replicate seeds
//! across presets, and `repro all` re-enters the detection report per
//! experiment group. Both artifacts are pure functions of their
//! configuration, so they are cached here under a *content address*: the
//! FNV-64 fingerprint of the configuration's canonical JSON encoding.
//!
//! Keying rules:
//!
//! - A world's key is the fingerprint of its
//!   [`WorldConfig`](crate::world::WorldConfig)
//!   (which embeds the seed, so "same knobs, different seed" never
//!   collides by construction).
//! - A probe set's key is the pair `(world key, campaign fingerprint)`.
//! - Mutating a cached world in place (fault injection, invariant probes)
//!   must go through [`World::mark_mutated`],
//!   which swaps the key for a process-unique nonce: the mutated world can
//!   still be probed, but its results are filed under the nonce and can
//!   never be confused with the pristine build.
//!
//! The caches are small bounded FIFOs (eight entries each — enough to keep
//! a sweep preset's replicate set resident) guarded by plain mutexes. The
//! lock is **not** held while building or probing: two threads racing on
//! the same key may both compute, but the results are deterministic and
//! identical, so the loser's copy is simply dropped.

use crate::probe::InterfaceSamples;
use crate::world::World;
use rp_types::IxpId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Raw per-IXP campaign output, as produced by
/// [`Campaign::probe_all`](crate::campaign::Campaign::probe_all).
pub type ProbeSet = Vec<(IxpId, Vec<InterfaceSamples>)>;

/// Entries kept per cache. A sweep preset probes at most a handful of
/// distinct worlds per replicate seed; eight slots keep a full replicate
/// set resident without letting a long campaign pin unbounded memory.
const CACHE_CAP: usize = 8;

/// FNV-1a 64 fingerprint of a configuration's `Debug` encoding.
///
/// The derived `Debug` output is canonical enough here: the config structs
/// are plain field structs of scalars, strings, and nested config structs,
/// so equal values render identical text (floats included — Rust's float
/// formatting is the exact shortest round-trip form). Only ever hash plain
/// data this way; anything whose `Debug` prints addresses or other
/// run-varying state would break the content addressing.
pub fn fingerprint<T: std::fmt::Debug>(value: &T) -> u64 {
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for &b in s.as_bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
            Ok(())
        }
    }
    use std::fmt::Write;
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    write!(h, "{value:?}").expect("the FNV sink never errors");
    h.0
}

/// A process-unique key that can never hit the cache again.
///
/// The high bit tags nonces apart from JSON fingerprints in debug output;
/// correctness only needs the counter's uniqueness.
pub(crate) fn mutation_nonce() -> u64 {
    static NONCE: AtomicU64 = AtomicU64::new(1);
    (1 << 63) | NONCE.fetch_add(1, Ordering::Relaxed)
}

/// A bounded FIFO of `(key, shared value)` pairs behind a mutex.
type FifoCache<K, V> = Mutex<VecDeque<(K, Arc<V>)>>;

fn world_cache() -> &'static FifoCache<u64, World> {
    static CACHE: OnceLock<FifoCache<u64, World>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(VecDeque::new()))
}

fn probe_cache() -> &'static FifoCache<(u64, u64), ProbeSet> {
    static CACHE: OnceLock<FifoCache<(u64, u64), ProbeSet>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Look `key` up in `cache`, computing (outside the lock) and inserting on
/// a miss. On a concurrent double-compute the first inserter wins and the
/// second copy is dropped — both are deterministic, so either is correct.
fn get_or_insert<K: Eq + Copy, V>(
    cache: &FifoCache<K, V>,
    key: K,
    compute: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(hit) = cache
        .lock()
        .expect("memo cache lock")
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
    {
        return hit;
    }
    let value = Arc::new(compute());
    let mut c = cache.lock().expect("memo cache lock");
    if let Some(raced) = c.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone()) {
        return raced;
    }
    while c.len() >= CACHE_CAP {
        c.pop_front();
    }
    c.push_back((key, value.clone()));
    value
}

/// Fetch or build the world keyed `fp` (the fingerprint of its config).
pub(crate) fn world_cached(fp: u64, build: impl FnOnce() -> World) -> Arc<World> {
    let mut missed = false;
    let world = get_or_insert(world_cache(), fp, || {
        missed = true;
        build()
    });
    if missed {
        rp_obs::counter!("core.memo.world_miss").add(1);
    } else {
        rp_obs::counter!("core.memo.world_hit").add(1);
    }
    world
}

/// Fetch or compute the probe set keyed `(world key, campaign key)`.
pub(crate) fn probes_cached(key: (u64, u64), probe: impl FnOnce() -> ProbeSet) -> Arc<ProbeSet> {
    let mut missed = false;
    let probes = get_or_insert(probe_cache(), key, || {
        missed = true;
        probe()
    });
    if missed {
        rp_obs::counter!("core.memo.probe_miss").add(1);
    } else {
        rp_obs::counter!("core.memo.probe_hit").add(1);
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::world::WorldConfig;

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let a = WorldConfig::test_scale(7);
        let b = WorldConfig::test_scale(7);
        let c = WorldConfig::test_scale(8);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn same_config_shares_one_world_build() {
        let cfg = WorldConfig::test_scale(4201);
        let a = World::build_cached(&cfg);
        let b = World::build_cached(&cfg);
        assert!(Arc::ptr_eq(&a, &b), "second build should be a cache hit");
    }

    #[test]
    fn cached_world_equals_direct_build() {
        let cfg = WorldConfig::test_scale(4202);
        let cached = World::build_cached(&cfg);
        let direct = World::build(&cfg);
        assert_eq!(cached.vantage, direct.vantage);
        assert_eq!(cached.contributions.inbound, direct.contributions.inbound);
        assert_eq!(cached.fingerprint(), direct.fingerprint());
    }

    #[test]
    fn probe_sets_are_shared_per_world_and_campaign() {
        let cfg = WorldConfig::test_scale(4203);
        let world = World::build_cached(&cfg);
        let campaign = Campaign::default_paper();
        let a = campaign.probe_all_cached(&world);
        let b = campaign.probe_all_cached(&world);
        assert!(Arc::ptr_eq(&a, &b), "second probe should be a cache hit");
        assert_eq!(*a, campaign.probe_all(&world));
    }

    #[test]
    fn mutation_invalidates_the_key() {
        let cfg = WorldConfig::test_scale(4204);
        let pristine = World::build_cached(&cfg);
        let mut mutated = (*pristine).clone();
        let before = mutated.fingerprint();
        mutated.mark_mutated();
        assert_ne!(mutated.fingerprint(), before);
        assert_ne!(mutated.fingerprint(), pristine.fingerprint());
        // And a re-mark moves the key again: each mutation event is unique.
        let first = mutated.fingerprint();
        mutated.mark_mutated();
        assert_ne!(mutated.fingerprint(), first);
    }

    #[test]
    fn caches_stay_bounded_and_evict_oldest_first() {
        let cache: Mutex<VecDeque<(u64, Arc<u64>)>> = Mutex::new(VecDeque::new());
        for k in 0..(3 * CACHE_CAP as u64) {
            let v = get_or_insert(&cache, k, || k * 10);
            assert_eq!(*v, k * 10);
        }
        let c = cache.lock().unwrap();
        assert_eq!(c.len(), CACHE_CAP);
        // FIFO: only the newest CACHE_CAP keys survive.
        let oldest_kept = 3 * CACHE_CAP as u64 - CACHE_CAP as u64;
        assert!(c.iter().all(|(k, _)| *k >= oldest_kept));
    }
}
