//! The titular claim, quantified: *more peering without Internet
//! flattening*.
//!
//! Internet flattening means fewer intermediary organizations on paths.
//! On layer 3, adopting remote peering looks exactly like direct peering:
//! the transit provider's AS disappears from the path, so AS-level metrics
//! report a flatter Internet. But the layer-2 reality inserts the
//! remote-peering provider (and the IXP operator) as organizations on the
//! very same paths — invisible to traceroute and BGP.
//!
//! This module computes, for the study network's transit traffic, the
//! traffic-weighted mean number of intermediary *organizations* per path
//! under three lenses:
//!
//! 1. **before** — status-quo transit delivery (layer 3 = layer 2: transit
//!    ASes are visible organizations);
//! 2. **after, layer-3 view** — remote peering adopted at the k best IXPs;
//!    paths to covered networks now enter via an IXP peer, bypassing the
//!    transit AS — the view AS-level topologies report;
//! 3. **after, layer-2+3 view** — the same paths, but counting the
//!    organizations the layer-3 view cannot see: the remote-peering
//!    provider carrying the study network's (and possibly the peer's own)
//!    pseudowire, and the IXP operator between them.
//!
//! The paper's argument is the gap between (2) and (3): peering increased,
//! the layer-3 count dropped, and the true organization count did not.

use crate::offload::{OffloadStudy, PeerGroup};
use crate::world::World;
use rp_ixp::model::Access;
use rp_types::{IxpId, NetworkId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Traffic-weighted mean intermediary-organization counts per path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlatteningReport {
    /// Mean organizations per path before adopting remote peering.
    pub before: f64,
    /// Mean after adoption, as a layer-3 (AS-level) topology sees it.
    pub after_layer3: f64,
    /// Mean after adoption, counting layer-2 organizations (remote-peering
    /// providers and IXP operators) on the same paths.
    pub after_layer2_3: f64,
    /// Share of the transit traffic whose path changed (was offloaded).
    pub offloaded_share: f64,
    /// Number of reached IXPs.
    pub reached_ixps: usize,
}

impl FlatteningReport {
    /// The layer-3 illusion: how much flatter the Internet *appears* on
    /// AS-level topologies (positive = flattening).
    pub fn apparent_flattening(&self) -> f64 {
        self.before - self.after_layer3
    }

    /// The real change in intermediary organizations (the paper's point:
    /// approximately zero or negative).
    pub fn real_flattening(&self) -> f64 {
        self.before - self.after_layer2_3
    }
}

/// Count distinct intermediary organizations along a forward AS path
/// (excluding the study network itself and the destination).
fn path_orgs(world: &World, fwd: &[NetworkId], dest: NetworkId) -> usize {
    let mut orgs: Vec<u32> = fwd
        .iter()
        .filter(|&&hop| hop != dest)
        .map(|&hop| world.topology.node(hop).org.0)
        .collect();
    orgs.sort_unstable();
    orgs.dedup();
    // The destination's own organization never counts as an intermediary,
    // even when another of its ASes appears mid-path.
    let dest_org = world.topology.node(dest).org.0;
    orgs.iter().filter(|&&o| o != dest_org).count()
}

/// For every network covered by peering at `ixps`, the entry member it is
/// reached through and the customer-chain depth below that member:
/// a multi-source BFS over customer edges from all reached members.
fn entry_members(
    world: &World,
    study: &OffloadStudy,
    ixps: &[IxpId],
    group: PeerGroup,
) -> HashMap<NetworkId, (NetworkId, IxpId, usize)> {
    let mut entry: HashMap<NetworkId, (NetworkId, IxpId, usize)> = HashMap::new();
    let mut frontier: Vec<(NetworkId, NetworkId, IxpId)> = Vec::new();
    for &ixp in ixps {
        for member in study.members_in_group(ixp, group) {
            if let std::collections::hash_map::Entry::Vacant(slot) = entry.entry(member) {
                slot.insert((member, ixp, 0));
                frontier.push((member, member, ixp));
            }
        }
    }
    let mut depth = 0usize;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for (cur, root, ixp) in frontier {
            for &c in world.topology.customers(cur) {
                if let std::collections::hash_map::Entry::Vacant(slot) = entry.entry(c) {
                    slot.insert((root, ixp, depth));
                    next.push((c, root, ixp));
                }
            }
        }
        frontier = next;
    }
    entry
}

/// Organizations added on layer 2 for one offloaded path: the IXP operator
/// plus the remote-peering provider(s) carrying the study network's and the
/// entry member's attachments.
fn layer2_orgs_on_path(world: &World, ixp: IxpId, member: NetworkId) -> usize {
    // The IXP operator itself is an organization between the peers.
    let mut extra = 1;
    // The study network reaches this (distant) IXP remotely — that is the
    // adoption under analysis — so its remote-peering provider is on every
    // offloaded path.
    extra += 1;
    // If the entry member itself peers remotely at this IXP, its provider
    // is on the path too.
    let inst = world.scene.ixp(ixp);
    if inst
        .members
        .iter()
        .any(|m| m.network == member && matches!(m.access, Access::Remote { .. }))
    {
        extra += 1;
    }
    extra
}

/// Run the flattening analysis: adopt remote peering at the `k` greedily
/// best IXPs for `group`, and compare organization counts per path.
pub fn flattening_analysis(
    world: &World,
    study: &OffloadStudy,
    group: PeerGroup,
    k: usize,
) -> FlatteningReport {
    let steps = study.greedy(group, k);
    let ixps: Vec<IxpId> = steps.iter().map(|s| s.ixp).collect();
    let entry = entry_members(world, study, &ixps, group);

    let mut weighted_before = 0.0;
    let mut weighted_l3 = 0.0;
    let mut weighted_l23 = 0.0;
    let mut total_mass = 0.0;
    let mut offloaded_mass = 0.0;

    for dest in world.topology.ids() {
        let (inb, out) = world.contributions.of(dest);
        let mass = inb.0 + out.0;
        if mass <= 0.0 {
            continue;
        }
        total_mass += mass;
        let Some(fwd) = world.view.forward_path(dest) else {
            continue;
        };
        let orgs_before = path_orgs(world, &fwd, dest) as f64;
        weighted_before += mass * orgs_before;

        match entry.get(&dest) {
            Some(&(member, ixp, _)) => {
                offloaded_mass += mass;
                // New layer-3 path: study network → member → customer chain
                // → dest. Count organizations along it.
                let mut new_path = vec![member];
                // Reconstruct the chain by walking entry depths: cheaper to
                // recount orgs from the member's side — the chain lies
                // inside the member's cone; approximate the path as
                // member → ... → dest with the intermediate organizations
                // of the member chain. Depth d means d inter-AS hops below
                // the member; intermediate ASes share the member's cone.
                // For organization counting we walk providers upward from
                // dest until the member is reached.
                let mut cur = dest;
                let mut chain = Vec::new();
                let mut guard = 0;
                while cur != member && guard < 64 {
                    // Choose the provider that is itself covered with a
                    // smaller depth (BFS parent direction).
                    let parent = world
                        .topology
                        .providers(cur)
                        .iter()
                        .filter_map(|p| entry.get(p).map(|e| (*p, e.2)))
                        .min_by_key(|(_, d)| *d)
                        .map(|(p, _)| p);
                    match parent {
                        Some(p) => {
                            chain.push(p);
                            cur = p;
                        }
                        None => break,
                    }
                    guard += 1;
                }
                new_path.extend(chain);
                new_path.push(dest);
                let l3 = path_orgs(world, &new_path, dest) as f64;
                let l23 = l3 + layer2_orgs_on_path(world, ixp, member) as f64;
                weighted_l3 += mass * l3;
                weighted_l23 += mass * l23;
            }
            None => {
                // Not offloadable: path unchanged; transit organizations
                // are visible on both views.
                weighted_l3 += mass * orgs_before;
                weighted_l23 += mass * orgs_before;
            }
        }
    }

    FlatteningReport {
        before: weighted_before / total_mass.max(1e-12),
        after_layer3: weighted_l3 / total_mass.max(1e-12),
        after_layer2_3: weighted_l23 / total_mass.max(1e-12),
        offloaded_share: offloaded_mass / total_mass.max(1e-12),
        reached_ixps: ixps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn setup() -> World {
        World::build(&WorldConfig::test_scale(88))
    }

    #[test]
    fn remote_peering_flattens_layer3_but_not_layer2() {
        let world = setup();
        let study = OffloadStudy::new(&world);
        let report = flattening_analysis(&world, &study, PeerGroup::All, 5);
        assert!(report.offloaded_share > 0.05, "{}", report.offloaded_share);
        // Layer 3 looks flatter...
        assert!(
            report.apparent_flattening() > 0.0,
            "layer-3 flattening expected: before {} vs after {}",
            report.before,
            report.after_layer3
        );
        // ... but the true organization count does not drop the same way:
        // the layer-2 intermediaries eat (at least most of) the apparent
        // gain. This is the paper's headline separation.
        assert!(
            report.real_flattening() < report.apparent_flattening() * 0.5,
            "real {} vs apparent {}",
            report.real_flattening(),
            report.apparent_flattening()
        );
        assert!(report.after_layer2_3 > report.after_layer3);
    }

    #[test]
    fn no_adoption_changes_nothing() {
        let world = setup();
        let study = OffloadStudy::new(&world);
        let report = flattening_analysis(&world, &study, PeerGroup::All, 0);
        assert_eq!(report.reached_ixps, 0);
        assert_eq!(report.offloaded_share, 0.0);
        assert!((report.before - report.after_layer3).abs() < 1e-9);
        assert!((report.before - report.after_layer2_3).abs() < 1e-9);
    }

    #[test]
    fn more_ixps_flatten_layer3_more() {
        let world = setup();
        let study = OffloadStudy::new(&world);
        let r2 = flattening_analysis(&world, &study, PeerGroup::All, 2);
        let r8 = flattening_analysis(&world, &study, PeerGroup::All, 8);
        assert!(r8.offloaded_share >= r2.offloaded_share);
        assert!(r8.apparent_flattening() >= r2.apparent_flattening() - 1e-9);
    }
}
