//! The probing campaign: section 3.1's measurement method, run against the
//! packet simulator.
//!
//! For each studied IXP the campaign materializes the scene as a real
//! layer-2/3 network — fabric switches (one per site), looking-glass hosts
//! inside the IXP subnet, member routers behind colo cross-connects or
//! remote-peering pseudowires, and the pathology gadgets — then issues LG
//! queries under the paper's constraints:
//!
//! - at most one query per minute per LG server;
//! - a PCH query triggers 5 ping requests, a RIPE NCC query 3;
//! - queries per interface are capped so the per-interface reply maxima
//!   match the paper (54 via PCH, 21 via RIPE NCC);
//! - measurements are spread across the campaign window at different times
//!   of day and days of the week; where an IXP hosts both operators' LG
//!   servers, the two crawls cover different halves of the window (the
//!   independent crawls of the real operators), which is what arms the
//!   LG-consistent filter against epoch-long floor shifts.

use crate::probe::{InterfaceSamples, Sample};
use crate::world::World;
use rand::RngExt;
use rayon::prelude::*;
use rp_ixp::membership::late_epoch_extra_ms;
use rp_ixp::model::{Access, IxpInstance, MemberInterface};
use rp_ixp::LgOperator;
use rp_netsim::{CongestionEpisode, DelayModel, LinkClass, Network, NodeId, RouterBehavior};
use rp_types::geo::WORLD_CITIES;
use rp_types::{seed, IxpId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Result of tracerouting one listed interface from inside the IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerouteResult {
    /// Probed address.
    pub ip: Ipv4Addr,
    /// Ground truth: the interface attaches through a remote-peering
    /// pseudowire.
    pub truly_remote: bool,
    /// Ground truth: the listed address really sits one IP hop behind the
    /// fabric (the registry-stale gadget).
    pub extra_hop: bool,
    /// IP hops traceroute revealed *before* the destination (routers that
    /// answered Time Exceeded).
    pub intermediate_hops: usize,
    /// Whether the destination itself answered.
    pub reached: bool,
}

/// Per-interface minimum RTTs measured by a validation route server
/// (`None` when the interface never answered).
pub type RouteServerMins = Vec<(Ipv4Addr, Option<f64>)>;

/// A materialized IXP scene ready for probing.
struct BuiltIxp {
    net: Network,
    fabrics: Vec<NodeId>,
    lgs: Vec<(LgOperator, NodeId)>,
    /// Listed interfaces in registry order: (scene slot, interface).
    listed: Vec<(u32, MemberInterface)>,
}

/// Campaign parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// LG queries issued per interface from a PCH server (5 pings each).
    pub queries_pch: u32,
    /// LG queries issued per interface from a RIPE NCC server (3 pings
    /// each).
    pub queries_ripe: u32,
    /// Minimum spacing between two queries to the same LG server.
    pub min_query_interval: SimDuration,
    /// Spacing between the pings of one query.
    pub ping_spacing: SimDuration,
    /// Extra pings per interface from the route server during validation
    /// runs (the TorIX cross-check of section 3.3).
    pub route_server_pings: u32,
    /// Optional deterministic fault injection (rp-testkit's harness):
    /// every per-IXP network gets an injector whose stream derives from
    /// this template via `derived("campaign-fault", ixp, 0)`, so the fault
    /// sequence is replayable and independent per IXP. `None` = the clean
    /// campaign.
    pub faults: Option<rp_netsim::FaultConfig>,
    /// Data-plane shards per IXP network. `0` (the default) means one
    /// shard per IXP fabric site, capped at the machine's available cores;
    /// any explicit value is used as-is. Results are bit-identical at
    /// every shard count — the value is pure performance policy, which is
    /// why it may safely default to a machine-dependent core count.
    #[serde(default)]
    pub shards: usize,
}

/// Resolve a requested shard count: `0` = one shard per fabric site,
/// capped at available cores; explicit values pass through (clamped to at
/// least 1 by the simulator).
fn resolve_shards(requested: usize, sites: usize) -> usize {
    match requested {
        0 => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            sites.min(cores).max(1)
        }
        n => n,
    }
}

impl Campaign {
    /// The paper's parameters: enough queries that the per-interface reply
    /// maxima are 54 (PCH: 11 × 5 with one ping typically lost to timing)
    /// and 21 (RIPE NCC: 7 × 3).
    pub fn default_paper() -> Self {
        Campaign {
            queries_pch: 11,
            queries_ripe: 7,
            min_query_interval: SimDuration::from_mins(1),
            ping_spacing: SimDuration::from_secs(1),
            route_server_pings: 8,
            faults: None,
            shards: 0,
        }
    }

    fn queries_for(&self, op: LgOperator) -> u32 {
        match op {
            LgOperator::Pch => self.queries_pch,
            LgOperator::RipeNcc => self.queries_ripe,
        }
    }

    /// Probe one IXP: build its network, run the campaign window, collect
    /// per-interface samples (ordered as the registry lists them).
    pub fn probe_ixp(&self, world: &World, ixp: IxpId) -> Vec<InterfaceSamples> {
        self.probe_ixp_ext(world, ixp, false).0
    }

    /// Materialize one IXP's scene as a simulator network: fabric switches
    /// (one per site), the dataset's looking-glass hosts, and a member
    /// device behind every listed interface. `healthy_only` skips absent,
    /// blackholing, and congested members (the traceroute survey wants
    /// responsive targets; the probing campaign wants everything).
    fn build_ixp_network(
        &self,
        world: &World,
        ixp: IxpId,
        domain: &str,
        healthy_only: bool,
    ) -> BuiltIxp {
        let inst = world.scene.ixp(ixp);
        assert!(
            !inst.meta.lg.is_empty(),
            "{} has no looking glass",
            inst.meta.acronym
        );
        let duration = world.campaign_duration();
        let seed_base = seed::derive(world.config.seed, domain, ixp.0 as u64);
        let n_shards = resolve_shards(self.shards, inst.sites.len());
        let mut net = Network::with_shards(seed_base, n_shards);
        net.set_timeline_scope(format!("ixp.{}", inst.meta.acronym));
        let n_shards = net.shard_count() as usize;
        let shard_for = move |site: usize| site % n_shards;

        // Fabric: one switch per site, chained with inter-site spans. The
        // data plane shards by site: everything hanging off a site's
        // fabric switch (LG hosts, member routers, remote-peering
        // pseudowires) lives on that site's shard, so the only cross-shard
        // links are the inter-site spans — whose ≥ 0.05 ms fiber delay is
        // the scheduler's lookahead.
        let fabrics: Vec<NodeId> = (0..inst.sites.len())
            .map(|w| net.add_switch_on(shard_for(w)))
            .collect();
        for w in 0..fabrics.len().saturating_sub(1) {
            let a_city = WORLD_CITIES[inst.sites[w] as usize].location;
            let b_city = WORLD_CITIES[inst.sites[w + 1] as usize].location;
            let span = a_city.fiber_delay_ms(b_city).max(0.05);
            net.connect_classed(
                fabrics[w],
                fabrics[w + 1],
                DelayModel::with_one_way_ms(span),
                LinkClass::InterSite,
            );
        }

        // Looking-glass hosts.
        let mut lgs: Vec<(LgOperator, NodeId)> = Vec::new();
        for (k, &op) in inst.meta.lg.iter().enumerate() {
            let site = k.min(fabrics.len() - 1);
            let host = net.add_host_on(shard_for(site));
            let (_, hp) = net.connect(fabrics[site], host, DelayModel::with_one_way_ms(0.05));
            net.bind_host(host, hp, IxpInstance::lg_ip(ixp, k as u32));
            lgs.push((op, host));
        }

        // Member devices for every listed interface.
        let listed: Vec<(u32, MemberInterface)> = inst
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.listing.listed)
            .filter(|(_, m)| {
                !healthy_only
                    || (!m.profile.absent
                        && !m.profile.blackhole
                        && m.profile.congested_extra_ms == 0.0)
            })
            .map(|(slot, m)| (slot as u32, *m))
            .collect();
        for &(slot, ref m) in &listed {
            if m.profile.absent {
                continue; // listed address, no device — ARP never resolves
            }
            self.build_member(world, &mut net, inst, &fabrics, ixp, slot, m, duration);
        }

        BuiltIxp {
            net,
            fabrics,
            lgs,
            listed,
        }
    }

    /// Probe one IXP and optionally also measure every listed interface
    /// from the IXP's route server (section 3.3's validation cross-check).
    /// Returns `(per-interface LG samples, per-interface route-server
    /// min-RTTs)`.
    pub fn probe_ixp_ext(
        &self,
        world: &World,
        ixp: IxpId,
        with_route_server: bool,
    ) -> (Vec<InterfaceSamples>, Option<RouteServerMins>) {
        let (samples, rs_mins, _) = self.probe_ixp_full(world, ixp, with_route_server);
        (samples, rs_mins)
    }

    /// [`Campaign::probe_ixp_ext`] plus the exact tallies of faults the
    /// configured injector fired during this IXP's run (all zero when
    /// [`Campaign::faults`] is `None`).
    ///
    /// With [`Campaign::shards`] > 1 (or more than one fabric site under
    /// the default), the network's event loop drains shard windows on the
    /// rayon pool, so a single big world can use every core — results are
    /// bit-identical to the single-shard serial run either way.
    pub fn probe_ixp_full(
        &self,
        world: &World,
        ixp: IxpId,
        with_route_server: bool,
    ) -> (
        Vec<InterfaceSamples>,
        Option<RouteServerMins>,
        rp_netsim::FaultCounts,
    ) {
        let inst = world.scene.ixp(ixp);
        let (net, lgs, listed, route_server) = self.run_campaign_ixp(world, ixp, with_route_server);

        // --- Collect samples per interface, per LG.
        let inst_lg = &inst.meta.lg;
        let mut per_iface: Vec<InterfaceSamples> = listed
            .iter()
            .map(|(_, m)| InterfaceSamples {
                ip: m.ip,
                per_lg: inst_lg.iter().map(|&op| (op, Vec::new())).collect(),
                unanswered: inst_lg.iter().map(|&op| (op, 0)).collect(),
            })
            .collect();
        let index_of: HashMap<Ipv4Addr, usize> = listed
            .iter()
            .enumerate()
            .map(|(i, (_, m))| (m.ip, i))
            .collect();
        let rtt_hist = rp_obs::histogram!("core.campaign.rtt_ms", rp_obs::metrics::RTT_MS_BUCKETS);
        rp_obs::counter!("core.campaign.interfaces_probed").add(listed.len() as u64);
        for (k, (_, host)) in lgs.iter().enumerate() {
            for outcome in net.host(*host).outcomes() {
                let Some(&i) = index_of.get(&outcome.target) else {
                    continue;
                };
                match outcome.reply {
                    Some(r) => {
                        rtt_hist.observe(r.rtt.as_millis_f64());
                        per_iface[i].per_lg[k].1.push(Sample {
                            sent_at: outcome.sent_at.unwrap_or(outcome.planned_at),
                            rtt_ms: r.rtt.as_millis_f64(),
                            ttl: r.ttl,
                        })
                    }
                    None => per_iface[i].unanswered[k].1 += 1,
                }
            }
        }

        let rs_mins = route_server.map(|rs| {
            let mut mins: HashMap<Ipv4Addr, f64> = HashMap::new();
            for outcome in net.host(rs).outcomes() {
                if let Some(r) = outcome.reply {
                    let e = mins.entry(outcome.target).or_insert(f64::INFINITY);
                    *e = e.min(r.rtt.as_millis_f64());
                }
            }
            listed
                .iter()
                .map(|(_, m)| (m.ip, mins.get(&m.ip).copied()))
                .collect()
        });

        (per_iface, rs_mins, net.fault_counts())
    }

    /// Build, schedule, and run one IXP's campaign to completion, returning
    /// the run's event-trace digest and total dispatched events. The probe
    /// samples are discarded — this entry point exists for the determinism
    /// tests (golden trace digests) and the `repro bench` events/sec
    /// measurement.
    pub fn probe_ixp_trace(&self, world: &World, ixp: IxpId) -> (u64, u64) {
        let (net, _, _, _) = self.run_campaign_ixp(world, ixp, false);
        (net.trace_digest(), net.events_processed())
    }

    /// The shared engine of [`Campaign::probe_ixp_full`] and
    /// [`Campaign::probe_ixp_trace`]: materialize the scene, schedule every
    /// LG query (and optional route-server pings), and run to completion.
    #[allow(clippy::type_complexity)]
    fn run_campaign_ixp(
        &self,
        world: &World,
        ixp: IxpId,
        with_route_server: bool,
    ) -> (
        Network,
        Vec<(LgOperator, NodeId)>,
        Vec<(u32, MemberInterface)>,
        Option<NodeId>,
    ) {
        let duration = world.campaign_duration();
        let BuiltIxp {
            mut net,
            fabrics,
            lgs,
            listed,
        } = self.build_ixp_network(world, ixp, "campaign", false);
        if let Some(template) = &self.faults {
            net.install_faults(rp_netsim::FaultInjector::new(template.derived(
                "campaign-fault",
                ixp.0 as u64,
                0,
            )));
        }
        let mut rng = seed::rng(world.config.seed, "campaign-schedule", ixp.0 as u64);

        // --- Optional route server (validation).
        let route_server = if with_route_server {
            let host = net.add_host();
            let (_, hp) = net.connect(fabrics[0], host, DelayModel::with_one_way_ms(0.05));
            net.bind_host(host, hp, IxpInstance::route_server_ip(ixp));
            Some(host)
        } else {
            None
        };

        // --- Probe schedule. With two LG operators the crawls split the
        // window; a single operator covers the whole window.
        let windows: Vec<(f64, f64)> = match lgs.len() {
            1 => vec![(0.0, 1.0)],
            _ => vec![(0.0, 0.5), (0.5, 1.0)],
        };
        for ((op, host), (w_lo, w_hi)) in lgs.iter().zip(windows) {
            let q_count = self.queries_for(*op);
            let total_queries = (q_count as u64) * listed.len().max(1) as u64;
            let window_ns = ((w_hi - w_lo) * duration.nanos() as f64) as u64;
            let interval = SimDuration::from_nanos(window_ns / total_queries.max(1))
                .max(self.min_query_interval);
            let start =
                SimTime::ZERO + SimDuration::from_nanos((w_lo * duration.nanos() as f64) as u64);
            let mut q_idx: u64 = 0;
            for q in 0..q_count {
                for (_, m) in &listed {
                    // Jitter the slot by up to ±25% of the interval so
                    // probes land at varied times of day.
                    let jitter_ns =
                        (interval.nanos() as f64 * (rng.random::<f64>() - 0.5) * 0.5) as i64;
                    let base = start + interval.mul(q_idx);
                    let at = SimTime((base.nanos() as i64 + jitter_ns).max(0) as u64);
                    for p in 0..op.pings_per_query() {
                        net.plan_ping(*host, at + self.ping_spacing.mul(p as u64), m.ip);
                    }
                    q_idx += 1;
                    let _ = q;
                }
            }
        }

        // --- Route-server pings (spread over the whole window).
        if let Some(rs) = route_server {
            let interval = SimDuration::from_nanos(
                duration.nanos() / (self.route_server_pings as u64 * listed.len().max(1) as u64),
            )
            .max(self.min_query_interval);
            let mut k: u64 = 0;
            for p in 0..self.route_server_pings {
                for (_, m) in &listed {
                    net.plan_ping(rs, SimTime::ZERO + interval.mul(k), m.ip);
                    k += 1;
                    let _ = p;
                }
            }
        }

        net.run_to_completion();

        (net, lgs, listed, route_server)
    }

    /// Traceroute survey: run layer-3 path discovery from the first LG
    /// server toward every listed interface of the IXP, exactly as a
    /// topology-inference system would. Returns, per interface, the number
    /// of IP hops revealed and whether the destination answered —
    /// demonstrating the paper's claim that "traceroute and BGP data do not
    /// reveal IP addresses or ASNs of remote-peering providers": a
    /// pseudowire spanning an ocean produces the same one-hop trace as a
    /// colo cross-connect.
    pub fn traceroute_survey(
        &self,
        world: &World,
        ixp: IxpId,
        max_ttl: u8,
    ) -> Vec<TracerouteResult> {
        let BuiltIxp {
            mut net,
            lgs,
            listed,
            ..
        } = self.build_ixp_network(world, ixp, "traceroute", true);
        let lg = lgs[0].1;
        for (k, (_, m)) in listed.iter().enumerate() {
            net.plan_traceroute(
                lg,
                SimTime::ZERO + SimDuration::from_mins(k as u64),
                m.ip,
                max_ttl,
            );
        }
        net.run_to_completion();

        listed
            .iter()
            .map(|(_, m)| {
                let hops = net.host(lg).traceroute_hops(m.ip);
                let revealed: Vec<Ipv4Addr> = hops.iter().filter_map(|(_, src)| *src).collect();
                let reached = revealed.contains(&m.ip);
                let intermediate_hops = revealed.iter().filter(|ip| **ip != m.ip).count();
                TracerouteResult {
                    ip: m.ip,
                    truly_remote: m.access.is_remote(),
                    extra_hop: m.profile.extra_hop,
                    intermediate_hops,
                    reached,
                }
            })
            .collect()
    }

    /// Probe every studied IXP, one IXP per worker.
    ///
    /// Each IXP's simulation is seeded independently from the master seed
    /// (`seed::derive(seed, "campaign", ixp)`), so no state flows between
    /// IXPs and the result is bit-identical to [`Campaign::probe_all_serial`]
    /// regardless of thread count or scheduling — the property pinned by
    /// `tests/parallel_determinism.rs`.
    pub fn probe_all(&self, world: &World) -> Vec<(IxpId, Vec<InterfaceSamples>)> {
        let sp = rp_obs::span("core.campaign.probe_all");
        let parent = sp.path();
        let ixps = world.studied_ixps();
        rp_obs::counter!("core.campaign.ixps_probed").add(ixps.len() as u64);
        ixps.par_iter()
            .map(|&ixp| {
                let _sp = rp_obs::span_under(&parent, "core.campaign.probe_ixp");
                (ixp, self.probe_ixp(world, ixp))
            })
            .collect()
    }

    /// Memoized [`Campaign::probe_all`]: the probe set is fetched from the
    /// process-wide memo under `(world fingerprint, campaign fingerprint)`
    /// and computed once on a miss. Safe because probing is a pure
    /// function of `(world, campaign)` and mutated worlds carry a unique
    /// fingerprint (see [`World::mark_mutated`]). `probe_all` itself never
    /// consults the cache, so benchmarks and determinism tests that call
    /// it keep measuring real work.
    pub fn probe_all_cached(
        &self,
        world: &World,
    ) -> std::sync::Arc<Vec<(IxpId, Vec<InterfaceSamples>)>> {
        let key = (world.fingerprint(), crate::memo::fingerprint(self));
        crate::memo::probes_cached(key, || self.probe_all(world))
    }

    /// Incremental re-probe of a forked world: IXPs in the fork's dirty
    /// set are probed for real (in parallel), every other studied IXP
    /// reuses the parent's samples from `parent_probes`. Byte-identical
    /// to `probe_all(fork.world())` because a per-IXP probe reads only
    /// that IXP's instance plus fork-invariant inputs (world seed,
    /// scene-level constants, provider table, campaign parameters) — the
    /// soundness argument is spelled out in [`crate::fork`], and the
    /// `rp-testkit` differential harness enforces it against a
    /// from-scratch rebuild.
    ///
    /// `parent_probes` must be the full-campaign probe set of the fork's
    /// parent under this same campaign (any studied IXP missing from it
    /// is probed fresh, so a stale or partial parent degrades to extra
    /// work, never to wrong bytes).
    pub fn probe_all_incremental(
        &self,
        fork: &crate::fork::WorldFork,
        parent_probes: &[(IxpId, Vec<InterfaceSamples>)],
    ) -> Vec<(IxpId, Vec<InterfaceSamples>)> {
        let sp = rp_obs::span("core.campaign.probe_all_incremental");
        let parent = sp.path();
        let world = fork.world();
        let ixps = world.studied_ixps();
        let out: Vec<(IxpId, Vec<InterfaceSamples>)> = ixps
            .par_iter()
            .map(|&ixp| {
                if !fork.dirty_ixps().contains(&ixp) {
                    if let Some((_, samples)) = parent_probes.iter().find(|(i, _)| *i == ixp) {
                        rp_obs::counter!("core.fork.probe_reused").add(1);
                        return (ixp, samples.clone());
                    }
                }
                let _sp = rp_obs::span_under(&parent, "core.campaign.probe_ixp");
                rp_obs::counter!("core.fork.probe_recomputed").add(1);
                (ixp, self.probe_ixp(world, ixp))
            })
            .collect();
        out
    }

    /// Memoized incremental probe of a fork, for callers that re-enter
    /// the same fork sequence across jobs (`repro serve`): the fork's own
    /// probe set is looked up under its deterministic fork key; on a miss,
    /// the *parent's* cached probes seed [`Campaign::probe_all_incremental`]
    /// when present, and the result is filed under the fork key. Without
    /// cached parent probes this degrades to a full (memoized) probe.
    pub fn probe_fork_cached(
        &self,
        fork: &crate::fork::WorldFork,
    ) -> std::sync::Arc<Vec<(IxpId, Vec<InterfaceSamples>)>> {
        let campaign_fp = crate::memo::fingerprint(self);
        if let Some(parent) = crate::memo::probes_lookup((fork.parent_fingerprint(), campaign_fp)) {
            return crate::memo::probes_cached((fork.fingerprint(), campaign_fp), || {
                self.probe_all_incremental(fork, &parent)
            });
        }
        crate::memo::probes_cached((fork.fingerprint(), campaign_fp), || {
            self.probe_all(fork.world())
        })
    }

    /// Reference serial implementation of [`Campaign::probe_all`], kept for the
    /// determinism tests and the serial-vs-parallel benchmark.
    pub fn probe_all_serial(&self, world: &World) -> Vec<(IxpId, Vec<InterfaceSamples>)> {
        world
            .studied_ixps()
            .into_iter()
            .map(|ixp| (ixp, self.probe_ixp(world, ixp)))
            .collect()
    }

    /// Materialize one member interface as simulator devices.
    #[allow(clippy::too_many_arguments)]
    fn build_member(
        &self,
        world: &World,
        net: &mut Network,
        inst: &IxpInstance,
        fabrics: &[NodeId],
        ixp: IxpId,
        slot: u32,
        m: &MemberInterface,
        duration: SimDuration,
    ) {
        let site = (m.access.site() as usize).min(fabrics.len() - 1);
        let fabric = fabrics[site];
        let ixp_loc = WORLD_CITIES[inst.sites[site] as usize].location;
        // Everything below hangs off this site's fabric switch, so it all
        // lives on the site's shard: only inter-site spans cross shards.
        let shard = site % net.shard_count() as usize;

        // The attachment point seen from the fabric plus the access link's
        // delay model.
        let (attach, access_delay) = match m.access {
            Access::Direct { colo_delay_ms, .. } => (fabric, colo_delay_ms),
            Access::Remote {
                provider,
                origin_city,
                access_delay_ms,
                ..
            } => {
                // Provider switch at the IXP, long-haul pseudowire to the
                // provider switch near the member, then the member's tail.
                let prov_ixp = net.add_switch_on(shard);
                let prov_far = net.add_switch_on(shard);
                net.connect(fabric, prov_ixp, DelayModel::with_one_way_ms(0.05));
                let origin = WORLD_CITIES[origin_city as usize].location;
                let wire_ms = (world.scene.providers[provider as usize]
                    .pseudowire_delay_ms(origin, ixp_loc)
                    * world.config.scene.pseudowire_slack)
                    .max(0.05);
                net.connect_classed(
                    prov_ixp,
                    prov_far,
                    DelayModel::with_one_way_ms(wire_ms),
                    LinkClass::Pseudowire,
                );
                (prov_far, access_delay_ms)
            }
        };

        // Access link: the late-epoch pathology lives here; congestion is
        // a *responder* property (see below).
        let mut link = DelayModel::with_one_way_ms(access_delay.max(0.05));
        let late = late_epoch_extra_ms(&world.config.scene, ixp, slot);
        if late > 0.0 {
            link = link.with_persistent_episode(CongestionEpisode {
                start: SimTime::ZERO + SimDuration::from_nanos(duration.nanos() / 2),
                end: SimTime::ZERO + duration + SimDuration::from_days(30),
                extra_mean_ms: late,
            });
        }

        // A congested member port polices ICMP on the control plane:
        // replies mostly take a slow path whose *bounded* extra delay
        // ([55%, 100%] of the profile's bound, itself at most 7.5 ms) can
        // never push a direct member's minimum RTT over the 10 ms
        // threshold, while the occasional fast-path reply recovers the true
        // floor — leaving too few replies near the minimum for the
        // RTT-consistent filter. Heavy request loss comes with the regime.
        let slow_path = if m.profile.congested_extra_ms > 0.0 {
            let hi_us = (m.profile.congested_extra_ms * 1_000.0) as u64;
            Some(rp_netsim::router::SlowPath {
                fast_prob: 0.09,
                // The slow floor sits more than 5 ms above the fast path,
                // so slow replies never corroborate a fast-path minimum.
                slow_us: (5_300, hi_us.max(5_400)),
            })
        } else {
            None
        };
        let behavior = RouterBehavior {
            initial_ttl: m.profile.initial_ttl,
            drop_prob: m.profile.congested_drop,
            slow_path,
            ttl_changes: m
                .profile
                .ttl_change
                .iter()
                .map(|(frac, ttl)| {
                    (
                        SimTime::ZERO
                            + SimDuration::from_nanos((frac * duration.nanos() as f64) as u64),
                        *ttl,
                    )
                })
                .collect(),
            blackhole_icmp: m.profile.blackhole,
            ..RouterBehavior::default()
        };

        if m.profile.extra_hop {
            // Registry-stale gadget: a front router proxy-ARPs for the
            // listed address and forwards one IP hop to the inner router
            // that actually holds it.
            let front = net.add_router_on(shard, RouterBehavior::default());
            let (_, f_access) = net.connect_classed(attach, front, link, LinkClass::Access);
            let front_ip = Ipv4Addr::new(172, 16, (ixp.0 % 250) as u8, (2 + slot % 250) as u8);
            net.bind_router(front, f_access, front_ip);
            let inner = net.add_router_on(shard, behavior);
            let (f_in, i_port) = net.connect(front, inner, DelayModel::with_one_way_ms(0.8));
            net.bind_router(front, f_in, Ipv4Addr::new(192, 168, (slot % 250) as u8, 1));
            net.bind_router(inner, i_port, m.ip);
            let front_r = net.router_mut(front);
            front_r.add_proxy_arp(f_access, m.ip);
            front_r.add_route(m.ip, f_in);
            front_r.set_default_route(f_access);
            front_r.set_proxy_arp_all(f_in);
            let inner_r = net.router_mut(inner);
            inner_r.set_default_route(i_port);
        } else {
            let router = net.add_router_on(shard, behavior);
            let (_, r_port) = net.connect_classed(attach, router, link, LinkClass::Access);
            net.bind_router(router, r_port, m.ip);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn small_world() -> World {
        World::build(&WorldConfig::test_scale(81))
    }

    fn probe(world: &World, acronym: &str) -> (IxpId, Vec<InterfaceSamples>) {
        let ixp = world
            .scene
            .ixps
            .iter()
            .find(|x| x.meta.acronym == acronym)
            .unwrap()
            .id;
        (ixp, Campaign::default_paper().probe_ixp(world, ixp))
    }

    #[test]
    fn reply_caps_match_paper_maxima() {
        let world = small_world();
        let (_, samples) = probe(&world, "AMS-IX");
        for s in &samples {
            for (op, replies) in &s.per_lg {
                let cap = op.max_replies() as usize + 1;
                assert!(
                    replies.len() <= cap,
                    "{}: {} replies via {:?}",
                    s.ip,
                    replies.len(),
                    op
                );
            }
        }
    }

    #[test]
    fn healthy_interfaces_answer_almost_everything() {
        let world = small_world();
        let (ixp, samples) = probe(&world, "TorIX");
        let inst = world.scene.ixp(ixp);
        let healthy: Vec<&MemberInterface> = inst
            .members
            .iter()
            .filter(|m| {
                m.listing.listed
                    && !m.profile.absent
                    && !m.profile.blackhole
                    && m.profile.congested_extra_ms == 0.0
            })
            .collect();
        for m in healthy {
            let s = samples.iter().find(|s| s.ip == m.ip).unwrap();
            assert!(
                s.reply_count() >= 20,
                "{}: only {} replies",
                m.ip,
                s.reply_count()
            );
        }
    }

    #[test]
    fn absent_and_blackholed_interfaces_stay_silent() {
        let world = small_world();
        for acr in ["AMS-IX", "LINX"] {
            let (ixp, samples) = probe(&world, acr);
            let inst = world.scene.ixp(ixp);
            for m in inst
                .members
                .iter()
                .filter(|m| m.listing.listed && (m.profile.absent || m.profile.blackhole))
            {
                let s = samples.iter().find(|s| s.ip == m.ip).unwrap();
                assert_eq!(s.reply_count(), 0, "{} should be silent", m.ip);
            }
        }
    }

    #[test]
    fn remote_interfaces_show_geography_direct_do_not() {
        let world = small_world();
        let (ixp, samples) = probe(&world, "AMS-IX");
        let inst = world.scene.ixp(ixp);
        let ams = inst.city().location;
        for m in inst.members.iter().filter(|m| {
            m.listing.listed
                && !m.profile.absent
                && !m.profile.blackhole
                && !m.profile.extra_hop
                && m.profile.congested_extra_ms == 0.0
        }) {
            let s = samples.iter().find(|s| s.ip == m.ip).unwrap();
            let Some(min) = s.min_rtt_ms() else { continue };
            match m.access {
                Access::Direct { .. } => {
                    assert!(min < 5.0, "{}: direct min {min} ms", m.ip);
                }
                Access::Remote { origin_city, .. } => {
                    let fiber = 2.0
                        * WORLD_CITIES[origin_city as usize]
                            .location
                            .fiber_delay_ms(ams);
                    assert!(
                        min >= fiber * 0.95,
                        "{}: remote min {min} ms below fiber floor {fiber}",
                        m.ip
                    );
                }
            }
        }
    }

    #[test]
    fn extra_hop_interfaces_reply_with_decremented_ttl() {
        let world = small_world();
        let mut found = 0;
        for ixp in world.studied_ixps() {
            let samples = Campaign::default_paper().probe_ixp(&world, ixp);
            let inst = world.scene.ixp(ixp);
            for m in inst
                .members
                .iter()
                .filter(|m| m.listing.listed && m.profile.extra_hop)
            {
                let s = samples.iter().find(|s| s.ip == m.ip).unwrap();
                // The interface may also carry a TTL-change pathology, so
                // the reply TTL is one below whichever initial TTL was in
                // effect — never the pristine 64/255 a subnet-local reply
                // would carry.
                let expected: Vec<u8> = std::iter::once(m.profile.initial_ttl)
                    .chain(m.profile.ttl_change.map(|(_, t)| t))
                    .map(|t| t.wrapping_sub(1))
                    .collect();
                for (_, replies) in &s.per_lg {
                    for r in replies {
                        assert!(
                            expected.contains(&r.ttl),
                            "{}: TTL {} must betray the extra hop (expected one of {:?})",
                            m.ip,
                            r.ttl,
                            expected
                        );
                        found += 1;
                    }
                }
            }
        }
        assert!(
            found > 0,
            "no extra-hop interfaces probed — raise the rate or scale"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let world = small_world();
        let (_, a) = probe(&world, "VIX");
        let (_, b) = probe(&world, "VIX");
        assert_eq!(a, b);
    }

    #[test]
    fn route_server_crosscheck_produces_minimums() {
        let world = small_world();
        let torix = world
            .scene
            .ixps
            .iter()
            .find(|x| x.meta.acronym == "TorIX")
            .unwrap()
            .id;
        let (samples, rs) = Campaign::default_paper().probe_ixp_ext(&world, torix, true);
        let rs = rs.unwrap();
        assert_eq!(rs.len(), samples.len());
        let answered = rs.iter().filter(|(_, m)| m.is_some()).count();
        assert!(answered * 10 >= rs.len() * 8, "{answered}/{}", rs.len());
    }
}
