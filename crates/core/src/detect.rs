//! Orchestration of the section 3 detection study: campaign → filters →
//! classification, per IXP and across all 22.

use crate::campaign::Campaign;
use crate::classify::{RangeCounts, RttRange, REMOTENESS_THRESHOLD_MS};
use crate::filters::{apply, AnalyzedInterface, FilterConfig, FilterStats};
use crate::probe::InterfaceSamples;
use crate::world::World;
use rp_types::IxpId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Filter + classification results for one IXP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionStudy {
    /// The studied IXP.
    pub ixp: IxpId,
    /// Interfaces that survived all six filters.
    pub analyzed: Vec<AnalyzedInterface>,
    /// Filter discard accounting for this IXP.
    pub stats: FilterStats,
}

impl DetectionStudy {
    /// Run the filters over one IXP's samples, pairing each with its
    /// registry entry.
    pub fn analyze_ixp(world: &World, ixp: IxpId, samples: &[InterfaceSamples]) -> Self {
        let _sp = rp_obs::span("core.filters.analyze_ixp");
        let cfg = FilterConfig::default();
        let entries: HashMap<_, _> = world
            .registry
            .entries(ixp)
            .iter()
            .map(|e| (e.ip, e))
            .collect();
        let mut analyzed = Vec::new();
        let mut stats = FilterStats::default();
        for s in samples {
            let entry = entries
                .get(&s.ip)
                .unwrap_or_else(|| panic!("no registry entry for probed {}", s.ip));
            let outcome = apply(s, entry, &cfg);
            stats.record(&outcome);
            if let Ok(a) = outcome {
                analyzed.push(a);
            }
        }
        stats.publish_metrics();
        // Funnel progress over the IXP axis: how many interfaces entered
        // the filters and how many survived, per IXP. An Index-axis
        // timeline (not sim time), so the funnel reads as a bar per IXP.
        rp_obs::timeline::index_point(
            "core.filter_funnel.probed",
            ixp.0 as u64,
            samples.len() as u64,
        );
        rp_obs::timeline::index_point(
            "core.filter_funnel.analyzed",
            ixp.0 as u64,
            analyzed.len() as u64,
        );
        DetectionStudy {
            ixp,
            analyzed,
            stats,
        }
    }

    /// Interfaces at or above the remoteness threshold.
    pub fn remote_count(&self) -> usize {
        self.analyzed
            .iter()
            .filter(|a| a.min_rtt_ms >= REMOTENESS_THRESHOLD_MS)
            .count()
    }

    /// Figure 3 bar for this IXP.
    pub fn range_counts(&self) -> RangeCounts {
        RangeCounts::tally(self.analyzed.iter().map(|a| a.min_rtt_ms))
    }
}

/// The full 22-IXP detection study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionReport {
    /// One entry per studied IXP, in dataset order.
    pub studies: Vec<DetectionStudy>,
    /// Aggregate filter accounting (the paper's "20, 82, 20, 100, 28, 5").
    pub stats: FilterStats,
}

impl DetectionReport {
    /// Probe and analyze every studied IXP.
    ///
    /// The probe set comes from the process-wide memo
    /// ([`Campaign::probe_all_cached`]), so re-running the report for the
    /// same `(world, campaign)` — as `repro all`'s experiment groups do —
    /// reuses one campaign.
    pub fn run(world: &World, campaign: &Campaign) -> Self {
        let _sp = rp_obs::span("core.detect.run");
        let mut studies = Vec::new();
        let mut stats = FilterStats::default();
        let probed = campaign.probe_all_cached(world);
        for (ixp, samples) in probed.iter() {
            let study = DetectionStudy::analyze_ixp(world, *ixp, samples);
            stats.merge(&study.stats);
            studies.push(study);
        }
        DetectionReport { studies, stats }
    }

    /// All analyzed minimum RTTs (the figure 2 CDF input).
    pub fn all_min_rtts(&self) -> Vec<f64> {
        self.studies
            .iter()
            .flat_map(|s| s.analyzed.iter().map(|a| a.min_rtt_ms))
            .collect()
    }

    /// Fraction of studied IXPs where at least one remote interface was
    /// detected (the paper: 91%, i.e. 20 of 22).
    pub fn ixps_with_remote_peering(&self) -> (usize, usize) {
        let with = self.studies.iter().filter(|s| s.remote_count() > 0).count();
        (with, self.studies.len())
    }

    /// Count of IXPs where intercontinental-range remote peering was
    /// detected (the paper: 12 of 22).
    pub fn ixps_with_intercontinental(&self) -> usize {
        self.studies
            .iter()
            .filter(|s| {
                s.analyzed
                    .iter()
                    .any(|a| RttRange::of(a.min_rtt_ms) == RttRange::Intercontinental)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn analyzed_world() -> (World, DetectionReport) {
        let world = World::build(&WorldConfig::test_scale(91));
        let report = DetectionReport::run(&world, &Campaign::default_paper());
        (world, report)
    }

    #[test]
    fn filters_leave_most_interfaces_analyzed() {
        let (_, report) = analyzed_world();
        assert!(report.stats.probed > 500, "{}", report.stats.probed);
        let kept = report.stats.analyzed as f64 / report.stats.probed as f64;
        assert!(kept > 0.9, "kept fraction {kept}");
        // Every filter except possibly the rarest ones fires somewhere.
        assert!(report.stats.ttl_switch > 0, "TTL-switch never fired");
        assert!(
            report.stats.rtt_consistent > 0,
            "RTT-consistent never fired"
        );
    }

    #[test]
    fn no_false_positives_against_ground_truth() {
        // The conservative threshold must never classify a directly peering
        // interface as remote — the paper's central design goal.
        let (world, report) = analyzed_world();
        for study in &report.studies {
            let inst = world.scene.ixp(study.ixp);
            let truth: HashMap<_, _> = inst
                .members
                .iter()
                .map(|m| (m.ip, m.access.is_remote()))
                .collect();
            for a in &study.analyzed {
                if a.min_rtt_ms >= REMOTENESS_THRESHOLD_MS {
                    assert!(
                        truth[&a.ip],
                        "{}: {} detected remote but is direct (min {} ms)",
                        inst.meta.acronym, a.ip, a.min_rtt_ms
                    );
                }
            }
        }
    }

    #[test]
    fn remote_peering_is_widespread_but_absent_where_configured() {
        let (world, report) = analyzed_world();
        let (with, total) = report.ixps_with_remote_peering();
        assert_eq!(total, 22);
        assert!(with >= 18, "remote peering at only {with}/22 IXPs");
        for study in &report.studies {
            let meta = &world.scene.ixp(study.ixp).meta;
            if meta.remote_share == 0.0 {
                assert_eq!(
                    study.remote_count(),
                    0,
                    "{} configured without remote peers",
                    meta.acronym
                );
            }
        }
    }

    #[test]
    fn majority_of_interfaces_look_direct() {
        let (_, report) = analyzed_world();
        let rtts = report.all_min_rtts();
        let local = rtts
            .iter()
            .filter(|r| **r < REMOTENESS_THRESHOLD_MS)
            .count();
        assert!(
            local * 10 > rtts.len() * 7,
            "direct peers must dominate: {local}/{}",
            rtts.len()
        );
    }
}
