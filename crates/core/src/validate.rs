//! Method validation (section 3.3).
//!
//! The paper validates with TorIX ground truth (every network flagged
//! remote really was), network-centric checks (E4A, Invitel), and an
//! independent RTT cross-check: TorIX staff measured minimum RTTs from the
//! IXP route server, matching the LG-based measurements with a mean
//! difference of 0.3 ms and variance of 1.6 ms².
//!
//! The simulation can do strictly better: the scene *is* ground truth, so
//! this module computes an exact confusion matrix per IXP, plus the same
//! route-server cross-check against an extra vantage the detector never
//! used.

use crate::campaign::Campaign;
use crate::classify::REMOTENESS_THRESHOLD_MS;
use crate::detect::DetectionStudy;
use crate::world::World;
use rp_types::IxpId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Exact confusion matrix of the remoteness classifier at one IXP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// Remote in truth, classified remote.
    pub true_positive: usize,
    /// Direct in truth, classified remote — the error the conservative
    /// threshold is designed to eliminate.
    pub false_positive: usize,
    /// Direct in truth, classified direct.
    pub true_negative: usize,
    /// Remote in truth, classified direct (nearby remote peers below the
    /// 10 ms threshold — the accepted cost of conservatism).
    pub false_negative: usize,
}

impl Confusion {
    /// Precision of the remote classification (1.0 when no false
    /// positives; degenerate all-direct cases count as perfect).
    pub fn precision(&self) -> f64 {
        let den = self.true_positive + self.false_positive;
        if den == 0 {
            1.0
        } else {
            self.true_positive as f64 / den as f64
        }
    }

    /// Recall of the remote classification.
    pub fn recall(&self) -> f64 {
        let den = self.true_positive + self.false_negative;
        if den == 0 {
            1.0
        } else {
            self.true_positive as f64 / den as f64
        }
    }

    /// F1 score: harmonic mean of precision and recall. Degenerate cases
    /// follow [`Confusion::precision`]: a matrix with no remote interfaces
    /// at all (in truth or prediction) is perfect (1.0); when precision and
    /// recall are both zero the harmonic mean is 0.0.
    pub fn f1(&self) -> f64 {
        if self.true_positive + self.false_positive + self.false_negative == 0 {
            return 1.0;
        }
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Fraction of classifications that agree with ground truth (1.0 for
    /// the empty matrix, like [`Confusion::precision`]).
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positive + self.false_positive + self.true_negative + self.false_negative;
        if total == 0 {
            1.0
        } else {
            (self.true_positive + self.true_negative) as f64 / total as f64
        }
    }

    /// Merge counts.
    pub fn merge(&mut self, other: &Confusion) {
        self.true_positive += other.true_positive;
        self.false_positive += other.false_positive;
        self.true_negative += other.true_negative;
        self.false_negative += other.false_negative;
    }
}

/// Compare one IXP's detection result against the scene's ground truth.
pub fn confusion(world: &World, study: &DetectionStudy) -> Confusion {
    let inst = world.scene.ixp(study.ixp);
    let truth: HashMap<Ipv4Addr, bool> = inst
        .members
        .iter()
        .map(|m| (m.ip, m.access.is_remote()))
        .collect();
    let mut c = Confusion::default();
    for a in &study.analyzed {
        let is_remote_truth = *truth
            .get(&a.ip)
            .expect("analyzed interface exists in the scene");
        let detected = a.min_rtt_ms >= REMOTENESS_THRESHOLD_MS;
        match (is_remote_truth, detected) {
            (true, true) => c.true_positive += 1,
            (false, true) => c.false_positive += 1,
            (false, false) => c.true_negative += 1,
            (true, false) => c.false_negative += 1,
        }
    }
    c
}

/// The route-server RTT cross-check: the TorIX-style comparison of
/// per-interface minimum RTTs measured by the LG servers versus an
/// independent vantage inside the same subnet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossCheck {
    /// Interfaces with minimums from both vantages.
    pub compared: usize,
    /// Mean of (LG minimum − route-server minimum), ms.
    pub mean_diff_ms: f64,
    /// Variance of the differences, ms².
    pub var_diff_ms2: f64,
}

/// Run the cross-check at one IXP: probe with both the LG servers and the
/// route server, filter as usual, and compare minimum RTTs per analyzed
/// interface.
pub fn route_server_crosscheck(
    world: &World,
    campaign: &Campaign,
    ixp: IxpId,
) -> (DetectionStudy, CrossCheck) {
    let (samples, rs) = campaign.probe_ixp_ext(world, ixp, true);
    let rs = rs.expect("requested route server");
    let study = DetectionStudy::analyze_ixp(world, ixp, &samples);
    let rs_min: HashMap<Ipv4Addr, f64> = rs
        .into_iter()
        .filter_map(|(ip, m)| m.map(|v| (ip, v)))
        .collect();

    let diffs: Vec<f64> = study
        .analyzed
        .iter()
        .filter_map(|a| rs_min.get(&a.ip).map(|rs| a.min_rtt_ms - rs))
        .collect();
    let n = diffs.len();
    let mean = if n == 0 {
        0.0
    } else {
        diffs.iter().sum::<f64>() / n as f64
    };
    let var = if n < 2 {
        0.0
    } else {
        diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    };
    (
        study,
        CrossCheck {
            compared: n,
            mean_diff_ms: mean,
            var_diff_ms2: var,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    #[test]
    fn confusion_arithmetic() {
        let mut c = Confusion {
            true_positive: 8,
            false_positive: 0,
            true_negative: 90,
            false_negative: 2,
        };
        assert_eq!(c.precision(), 1.0);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        c.merge(&Confusion {
            false_positive: 2,
            ..Default::default()
        });
        assert!((c.precision() - 0.8).abs() < 1e-12);
        let empty = Confusion::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn f1_and_accuracy_handle_zero_denominators() {
        // Fully empty matrix: perfect by convention, like precision.
        let empty = Confusion::default();
        assert_eq!(empty.f1(), 1.0);
        assert_eq!(empty.accuracy(), 1.0);
        // All-negative population with no predictions: no remote exists,
        // so the remote classifier was never tested — still perfect.
        let all_neg = Confusion {
            true_negative: 50,
            ..Default::default()
        };
        assert_eq!(all_neg.f1(), 1.0);
        assert_eq!(all_neg.accuracy(), 1.0);
        // Precision and recall both zero: harmonic mean must be 0, not NaN.
        let all_wrong = Confusion {
            false_positive: 3,
            false_negative: 2,
            ..Default::default()
        };
        assert_eq!(all_wrong.f1(), 0.0);
        assert_eq!(all_wrong.accuracy(), 0.0);
        // A mixed matrix agrees with the direct formulas.
        let c = Confusion {
            true_positive: 8,
            false_positive: 2,
            true_negative: 85,
            false_negative: 5,
        };
        let (p, r) = (c.precision(), c.recall());
        assert!((c.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert!((c.accuracy() - 93.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn torix_style_validation_has_no_false_positives_and_tight_crosscheck() {
        let world = World::build(&WorldConfig::test_scale(97));
        let torix = world
            .scene
            .ixps
            .iter()
            .find(|x| x.meta.acronym == "TorIX")
            .unwrap()
            .id;
        let (study, check) = route_server_crosscheck(&world, &Campaign::default_paper(), torix);
        let c = confusion(&world, &study);
        assert_eq!(c.false_positive, 0, "conservative threshold violated");
        assert!(c.true_negative > 10, "a real population was analyzed");
        // The paper's cross-check: mean 0.3 ms, variance 1.6 ms². Ours must
        // be the same order (both vantages sit in the same subnet).
        assert!(check.compared > 10, "{}", check.compared);
        assert!(
            check.mean_diff_ms.abs() < 2.0,
            "mean {}",
            check.mean_diff_ms
        );
        assert!(check.var_diff_ms2 < 8.0, "variance {}", check.var_diff_ms2);
    }
}
