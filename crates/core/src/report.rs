//! Text rendering helpers for the `repro` binary: fixed-width tables and
//! CDF extraction.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row. Short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (k, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                let _ = write!(out, "{cell:>w$}", w = w);
                if k + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// A cumulative distribution extracted from raw samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted sample values.
    pub sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples (NaNs excluded).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|s| s.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("filtered non-finite"));
        Cdf { sorted: samples }
    }

    /// Fraction of samples at or below `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|s| *s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (q in [0, 1]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((self.sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.sorted[idx])
    }

    /// Evaluate the CDF at logarithmically spaced points between the data's
    /// min and max — the sampling figure 2's log-x plot uses.
    pub fn log_points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0].max(1e-3).ln();
        let hi = self.sorted[self.sorted.len() - 1].max(1e-3).ln();
        (0..n)
            .map(|k| {
                let x = (lo + (hi - lo) * k as f64 / (n.max(2) - 1) as f64).exp();
                (x, self.at(x))
            })
            .collect()
    }
}

/// Format a bps value the way the paper's figures label axes (Gbps with two
/// decimals).
pub fn gbps(b: rp_types::Bps) -> String {
    format!("{:.3}", b.as_gbps())
}

/// Format a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["IXP", "analyzed"]);
        t.row(&["AMS-IX".into(), "665".into()]);
        t.row(&["TIE".into(), "54".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("IXP"));
        assert!(lines[2].ends_with("665"));
        // Columns align: all lines equal length.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1".into()]);
        assert_eq!(t.render().lines().count(), 3);
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, f64::NAN, 4.0]);
        assert_eq!(cdf.sorted, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.5);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
    }

    #[test]
    fn cdf_log_points_are_monotone() {
        let cdf = Cdf::new((1..=1000).map(|k| k as f64 / 10.0).collect());
        let pts = cdf.log_points(30);
        assert_eq!(pts.len(), 30);
        for w in pts.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::new(vec![]);
        assert_eq!(cdf.at(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert!(cdf.log_points(5).is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(rp_types::Bps::from_gbps(1.6)), "1.600");
        assert_eq!(pct(0.273), "27.3%");
    }
}
