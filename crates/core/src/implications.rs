//! Section 6's broader implications, made quantitative.
//!
//! The paper argues that hiding layer-2 intermediaries from layer-3 models
//! damages more than topology research:
//!
//! - **Reliability** — "when a provider offers transit and remote peering,
//!   buying both might not yield reliable multihoming": the redundancy a
//!   layer-3 view promises evaporates if the remote-peering pseudowire
//!   rides the transit provider's own infrastructure.
//!   [`multihoming_reliability`] quantifies the gap, both in closed form
//!   and by Monte-Carlo failure injection on a built world.
//! - **Security / accountability** — "the invisible layer-2 intermediaries
//!   can monitor traffic or deliver it through undesired geographies":
//!   [`geo_exposure`] inventories, for every remote attachment in the
//!   scene, the countries its frames actually traverse (via the provider's
//!   nearest PoP) versus what the layer-3 view shows (member at the IXP,
//!   full stop).

use crate::world::World;
use rand::RngExt;
use rp_ixp::model::Access;
use rp_types::geo::WORLD_CITIES;
use rp_types::seed;
use serde::{Deserialize, Serialize};

/// Reliability of a dual-homed setup (transit + remote peering) for
/// reaching peering-covered destinations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Per-service failure probability assumed for each organization.
    pub p_fail: f64,
    /// Closed-form unreachability when the remote-peering provider is
    /// independent of both transit providers.
    pub independent_analytic: f64,
    /// Closed-form unreachability when the remote-peering service is
    /// resold by one of the transit providers (shared fate).
    pub shared_analytic: f64,
    /// Monte-Carlo estimate, independent provider.
    pub independent_mc: f64,
    /// Monte-Carlo estimate, shared-fate provider.
    pub shared_mc: f64,
    /// Failure scenarios sampled.
    pub trials: u32,
}

impl ReliabilityReport {
    /// How many times likelier a total outage becomes when the "redundant"
    /// services share fate.
    pub fn fate_sharing_penalty(&self) -> f64 {
        self.shared_analytic / self.independent_analytic.max(f64::MIN_POSITIVE)
    }
}

/// Closed form + Monte-Carlo failure injection for the dual-homing setup.
///
/// The study network reaches a covered destination through three delivery
/// options: transit provider A, transit provider B, and remote peering
/// through layer-2 provider P. Each organization fails independently with
/// probability `p_fail`. On layer 3 the three options look independent; if
/// P's pseudowire actually rides A's infrastructure, P fails whenever A
/// does.
pub fn multihoming_reliability(world: &World, p_fail: f64, trials: u32) -> ReliabilityReport {
    let p = p_fail.clamp(0.0, 1.0);
    // Closed forms: all three services must fail.
    let independent_analytic = p * p * p;
    // Shared fate: P fails with A, so unreachability = P(A ∧ B).
    let shared_analytic = p * p;

    // Monte Carlo on the world: sample org failures, check the vantage's
    // actual option set.
    let mut rng = seed::rng(world.config.seed, "reliability", 0);
    let mut dead_indep = 0u32;
    let mut dead_shared = 0u32;
    for _ in 0..trials {
        let a_fail = rng.random::<f64>() < p;
        let b_fail = rng.random::<f64>() < p;
        let p_own_fail = rng.random::<f64>() < p;
        if a_fail && b_fail && p_own_fail {
            dead_indep += 1;
        }
        if a_fail && b_fail {
            // Shared fate: the pseudowire is gone the moment A is.
            dead_shared += 1;
        }
    }
    ReliabilityReport {
        p_fail: p,
        independent_analytic,
        shared_analytic,
        independent_mc: dead_indep as f64 / trials.max(1) as f64,
        shared_mc: dead_shared as f64 / trials.max(1) as f64,
        trials,
    }
}

/// One remote attachment's geographic reality vs its layer-3 appearance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GeoExposure {
    /// The IXP's acronym (where layer 3 places the interface).
    pub ixp: &'static str,
    /// Country of the member's actual router.
    pub origin_country: &'static str,
    /// Country of the IXP.
    pub ixp_country: &'static str,
    /// Country of the remote-peering provider's PoP the pseudowire detours
    /// through.
    pub pop_country: &'static str,
}

impl GeoExposure {
    /// True when frames transit a country that appears in neither the
    /// member's nor the IXP's location — entirely invisible on layer 3.
    pub fn third_country(&self) -> bool {
        self.pop_country != self.origin_country && self.pop_country != self.ixp_country
    }
}

/// Summary of the scene's invisible geography.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GeoExposureReport {
    /// Remote attachments examined.
    pub remote_attachments: usize,
    /// Attachments whose member and IXP are in different countries (the
    /// pseudowire crosses a border the AS-level view does not show).
    pub cross_border: usize,
    /// Attachments detouring through a third country via the provider PoP.
    pub third_country: usize,
    /// The individual third-country cases (IXP, origin, PoP).
    pub cases: Vec<GeoExposure>,
}

/// Inventory the geographic exposure of every remote attachment.
pub fn geo_exposure(world: &World) -> GeoExposureReport {
    let mut remote_attachments = 0;
    let mut cross_border = 0;
    let mut cases = Vec::new();
    for inst in &world.scene.ixps {
        let ixp_country = inst.city().country;
        for m in &inst.members {
            let Access::Remote {
                provider,
                origin_city,
                ..
            } = m.access
            else {
                continue;
            };
            remote_attachments += 1;
            let origin = WORLD_CITIES[origin_city as usize];
            if origin.country != ixp_country {
                cross_border += 1;
            }
            let pop_idx = world.scene.providers[provider as usize].nearest_pop(origin.location);
            let pop = WORLD_CITIES[pop_idx as usize];
            let exposure = GeoExposure {
                ixp: inst.meta.acronym,
                origin_country: origin.country,
                ixp_country,
                pop_country: pop.country,
            };
            if exposure.third_country() {
                cases.push(exposure);
            }
        }
    }
    let third_country = cases.len();
    GeoExposureReport {
        remote_attachments,
        cross_border,
        third_country,
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn world() -> World {
        World::build(&WorldConfig::test_scale(66))
    }

    /// Analytic + Monte-Carlo agreement at a tolerance the trial count can
    /// actually support. Shared by the fast seeded variant below and the
    /// full 2M-trial version behind `#[ignore]`.
    fn check_shared_fate(trials: u32, mc_tolerance: f64) {
        let w = world();
        let r = multihoming_reliability(&w, 0.01, trials);
        // Independent: 1e-6; shared: 1e-4 — two orders of magnitude.
        assert!((r.independent_analytic - 1e-6).abs() < 1e-12);
        assert!((r.shared_analytic - 1e-4).abs() < 1e-12);
        assert!((r.fate_sharing_penalty() - 100.0).abs() < 1e-6);
        // Monte Carlo agrees with the closed forms.
        assert!(
            (r.shared_mc - r.shared_analytic).abs() < mc_tolerance,
            "{}",
            r.shared_mc
        );
        assert!(r.independent_mc <= 3.0 * r.independent_analytic + 1e-5);
    }

    #[test]
    fn shared_fate_erases_the_third_nine_fast() {
        // 200k trials put the 1.6e-4 tolerance at ~7 binomial standard
        // deviations of the 1e-4 shared-fate rate (sd ≈ 2.24e-5), so the
        // check is robust to the RNG stream rather than tuned to one
        // generator, while staying fast enough for every `cargo test` run.
        check_shared_fate(200_000, 1.6e-4);
    }

    #[test]
    #[ignore = "2M Monte-Carlo trials; run via cargo test -- --ignored"]
    fn shared_fate_erases_the_third_nine() {
        // The full-resolution version: 2M trials put the 5e-5 tolerance at
        // ~7 binomial standard deviations of the 1e-4 shared-fate rate.
        // CI runs it in the ignored-tests step of one matrix job.
        check_shared_fate(2_000_000, 5e-5);
    }

    #[test]
    fn degenerate_failure_probabilities() {
        let w = world();
        let zero = multihoming_reliability(&w, 0.0, 1_000);
        assert_eq!(zero.independent_analytic, 0.0);
        assert_eq!(zero.shared_mc, 0.0);
        let one = multihoming_reliability(&w, 1.0, 1_000);
        assert_eq!(one.shared_analytic, 1.0);
        assert_eq!(one.independent_mc, 1.0);
    }

    #[test]
    fn geo_exposure_finds_invisible_borders() {
        let w = world();
        let report = geo_exposure(&w);
        assert!(report.remote_attachments > 10);
        // Remote peering is mostly international in this scene.
        assert!(report.cross_border * 2 > report.remote_attachments);
        // Consistency: every third-country case is cross-provider-PoP.
        for c in &report.cases {
            assert!(c.third_country());
            assert_ne!(c.pop_country, c.origin_country);
        }
        assert!(report.third_country <= report.cross_border + report.remote_attachments);
    }

    #[test]
    fn exposure_is_deterministic() {
        let a = geo_exposure(&world());
        let b = geo_exposure(&world());
        assert_eq!(a, b);
    }
}
