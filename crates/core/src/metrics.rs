//! Per-run metric extraction shared by the scenario sweep engine and the
//! one-off experiments.
//!
//! A sweep cell varies either the *world* (topology / scene / traffic knobs,
//! which require rebuilding and reprobing) or the *method* (remoteness
//! threshold, filter mask, peer-group assumption — pure re-analysis of the
//! same probe samples). [`PreparedRun`] captures the expensive part once:
//! cells that share a world configuration can share one build + probe per
//! replicate and diverge only in [`MethodParams`], which is both a large
//! speedup and exactly the common-random-numbers pairing the paired-delta
//! statistics want.

use crate::campaign::Campaign;
use crate::classify::REMOTENESS_THRESHOLD_MS;
use crate::filters::{apply, AnalyzedInterface, FilterConfig};
use crate::offload::{OffloadStudy, PeerGroup};
use crate::probe::InterfaceSamples;
use crate::validate::Confusion;
use crate::world::World;
use rp_econ::{viability_margin, CostParams};
use rp_types::IxpId;
use std::collections::HashMap;

/// Analysis-time methodology knobs. None of these require reprobing: they
/// reinterpret the same campaign samples.
#[derive(Debug, Clone)]
pub struct MethodParams {
    /// Remoteness threshold on the minimum RTT, ms (paper: 10).
    pub threshold_ms: f64,
    /// Filter pipeline configuration (including the ablation `skip`).
    pub filters: FilterConfig,
    /// Peer-group assumption for the offload metrics.
    pub peer_group: PeerGroup,
}

impl Default for MethodParams {
    fn default() -> Self {
        MethodParams {
            threshold_ms: REMOTENESS_THRESHOLD_MS,
            filters: FilterConfig::default(),
            peer_group: PeerGroup::All,
        }
    }
}

/// A built world plus its raw campaign samples, ready to be analyzed under
/// any [`MethodParams`].
///
/// Both fields are shared handles so prepared runs can come out of the
/// process-wide memo ([`PreparedRun::probe_cached`]) without copying;
/// deref coercion keeps `&run.world` / `&run.probed` usable wherever
/// `&World` / `&[(IxpId, _)]` are expected.
pub struct PreparedRun {
    /// The built world (ground truth included).
    pub world: std::sync::Arc<World>,
    /// Raw per-IXP campaign samples, in studied-IXP order.
    pub probed: std::sync::Arc<Vec<(IxpId, Vec<InterfaceSamples>)>>,
}

impl PreparedRun {
    /// Build the probe set for `world` with `campaign`, bypassing the memo
    /// (benchmarks and determinism tests measure real work this way).
    pub fn probe(world: World, campaign: &Campaign) -> Self {
        let probed = campaign.probe_all(&world);
        PreparedRun {
            world: std::sync::Arc::new(world),
            probed: std::sync::Arc::new(probed),
        }
    }

    /// Memoized variant: fetch (or build) the world for `cfg` and its
    /// probe set from the process-wide memo. Sweep engine tasks that
    /// revisit a `(world config, campaign)` pair — identical replicate
    /// seeds across presets, repeated preset runs in one process — share
    /// one build + probe.
    pub fn probe_cached(cfg: &crate::world::WorldConfig, campaign: &Campaign) -> Self {
        let world = World::build_cached(cfg);
        let probed = campaign.probe_all_cached(&world);
        PreparedRun { world, probed }
    }
}

/// Run the filter pipeline over every studied IXP's samples under `cfg`.
pub fn filtered_analysis(
    world: &World,
    probed: &[(IxpId, Vec<InterfaceSamples>)],
    cfg: &FilterConfig,
) -> Vec<(IxpId, Vec<AnalyzedInterface>)> {
    probed
        .iter()
        .map(|(ixp, samples)| {
            let entries: HashMap<_, _> = world
                .registry
                .entries(*ixp)
                .iter()
                .map(|e| (e.ip, e))
                .collect();
            let analyzed = samples
                .iter()
                .filter_map(|s| apply(s, entries[&s.ip], cfg).ok())
                .collect();
            (*ixp, analyzed)
        })
        .collect()
}

/// Confusion matrix of the remoteness classifier at one IXP for an
/// arbitrary threshold (the [`crate::validate::confusion`] helper is fixed
/// at the paper's 10 ms).
pub fn confusion_at(
    world: &World,
    ixp: IxpId,
    analyzed: &[AnalyzedInterface],
    threshold_ms: f64,
) -> Confusion {
    let truth: HashMap<_, _> = world
        .scene
        .ixp(ixp)
        .members
        .iter()
        .map(|m| (m.ip, m.access.is_remote()))
        .collect();
    let mut c = Confusion::default();
    for a in analyzed {
        let detected = a.min_rtt_ms >= threshold_ms;
        match (truth[&a.ip], detected) {
            (true, true) => c.true_positive += 1,
            (false, true) => c.false_positive += 1,
            (false, false) => c.true_negative += 1,
            (true, false) => c.false_negative += 1,
        }
    }
    c
}

/// The scalar metrics a sweep tracks per (cell, replicate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMetrics {
    /// Interfaces surviving the filter pipeline, summed over studied IXPs.
    pub analyzed: f64,
    /// Detected-remote share of the analyzed interfaces.
    pub remote_fraction: f64,
    /// Precision of the remote classification vs ground truth.
    pub precision: f64,
    /// Recall of the remote classification vs ground truth.
    pub recall: f64,
    /// F1 of the remote classification vs ground truth.
    pub f1: f64,
    /// Accuracy of the remote classification vs ground truth.
    pub accuracy: f64,
    /// Offload potential of the single best IXP as a fraction of total
    /// transit traffic, under the cell's peer group.
    pub offload_top1_frac: f64,
    /// Offload potential of the five best IXPs as a fraction of total
    /// transit traffic.
    pub offload_top5_frac: f64,
    /// Eq. 14 viability margin with cost parameters derived from the mean
    /// distance to the top-5 offload venues (the `africa` experiment's
    /// derivation, generalized).
    pub econ_margin: f64,
}

impl RunMetrics {
    /// Metric names, in [`RunMetrics::named`] order.
    pub const NAMES: [&'static str; 9] = [
        "analyzed",
        "remote_fraction",
        "precision",
        "recall",
        "f1",
        "accuracy",
        "offload_top1_frac",
        "offload_top5_frac",
        "econ_margin",
    ];

    /// `(name, value)` pairs for generic consumers (the sweep engine).
    pub fn named(&self) -> [(&'static str, f64); 9] {
        [
            ("analyzed", self.analyzed),
            ("remote_fraction", self.remote_fraction),
            ("precision", self.precision),
            ("recall", self.recall),
            ("f1", self.f1),
            ("accuracy", self.accuracy),
            ("offload_top1_frac", self.offload_top1_frac),
            ("offload_top5_frac", self.offload_top5_frac),
            ("econ_margin", self.econ_margin),
        ]
    }

    /// Analyze `run` under `params` and extract every metric.
    pub fn collect(run: &PreparedRun, params: &MethodParams) -> RunMetrics {
        let _sp = rp_obs::span("core.metrics.collect");
        let world = &run.world;
        let per_ixp = filtered_analysis(world, &run.probed, &params.filters);
        let mut confusion = Confusion::default();
        let mut analyzed = 0usize;
        for (ixp, list) in &per_ixp {
            analyzed += list.len();
            confusion.merge(&confusion_at(world, *ixp, list, params.threshold_ms));
        }
        let detected = confusion.true_positive + confusion.false_positive;
        let remote_fraction = if analyzed == 0 {
            0.0
        } else {
            detected as f64 / analyzed as f64
        };

        let study = OffloadStudy::new(world);
        let group = params.peer_group;
        let mut rows = study.single_ixp_ranking();
        let gi = group.index();
        rows.sort_by(|a, b| {
            b.1[gi]
                .0
                .partial_cmp(&a.1[gi].0)
                .expect("potentials are finite")
                .then(a.0.cmp(&b.0))
        });
        let total = world.contributions.total_inbound() + world.contributions.total_outbound();
        let top5: Vec<IxpId> = rows.iter().take(5).map(|(ixp, _)| *ixp).collect();
        let frac_of = |ixps: &[IxpId]| -> f64 {
            if ixps.is_empty() {
                return 0.0;
            }
            let (i, o) = study.potential(ixps, group);
            (i + o).fraction_of(total)
        };
        let offload_top1_frac = frac_of(&top5[..top5.len().min(1)]);
        let offload_top5_frac = frac_of(&top5);

        // Cost-model translation (the `africa` experiment's derivation): the
        // traffic-independent direct-peering cost grows with the distance to
        // the venues, the remote fee is footprint-flat, and transit is
        // pricier far from the wholesale markets.
        let econ_margin = if top5.is_empty() {
            0.0
        } else {
            let home = world.topology.home_city(world.vantage).location;
            let mean_km = top5
                .iter()
                .map(|ixp| world.scene.ixp(*ixp).city().location.distance_km(home))
                .sum::<f64>()
                / top5.len() as f64;
            let p = 1.0 + mean_km / 5_000.0;
            let cost = CostParams {
                p,
                u: 0.2 * p,
                v: 0.45 * p,
                g: 0.06 + 0.04 * (mean_km / 1_000.0),
                h: 0.035,
                b: 0.55,
            };
            cost.validate()
                .expect("derived parameters respect the invariants");
            viability_margin(&cost)
        };

        RunMetrics {
            analyzed: analyzed as f64,
            remote_fraction,
            precision: confusion.precision(),
            recall: confusion.recall(),
            f1: confusion.f1(),
            accuracy: confusion.accuracy(),
            offload_top1_frac,
            offload_top5_frac,
            econ_margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectionReport;
    use crate::world::WorldConfig;

    #[test]
    fn baseline_metrics_agree_with_the_detection_report() {
        let campaign = Campaign::default_paper();
        let run = PreparedRun::probe(World::build(&WorldConfig::test_scale(42)), &campaign);
        let m = RunMetrics::collect(&run, &MethodParams::default());
        let report = DetectionReport::run(&run.world, &campaign);
        assert_eq!(m.analyzed as usize, report.stats.analyzed);
        let remote: usize = report.studies.iter().map(|s| s.remote_count()).sum();
        assert!((m.remote_fraction - remote as f64 / report.stats.analyzed as f64).abs() < 1e-12);
        // The paper's central property at the default threshold.
        assert_eq!(m.precision, 1.0);
        assert!(m.recall > 0.0 && m.recall <= 1.0);
        assert!(m.f1 > 0.0 && m.accuracy > 0.9);
        assert!(m.offload_top1_frac > 0.0 && m.offload_top1_frac <= m.offload_top5_frac);
        assert!(m.econ_margin.is_finite() && m.econ_margin > 0.0);
    }

    #[test]
    fn method_params_reinterpret_without_reprobing() {
        let campaign = Campaign::default_paper();
        let run = PreparedRun::probe(World::build(&WorldConfig::test_scale(42)), &campaign);
        let base = RunMetrics::collect(&run, &MethodParams::default());
        // A tighter threshold can only flag more interfaces as remote.
        let tight = RunMetrics::collect(
            &run,
            &MethodParams {
                threshold_ms: 2.0,
                ..Default::default()
            },
        );
        assert!(tight.remote_fraction >= base.remote_fraction);
        assert!(tight.recall >= base.recall);
        // Skipping a filter re-admits interfaces.
        let skip = RunMetrics::collect(
            &run,
            &MethodParams {
                filters: FilterConfig {
                    skip: Some(crate::filters::Discard::RttConsistent),
                    ..FilterConfig::default()
                },
                ..Default::default()
            },
        );
        assert!(skip.analyzed >= base.analyzed);
    }
}
