//! Scenario construction: the simulated Internet plus the RedIRIS-like
//! study network.
//!
//! Section 4.1 describes the study network precisely: RedIRIS, the Spanish
//! NREN, "interconnects with GÉANT, buys transit from two tier-1 providers,
//! peers with major CDNs, and has memberships in two IXPs: CATNIX in
//! Barcelona and ESpanix in Madrid." `World::build` reproduces that
//! arrangement inside the generated topology:
//!
//! - the study network is an NREN pinned to Madrid;
//! - the topology generator already gives every NREN two tier-1 transit
//!   providers;
//! - GÉANT is modeled as settlement-free peerings with every other NREN;
//! - a handful of major CDNs peer with the study network (their traffic
//!   therefore never appears on the transit links — which is why the
//!   paper's top *offloadable* contributors are content networks that are
//!   not yet peered);
//! - the study network joins ESpanix and CATNIX and peers with their
//!   open-policy members via the route servers; the tier-1s are wired in as
//!   ESpanix members so that the paper's exclusion rule ("we exclude all
//!   the other tier-1 networks because they have memberships in ESpanix")
//!   binds.

use rp_bgp::RoutingView;
use rp_ixp::model::{Access, ListingInfo, MemberInterface, ResponderProfile};
use rp_ixp::registry::Registry;
use rp_ixp::{build_scene, euro_ix_65, IxpScene, SceneConfig};
use rp_topology::{generate, AsType, PeeringPolicy, Topology, TopologyConfig};
use rp_traffic::{contributions, Contributions, TrafficConfig};
use rp_types::geo::WORLD_CITIES;
use rp_types::{IxpId, NetworkId, SimDuration};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Full scenario configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; sub-seeds for topology, scene, and traffic derive from
    /// it unless overridden below.
    pub seed: u64,
    /// Topology generation parameters.
    pub topology: TopologyConfig,
    /// IXP scene parameters.
    pub scene: SceneConfig,
    /// Traffic model parameters.
    pub traffic: TrafficConfig,
    /// Length of the probing campaign (the paper measured October 2013 –
    /// January 2014, about four months).
    pub campaign_days: u64,
    /// How many CDNs the study network already peers with.
    pub cdn_peerings: usize,
    /// Where the study network lives. "Madrid" reproduces RedIRIS; other
    /// cities build counterfactual study networks (e.g. "Nairobi" for the
    /// section 5.2 African-market analysis).
    pub vantage_city: String,
}

impl WorldConfig {
    /// Paper-scale world: ~31k ASes, 65 IXPs at published member counts,
    /// 2.6 B interfaces, 4-month campaign.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            topology: TopologyConfig::paper_scale(seed ^ 0x7090),
            scene: SceneConfig::paper_scale(seed ^ 0x5CEE),
            traffic: TrafficConfig {
                seed: seed ^ 0x7247,
                ..TrafficConfig::default()
            },
            campaign_days: 120,
            cdn_peerings: 8,
            vantage_city: "Madrid".to_string(),
        }
    }

    /// Reduced world for tests: a few hundred ASes, ~35% membership scale,
    /// a 40-day campaign. Same structure, seconds to build and probe.
    pub fn test_scale(seed: u64) -> Self {
        WorldConfig {
            topology: TopologyConfig::test_scale(seed ^ 0x7090),
            scene: SceneConfig::test_scale(seed ^ 0x5CEE),
            campaign_days: 40,
            ..WorldConfig::paper_scale(seed)
        }
    }
}

/// The assembled scenario.
///
/// The four heavyweight planes — topology, registry, routing view, and
/// traffic contributions — are behind [`Arc`], and the scene's per-IXP
/// instances are reference-counted individually. A `World::clone` (and
/// therefore a [`World::fork`]) is a handful of refcount bumps plus the
/// small config/id vectors; the planes are immutable snapshots shared
/// between parent and child until a [`crate::fork::Delta`] copies the one
/// IXP instance it touches.
#[derive(Clone)]
pub struct World {
    /// Content address for the memo caches: the fingerprint of `config`
    /// while the world is pristine, a deterministic fork key once deltas
    /// have been applied through [`World::fork`], and a unique nonce once
    /// it has been mutated in place (see [`World::mark_mutated`]).
    pub(crate) memo_key: u64,
    /// The configuration the world was built from.
    pub config: WorldConfig,
    /// The AS-level Internet (immutable snapshot plane).
    pub topology: Arc<Topology>,
    /// IXPs, memberships, attachments, pathologies (ground truth). The
    /// instances inside are individually reference-counted (the arena the
    /// copy-on-write forks share).
    pub scene: IxpScene,
    /// What the measurement campaign is allowed to know (immutable
    /// snapshot plane — deltas never touch registry rows, see
    /// [`crate::fork`]).
    pub registry: Arc<Registry>,
    /// The RedIRIS-like study network.
    pub vantage: NetworkId,
    /// The study network's home IXPs (ESpanix, CATNIX).
    pub home_ixps: Vec<IxpId>,
    /// CDNs the study network peers with directly.
    pub cdn_peers: Vec<NetworkId>,
    /// The study network's forwarding view (immutable snapshot plane).
    pub view: Arc<RoutingView>,
    /// Average per-network transit-traffic contributions (immutable
    /// snapshot plane).
    pub contributions: Arc<Contributions>,
}

impl World {
    /// Build the scenario deterministically from its config.
    pub fn build(cfg: &WorldConfig) -> World {
        let sp = rp_obs::span("core.world.build");
        let build_path = sp.path();
        let mut topology = generate(&cfg.topology);

        // The study network: an NREN pinned to the configured city
        // (Madrid for the RedIRIS reproduction).
        let vantage = topology
            .of_type(AsType::Nren)
            .next()
            .expect("config generates at least one NREN")
            .id;
        let home = city_index(&cfg.vantage_city);
        topology.set_home_city(vantage, home);

        // IXPs and memberships over the (relocated) topology.
        let metas = euro_ix_65();
        let mut scene = build_scene(&topology, &metas, &cfg.scene);

        let ixp_by_acronym = |scene: &IxpScene, acr: &str| -> IxpId {
            scene
                .ixps
                .iter()
                .find(|x| x.meta.acronym == acr)
                .unwrap_or_else(|| panic!("dataset lacks {acr}"))
                .id
        };
        let espanix = ixp_by_acronym(&scene, "ESpanix");
        let catnix = ixp_by_acronym(&scene, "CATNIX");
        let home_ixps = vec![espanix, catnix];

        // Wire the study network and the tier-1s into the home IXPs.
        let tier1s: Vec<NetworkId> = topology.of_type(AsType::Tier1).map(|a| a.id).collect();
        for &ixp in &home_ixps {
            add_direct_member(&mut scene, ixp, vantage);
        }
        for &t1 in &tier1s {
            add_direct_member(&mut scene, espanix, t1);
        }

        // GÉANT: settlement-free peering with every other NREN.
        let nrens: Vec<NetworkId> = topology
            .of_type(AsType::Nren)
            .map(|a| a.id)
            .filter(|&id| id != vantage)
            .collect();
        for nren in nrens {
            topology.add_peering(vantage, nren);
        }

        // Major-CDN peerings.
        let cdn_peers: Vec<NetworkId> = topology
            .of_type(AsType::Cdn)
            .map(|a| a.id)
            .take(cfg.cdn_peerings)
            .collect();
        for &cdn in &cdn_peers {
            topology.add_peering(vantage, cdn);
        }

        // Route-server peerings with open-policy co-members at the home
        // IXPs (add_peering skips the vantage's own transit providers and
        // anything already connected).
        for &ixp in &home_ixps {
            for member in scene.ixp(ixp).member_network_ids() {
                if member != vantage && topology.node(member).policy == PeeringPolicy::Open {
                    topology.add_peering(vantage, member);
                }
            }
        }

        // The registry crawl is independent of the routing computation, so
        // the two run on separate workers; both only read the finished
        // topology/scene, so the result is identical to the serial order.
        let (registry, (view, contributions)) = rayon::join(
            || {
                let _sp = rp_obs::span_under(&build_path, "core.world.registry_crawl");
                Registry::from_scene(&scene, &topology)
            },
            || {
                let _sp = rp_obs::span_under(&build_path, "core.world.routing_and_traffic");
                let view = RoutingView::new(&topology, vantage);
                let contributions = contributions(&topology, &view, &cfg.traffic);
                (view, contributions)
            },
        );

        World {
            memo_key: crate::memo::fingerprint(cfg),
            config: cfg.clone(),
            topology: Arc::new(topology),
            scene,
            registry: Arc::new(registry),
            vantage,
            home_ixps,
            cdn_peers,
            view: Arc::new(view),
            contributions: Arc::new(contributions),
        }
    }

    /// Fetch `cfg`'s world from the process-wide memo, building it on a
    /// miss. Callers that probe the same configuration repeatedly (the
    /// check harness's clean arm, sweep replicates, `repro all`'s
    /// experiment groups) share a single build this way.
    ///
    /// To mutate a cached world, clone it out of the [`std::sync::Arc`]
    /// and call
    /// [`World::mark_mutated`] on the copy — never mutate through the
    /// shared handle (the borrow checker enforces this: `Arc` only hands
    /// out `&World`).
    pub fn build_cached(cfg: &WorldConfig) -> std::sync::Arc<World> {
        crate::memo::world_cached(crate::memo::fingerprint(cfg), || World::build(cfg))
    }

    /// The world's current content address (config fingerprint, or a
    /// unique nonce after mutation).
    pub fn fingerprint(&self) -> u64 {
        self.memo_key
    }

    /// Declare that this world no longer matches its config. Every
    /// in-place mutation site (fault injection, invariant probes that
    /// push/pop members) must call this so downstream probe memoization
    /// can never alias the mutated state with the pristine build.
    ///
    /// Prefer [`World::fork`] where the mutation is expressible as
    /// [`crate::fork::Delta`]s: forks get a *deterministic* content
    /// address (so probe memo entries are shareable across identical fork
    /// sequences) and track which IXPs they dirtied (so
    /// [`crate::Campaign::probe_all_incremental`] can reuse parent probe
    /// results for the rest).
    pub fn mark_mutated(&mut self) {
        self.memo_key = crate::memo::mutation_nonce();
    }

    /// Fork this world into a cheap copy-on-write child. The child shares
    /// the topology, registry, routing-view, and contributions planes and
    /// every IXP instance with `self`; applying a [`crate::fork::Delta`]
    /// copies only the instance it touches. `self` is never affected by
    /// anything done to the fork.
    pub fn fork(&self) -> crate::fork::WorldFork {
        crate::fork::WorldFork::new(self)
    }

    /// Length of the probing campaign.
    pub fn campaign_duration(&self) -> SimDuration {
        SimDuration::from_days(self.config.campaign_days)
    }

    /// Ids of the IXPs with looking-glass servers (the section 3 study).
    pub fn studied_ixps(&self) -> Vec<IxpId> {
        self.scene.studied().map(|x| x.id).collect()
    }

    /// Order-of-magnitude estimate of this world's resident size, for the
    /// memo pool's byte budget ([`crate::memo::configure_world_pool`]).
    /// Charges a flat per-AS, per-interface, and per-IXP weight for the
    /// topology rows, routing view, scene, and registry — deliberately
    /// coarse: the budget exists to bound a long-running server's memory,
    /// not to account allocations exactly, and the weights only need to
    /// scale with the same knobs the builders scale with.
    pub fn approx_bytes(&self) -> u64 {
        let ases = self.topology.len() as u64;
        let interfaces = self.scene.total_interfaces() as u64;
        let ixps = self.scene.ixps.len() as u64;
        std::mem::size_of::<World>() as u64 + ases * 700 + interfaces * 350 + ixps * 2_000
    }
}

fn city_index(name: &str) -> u16 {
    WORLD_CITIES
        .iter()
        .position(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown city {name}")) as u16
}

/// Insert `network` as a direct, healthy, unlisted member of `ixp` (used to
/// wire the study network and the tier-1s into their real memberships).
fn add_direct_member(scene: &mut IxpScene, ixp: IxpId, network: NetworkId) {
    let inst = scene.ixp_mut(ixp);
    if inst.members.iter().any(|m| m.network == network) {
        return;
    }
    let slot = inst.members.len() as u32;
    inst.members.push(MemberInterface {
        network,
        ip: rp_ixp::model::IxpInstance::ip_for_slot(ixp, slot),
        access: Access::Direct {
            colo_delay_ms: 0.3,
            site: 0,
        },
        profile: ResponderProfile::default(),
        listing: ListingInfo {
            listed: false,
            identifiable: true,
            asn_change: false,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_bgp::GatewayClass;

    fn world() -> World {
        World::build(&WorldConfig::test_scale(71))
    }

    #[test]
    fn vantage_is_a_madrid_nren_with_two_tier1_providers() {
        let w = world();
        let node = w.topology.node(w.vantage);
        assert_eq!(node.kind, AsType::Nren);
        assert_eq!(w.topology.home_city(w.vantage).name, "Madrid");
        let provs = w.topology.providers(w.vantage);
        assert_eq!(provs.len(), 2);
        for p in provs {
            assert_eq!(w.topology.node(*p).kind, AsType::Tier1);
        }
    }

    #[test]
    fn vantage_belongs_to_both_home_ixps_and_tier1s_to_espanix() {
        let w = world();
        for &ixp in &w.home_ixps {
            assert!(w.scene.ixp(ixp).member_network_ids().contains(&w.vantage));
        }
        let espanix_members = w.scene.ixp(w.home_ixps[0]).member_network_ids();
        for t1 in w.topology.of_type(AsType::Tier1) {
            assert!(
                espanix_members.contains(&t1.id),
                "{} not at ESpanix",
                t1.asn
            );
        }
    }

    #[test]
    fn geant_and_cdn_traffic_leaves_the_transit_links() {
        let w = world();
        for nren in w.topology.of_type(AsType::Nren) {
            if nren.id != w.vantage {
                assert_eq!(
                    w.view.gateway_class(&w.topology, nren.id),
                    Some(GatewayClass::Peer),
                    "NREN {} should be reached via GÉANT peering",
                    nren.asn
                );
                let (inb, out) = w.contributions.of(nren.id);
                assert_eq!(inb.0, 0.0);
                assert_eq!(out.0, 0.0);
            }
        }
        for &cdn in &w.cdn_peers {
            assert_eq!(
                w.view.gateway_class(&w.topology, cdn),
                Some(GatewayClass::Peer)
            );
        }
    }

    #[test]
    fn most_networks_still_contribute_transit_traffic() {
        let w = world();
        let frac = w.contributions.contributors() as f64 / w.topology.len() as f64;
        assert!(frac > 0.8, "contributor fraction {frac}");
    }

    #[test]
    fn build_is_deterministic() {
        let a = World::build(&WorldConfig::test_scale(72));
        let b = World::build(&WorldConfig::test_scale(72));
        assert_eq!(a.vantage, b.vantage);
        assert_eq!(a.contributions.inbound, b.contributions.inbound);
        assert_eq!(
            a.scene
                .ixps
                .iter()
                .map(|x| x.members.len())
                .collect::<Vec<_>>(),
            b.scene
                .ixps
                .iter()
                .map(|x| x.members.len())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn studied_ixps_are_the_22() {
        let w = world();
        assert_eq!(w.studied_ixps().len(), 22);
    }
}
