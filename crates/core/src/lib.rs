#![warn(missing_docs)]

//! # remote-peering
//!
//! A faithful reproduction of *Remote Peering: More Peering without Internet
//! Flattening* (Castro, Cardona, Gorinsky, Francois — CoNEXT 2014), built on
//! a fully simulated Internet so every experiment in the paper can be re-run
//! on a laptop.
//!
//! The paper's thesis: **remote peering** — peering at a distant IXP through
//! a layer-2 provider — is widespread (section 3), can offload a substantial
//! share of a network's transit traffic (section 4), and is economically
//! viable under a precise condition (section 5). Because the intermediary
//! lives on layer 2, it is invisible to layer-3 topology inference, so more
//! peering does *not* imply a flatter Internet.
//!
//! ## What this crate adds on top of the substrates
//!
//! - [`world`] — deterministic scenario construction: a synthetic Internet
//!   ([`rp_topology`]), IXPs with looking glasses and remote-peering
//!   pseudowires ([`rp_ixp`]), a RedIRIS-like study network wired with its
//!   real-world peerings (two tier-1 transit providers, GÉANT-style partner
//!   NRENs, home IXPs in Madrid and Barcelona, pre-existing CDN peerings),
//!   routing ([`rp_bgp`]) and transit traffic ([`rp_traffic`]).
//! - [`campaign`] — the section 3.1 measurement method: ping member
//!   interfaces from LG servers *inside* each IXP over a simulated 4-month
//!   window, under the paper's per-server rate limits and per-query ping
//!   counts, against a packet-level simulation ([`rp_netsim`]) where TTL,
//!   congestion, and blackholing behave mechanically.
//! - [`filters`] — the six conservative filters, applied in the paper's
//!   order with full discard accounting: sample-size, TTL-switch,
//!   TTL-match, RTT-consistent, LG-consistent, ASN-change.
//! - [`classify`] — the 10 ms remoteness threshold and the RTT ranges of
//!   figures 2 and 3.
//! - [`identify`] — interface→ASN→network identification and the IXP-count
//!   distributions of figure 4.
//! - [`validate`] — ground-truth validation (precision/recall against the
//!   scene, which the detector itself never sees) and the TorIX-style
//!   route-server RTT cross-check of section 3.3.
//! - [`fork`] — copy-on-write world forking: cheap children sharing the
//!   parent's planes, a [`fork::Delta`] log of scene mutations, and the
//!   dirty set that lets [`Campaign::probe_all_incremental`] re-probe
//!   only what a delta touched.
//! - [`metrics`] — scalar per-run metrics (precision/recall/F1, remote
//!   fraction, offload fractions, viability margin) extracted from one
//!   probed world under configurable methodology parameters — the unit of
//!   observation for `rp-scenario` sweeps.
//! - [`offload`] — the section 4 study: exclusion rules, the four peer
//!   groups, per-IXP offload potential, greedy IXP expansion, and the
//!   reachable-interfaces metric (figures 5–10).
//! - [`flattening`] — the titular claim quantified: organization counts on
//!   paths under layer-3 vs layer-2-aware views (a section 6 extension).
//! - [`implications`] — section 6's reliability (fate-sharing multihoming)
//!   and security (invisible geography) arguments, made quantitative.
//! - [`report`] — text rendering of every table and figure for the `repro`
//!   binary, plus CDF helpers.
//!
//! ## Quickstart
//!
//! ```
//! use remote_peering::world::{World, WorldConfig};
//! use remote_peering::campaign::Campaign;
//! use remote_peering::detect::DetectionStudy;
//!
//! // A reduced world (a few hundred ASes) builds in seconds.
//! let world = World::build(&WorldConfig::test_scale(7));
//! // Probe the first studied IXP and classify its interfaces.
//! let ixp = world.scene.studied().next().unwrap().id;
//! let samples = Campaign::default_paper().probe_ixp(&world, ixp);
//! let study = DetectionStudy::analyze_ixp(&world, ixp, &samples);
//! println!(
//!     "{}: {} analyzed, {} remote",
//!     world.scene.ixp(ixp).meta.acronym,
//!     study.analyzed.len(),
//!     study.remote_count()
//! );
//! ```

pub mod campaign;
pub mod classify;
pub mod detect;
pub mod filters;
pub mod flattening;
pub mod fork;
pub mod identify;
pub mod implications;
pub mod memo;
pub mod metrics;
pub mod offload;
pub mod probe;
pub mod report;
pub mod validate;
pub mod world;

pub use campaign::Campaign;
pub use classify::{RttRange, REMOTENESS_THRESHOLD_MS};
pub use detect::{DetectionReport, DetectionStudy};
pub use fork::{Delta, WorldFork};
pub use offload::{OffloadStudy, PeerGroup};
pub use world::{World, WorldConfig};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use rp_bgp as bgp;
pub use rp_econ as econ;
pub use rp_ixp as ixp;
pub use rp_netsim as netsim;
pub use rp_topology as topology;
pub use rp_traffic as traffic;
pub use rp_types as types;
