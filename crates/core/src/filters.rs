//! The six conservative filters of section 3.1, in the paper's order:
//! sample-size, TTL-switch, TTL-match, RTT-consistent, LG-consistent,
//! ASN-change.
//!
//! The paper reports that across the 22 IXPs the filters discarded
//! 20, 82, 20, 100, 28, and 5 interfaces respectively, leaving 4,451
//! analyzed interfaces. [`FilterStats`] reproduces that accounting for the
//! simulated campaign.

use crate::probe::InterfaceSamples;
use rp_ixp::registry::ListingEntry;
use rp_types::Asn;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Why an interface was removed from the analyzed set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Discard {
    /// Fewer than `min_replies_per_lg` replies from some probing LG server
    /// (blackholing, absent device, or plain unresponsiveness).
    SampleSize,
    /// The reply TTL changed during the measurement period (e.g. an
    /// operating-system change).
    TtlSwitch,
    /// The reply TTL is not one of the expected initial values (64 or
    /// 255) — the reply crossed an IP hop, or the device runs an
    /// infrequent TTL default.
    TtlMatch,
    /// Too few replies near the minimum RTT (persistent congestion makes
    /// the minimum untrustworthy).
    RttConsistent,
    /// The two LG servers' minimum RTTs disagree beyond the tolerance.
    LgConsistent,
    /// The registry's ASN mapping for the address changed mid-campaign.
    AsnChange,
}

impl Discard {
    /// All variants in application order.
    pub const ORDER: [Discard; 6] = [
        Discard::SampleSize,
        Discard::TtlSwitch,
        Discard::TtlMatch,
        Discard::RttConsistent,
        Discard::LgConsistent,
        Discard::AsnChange,
    ];

    /// Stable snake_case key for reports and metric names.
    pub fn key(self) -> &'static str {
        match self {
            Discard::SampleSize => "sample_size",
            Discard::TtlSwitch => "ttl_switch",
            Discard::TtlMatch => "ttl_match",
            Discard::RttConsistent => "rtt_consistent",
            Discard::LgConsistent => "lg_consistent",
            Discard::AsnChange => "asn_change",
        }
    }
}

/// Filter thresholds (defaults = the paper's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Minimum replies per probing LG server (paper: 8).
    pub min_replies_per_lg: usize,
    /// Accepted initial-TTL values (paper: 64 and 255).
    pub accepted_ttls: [u8; 2],
    /// Absolute part of the consistency tolerance, ms (paper: 5).
    pub tolerance_abs_ms: f64,
    /// Relative part of the consistency tolerance (paper: 10%).
    pub tolerance_rel: f64,
    /// Minimum replies within tolerance of the minimum RTT (paper: 4).
    pub min_consistent_replies: usize,
    /// Disable one filter (ablation studies: what does each conservative
    /// filter actually buy?). `None` = the paper's full pipeline.
    pub skip: Option<Discard>,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            min_replies_per_lg: 8,
            accepted_ttls: [64, 255],
            tolerance_abs_ms: 5.0,
            tolerance_rel: 0.10,
            min_consistent_replies: 4,
            skip: None,
        }
    }
}

impl FilterConfig {
    /// The consistency bound above a minimum of `min_ms`:
    /// `min + max{5 ms, 10% · min}`.
    pub fn bound_above(&self, min_ms: f64) -> f64 {
        min_ms + self.tolerance_abs_ms.max(self.tolerance_rel * min_ms)
    }
}

/// An interface that survived all six filters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedInterface {
    /// The analyzed interface's address.
    pub ip: Ipv4Addr,
    /// Minimum RTT over all accepted replies from all LG servers.
    pub min_rtt_ms: f64,
    /// Stable ASN mapping from the registry (`None` = unidentifiable).
    pub asn: Option<Asn>,
}

/// Per-filter discard accounting over a set of probed interfaces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Interfaces probed.
    pub probed: usize,
    /// Discards by the sample-size filter.
    pub sample_size: usize,
    /// Discards by the TTL-switch filter.
    pub ttl_switch: usize,
    /// Discards by the TTL-match filter.
    pub ttl_match: usize,
    /// Discards by the RTT-consistent filter.
    pub rtt_consistent: usize,
    /// Discards by the LG-consistent filter.
    pub lg_consistent: usize,
    /// Discards by the ASN-change filter.
    pub asn_change: usize,
    /// Interfaces surviving all six filters.
    pub analyzed: usize,
}

impl FilterStats {
    /// Record one outcome.
    pub fn record(&mut self, outcome: &Result<AnalyzedInterface, Discard>) {
        self.probed += 1;
        match outcome {
            Ok(_) => self.analyzed += 1,
            Err(Discard::SampleSize) => self.sample_size += 1,
            Err(Discard::TtlSwitch) => self.ttl_switch += 1,
            Err(Discard::TtlMatch) => self.ttl_match += 1,
            Err(Discard::RttConsistent) => self.rtt_consistent += 1,
            Err(Discard::LgConsistent) => self.lg_consistent += 1,
            Err(Discard::AsnChange) => self.asn_change += 1,
        }
    }

    /// Merge another accounting into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        self.probed += other.probed;
        self.sample_size += other.sample_size;
        self.ttl_switch += other.ttl_switch;
        self.ttl_match += other.ttl_match;
        self.rtt_consistent += other.rtt_consistent;
        self.lg_consistent += other.lg_consistent;
        self.asn_change += other.asn_change;
        self.analyzed += other.analyzed;
    }

    /// Discards in the paper's application order.
    pub fn in_order(&self) -> [usize; 6] {
        [
            self.sample_size,
            self.ttl_switch,
            self.ttl_match,
            self.rtt_consistent,
            self.lg_consistent,
            self.asn_change,
        ]
    }

    /// Push this accounting into the process-wide metrics registry
    /// (`core.filters.*`). A no-op while collection is disabled, so the
    /// per-IXP call in the detection study costs one branch.
    pub fn publish_metrics(&self) {
        if !rp_obs::enabled() {
            return;
        }
        rp_obs::counter!("core.filters.probed").add(self.probed as u64);
        rp_obs::counter!("core.filters.analyzed").add(self.analyzed as u64);
        rp_obs::counter!("core.filters.discard.sample_size").add(self.sample_size as u64);
        rp_obs::counter!("core.filters.discard.ttl_switch").add(self.ttl_switch as u64);
        rp_obs::counter!("core.filters.discard.ttl_match").add(self.ttl_match as u64);
        rp_obs::counter!("core.filters.discard.rtt_consistent").add(self.rtt_consistent as u64);
        rp_obs::counter!("core.filters.discard.lg_consistent").add(self.lg_consistent as u64);
        rp_obs::counter!("core.filters.discard.asn_change").add(self.asn_change as u64);
    }

    /// The filter funnel as a JSON object: interfaces probed, discards per
    /// stage in application order, and the analyzed remainder (the run
    /// report's uniform rendering of this accounting).
    pub fn funnel_json(&self) -> serde_json::Value {
        let stages = Discard::ORDER
            .iter()
            .zip(self.in_order())
            .map(|(d, n)| (d.key().to_string(), serde_json::json!(n)))
            .collect();
        serde_json::json!({
            "probed": self.probed,
            "discards": serde_json::Value::Object(stages),
            "analyzed": self.analyzed,
        })
    }
}

/// Apply the six filters to one interface's samples and registry entry.
pub fn apply(
    samples: &InterfaceSamples,
    entry: &ListingEntry,
    cfg: &FilterConfig,
) -> Result<AnalyzedInterface, Discard> {
    let on = |f: Discard| cfg.skip != Some(f);

    // 1. Sample-size: enough replies from every probing LG server.
    if on(Discard::SampleSize) {
        for (_, replies) in &samples.per_lg {
            if replies.len() < cfg.min_replies_per_lg {
                return Err(Discard::SampleSize);
            }
        }
    }
    // With sample-size ablated an interface may carry zero replies and
    // cannot be analyzed either way; treat it as the same discard so the
    // ablation measures the filter's *judgement*, not arithmetic on empty
    // sets.
    if samples.reply_count() == 0 {
        return Err(Discard::SampleSize);
    }

    // 2. TTL-switch: replies must all carry one TTL value.
    let mut ttls: Vec<u8> = samples.all().map(|s| s.ttl).collect();
    ttls.sort_unstable();
    ttls.dedup();
    if on(Discard::TtlSwitch) && ttls.len() > 1 {
        return Err(Discard::TtlSwitch);
    }

    // 3. TTL-match: that value must be an expected initial TTL.
    let ttl = ttls[0];
    if on(Discard::TtlMatch) && !cfg.accepted_ttls.contains(&ttl) {
        return Err(Discard::TtlMatch);
    }

    // 4. RTT-consistent: the minimum must be corroborated by nearby
    // replies.
    let min = samples.min_rtt_ms().expect("replies checked above");
    if on(Discard::RttConsistent) {
        let bound = cfg.bound_above(min);
        let near = samples.all().filter(|s| s.rtt_ms <= bound).count();
        if near < cfg.min_consistent_replies {
            return Err(Discard::RttConsistent);
        }
    }

    // 5. LG-consistent: with two LG servers, the larger of the two minimum
    // RTTs must sit within tolerance of the smaller.
    if on(Discard::LgConsistent) && samples.per_lg.len() >= 2 {
        let mins: Vec<f64> = samples
            .per_lg
            .iter()
            .filter(|(_, replies)| !replies.is_empty())
            .map(|(_, replies)| {
                replies
                    .iter()
                    .map(|s| s.rtt_ms)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let small = mins.iter().copied().fold(f64::INFINITY, f64::min);
        let large = mins.iter().copied().fold(0.0, f64::max);
        if large > cfg.bound_above(small) {
            return Err(Discard::LgConsistent);
        }
    }

    // 6. ASN-change: the registry mapping must be stable.
    if on(Discard::AsnChange) && entry.asn_changed() {
        return Err(Discard::AsnChange);
    }

    Ok(AnalyzedInterface {
        ip: samples.ip,
        min_rtt_ms: min,
        asn: entry.asn_in_phase(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Sample;
    use rp_ixp::LgOperator;
    use rp_types::SimTime;

    fn entry(ip: &str, asns: Vec<u32>) -> ListingEntry {
        ListingEntry {
            ip: ip.parse().unwrap(),
            asns: asns.into_iter().map(Asn).collect(),
        }
    }

    fn samples(per_lg: Vec<(LgOperator, Vec<(f64, u8)>)>) -> InterfaceSamples {
        InterfaceSamples {
            ip: "10.0.2.2".parse().unwrap(),
            per_lg: per_lg
                .into_iter()
                .map(|(op, v)| {
                    (
                        op,
                        v.into_iter()
                            .map(|(rtt, ttl)| Sample {
                                sent_at: SimTime::ZERO,
                                rtt_ms: rtt,
                                ttl,
                            })
                            .collect(),
                    )
                })
                .collect(),
            unanswered: vec![],
        }
    }

    fn healthy(n: usize, rtt: f64, ttl: u8) -> Vec<(f64, u8)> {
        (0..n).map(|k| (rtt + 0.02 * k as f64, ttl)).collect()
    }

    #[test]
    fn healthy_interface_passes_with_min_rtt() {
        let s = samples(vec![(LgOperator::Pch, healthy(12, 1.0, 255))]);
        let a = apply(
            &s,
            &entry("10.0.2.2", vec![64500]),
            &FilterConfig::default(),
        )
        .unwrap();
        assert_eq!(a.min_rtt_ms, 1.0);
        assert_eq!(a.asn, Some(Asn(64500)));
    }

    #[test]
    fn sample_size_rejects_sparse_replies_from_any_lg() {
        let s = samples(vec![
            (LgOperator::Pch, healthy(12, 1.0, 255)),
            (LgOperator::RipeNcc, healthy(7, 1.0, 255)), // one short
        ]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::SampleSize)
        );
    }

    #[test]
    fn ttl_switch_rejects_changing_ttl() {
        let mut replies = healthy(8, 1.0, 64);
        replies.extend(healthy(8, 1.0, 255));
        let s = samples(vec![(LgOperator::Pch, replies)]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::TtlSwitch)
        );
    }

    #[test]
    fn ttl_match_rejects_decremented_and_unusual_ttls() {
        for ttl in [254u8, 63, 128, 32] {
            let s = samples(vec![(LgOperator::Pch, healthy(10, 1.0, ttl))]);
            assert_eq!(
                apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
                Err(Discard::TtlMatch),
                "ttl {ttl}"
            );
        }
    }

    #[test]
    fn rtt_consistent_rejects_lonely_minimum() {
        // One low outlier, everything else far above min + max(5, 10%·min).
        let mut replies: Vec<(f64, u8)> = vec![(1.0, 255)];
        replies.extend((0..10).map(|k| (40.0 + k as f64, 255)));
        let s = samples(vec![(LgOperator::Pch, replies)]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::RttConsistent)
        );
    }

    #[test]
    fn relative_tolerance_kicks_in_for_large_rtts() {
        // min = 100 ms; bound = 110 ms; 4 replies inside: pass.
        let replies: Vec<(f64, u8)> = vec![
            (100.0, 255),
            (104.0, 255),
            (108.0, 255),
            (109.9, 255),
            (130.0, 255),
            (131.0, 255),
            (132.0, 255),
            (133.0, 255),
        ];
        let s = samples(vec![(LgOperator::Pch, replies)]);
        let a = apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).unwrap();
        assert_eq!(a.min_rtt_ms, 100.0);
    }

    #[test]
    fn lg_consistent_rejects_disagreeing_servers() {
        let s = samples(vec![
            (LgOperator::Pch, healthy(12, 1.0, 255)),
            (LgOperator::RipeNcc, healthy(12, 8.0, 255)), // floor 7 ms higher
        ]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::LgConsistent)
        );
        // Within 5 ms: fine.
        let s = samples(vec![
            (LgOperator::Pch, healthy(12, 1.0, 255)),
            (LgOperator::RipeNcc, healthy(12, 4.0, 255)),
        ]);
        assert!(apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).is_ok());
    }

    #[test]
    fn asn_change_rejects_unstable_mappings() {
        let s = samples(vec![(LgOperator::Pch, healthy(12, 1.0, 255))]);
        assert_eq!(
            apply(
                &s,
                &entry("10.0.2.2", vec![64500, 64501]),
                &FilterConfig::default()
            ),
            Err(Discard::AsnChange)
        );
    }

    #[test]
    fn unidentifiable_interfaces_still_analyze() {
        // No ASN is not a reason to discard: the interface counts toward
        // the 4,451 analyzed even though identification later fails.
        let s = samples(vec![(LgOperator::Pch, healthy(12, 1.0, 255))]);
        let a = apply(&s, &entry("10.0.2.2", vec![]), &FilterConfig::default()).unwrap();
        assert_eq!(a.asn, None);
    }

    // ------------------------------------------------------------------
    // Exact-boundary cases, one positive and one negative per filter. The
    // paper's thresholds are all closed on the keep side: exactly 8
    // replies, exactly the tolerance bound, exactly an accepted TTL all
    // pass; one step past each discards.
    // ------------------------------------------------------------------

    #[test]
    fn sample_size_boundary_exactly_eight_passes_seven_fails() {
        let s = samples(vec![
            (LgOperator::Pch, healthy(8, 1.0, 255)),
            (LgOperator::RipeNcc, healthy(8, 1.0, 255)),
        ]);
        assert!(apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).is_ok());

        let s = samples(vec![
            (LgOperator::Pch, healthy(8, 1.0, 255)),
            (LgOperator::RipeNcc, healthy(7, 1.0, 255)),
        ]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::SampleSize)
        );
    }

    #[test]
    fn ttl_switch_boundary_one_deviant_reply_is_enough() {
        // All 16 replies at one TTL: keep.
        let s = samples(vec![(LgOperator::Pch, healthy(16, 1.0, 64))]);
        assert!(apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).is_ok());

        // A single reply at another (still accepted) TTL: discard.
        let mut replies = healthy(15, 1.0, 64);
        replies.push((1.3, 255));
        let s = samples(vec![(LgOperator::Pch, replies)]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::TtlSwitch)
        );
    }

    #[test]
    fn ttl_match_boundary_accepts_exactly_64_and_255() {
        for ttl in [64u8, 255] {
            let s = samples(vec![(LgOperator::Pch, healthy(10, 1.0, ttl))]);
            assert!(
                apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).is_ok(),
                "ttl {ttl}"
            );
        }
        for ttl in [63u8, 65, 254] {
            let s = samples(vec![(LgOperator::Pch, healthy(10, 1.0, ttl))]);
            assert_eq!(
                apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
                Err(Discard::TtlMatch),
                "ttl {ttl}"
            );
        }
    }

    #[test]
    fn rtt_consistent_boundary_is_closed_at_the_bound() {
        // min = 1 ms, bound = 1 + max(5, 0.1) = 6 ms. Three corroborating
        // replies at *exactly* 6 ms make four near replies: keep.
        let near = |at: f64| -> Vec<(f64, u8)> {
            let mut v = vec![(1.0, 255), (at, 255), (at, 255), (at, 255)];
            v.extend((0..4).map(|k| (40.0 + k as f64, 255)));
            v
        };
        let s = samples(vec![(LgOperator::Pch, near(6.0))]);
        let a = apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).unwrap();
        assert_eq!(a.min_rtt_ms, 1.0);

        // A hair past the bound leaves the minimum uncorroborated.
        let s = samples(vec![(LgOperator::Pch, near(6.01))]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::RttConsistent)
        );
    }

    #[test]
    fn rtt_consistent_relative_bound_is_closed_too() {
        // min = 100 ms: the 10% relative term dominates, bound = 110 ms.
        let near = |at: f64| -> Vec<(f64, u8)> {
            let mut v = vec![(100.0, 255), (at, 255), (at, 255), (at, 255)];
            v.extend((0..4).map(|k| (200.0 + k as f64, 255)));
            v
        };
        let s = samples(vec![(LgOperator::Pch, near(110.0))]);
        assert!(apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()).is_ok());
        let s = samples(vec![(LgOperator::Pch, near(110.1))]);
        assert_eq!(
            apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default()),
            Err(Discard::RttConsistent)
        );
    }

    #[test]
    fn lg_consistent_boundary_exact_five_ms_gap_passes() {
        // Small minimum 1 ms → tolerance bound 6 ms; the other server's
        // floor at exactly 6 ms (a 5 ms gap) is still consistent.
        let two = |large_min: f64| {
            samples(vec![
                (LgOperator::Pch, healthy(8, 1.0, 255)),
                (
                    LgOperator::RipeNcc,
                    (0..8).map(|_| (large_min, 255)).collect(),
                ),
            ])
        };
        assert!(apply(
            &two(6.0),
            &entry("10.0.2.2", vec![1]),
            &FilterConfig::default()
        )
        .is_ok());
        assert_eq!(
            apply(
                &two(6.01),
                &entry("10.0.2.2", vec![1]),
                &FilterConfig::default()
            ),
            Err(Discard::LgConsistent)
        );
    }

    #[test]
    fn asn_change_boundary_repeated_same_asn_is_stable() {
        let s = samples(vec![(LgOperator::Pch, healthy(12, 1.0, 255))]);
        // Two sources agreeing on one ASN is not a change...
        let a = apply(
            &s,
            &entry("10.0.2.2", vec![64500, 64500]),
            &FilterConfig::default(),
        )
        .unwrap();
        assert_eq!(a.asn, Some(Asn(64500)));
        // ...two distinct mappings is.
        assert_eq!(
            apply(
                &s,
                &entry("10.0.2.2", vec![64500, 64501]),
                &FilterConfig::default()
            ),
            Err(Discard::AsnChange)
        );
    }

    #[test]
    fn kept_minima_classify_across_the_10_20_50_ms_boundaries() {
        use crate::classify::RttRange;
        // Interfaces straddling each classification edge must all be kept
        // by the filters (the edges are classification business, not
        // filtering business), and must land in the paper's ranges.
        let cases = [
            (9.99, RttRange::Local),
            (10.0, RttRange::Intercity),
            (19.99, RttRange::Intercity),
            (20.0, RttRange::Intercountry),
            (49.99, RttRange::Intercountry),
            (50.0, RttRange::Intercontinental),
        ];
        for (rtt, want) in cases {
            let s = samples(vec![(LgOperator::Pch, healthy(12, rtt, 255))]);
            let a = apply(&s, &entry("10.0.2.2", vec![1]), &FilterConfig::default())
                .unwrap_or_else(|d| panic!("{rtt} ms interface discarded: {d:?}"));
            assert_eq!(a.min_rtt_ms, rtt);
            assert_eq!(RttRange::of(a.min_rtt_ms), want, "at {rtt} ms");
        }
    }

    fn stats_from(outcomes: &[Result<AnalyzedInterface, Discard>]) -> FilterStats {
        let mut s = FilterStats::default();
        for o in outcomes {
            s.record(o);
        }
        s
    }

    fn ok() -> Result<AnalyzedInterface, Discard> {
        Ok(AnalyzedInterface {
            ip: "10.0.2.2".parse().unwrap(),
            min_rtt_ms: 1.0,
            asn: None,
        })
    }

    #[test]
    fn merge_is_associative() {
        let a = stats_from(&[ok(), Err(Discard::TtlSwitch), Err(Discard::SampleSize)]);
        let b = stats_from(&[Err(Discard::RttConsistent), ok(), ok()]);
        let c = stats_from(&[Err(Discard::AsnChange), Err(Discard::LgConsistent)]);

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        assert_eq!(left, right);
        assert_eq!(left.probed, 8);
        assert_eq!(left.analyzed, 3);
    }

    #[test]
    fn empty_merge_is_identity() {
        let a = stats_from(&[ok(), Err(Discard::TtlMatch), Err(Discard::TtlMatch)]);
        let mut merged = a.clone();
        merged.merge(&FilterStats::default());
        assert_eq!(merged, a);
        let mut from_empty = FilterStats::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn in_order_tracks_application_order() {
        // Record one discard per stage, in reverse application order; the
        // report must still present them in Discard::ORDER positions, and
        // merging must not shuffle stages into each other.
        let mut stats = FilterStats::default();
        for d in Discard::ORDER.iter().rev() {
            stats.record(&Err(*d));
        }
        assert_eq!(stats.in_order(), [1; 6]);
        for (k, d) in Discard::ORDER.iter().enumerate() {
            let solo = stats_from(&[Err(*d)]);
            let mut expected = [0usize; 6];
            expected[k] = 1;
            assert_eq!(solo.in_order(), expected, "{d:?} at position {k}");
            let mut merged = stats.clone();
            merged.merge(&solo);
            let mut want = [1usize; 6];
            want[k] = 2;
            assert_eq!(merged.in_order(), want, "{d:?} merge stability");
        }
    }

    #[test]
    fn funnel_json_totals_balance() {
        let stats = stats_from(&[
            ok(),
            ok(),
            Err(Discard::SampleSize),
            Err(Discard::RttConsistent),
        ]);
        let v = stats.funnel_json();
        assert_eq!(v.get("probed").and_then(|p| p.as_u64()), Some(4));
        assert_eq!(v.get("analyzed").and_then(|a| a.as_u64()), Some(2));
        let discards = v.get("discards").and_then(|d| d.as_object()).unwrap();
        assert_eq!(
            discards.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            Discard::ORDER.iter().map(|d| d.key()).collect::<Vec<_>>()
        );
        let total: u64 = discards.iter().filter_map(|(_, n)| n.as_u64()).sum();
        assert_eq!(total + 2, 4);
    }

    #[test]
    fn stats_accounting_sums() {
        let mut stats = FilterStats::default();
        stats.record(&Ok(AnalyzedInterface {
            ip: "10.0.2.2".parse().unwrap(),
            min_rtt_ms: 1.0,
            asn: None,
        }));
        stats.record(&Err(Discard::TtlSwitch));
        stats.record(&Err(Discard::SampleSize));
        assert_eq!(stats.probed, 3);
        assert_eq!(stats.analyzed, 1);
        assert_eq!(stats.in_order(), [1, 1, 0, 0, 0, 0]);
        let mut other = FilterStats::default();
        other.record(&Err(Discard::AsnChange));
        stats.merge(&other);
        assert_eq!(stats.probed, 4);
        assert_eq!(stats.in_order(), [1, 1, 0, 0, 0, 1]);
    }
}
