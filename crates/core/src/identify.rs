//! Network identification: interfaces → ASNs → networks, and the IXP-count
//! views of figure 4.
//!
//! Section 3.2: of 4,451 analyzed interfaces, 3,242 map to ASNs,
//! identifying 1,904 networks, of which 285 own at least one remote
//! interface. Figure 4a plots how many of the studied IXPs each network
//! peers at (its *IXP count*); figure 4b buckets the remote networks'
//! interfaces by RTT range, per IXP count.

use crate::classify::{RangeCounts, RttRange, REMOTENESS_THRESHOLD_MS};
use crate::detect::DetectionReport;
use rp_types::{Asn, IxpId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One identified network across the studied IXPs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkRecord {
    /// The network's ASN (identification key).
    pub asn: Asn,
    /// Every analyzed, identified interface of the network:
    /// (IXP, minimum RTT).
    pub interfaces: Vec<(IxpId, f64)>,
}

impl NetworkRecord {
    /// Number of distinct studied IXPs where the network peers.
    pub fn ixp_count(&self) -> usize {
        let mut ixps: Vec<IxpId> = self.interfaces.iter().map(|(i, _)| *i).collect();
        ixps.sort_unstable();
        ixps.dedup();
        ixps.len()
    }

    /// True when any interface is classified remote.
    pub fn is_remote(&self) -> bool {
        self.interfaces
            .iter()
            .any(|(_, rtt)| *rtt >= REMOTENESS_THRESHOLD_MS)
    }

    /// How many of the network's interfaces are classified remote.
    pub fn remote_interfaces(&self) -> usize {
        self.interfaces
            .iter()
            .filter(|(_, rtt)| *rtt >= REMOTENESS_THRESHOLD_MS)
            .count()
    }
}

/// The identification result over a detection report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Identification {
    /// Identified networks, ascending by ASN.
    pub networks: Vec<NetworkRecord>,
    /// How many analyzed interfaces mapped to an ASN.
    pub identified_interfaces: usize,
    /// How many analyzed interfaces failed identification.
    pub unidentified_interfaces: usize,
}

impl Identification {
    /// Group a detection report's analyzed interfaces by ASN.
    pub fn from_report(report: &DetectionReport) -> Identification {
        let mut by_asn: BTreeMap<Asn, Vec<(IxpId, f64)>> = BTreeMap::new();
        let mut identified = 0;
        let mut unidentified = 0;
        for study in &report.studies {
            for a in &study.analyzed {
                match a.asn {
                    Some(asn) => {
                        identified += 1;
                        by_asn
                            .entry(asn)
                            .or_default()
                            .push((study.ixp, a.min_rtt_ms));
                    }
                    None => unidentified += 1,
                }
            }
        }
        Identification {
            networks: by_asn
                .into_iter()
                .map(|(asn, interfaces)| NetworkRecord { asn, interfaces })
                .collect(),
            identified_interfaces: identified,
            unidentified_interfaces: unidentified,
        }
    }

    /// Networks with at least one remote interface.
    pub fn remote_networks(&self) -> impl Iterator<Item = &NetworkRecord> {
        self.networks.iter().filter(|n| n.is_remote())
    }

    /// Figure 4a: histogram of IXP counts. `only_remote` restricts the
    /// population to remotely peering networks. Returns `(ixp_count,
    /// number_of_networks)` pairs for every non-empty bucket, ascending.
    pub fn ixp_count_histogram(&self, only_remote: bool) -> Vec<(usize, usize)> {
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        for n in &self.networks {
            if only_remote && !n.is_remote() {
                continue;
            }
            *hist.entry(n.ixp_count()).or_insert(0) += 1;
        }
        hist.into_iter().collect()
    }

    /// Figure 4b: for each IXP count, the RTT-range tallies over *all*
    /// analyzed interfaces of the remotely peering networks with that
    /// count. Returns ascending `(ixp_count, counts)` pairs.
    pub fn remote_interface_ranges_by_ixp_count(&self) -> Vec<(usize, RangeCounts)> {
        let mut per_count: BTreeMap<usize, RangeCounts> = BTreeMap::new();
        for n in self.remote_networks() {
            let entry = per_count.entry(n.ixp_count()).or_default();
            for (_, rtt) in &n.interfaces {
                entry.add(RttRange::of(*rtt));
            }
        }
        per_count.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::DetectionStudy;
    use crate::filters::{AnalyzedInterface, FilterStats};

    fn iface(ip: &str, rtt: f64, asn: Option<u32>) -> AnalyzedInterface {
        AnalyzedInterface {
            ip: ip.parse().unwrap(),
            min_rtt_ms: rtt,
            asn: asn.map(Asn),
        }
    }

    fn report() -> DetectionReport {
        // Two IXPs; AS100 peers at both (one remote interface at IXP1),
        // AS200 peers at IXP0 only, one interface unidentified.
        DetectionReport {
            studies: vec![
                DetectionStudy {
                    ixp: IxpId(0),
                    analyzed: vec![
                        iface("10.0.2.2", 1.0, Some(100)),
                        iface("10.0.2.3", 2.0, Some(200)),
                        iface("10.0.2.4", 1.5, None),
                    ],
                    stats: FilterStats::default(),
                },
                DetectionStudy {
                    ixp: IxpId(1),
                    analyzed: vec![
                        iface("10.1.2.2", 35.0, Some(100)),
                        iface("10.1.2.3", 0.8, Some(100)),
                    ],
                    stats: FilterStats::default(),
                },
            ],
            stats: FilterStats::default(),
        }
    }

    #[test]
    fn groups_interfaces_by_asn() {
        let id = Identification::from_report(&report());
        assert_eq!(id.networks.len(), 2);
        assert_eq!(id.identified_interfaces, 4);
        assert_eq!(id.unidentified_interfaces, 1);
        let as100 = &id.networks[0];
        assert_eq!(as100.asn, Asn(100));
        assert_eq!(as100.interfaces.len(), 3);
        assert_eq!(as100.ixp_count(), 2);
        assert!(as100.is_remote());
        assert_eq!(as100.remote_interfaces(), 1);
    }

    #[test]
    fn histograms_split_by_remoteness() {
        let id = Identification::from_report(&report());
        assert_eq!(id.ixp_count_histogram(false), vec![(1, 1), (2, 1)]);
        assert_eq!(id.ixp_count_histogram(true), vec![(2, 1)]);
    }

    #[test]
    fn figure_4b_counts_all_interfaces_of_remote_networks() {
        let id = Identification::from_report(&report());
        let ranges = id.remote_interface_ranges_by_ixp_count();
        assert_eq!(ranges.len(), 1);
        let (count, tallies) = ranges[0];
        assert_eq!(count, 2);
        // AS100's three interfaces: two local, one intercountry.
        assert_eq!(tallies.as_array(), [2, 0, 1, 0]);
    }
}
