//! The section 4 offload study: how much transit-provider traffic the study
//! network could shift to (remote) peering, as a function of which IXPs it
//! reaches and who agrees to peer.

use crate::world::World;
use rayon::prelude::*;
use rp_topology::cone::{cone_union, NetworkSet};
use rp_topology::{AsType, PeeringPolicy};
use rp_types::{Bps, IxpId, NetworkId};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The four peer groups of section 4.2, from the lower bound (open-policy
/// networks auto-peering via route servers) to the upper bound (everyone,
/// restrictive policies included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeerGroup {
    /// Peer group 1: all open policies.
    Open,
    /// Peer group 2: open plus the 10 selective networks with the largest
    /// offload potentials.
    OpenTop10Selective,
    /// Peer group 3: all open and selective policies.
    OpenSelective,
    /// Peer group 4: all policies.
    All,
}

impl PeerGroup {
    /// All groups, widening.
    pub const ALL: [PeerGroup; 4] = [
        PeerGroup::Open,
        PeerGroup::OpenTop10Selective,
        PeerGroup::OpenSelective,
        PeerGroup::All,
    ];

    /// Stable position of the group in [`PeerGroup::ALL`], used to index
    /// per-group caches.
    pub fn index(self) -> usize {
        match self {
            PeerGroup::Open => 0,
            PeerGroup::OpenTop10Selective => 1,
            PeerGroup::OpenSelective => 2,
            PeerGroup::All => 3,
        }
    }

    /// The paper's label for the group.
    pub fn label(self) -> &'static str {
        match self {
            PeerGroup::Open => "all open policies",
            PeerGroup::OpenTop10Selective => "all open and top 10 selective policies",
            PeerGroup::OpenSelective => "all open and selective policies",
            PeerGroup::All => "all policies",
        }
    }
}

/// Which quantity the greedy expansion maximizes at each step. Figure 9
/// adds "the IXP with the largest remaining offload potential"; figure 10
/// adds "the IXP that reduces [the reachable-interface count] the most".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyMetric {
    /// Maximize offloaded transit traffic (figure 9).
    Traffic,
    /// Maximize newly peering-reachable address space (figure 10).
    Interfaces,
}

/// One step of the greedy IXP expansion (figures 9 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreedyStep {
    /// The IXP added at this step.
    pub ixp: IxpId,
    /// Remaining inbound transit traffic after realizing the potential.
    pub remaining_in: Bps,
    /// Remaining outbound transit traffic.
    pub remaining_out: Bps,
    /// Remaining address space reachable only through transit (figure 10's
    /// metric), in interfaces.
    pub remaining_interfaces: u64,
}

/// The offload study over a built world.
pub struct OffloadStudy<'w> {
    world: &'w World,
    /// Candidate-peer eligibility after the section 4.2 exclusion rules.
    eligible: Vec<bool>,
    /// The top-10 selective networks by standalone offload potential
    /// (members of peer group 2 beyond the open networks).
    top10_selective: Vec<NetworkId>,
    /// Memoized single-IXP reachable cones, one slot per [`PeerGroup`]
    /// (indexed by [`PeerGroup::index`]), each holding one [`NetworkSet`]
    /// per scene IXP (indexed by `IxpId::index`). Filled lazily on first
    /// use; every ranking, greedy sweep, and `potential` call for a group
    /// then reuses the same 65 cones instead of recomputing them.
    cones: [OnceLock<Vec<NetworkSet>>; 4],
}

impl<'w> OffloadStudy<'w> {
    /// Apply the exclusion rules: the study network itself, its transit
    /// providers, every member of its home IXPs (tier-1s included, since
    /// they sit at ESpanix), and its GÉANT-partner NRENs.
    pub fn new(world: &'w World) -> Self {
        let _sp = rp_obs::span("core.offload.new");
        let topo = &world.topology;
        let mut eligible = vec![true; topo.len()];
        eligible[world.vantage.index()] = false;
        for &p in topo.providers(world.vantage) {
            eligible[p.index()] = false;
        }
        for &ixp in &world.home_ixps {
            for member in world.scene.ixp(ixp).member_network_ids() {
                eligible[member.index()] = false;
            }
        }
        for nren in topo.of_type(AsType::Nren) {
            eligible[nren.id.index()] = false;
        }

        let mut study = OffloadStudy {
            world,
            eligible,
            top10_selective: Vec::new(),
            cones: Default::default(),
        };
        study.top10_selective = study.compute_top10_selective();
        study
    }

    fn compute_top10_selective(&self) -> Vec<NetworkId> {
        // Candidates: eligible selective-policy members of any of the 65
        // IXPs, ranked by their standalone cone traffic.
        let mut candidates: Vec<NetworkId> = Vec::new();
        let mut seen = NetworkSet::new(self.world.topology.len());
        for ixp in &self.world.scene.ixps {
            for net in ixp.member_network_ids() {
                if self.eligible[net.index()]
                    && self.world.topology.node(net).policy == PeeringPolicy::Selective
                    && seen.insert(net)
                {
                    candidates.push(net);
                }
            }
        }
        let mut ranked: Vec<(f64, NetworkId)> = candidates
            .into_iter()
            .map(|net| {
                let cone = cone_union(&self.world.topology, &[net]);
                let (i, o) = self.cone_traffic(&cone);
                (i.0 + o.0, net)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        ranked.into_iter().take(10).map(|(_, net)| net).collect()
    }

    /// Does `net` belong to the peer group?
    pub fn in_group(&self, net: NetworkId, group: PeerGroup) -> bool {
        if !self.eligible[net.index()] {
            return false;
        }
        let policy = self.world.topology.node(net).policy;
        match group {
            PeerGroup::Open => policy == PeeringPolicy::Open,
            PeerGroup::OpenTop10Selective => {
                policy == PeeringPolicy::Open || self.top10_selective.contains(&net)
            }
            PeerGroup::OpenSelective => {
                matches!(policy, PeeringPolicy::Open | PeeringPolicy::Selective)
            }
            PeerGroup::All => true,
        }
    }

    /// The peer-group members at one IXP.
    pub fn members_in_group(&self, ixp: IxpId, group: PeerGroup) -> Vec<NetworkId> {
        self.world
            .scene
            .ixp(ixp)
            .member_network_ids()
            .into_iter()
            .filter(|&net| self.in_group(net, group))
            .collect()
    }

    /// Inbound/outbound traffic of every contributor inside `set`.
    fn cone_traffic(&self, set: &NetworkSet) -> (Bps, Bps) {
        let c = &self.world.contributions;
        let mut inb = Bps::ZERO;
        let mut out = Bps::ZERO;
        for net in set.iter() {
            inb += c.inbound[net.index()];
            out += c.outbound[net.index()];
        }
        (inb, out)
    }

    /// Address space of every network inside `set` that the study network
    /// currently reaches only through transit.
    fn cone_interfaces(&self, set: &NetworkSet) -> u64 {
        let topo = &self.world.topology;
        set.iter()
            .filter(|&net| self.world.view.uses_transit(topo, net))
            .map(|net| topo.node(net).address_space)
            .sum()
    }

    /// The memoized per-IXP cones for `group`, computed in parallel on
    /// first use (one IXP per worker).
    fn group_cones(&self, group: PeerGroup) -> &[NetworkSet] {
        let cell = &self.cones[group.index()];
        if let Some(cones) = cell.get() {
            rp_obs::counter!("core.offload.cone_cache.hits").inc();
            return cones;
        }
        rp_obs::counter!("core.offload.cone_cache.misses").inc();
        cell.get_or_init(|| {
            let sp = rp_obs::span("core.offload.cone_build");
            let parent = sp.path();
            self.world
                .scene
                .ixps
                .par_iter()
                .map(|x| {
                    let _sp = rp_obs::span_under(&parent, "core.offload.single_cone");
                    self.reachable_cone_uncached(&[x.id], group)
                })
                .collect()
        })
    }

    /// The cone (peers + their customer cones) reachable by peering with
    /// the group's members at `ixps`.
    ///
    /// Served from the per-`(IxpId, PeerGroup)` cone cache: a cone union
    /// over several IXPs' member sets equals the union of the single-IXP
    /// cones, so the cached sets compose exactly (asserted by the
    /// `cone_cache` property tests).
    pub fn reachable_cone(&self, ixps: &[IxpId], group: PeerGroup) -> NetworkSet {
        let cones = self.group_cones(group);
        let mut out = NetworkSet::new(self.world.topology.len());
        for &ixp in ixps {
            out.union_with(&cones[ixp.index()]);
        }
        out
    }

    /// Reference implementation of [`OffloadStudy::reachable_cone`] that recomputes the
    /// cone union from the member lists, bypassing the cache. Kept for the
    /// cache-consistency tests and the cached-vs-uncached benchmark.
    pub fn reachable_cone_uncached(&self, ixps: &[IxpId], group: PeerGroup) -> NetworkSet {
        let mut roots: Vec<NetworkId> = Vec::new();
        for &ixp in ixps {
            roots.extend(self.members_in_group(ixp, group));
        }
        cone_union(&self.world.topology, &roots)
    }

    /// Offload potential of reaching `ixps` (inbound, outbound).
    pub fn potential(&self, ixps: &[IxpId], group: PeerGroup) -> (Bps, Bps) {
        self.cone_traffic(&self.reachable_cone(ixps, group))
    }

    /// Figure 7: the offload potential at each single IXP, descending, with
    /// the potential under each peer group.
    ///
    /// Runs one IXP per worker over the cached cones; the final sort is
    /// over the complete row set, so the order (and its deterministic
    /// `IxpId` tie-break) is independent of scheduling.
    pub fn single_ixp_ranking(&self) -> Vec<(IxpId, [Bps; 4])> {
        let _sp = rp_obs::span("core.offload.ranking");
        let group_cones: [&[NetworkSet]; 4] =
            [0, 1, 2, 3].map(|k| self.group_cones(PeerGroup::ALL[k]));
        let mut rows: Vec<(IxpId, [Bps; 4])> = self
            .world
            .scene
            .ixps
            .par_iter()
            .map(|ixp| {
                let mut per_group = [Bps::ZERO; 4];
                for (k, per) in per_group.iter_mut().enumerate() {
                    let (i, o) = self.cone_traffic(&group_cones[k][ixp.id.index()]);
                    *per = i + o;
                }
                (ixp.id, per_group)
            })
            .collect();
        rows.sort_by(|a, b| {
            b.1[3]
                .partial_cmp(&a.1[3])
                .expect("finite")
                .then(a.0.cmp(&b.0))
        });
        rows
    }

    /// Figure 8: the offload potential remaining at `second` after fully
    /// realizing the potential at `first`.
    pub fn remaining_after(&self, first: IxpId, second: IxpId, group: PeerGroup) -> Bps {
        let realized = self.reachable_cone(&[first], group);
        let mut cone = self.reachable_cone(&[second], group);
        cone.subtract(&realized);
        let (i, o) = self.cone_traffic(&cone);
        i + o
    }

    /// Figures 9 and 10: greedily expand the reached-IXP set, at each step
    /// adding the IXP with the largest remaining traffic potential, and
    /// report the remaining transit traffic and remaining transit-only
    /// address space after each step.
    pub fn greedy(&self, group: PeerGroup, max_steps: usize) -> Vec<GreedyStep> {
        self.greedy_by(group, max_steps, GreedyMetric::Traffic)
    }

    /// Greedy expansion under an explicit step metric, over the cached
    /// per-IXP cones.
    pub fn greedy_by(
        &self,
        group: PeerGroup,
        max_steps: usize,
        metric: GreedyMetric,
    ) -> Vec<GreedyStep> {
        self.greedy_with_cones(max_steps, metric, self.group_cones(group))
    }

    /// [`OffloadStudy::greedy_by`] with the per-IXP cones recomputed from scratch,
    /// bypassing the cache. Kept for the cache-consistency tests and the
    /// cached-vs-uncached benchmark.
    pub fn greedy_by_uncached(
        &self,
        group: PeerGroup,
        max_steps: usize,
        metric: GreedyMetric,
    ) -> Vec<GreedyStep> {
        let cones: Vec<NetworkSet> = self
            .world
            .scene
            .ixps
            .iter()
            .map(|x| self.reachable_cone_uncached(&[x.id], group))
            .collect();
        self.greedy_with_cones(max_steps, metric, &cones)
    }

    /// One candidate's marginal value against the current coverage.
    fn marginal_gain(&self, cone: &NetworkSet, covered: &NetworkSet, metric: GreedyMetric) -> f64 {
        let mut gain_set = cone.clone();
        gain_set.subtract(covered);
        match metric {
            GreedyMetric::Traffic => {
                let (i, o) = self.cone_traffic(&gain_set);
                (i + o).0
            }
            GreedyMetric::Interfaces => self.cone_interfaces(&gain_set) as f64,
        }
    }

    fn greedy_with_cones(
        &self,
        max_steps: usize,
        metric: GreedyMetric,
        cones: &[NetworkSet],
    ) -> Vec<GreedyStep> {
        let _sp = rp_obs::span("core.offload.greedy");
        let topo = &self.world.topology;
        let mut covered = NetworkSet::new(topo.len());
        let mut remaining_in = self.world.contributions.total_inbound();
        let mut remaining_out = self.world.contributions.total_outbound();
        let mut remaining_if = self.total_transit_interfaces();
        let mut unchosen: Vec<IxpId> = self.world.scene.ixps.iter().map(|x| x.id).collect();

        // First-round gains for every candidate, one per worker. The
        // per-network values are non-negative and coverage only grows, so a
        // candidate's gain never increases across steps: `bound` (its most
        // recently computed gain) stays a valid upper bound for later
        // rounds, which is what lets the scan below skip candidates.
        let mut bound: Vec<f64> = unchosen
            .par_iter()
            .map(|&ixp| self.marginal_gain(&cones[ixp.index()], &covered, metric))
            .collect();

        let mut steps = Vec::new();
        for round in 0..max_steps.min(unchosen.len()) {
            // Lazy-greedy argmax, exact: scanning in candidate order with
            // best-so-far `g`, a candidate with `bound ≤ g` has true gain
            // ≤ g and could not have replaced the best under the serial
            // loop's strictly-greater rule — skipping it preserves both the
            // selection and the earliest-position tie-break bit for bit.
            let mut best: Option<(f64, usize)> = None;
            for pos in 0..unchosen.len() {
                if let Some((g, _)) = best {
                    if bound[pos] <= g {
                        continue;
                    }
                }
                // Round 0's bounds are this round's exact gains already.
                let gain = if round == 0 {
                    bound[pos]
                } else {
                    rp_obs::counter!("core.offload.greedy.reevaluations").inc();
                    let g = self.marginal_gain(&cones[unchosen[pos].index()], &covered, metric);
                    bound[pos] = g;
                    g
                };
                if best.map(|(g, _)| gain > g).unwrap_or(true) {
                    best = Some((gain, pos));
                }
            }
            let Some((_, pos)) = best else { break };
            let ixp = unchosen.remove(pos);
            bound.remove(pos);
            let mut gain_set = cones[ixp.index()].clone();
            gain_set.subtract(&covered);
            let (gi, go) = self.cone_traffic(&gain_set);
            let gif = self.cone_interfaces(&gain_set);
            covered.union_with(&cones[ixp.index()]);
            remaining_in = remaining_in - gi;
            remaining_out = remaining_out - go;
            remaining_if = remaining_if.saturating_sub(gif);
            steps.push(GreedyStep {
                ixp,
                remaining_in,
                remaining_out,
                remaining_interfaces: remaining_if,
            });
        }
        steps
    }

    /// Figure 10's starting point: total address space reachable only
    /// through the transit hierarchy before any IXP is reached.
    pub fn total_transit_interfaces(&self) -> u64 {
        let topo = &self.world.topology;
        topo.ids()
            .filter(|&net| self.world.view.uses_transit(topo, net))
            .map(|net| topo.node(net).address_space)
            .sum()
    }

    /// The number of distinct candidate peers across all IXPs (the paper's
    /// "2,192 networks" for peer group 4 at 65 IXPs).
    pub fn candidate_count(&self, group: PeerGroup) -> usize {
        let mut set = NetworkSet::new(self.world.topology.len());
        for ixp in &self.world.scene.ixps {
            for net in self.members_in_group(ixp.id, group) {
                set.insert(net);
            }
        }
        set.count()
    }

    /// Networks whose traffic is offloadable at 65 IXPs under the group —
    /// candidates plus their cones, intersected with contributors (the
    /// paper's "12,238 networks").
    pub fn offloadable_network_count(&self, group: PeerGroup) -> usize {
        let all: Vec<IxpId> = self.world.scene.ixps.iter().map(|x| x.id).collect();
        let cone = self.reachable_cone(&all, group);
        let c = &self.world.contributions;
        cone.iter()
            .filter(|net| c.inbound[net.index()].0 > 0.0 || c.outbound[net.index()].0 > 0.0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn study_world() -> World {
        World::build(&WorldConfig::test_scale(95))
    }

    #[test]
    fn exclusions_bind() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        assert!(!study.in_group(world.vantage, PeerGroup::All));
        for &p in world.topology.providers(world.vantage) {
            assert!(!study.in_group(p, PeerGroup::All), "transit provider {p}");
        }
        for t1 in world.topology.of_type(AsType::Tier1) {
            assert!(
                !study.in_group(t1.id, PeerGroup::All),
                "tier-1 {} at ESpanix",
                t1.asn
            );
        }
        for nren in world.topology.of_type(AsType::Nren) {
            assert!(!study.in_group(nren.id, PeerGroup::All), "GÉANT partner");
        }
    }

    #[test]
    fn peer_groups_nest() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let all: Vec<IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
        let mut last = Bps::ZERO;
        for group in PeerGroup::ALL {
            let (i, o) = study.potential(&all, group);
            let total = i + o;
            assert!(
                total.0 >= last.0 - 1e-6,
                "{group:?} shrank the potential: {total} < {last}"
            );
            last = total;
        }
    }

    #[test]
    fn offload_is_substantial_and_bounded() {
        // At test scale the 65 IXPs' memberships nearly saturate the tiny
        // topology, so the offloadable fraction approaches 1; the
        // paper-shape fraction (~25–33%) is asserted by the paper-scale
        // integration test. Here: substantial, and never exceeding the
        // transit totals.
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let all: Vec<IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
        let (inb, out) = study.potential(&all, PeerGroup::All);
        assert!(inb.0 <= world.contributions.total_inbound().0 + 1e-6);
        assert!(out.0 <= world.contributions.total_outbound().0 + 1e-6);
        let frac_in = inb.fraction_of(world.contributions.total_inbound());
        assert!(frac_in > 0.10, "inbound offload {frac_in}");
    }

    #[test]
    fn greedy_has_diminishing_returns() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let steps = study.greedy(PeerGroup::All, 20);
        assert!(steps.len() >= 10);
        let total = world.contributions.total_inbound() + world.contributions.total_outbound();
        let mut last_remaining = total;
        let mut last_gain = f64::INFINITY;
        for s in &steps {
            let remaining = s.remaining_in + s.remaining_out;
            let gain = last_remaining.0 - remaining.0;
            assert!(gain >= -1e-6, "remaining must not grow");
            assert!(
                gain <= last_gain + 1e-6,
                "greedy gains must not increase: {gain} after {last_gain}"
            );
            last_gain = gain;
            last_remaining = remaining;
        }
        // Early IXPs capture most of the achievable potential.
        let after5 = steps[4].remaining_in + steps[4].remaining_out;
        let at_end = steps.last().unwrap().remaining_in + steps.last().unwrap().remaining_out;
        let realized5 = total.0 - after5.0;
        let realized_all = total.0 - at_end.0;
        assert!(
            realized5 >= 0.75 * realized_all,
            "5 IXPs realize {realized5:.2e} of {realized_all:.2e}"
        );
    }

    #[test]
    fn second_ixp_overlap_shrinks_potential() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let ranking = study.single_ixp_ranking();
        let (first, _) = ranking[0];
        let (second, full) = ranking[1];
        let remaining = study.remaining_after(first, second, PeerGroup::All);
        assert!(
            remaining.0 <= full[3].0 + 1e-6,
            "remaining {remaining} exceeds full {}",
            full[3]
        );
    }

    #[test]
    fn interfaces_metric_starts_near_total_address_space() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let transit_if = study.total_transit_interfaces();
        let total = world.topology.total_address_space();
        let frac = transit_if as f64 / total as f64;
        // At test scale the address space is hyper-concentrated in a few
        // giants, and whichever of them end up as home-IXP peers leave the
        // transit links; at paper scale the fraction is ~0.85 (checked by
        // the end-to-end integration test).
        assert!(
            frac > 0.15 && frac <= 1.0,
            "transit-reachable fraction {frac}"
        );
    }

    #[test]
    fn candidate_counts_are_reasonable() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        let open = study.candidate_count(PeerGroup::Open);
        let all = study.candidate_count(PeerGroup::All);
        assert!(open > 0 && open < all, "open {open} vs all {all}");
        let offloadable = study.offloadable_network_count(PeerGroup::All);
        assert!(
            offloadable > all,
            "cones add networks: {offloadable} vs {all}"
        );
    }

    #[test]
    fn top10_selective_group_sits_between_bounds() {
        let world = study_world();
        let study = OffloadStudy::new(&world);
        assert!(study.top10_selective.len() <= 10);
        for &net in &study.top10_selective {
            assert_eq!(world.topology.node(net).policy, PeeringPolicy::Selective);
            assert!(study.in_group(net, PeerGroup::OpenTop10Selective));
            assert!(!study.in_group(net, PeerGroup::Open));
        }
    }
}
