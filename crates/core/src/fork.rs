//! Copy-on-write world forking and the delta log.
//!
//! Every consumer that perturbs a world — the check harness's faulted
//! arms, the offload member-add/remove invariant, benchmark what-ifs —
//! used to deep-clone the whole thing and re-probe every IXP from
//! scratch. A [`WorldFork`] replaces that with an arena-backed
//! copy-on-write child: the fork shares the parent's topology, registry,
//! routing-view, and contributions planes ([`std::sync::Arc`]) and every
//! per-IXP instance (`IxpScene.ixps` holds `Arc<IxpInstance>`), so
//! creating one costs refcount bumps, and applying a [`Delta`] copies
//! only the single instance it touches.
//!
//! ## The delta log and incremental recompute
//!
//! Each applied [`Delta`] is appended to the fork's log and its target
//! IXP recorded in the *dirty set*. Because a campaign probe of one IXP
//! ([`crate::Campaign::probe_ixp`]) reads only that IXP's instance plus
//! fork-invariant inputs (the world seed, scene-level constants, the
//! provider table, and campaign parameters), probe results for IXPs
//! outside the dirty set are bit-identical between parent and fork —
//! [`crate::Campaign::probe_all_incremental`] exploits exactly this,
//! re-probing the dirty IXPs and reusing the parent's samples elsewhere.
//! The differential harness in `rp-testkit` holds this to byte-identity
//! against a from-scratch rebuild for randomized delta sequences.
//!
//! ## What a delta may touch (and why the registry is off-limits)
//!
//! Deltas mutate *scene* state only: member rows and per-IXP metadata.
//! The registry plane is crawled once at [`World::build`] and shared
//! untouched by all forks — mirroring the in-place mutators it replaces
//! (`degrade_scene` makes rows stale by marking the *device* absent; the
//! registry keeps listing it, which is the point). A mutation that would
//! invalidate the registry, routing view, or contributions (re-homing
//! the vantage, adding peerings, changing generation rates) is not
//! expressible as a [`Delta`]; it requires a fresh [`World::build`].
//! That rule is what makes reuse sound: if a plane could drift, the
//! "unchanged" probes would be stale.
//!
//! ## Content-addressed fork keys
//!
//! A fork's world is keyed by `fingerprint(parent key, delta log)` —
//! deterministic, unlike [`World::mark_mutated`]'s one-shot nonces — so
//! two jobs that fork the same parent and apply the same deltas share
//! probe memo entries (`repro serve` forks hot pool worlds across jobs
//! this way).

use crate::memo;
use crate::world::World;
use rp_ixp::model::{Access, LgOperator, MemberInterface};
use rp_types::IxpId;
use std::collections::BTreeSet;

/// One recorded mutation of a forked world. Every variant names the IXP
/// it touches; nothing outside that instance changes.
#[derive(Debug, Clone, PartialEq)]
pub enum Delta {
    /// Append a member interface at the IXP's next subnet slot.
    MemberAdd {
        /// Target IXP.
        ixp: IxpId,
        /// The full interface row to append (callers build the ip with
        /// [`rp_ixp::model::IxpInstance::ip_for_slot`] for the next slot).
        member: MemberInterface,
    },
    /// Remove the IXP's highest-slot member (the inverse of `MemberAdd`).
    MemberRemove {
        /// Target IXP.
        ixp: IxpId,
    },
    /// Degrade one listing to a stale row: the registry keeps listing the
    /// address, but no device answers there any more.
    RowStale {
        /// Target IXP.
        ixp: IxpId,
        /// Member slot index.
        slot: u32,
    },
    /// Drop looking-glass servers, keeping only `keep`.
    LgDrop {
        /// Target IXP.
        ixp: IxpId,
        /// The surviving operator list.
        keep: &'static [LgOperator],
    },
    /// Change one interface's congestion pathology (the per-interface
    /// materialization of a pathology-rate change; scene-wide *rates*
    /// reshape the generator's random stream and need a rebuild).
    Pathology {
        /// Target IXP.
        ixp: IxpId,
        /// Member slot index.
        slot: u32,
        /// New bound of the extra uniform queueing delay per traversal, ms.
        congested_extra_ms: f64,
        /// New echo-request loss probability at the port.
        congested_drop: f64,
    },
    /// Re-provision one member's access tail at a new one-way delay (a
    /// port upgrade, or a downgrade if slower): the colo cross-connect
    /// delay for direct members, the local access tail for remote ones.
    PortUpgrade {
        /// Target IXP.
        ixp: IxpId,
        /// Member slot index.
        slot: u32,
        /// New one-way access delay in milliseconds.
        delay_ms: f64,
    },
}

impl Delta {
    /// The one IXP this delta dirties.
    pub fn touches(&self) -> IxpId {
        match *self {
            Delta::MemberAdd { ixp, .. }
            | Delta::MemberRemove { ixp }
            | Delta::RowStale { ixp, .. }
            | Delta::LgDrop { ixp, .. }
            | Delta::Pathology { ixp, .. }
            | Delta::PortUpgrade { ixp, .. } => ixp,
        }
    }
}

/// Apply one delta to a world in place, going through the scene's
/// copy-on-write seam. This is the *single* definition of what each
/// [`Delta`] means: [`WorldFork::apply`] uses it on the forked world, and
/// the differential harness's from-scratch reference applies the same
/// function to a fresh build — so the two paths cannot drift
/// semantically, only in what they recompute.
///
/// Does not touch the world's memo key; in-place callers must follow up
/// with [`World::mark_mutated`] (forks re-key from their delta log
/// instead).
pub fn apply_delta_in_place(world: &mut World, delta: &Delta) {
    match *delta {
        Delta::MemberAdd { ixp, member } => {
            world.scene.ixp_mut(ixp).members.push(member);
        }
        Delta::MemberRemove { ixp } => {
            world.scene.ixp_mut(ixp).members.pop();
        }
        Delta::RowStale { ixp, slot } => {
            world.scene.ixp_mut(ixp).members[slot as usize]
                .profile
                .absent = true;
        }
        Delta::LgDrop { ixp, keep } => {
            world.scene.ixp_mut(ixp).meta.lg = keep;
        }
        Delta::Pathology {
            ixp,
            slot,
            congested_extra_ms,
            congested_drop,
        } => {
            let m = &mut world.scene.ixp_mut(ixp).members[slot as usize];
            m.profile.congested_extra_ms = congested_extra_ms;
            m.profile.congested_drop = congested_drop;
        }
        Delta::PortUpgrade {
            ixp,
            slot,
            delay_ms,
        } => {
            let m = &mut world.scene.ixp_mut(ixp).members[slot as usize];
            match &mut m.access {
                Access::Direct { colo_delay_ms, .. } => *colo_delay_ms = delay_ms,
                Access::Remote {
                    access_delay_ms, ..
                } => *access_delay_ms = delay_ms,
            }
        }
    }
}

/// The deterministic content address of a fork: the parent's key plus the
/// delta log. Same parent, same deltas, same key — across jobs and
/// processes.
fn fork_key(parent: u64, deltas: &[Delta]) -> u64 {
    memo::fingerprint(&("fork", parent, deltas))
}

/// A copy-on-write child of a [`World`], carrying its delta log and dirty
/// set. Create one with [`World::fork`].
#[derive(Clone)]
pub struct WorldFork {
    parent_key: u64,
    world: World,
    deltas: Vec<Delta>,
    dirty: BTreeSet<IxpId>,
}

impl WorldFork {
    pub(crate) fn new(parent: &World) -> WorldFork {
        rp_obs::counter!("core.fork.forks").add(1);
        WorldFork {
            parent_key: parent.fingerprint(),
            world: parent.clone(),
            deltas: Vec::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// Apply a delta: mutate (copy-on-write) the one instance it touches,
    /// append it to the log, dirty its IXP, and re-key the world from the
    /// log.
    pub fn apply(&mut self, delta: Delta) {
        apply_delta_in_place(&mut self.world, &delta);
        self.dirty.insert(delta.touches());
        self.deltas.push(delta);
        self.world.memo_key = fork_key(self.parent_key, &self.deltas);
        rp_obs::counter!("core.fork.deltas_applied").add(1);
    }

    /// Replay another fork's delta log onto this fork, in order. Both
    /// forks must descend from the same parent; the result is as if the
    /// other fork's deltas had been applied here directly (the
    /// fork-commutativity invariant in `rp-testkit` checks this merge
    /// against the single-fork sequence).
    pub fn absorb(&mut self, other: &WorldFork) {
        debug_assert_eq!(
            self.parent_key, other.parent_key,
            "absorb requires forks of the same parent"
        );
        for d in other.deltas() {
            self.apply(d.clone());
        }
    }

    /// The forked world (parent planes plus applied deltas).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Unwrap into the forked [`World`], keeping its fork key.
    pub fn into_world(self) -> World {
        self.world
    }

    /// The parent's content address at fork time.
    pub fn parent_fingerprint(&self) -> u64 {
        self.parent_key
    }

    /// The fork's current content address (the parent's key while the
    /// log is empty).
    pub fn fingerprint(&self) -> u64 {
        self.world.fingerprint()
    }

    /// IXPs whose probe results may differ from the parent's.
    pub fn dirty_ixps(&self) -> &BTreeSet<IxpId> {
        &self.dirty
    }

    /// The applied deltas, in application order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use rp_ixp::model::{IxpInstance, ListingInfo, ResponderProfile};
    use rp_types::NetworkId;

    fn world() -> World {
        World::build(&WorldConfig::test_scale(91))
    }

    fn add_member_delta(w: &World, ixp: IxpId) -> Delta {
        let slot = w.scene.ixp(ixp).members.len() as u32;
        Delta::MemberAdd {
            ixp,
            member: MemberInterface {
                network: NetworkId(0),
                ip: IxpInstance::ip_for_slot(ixp, slot),
                access: Access::Direct {
                    colo_delay_ms: 0.3,
                    site: 0,
                },
                profile: ResponderProfile::default(),
                listing: ListingInfo {
                    listed: false,
                    identifiable: false,
                    asn_change: false,
                },
            },
        }
    }

    #[test]
    fn fork_shares_planes_and_instances_until_written() {
        let w = world();
        let ixp = w.studied_ixps()[0];
        let other = w.studied_ixps()[1];
        let mut f = w.fork();
        assert!(std::sync::Arc::ptr_eq(&w.topology, &f.world().topology));
        assert!(w.scene.shares_ixp_with(&f.world().scene, ixp));
        f.apply(add_member_delta(&w, ixp));
        assert!(
            !w.scene.shares_ixp_with(&f.world().scene, ixp),
            "written instance must be copied"
        );
        assert!(
            w.scene.shares_ixp_with(&f.world().scene, other),
            "untouched instance stays shared"
        );
    }

    #[test]
    fn parent_is_unchanged_by_child_mutation() {
        let w = world();
        let ixp = w.studied_ixps()[0];
        let before = memo::fingerprint(&w.scene.ixp(ixp));
        let mut f = w.fork();
        f.apply(add_member_delta(&w, ixp));
        f.apply(Delta::RowStale { ixp, slot: 0 });
        assert_eq!(memo::fingerprint(&w.scene.ixp(ixp)), before);
        assert_eq!(
            f.world().scene.ixp(ixp).members.len(),
            w.scene.ixp(ixp).members.len() + 1
        );
    }

    #[test]
    fn fork_keys_are_deterministic_and_distinct_from_parent() {
        let w = world();
        let ixp = w.studied_ixps()[0];
        let mut a = w.fork();
        let mut b = w.fork();
        assert_eq!(
            a.fingerprint(),
            w.fingerprint(),
            "empty fork aliases parent"
        );
        a.apply(add_member_delta(&w, ixp));
        b.apply(add_member_delta(&w, ixp));
        assert_eq!(a.fingerprint(), b.fingerprint(), "same deltas, same key");
        assert_ne!(a.fingerprint(), w.fingerprint());
        b.apply(Delta::RowStale { ixp, slot: 0 });
        assert_ne!(a.fingerprint(), b.fingerprint(), "diverged logs re-key");
    }

    #[test]
    fn deltas_mean_the_same_in_place() {
        let w = world();
        let ixp = w.studied_ixps()[0];
        let deltas = [
            add_member_delta(&w, ixp),
            Delta::RowStale { ixp, slot: 2 },
            Delta::PortUpgrade {
                ixp,
                slot: 1,
                delay_ms: 0.05,
            },
            Delta::Pathology {
                ixp,
                slot: 3,
                congested_extra_ms: 4.0,
                congested_drop: 0.3,
            },
            Delta::LgDrop {
                ixp,
                keep: &[LgOperator::Pch],
            },
            Delta::MemberRemove { ixp },
        ];
        let mut f = w.fork();
        for d in &deltas {
            f.apply(d.clone());
        }
        let mut in_place = w.clone();
        for d in &deltas {
            apply_delta_in_place(&mut in_place, d);
        }
        in_place.mark_mutated();
        assert_eq!(
            memo::fingerprint(&f.world().scene.ixp(ixp)),
            memo::fingerprint(&in_place.scene.ixp(ixp)),
            "fork and in-place application agree byte-for-byte"
        );
        assert_ne!(
            f.fingerprint(),
            in_place.fingerprint(),
            "fork keys are deterministic, nonces are unique"
        );
    }

    #[test]
    fn absorb_equals_sequential_application() {
        let w = world();
        let ixp_a = w.studied_ixps()[0];
        let ixp_b = w.studied_ixps()[1];
        let da = Delta::RowStale {
            ixp: ixp_a,
            slot: 0,
        };
        let db = Delta::PortUpgrade {
            ixp: ixp_b,
            slot: 0,
            delay_ms: 0.07,
        };
        let mut seq = w.fork();
        seq.apply(da.clone());
        seq.apply(db.clone());
        let mut fa = w.fork();
        fa.apply(da);
        let mut fb = w.fork();
        fb.apply(db);
        fa.absorb(&fb);
        assert_eq!(fa.fingerprint(), seq.fingerprint());
        assert_eq!(
            memo::fingerprint(&fa.world().scene),
            memo::fingerprint(&seq.world().scene)
        );
        assert_eq!(fa.dirty_ixps(), seq.dirty_ixps());
    }
}
