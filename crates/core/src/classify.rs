//! Remoteness classification: the 10 ms threshold and the RTT ranges of
//! figures 2 and 3.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The conservative remoteness threshold (section 3.1): no directly peering
/// network was observed with a minimum RTT above 10 ms, so interfaces at or
/// above it are classified remote. The deliberately high value trades false
/// negatives (nearby remote peers stay undetected) for near-zero false
/// positives.
pub const REMOTENESS_THRESHOLD_MS: f64 = 10.0;

/// The four minimum-RTT ranges of figure 3, roughly corresponding to
/// intra-metro, inter-city, inter-country, and inter-continental distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RttRange {
    /// `[0 ms, 10 ms)` — consistent with direct peering.
    Local,
    /// `[10 ms, 20 ms)` — inter-city scale.
    Intercity,
    /// `[20 ms, 50 ms)` — inter-country scale.
    Intercountry,
    /// `[50 ms, ∞)` — inter-continental scale.
    Intercontinental,
}

impl RttRange {
    /// All ranges in ascending RTT order.
    pub const ALL: [RttRange; 4] = [
        RttRange::Local,
        RttRange::Intercity,
        RttRange::Intercountry,
        RttRange::Intercontinental,
    ];

    /// Classify a minimum RTT.
    pub fn of(min_rtt_ms: f64) -> RttRange {
        if min_rtt_ms < REMOTENESS_THRESHOLD_MS {
            RttRange::Local
        } else if min_rtt_ms < 20.0 {
            RttRange::Intercity
        } else if min_rtt_ms < 50.0 {
            RttRange::Intercountry
        } else {
            RttRange::Intercontinental
        }
    }

    /// True for every range at or above the remoteness threshold.
    pub fn is_remote(self) -> bool {
        self != RttRange::Local
    }
}

impl fmt::Display for RttRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RttRange::Local => "RTT < 10 ms",
            RttRange::Intercity => "10 ms <= RTT < 20 ms",
            RttRange::Intercountry => "20 ms <= RTT < 50 ms",
            RttRange::Intercontinental => "RTT >= 50 ms",
        };
        f.write_str(s)
    }
}

/// Counts of analyzed interfaces per RTT range (one bar of figure 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeCounts {
    /// Interfaces below the remoteness threshold.
    pub local: usize,
    /// Interfaces in `[10 ms, 20 ms)`.
    pub intercity: usize,
    /// Interfaces in `[20 ms, 50 ms)`.
    pub intercountry: usize,
    /// Interfaces at or above 50 ms.
    pub intercontinental: usize,
}

impl RangeCounts {
    /// Tally a set of minimum RTTs.
    pub fn tally(min_rtts_ms: impl Iterator<Item = f64>) -> RangeCounts {
        let mut c = RangeCounts::default();
        for r in min_rtts_ms {
            c.add(RttRange::of(r));
        }
        c
    }

    /// Add one classified interface.
    pub fn add(&mut self, range: RttRange) {
        match range {
            RttRange::Local => self.local += 1,
            RttRange::Intercity => self.intercity += 1,
            RttRange::Intercountry => self.intercountry += 1,
            RttRange::Intercontinental => self.intercontinental += 1,
        }
    }

    /// Total interfaces tallied.
    pub fn total(&self) -> usize {
        self.local + self.intercity + self.intercountry + self.intercontinental
    }

    /// Interfaces at or above the remoteness threshold.
    pub fn remote(&self) -> usize {
        self.intercity + self.intercountry + self.intercontinental
    }

    /// Counts in [`RttRange::ALL`] order.
    pub fn as_array(&self) -> [usize; 4] {
        [
            self.local,
            self.intercity,
            self.intercountry,
            self.intercontinental,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper_ranges() {
        assert_eq!(RttRange::of(0.0), RttRange::Local);
        assert_eq!(RttRange::of(9.999), RttRange::Local);
        assert_eq!(RttRange::of(10.0), RttRange::Intercity);
        assert_eq!(RttRange::of(19.999), RttRange::Intercity);
        assert_eq!(RttRange::of(20.0), RttRange::Intercountry);
        assert_eq!(RttRange::of(49.999), RttRange::Intercountry);
        assert_eq!(RttRange::of(50.0), RttRange::Intercontinental);
        assert_eq!(RttRange::of(300.0), RttRange::Intercontinental);
    }

    #[test]
    fn remoteness_follows_threshold() {
        assert!(!RttRange::of(5.0).is_remote());
        assert!(RttRange::of(REMOTENESS_THRESHOLD_MS).is_remote());
        assert!(RttRange::of(100.0).is_remote());
    }

    #[test]
    fn tally_counts_and_totals() {
        let c = RangeCounts::tally([1.0, 2.0, 12.0, 25.0, 60.0, 80.0].into_iter());
        assert_eq!(c.as_array(), [2, 1, 1, 2]);
        assert_eq!(c.total(), 6);
        assert_eq!(c.remote(), 4);
    }
}
