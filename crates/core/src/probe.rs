//! Probe sample containers — the raw material the filters consume.

use rp_ixp::LgOperator;
use rp_types::SimTime;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One accepted ping reply as seen by an LG server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the echo request left the LG server.
    pub sent_at: SimTime,
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// TTL field of the reply as observed at the LG server.
    pub ttl: u8,
}

/// All probe results for one listed interface at one IXP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceSamples {
    /// The probed address.
    pub ip: Ipv4Addr,
    /// Replies grouped by the LG server that collected them, in the order
    /// the scene lists the IXP's LG operators.
    pub per_lg: Vec<(LgOperator, Vec<Sample>)>,
    /// Probes sent but never answered (per LG, same order).
    pub unanswered: Vec<(LgOperator, u32)>,
}

impl InterfaceSamples {
    /// Total replies across LG servers.
    pub fn reply_count(&self) -> usize {
        self.per_lg.iter().map(|(_, s)| s.len()).sum()
    }

    /// Iterate over all replies regardless of LG server.
    pub fn all(&self) -> impl Iterator<Item = &Sample> {
        self.per_lg.iter().flat_map(|(_, s)| s.iter())
    }

    /// Minimum RTT across all replies, `None` when there are none.
    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.all().map(|s| s.rtt_ms).fold(None, |acc, r| match acc {
            None => Some(r),
            Some(a) => Some(a.min(r)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rtt: f64, ttl: u8) -> Sample {
        Sample {
            sent_at: SimTime::ZERO,
            rtt_ms: rtt,
            ttl,
        }
    }

    #[test]
    fn aggregation_over_lgs() {
        let s = InterfaceSamples {
            ip: "10.0.2.2".parse().unwrap(),
            per_lg: vec![
                (LgOperator::Pch, vec![sample(1.5, 255), sample(0.9, 255)]),
                (LgOperator::RipeNcc, vec![sample(1.2, 255)]),
            ],
            unanswered: vec![(LgOperator::Pch, 3), (LgOperator::RipeNcc, 0)],
        };
        assert_eq!(s.reply_count(), 3);
        assert_eq!(s.min_rtt_ms(), Some(0.9));
        assert_eq!(s.all().count(), 3);
    }

    #[test]
    fn empty_samples_have_no_min() {
        let s = InterfaceSamples {
            ip: "10.0.2.3".parse().unwrap(),
            per_lg: vec![(LgOperator::Pch, vec![])],
            unanswered: vec![(LgOperator::Pch, 40)],
        };
        assert_eq!(s.min_rtt_ms(), None);
        assert_eq!(s.reply_count(), 0);
    }
}
