//! Benchmarks for the section 5 model: closed forms (eqs. 11/13), the
//! viability condition (eq. 14), the numeric cross-validator, and the
//! decay fit of section 5.1.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_econ::optimum::minimize_scalar;
use rp_econ::{fit_decay, optimal_direct, optimal_remote, viability_margin, CostParams};
use std::hint::black_box;

fn bench_closed_forms(c: &mut Criterion) {
    let params = CostParams::example();
    c.bench_function("econ/eq11_optimal_direct", |b| {
        b.iter(|| optimal_direct(black_box(&params)))
    });
    c.bench_function("econ/eq13_optimal_remote", |b| {
        b.iter(|| optimal_remote(black_box(&params)))
    });
    c.bench_function("econ/eq14_viability_margin", |b| {
        b.iter(|| viability_margin(black_box(&params)))
    });
    c.bench_function("econ/numeric_minimizer_referee", |b| {
        b.iter(|| minimize_scalar(|n| params.cost_direct_only(n), 0.0, 50.0, 1e-9))
    });
}

fn bench_fit(c: &mut Criterion) {
    let curve: Vec<f64> = (0..30).map(|k| (-0.35 * k as f64).exp()).collect();
    c.bench_function("econ/fit_decay_30_points", |b| {
        b.iter(|| fit_decay(black_box(&curve)))
    });
}

fn bench_parameter_sweep(c: &mut Criterion) {
    // The repro binary's econ sweep: full optimum + viability over a grid.
    c.bench_function("econ/sweep_1000_parameterizations", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..10 {
                for j in 0..10 {
                    for k in 0..10 {
                        let params = CostParams {
                            b: 0.1 + i as f64 * 0.2,
                            g: 0.05 + j as f64 * 0.04,
                            h: 0.01 + k as f64 * 0.003,
                            ..CostParams::example()
                        };
                        acc += optimal_remote(&params).cost + viability_margin(&params);
                    }
                }
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_closed_forms,
    bench_fit,
    bench_parameter_sweep
);
criterion_main!(benches);
