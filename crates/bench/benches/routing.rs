//! Benchmarks for the BGP substrate: route propagation and the forwarding
//! view the offload study consumes.

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bgp::{propagate, propagate_iterative, RoutingView};
use rp_topology::{generate, AsType, TopologyConfig};
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let small = generate(&TopologyConfig::test_scale(5));
    let origin = small.of_type(AsType::Nren).next().unwrap().id;

    c.bench_function("bgp/propagate_staged_400as", |b| {
        b.iter(|| propagate(black_box(&small), black_box(origin)))
    });
    c.bench_function("bgp/propagate_iterative_400as", |b| {
        b.iter(|| propagate_iterative(black_box(&small), black_box(origin)))
    });

    // The paper-scale graph the experiments actually route over.
    let large = generate(&TopologyConfig::paper_scale(5));
    let origin_large = large.of_type(AsType::Nren).next().unwrap().id;
    let mut g = c.benchmark_group("bgp/paper_scale");
    g.sample_size(10);
    g.bench_function("propagate_staged_31k_as", |b| {
        b.iter(|| propagate(black_box(&large), black_box(origin_large)))
    });
    g.bench_function("routing_view_31k_as", |b| {
        b.iter(|| RoutingView::new(black_box(&large), black_box(origin_large)))
    });
    g.finish();
}

fn bench_topology_generation(c: &mut Criterion) {
    c.bench_function("topology/generate_test_scale", |b| {
        b.iter(|| generate(black_box(&TopologyConfig::test_scale(9))))
    });
    let mut g = c.benchmark_group("topology/paper_scale");
    g.sample_size(10);
    g.bench_function("generate_31k_as", |b| {
        b.iter(|| generate(black_box(&TopologyConfig::paper_scale(9))))
    });
    g.finish();
}

criterion_group!(benches, bench_propagation, bench_topology_generation);
criterion_main!(benches);
