//! Benchmarks for the extension analyses: traceroute surveys, relationship
//! inference, the flattening computation, and the integer economics.

use criterion::{criterion_group, criterion_main, Criterion};
use remote_peering::campaign::Campaign;
use remote_peering::flattening::flattening_analysis;
use remote_peering::offload::{OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};
use rp_bgp::{collect_paths, infer_gao};
use rp_econ::{optimal_integer, optimal_joint, CostParams};
use rp_topology::AsType;
use std::hint::black_box;

fn bench_traceroute(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let campaign = Campaign::default_paper();
    let ixp = world.studied_ixps()[0];
    c.bench_function("extensions/traceroute_survey_one_ixp", |b| {
        b.iter(|| campaign.traceroute_survey(black_box(&world), ixp, 4))
    });
}

fn bench_inference(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let collectors: Vec<_> = world
        .topology
        .of_type(AsType::Transit)
        .take(3)
        .map(|a| a.id)
        .collect();
    c.bench_function("extensions/collect_paths_3_collectors", |b| {
        b.iter(|| collect_paths(black_box(&world.topology), black_box(&collectors)))
    });
    let paths = collect_paths(&world.topology, &collectors);
    c.bench_function("extensions/infer_gao", |b| {
        b.iter(|| infer_gao(black_box(&paths)))
    });
}

fn bench_flattening(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let study = OffloadStudy::new(&world);
    c.bench_function("extensions/flattening_analysis_5_ixps", |b| {
        b.iter(|| flattening_analysis(black_box(&world), &study, PeerGroup::All, 5))
    });
}

fn bench_integer_econ(c: &mut Criterion) {
    let params = CostParams::example();
    c.bench_function("extensions/optimal_joint", |b| {
        b.iter(|| optimal_joint(black_box(&params)))
    });
    c.bench_function("extensions/optimal_integer", |b| {
        b.iter(|| optimal_integer(black_box(&params)))
    });
}

criterion_group!(
    benches,
    bench_traceroute,
    bench_inference,
    bench_flattening,
    bench_integer_econ
);
criterion_main!(benches);
