//! Benchmarks for the section 3 pipeline: world construction, the probing
//! campaign (Table 1 / figures 2–4 machinery), and the six filters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use remote_peering::campaign::Campaign;
use remote_peering::detect::{DetectionReport, DetectionStudy};
use remote_peering::filters::{apply, FilterConfig};
use remote_peering::probe::{InterfaceSamples, Sample};
use remote_peering::world::{World, WorldConfig};
use rp_ixp::registry::ListingEntry;
use rp_ixp::LgOperator;
use rp_types::{Asn, SimTime};
use std::hint::black_box;

fn bench_world_build(c: &mut Criterion) {
    c.bench_function("world/build_test_scale", |b| {
        b.iter(|| World::build(black_box(&WorldConfig::test_scale(42))))
    });
}

fn bench_campaign(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let campaign = Campaign::default_paper();
    let ams = world.studied_ixps()[0];

    // One IXP end to end: build the packet-level scene, run ~4 months of
    // probing, collect samples (the Table 1 unit of work).
    c.bench_function("campaign/probe_one_ixp", |b| {
        b.iter(|| campaign.probe_ixp(black_box(&world), black_box(ams)))
    });

    // Filters + classification over pre-collected samples.
    let samples = campaign.probe_ixp(&world, ams);
    c.bench_function("campaign/analyze_one_ixp", |b| {
        b.iter(|| DetectionStudy::analyze_ixp(black_box(&world), ams, black_box(&samples)))
    });

    // The full 22-IXP study (figures 2-4 input).
    c.bench_function("campaign/full_detection_report", |b| {
        b.iter(|| DetectionReport::run(black_box(&world), black_box(&campaign)))
    });
}

fn bench_filters(c: &mut Criterion) {
    // Filter throughput on a healthy interface with the paper's reply
    // volumes (the hot path of the analysis stage).
    let samples = InterfaceSamples {
        ip: "10.0.2.2".parse().unwrap(),
        per_lg: vec![
            (
                LgOperator::Pch,
                (0..54)
                    .map(|k| Sample {
                        sent_at: SimTime(k as u64 * 1_000_000),
                        rtt_ms: 1.0 + 0.01 * k as f64,
                        ttl: 255,
                    })
                    .collect(),
            ),
            (
                LgOperator::RipeNcc,
                (0..21)
                    .map(|k| Sample {
                        sent_at: SimTime(k as u64 * 2_000_000),
                        rtt_ms: 1.1 + 0.01 * k as f64,
                        ttl: 255,
                    })
                    .collect(),
            ),
        ],
        unanswered: vec![(LgOperator::Pch, 1), (LgOperator::RipeNcc, 0)],
    };
    let entry = ListingEntry {
        ip: "10.0.2.2".parse().unwrap(),
        asns: vec![Asn(64500)],
    };
    let cfg = FilterConfig::default();
    c.bench_function("filters/six_filters_one_interface", |b| {
        b.iter_batched(
            || samples.clone(),
            |s| apply(black_box(&s), black_box(&entry), black_box(&cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_world_build, bench_campaign, bench_filters);
criterion_main!(benches);
