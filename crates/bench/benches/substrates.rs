//! Benchmarks for the remaining substrates: the packet simulator's event
//! loop and the traffic model (figures 5a/5b machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use rp_bgp::RoutingView;
use rp_netsim::{DelayModel, Network, RouterBehavior};
use rp_topology::{generate, AsType, TopologyConfig};
use rp_traffic::model::{contributions, TrafficConfig};
use rp_traffic::netflow::percentile_95;
use rp_traffic::series::{aggregate_series, SeriesParams};
use rp_types::{Bps, SimDuration, SimTime};
use std::hint::black_box;
use std::net::Ipv4Addr;

/// A star of 200 member routers behind one fabric switch, pinged 10 times
/// each — the netsim workload shape of one small IXP.
fn bench_netsim(c: &mut Criterion) {
    c.bench_function("netsim/star_200_members_2000_pings", |b| {
        b.iter(|| {
            let mut net = Network::new(7);
            let fabric = net.add_switch();
            let lg = net.add_host();
            let (_, lgp) = net.connect(fabric, lg, DelayModel::with_one_way_ms(0.05));
            net.bind_host(lg, lgp, Ipv4Addr::new(10, 0, 0, 1));
            let mut targets = Vec::new();
            for k in 0..200u32 {
                let r = net.add_router(RouterBehavior::default());
                let (_, rp) = net.connect(fabric, r, DelayModel::with_one_way_ms(0.4));
                let ip = Ipv4Addr::new(10, 0, (2 + k / 200) as u8, (2 + k % 200) as u8);
                net.bind_router(r, rp, ip);
                targets.push(ip);
            }
            for (i, &t) in targets.iter().enumerate() {
                for q in 0..10u64 {
                    net.plan_ping(
                        lg,
                        SimTime::ZERO + SimDuration::from_secs(q * 200 + i as u64),
                        t,
                    );
                }
            }
            net.run_to_completion();
            black_box(net.events_processed())
        })
    });
}

fn bench_traffic(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::test_scale(3));
    let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
    let view = RoutingView::new(&topo, vantage);
    let cfg = TrafficConfig::default();

    c.bench_function("traffic/fig5a_contributions", |b| {
        b.iter(|| contributions(black_box(&topo), black_box(&view), black_box(&cfg)))
    });

    let contrib = contributions(&topo, &view, &cfg);
    let rates: Vec<(Bps, u16)> = topo
        .ids()
        .filter(|id| contrib.inbound[id.index()].0 > 0.0)
        .map(|id| (contrib.inbound[id.index()], topo.node(id).home_city))
        .collect();
    let params = SeriesParams::default();
    c.bench_function("traffic/fig5b_month_of_5min_bins", |b| {
        b.iter(|| aggregate_series(rates.iter().copied(), black_box(&params)))
    });

    let series = aggregate_series(rates.iter().copied(), &params);
    c.bench_function("traffic/95th_percentile_billing", |b| {
        b.iter(|| percentile_95(black_box(&series)))
    });
}

criterion_group!(benches, bench_netsim, bench_traffic);
criterion_main!(benches);
