//! Serial-vs-parallel benchmarks for the campaign and the offload sweeps.
//!
//! Two comparisons, matching the acceptance criteria of the parallel
//! execution work:
//!
//! - `campaign/*`: [`Campaign::probe_all`] (one IXP per worker) against
//!   [`Campaign::probe_all_serial`] — the speedup target is ≥2× on 4 cores.
//! - `greedy/*`: [`OffloadStudy::greedy_by`] over the memoized per-IXP cone
//!   cache against [`OffloadStudy::greedy_by_uncached`], which recomputes
//!   every cone from the member lists — the cache target is ≥5×.
//!
//! Each pairing runs on identical inputs, and the parallel/cached results
//! are asserted equal to the serial/uncached ones before timing starts, so
//! the numbers compare like with like.

use criterion::{criterion_group, criterion_main, Criterion};
use remote_peering::campaign::Campaign;
use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};
use std::hint::black_box;

fn bench_campaign(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let campaign = Campaign::default_paper();

    // Determinism guard: the timed paths must agree before they race.
    assert_eq!(
        campaign.probe_all(&world),
        campaign.probe_all_serial(&world),
        "parallel probe_all diverged from serial"
    );

    c.bench_function("campaign/probe_all_serial", |b| {
        b.iter(|| campaign.probe_all_serial(black_box(&world)))
    });
    c.bench_function(
        &format!(
            "campaign/probe_all_parallel_{}t",
            rayon::current_num_threads()
        ),
        |b| b.iter(|| campaign.probe_all(black_box(&world))),
    );
}

fn bench_greedy(c: &mut Criterion) {
    // Paper scale: recomputing the 65 per-IXP cones walks a ~31k-AS
    // topology from thousands of member roots, which is what the cache
    // amortizes away across the fig 7/8/9/10 sweeps.
    let world = World::build(&WorldConfig::paper_scale(42));
    let study = OffloadStudy::new(&world);

    assert_eq!(
        study.greedy_by(PeerGroup::All, 30, GreedyMetric::Traffic),
        study.greedy_by_uncached(PeerGroup::All, 30, GreedyMetric::Traffic),
        "cached greedy diverged from uncached"
    );

    c.bench_function("greedy/uncached_30_steps", |b| {
        b.iter(|| study.greedy_by_uncached(PeerGroup::All, 30, GreedyMetric::Traffic))
    });
    // Warm the cone cache outside the timing loop so the bench measures
    // steady-state sweeps, as the repro binary experiences them.
    study.greedy_by(PeerGroup::All, 1, GreedyMetric::Traffic);
    c.bench_function("greedy/cached_30_steps", |b| {
        b.iter(|| study.greedy_by(PeerGroup::All, 30, GreedyMetric::Traffic))
    });

    c.bench_function("ranking/fig7_cached", |b| {
        b.iter(|| study.single_ixp_ranking())
    });

    // The cache's core win, isolated: a 65-IXP cone as a union of cached
    // bitsets vs a fresh graph traversal from every member root.
    let all: Vec<rp_types::IxpId> = world.scene.ixps.iter().map(|x| x.id).collect();
    c.bench_function("cones/full_set_cached", |b| {
        b.iter(|| study.reachable_cone(black_box(&all), PeerGroup::All))
    });
    c.bench_function("cones/full_set_uncached", |b| {
        b.iter(|| study.reachable_cone_uncached(black_box(&all), PeerGroup::All))
    });
}

fn bench_obs_overhead(c: &mut Criterion) {
    // Overhead budget for the rp-obs instrumentation threaded through the
    // campaign: <2% with collection enabled, unmeasurable when disabled
    // (the disabled path is one relaxed atomic load per site).
    let world = World::build(&WorldConfig::test_scale(42));
    let campaign = Campaign::default_paper();

    rp_obs::disable();
    c.bench_function("obs/probe_all_disabled", |b| {
        b.iter(|| campaign.probe_all(black_box(&world)))
    });
    rp_obs::enable();
    c.bench_function("obs/probe_all_enabled", |b| {
        b.iter(|| campaign.probe_all(black_box(&world)))
    });
    rp_obs::disable();
}

criterion_group!(benches, bench_campaign, bench_greedy, bench_obs_overhead);
criterion_main!(benches);
