//! Benchmarks for the section 4 machinery: cone unions, per-IXP potentials
//! (figure 7), the overlap analysis (figure 8), and the greedy expansions
//! (figures 9 and 10).

use criterion::{criterion_group, criterion_main, Criterion};
use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::world::{World, WorldConfig};
use rp_topology::cone::cone_union;
use rp_types::NetworkId;
use std::hint::black_box;

fn bench_offload(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));

    c.bench_function("offload/study_setup_with_exclusions", |b| {
        b.iter(|| OffloadStudy::new(black_box(&world)))
    });

    let study = OffloadStudy::new(&world);
    c.bench_function("offload/fig7_single_ixp_ranking", |b| {
        b.iter(|| study.single_ixp_ranking())
    });

    let ranking = study.single_ixp_ranking();
    let (first, _) = ranking[0];
    let (second, _) = ranking[1];
    c.bench_function("offload/fig8_second_ixp_residual", |b| {
        b.iter(|| study.remaining_after(black_box(first), black_box(second), PeerGroup::All))
    });

    c.bench_function("offload/fig9_greedy_traffic_30_steps", |b| {
        b.iter(|| study.greedy_by(PeerGroup::All, 30, GreedyMetric::Traffic))
    });
    c.bench_function("offload/fig10_greedy_interfaces_30_steps", |b| {
        b.iter(|| study.greedy_by(PeerGroup::All, 30, GreedyMetric::Interfaces))
    });
}

fn bench_cones(c: &mut Criterion) {
    let world = World::build(&WorldConfig::test_scale(42));
    let roots: Vec<NetworkId> = world
        .scene
        .ixps
        .iter()
        .flat_map(|x| x.member_network_ids())
        .collect();
    c.bench_function("cones/union_all_members", |b| {
        b.iter(|| cone_union(black_box(&world.topology), black_box(&roots)))
    });
}

criterion_group!(benches, bench_offload, bench_cones);
criterion_main!(benches);
