//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--seed N] [--scale test|paper] [--out DIR] [--threads N]
//!
//! EXPERIMENT: table1 | fig2 | fig3 | fig4a | fig4b | validate | fig5a |
//!             fig5b | fig6 | fig7 | fig8 | fig9 | fig10 | econ | fit |
//!             ablate | threshold | flattening | implications | invisibility |
//!             inference | africa | seeds | all
//! ```
//!
//! Text goes to stdout; raw numbers are written as JSON under `--out`
//! (default `results/`).

use remote_peering::campaign::Campaign;
use remote_peering::detect::DetectionReport;
use remote_peering::identify::Identification;
use remote_peering::offload::OffloadStudy;
use remote_peering::world::{World, WorldConfig};
use rp_bench::experiments::{self, ExperimentOutput};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    experiment: String,
    seed: u64,
    scale: String,
    out: PathBuf,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".into(),
        seed: 42,
        scale: "paper".into(),
        out: PathBuf::from("results"),
        threads: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = it.next().expect("--seed N").parse().expect("numeric seed"),
            "--scale" => args.scale = it.next().expect("--scale test|paper"),
            "--out" => args.out = PathBuf::from(it.next().expect("--out DIR")),
            "--threads" => {
                args.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --threads requires a numeric count (0 = automatic)");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT] [--seed N] [--scale test|paper] [--out DIR] [--threads N]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => args.experiment = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn emit(out_dir: &PathBuf, output: &ExperimentOutput) {
    println!(
        "==== {} {}",
        output.id,
        "=".repeat(60_usize.saturating_sub(output.id.len()))
    );
    println!("{}", output.text);
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(format!("{}.json", output.id));
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&output.json).expect("serialize"),
    )
    .expect("write json");
}

fn main() {
    let args = parse_args();
    // Results are bit-identical at any thread count (per-IXP seeding plus
    // order-preserving collection); --threads only trades wall-clock time.
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.threads)
        .build_global()
        .expect("install global thread pool");
    eprintln!("worker threads: {}", rayon::current_num_threads());
    let cfg = match args.scale.as_str() {
        "paper" => WorldConfig::paper_scale(args.seed),
        "test" => WorldConfig::test_scale(args.seed),
        other => panic!("unknown scale {other} (use test|paper)"),
    };

    let t0 = Instant::now();
    eprintln!(
        "building world (scale={}, seed={})...",
        args.scale, args.seed
    );
    let world = World::build(&cfg);
    eprintln!(
        "  {} ASes, {} IXPs, {} interfaces, vantage {} [{:.1?}]",
        world.topology.len(),
        world.scene.ixps.len(),
        world.scene.total_interfaces(),
        world.topology.node(world.vantage).asn,
        t0.elapsed()
    );

    let campaign = Campaign::default_paper();
    let wants = |ids: &[&str]| ids.contains(&args.experiment.as_str()) || args.experiment == "all";

    // Detection-side experiments share one probing run.
    let detection_needed = wants(&[
        "table1",
        "fig2",
        "fig3",
        "fig4a",
        "fig4b",
        "validate",
        "threshold",
    ]);
    let report = if detection_needed {
        let t = Instant::now();
        eprintln!(
            "running probing campaign at {} IXPs...",
            world.studied_ixps().len()
        );
        let r = DetectionReport::run(&world, &campaign);
        eprintln!(
            "  {} interfaces analyzed [{:.1?}]",
            r.stats.analyzed,
            t.elapsed()
        );
        Some(r)
    } else {
        None
    };

    // Offload-side experiments share one study.
    let offload_needed = wants(&[
        "fig5a",
        "fig5b",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fit",
        "flattening",
    ]);
    let study = if offload_needed {
        let t = Instant::now();
        eprintln!("preparing offload study...");
        let s = OffloadStudy::new(&world);
        eprintln!("  done [{:.1?}]", t.elapsed());
        Some(s)
    } else {
        None
    };

    if let Some(report) = &report {
        let ident = Identification::from_report(report);
        if wants(&["table1"]) {
            emit(&args.out, &experiments::table1(&world, report));
        }
        if wants(&["fig2"]) {
            emit(&args.out, &experiments::fig2(report));
        }
        if wants(&["fig3"]) {
            emit(&args.out, &experiments::fig3(&world, report));
        }
        if wants(&["fig4a"]) {
            emit(&args.out, &experiments::fig4a(&ident));
        }
        if wants(&["fig4b"]) {
            emit(&args.out, &experiments::fig4b(&ident));
        }
        if wants(&["validate"]) {
            emit(
                &args.out,
                &experiments::validation(&world, &campaign, report),
            );
        }
        if wants(&["threshold"]) {
            emit(
                &args.out,
                &experiments::threshold_sweep(&world, &campaign, report),
            );
        }
    }

    // Ablation re-probes with modified filter configs; it is opt-in (also
    // included in `all`).
    if wants(&["ablate"]) {
        emit(&args.out, &experiments::filter_ablation(&world, &campaign));
    }

    if let Some(study) = &study {
        if wants(&["fig5a"]) {
            emit(&args.out, &experiments::fig5a(&world, study));
        }
        if wants(&["fig5b"]) {
            emit(&args.out, &experiments::fig5b(&world, study));
        }
        if wants(&["fig6"]) {
            emit(&args.out, &experiments::fig6(&world, study));
        }
        if wants(&["fig7"]) {
            emit(&args.out, &experiments::fig7(&world, study));
        }
        if wants(&["fig8"]) {
            emit(&args.out, &experiments::fig8(&world, study));
        }
        if wants(&["fig9"]) {
            emit(&args.out, &experiments::fig9(&world, study));
        }
        if wants(&["fig10"]) {
            emit(&args.out, &experiments::fig10(&world, study));
        }
        if wants(&["fit"]) {
            emit(&args.out, &experiments::decay_fit(&world, study));
        }
        if wants(&["flattening"]) {
            emit(&args.out, &experiments::flattening(&world, study));
        }
    }

    if wants(&["inference"]) {
        emit(&args.out, &experiments::inference(&world));
    }

    if wants(&["invisibility"]) {
        emit(&args.out, &experiments::invisibility(&world, &campaign));
    }

    if wants(&["implications"]) {
        emit(&args.out, &experiments::implications(&world));
    }

    if wants(&["africa"]) {
        emit(&args.out, &experiments::africa(&world));
    }

    if args.experiment == "seeds" {
        // Not part of `all` (it rebuilds the world five times).
        emit(
            &args.out,
            &experiments::seed_robustness(args.seed, args.scale == "paper"),
        );
    }

    if wants(&["econ"]) {
        emit(&args.out, &experiments::econ_analysis());
    }

    eprintln!("total: {:.1?}", t0.elapsed());
}
