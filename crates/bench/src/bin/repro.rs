//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--seed N] [--scale test|paper] [--out DIR]
//!       [--threads N] [--shards N] [--report [PATH]] [--trace]
//! repro sweep <SPEC.json|PRESET> [--replicates N] [other flags]
//! repro check [--faults N] [--fuzz N] [other flags]
//! ```
//!
//! Run `repro --help` for the experiment list. Text goes to stdout; raw
//! numbers are written as JSON under `--out` (default `results/`).
//!
//! `repro sweep` runs an `rp-scenario` Monte-Carlo sensitivity sweep from a
//! spec file or a built-in preset and writes the full per-cell statistics
//! to `<out>/sweeps/<name>.json`.
//!
//! `repro check` runs the `rp-testkit` correctness harness — a clean and a
//! fault-injected campaign, the metamorphic invariant suite over both, and
//! the seeded parser fuzzer — and writes `<out>/check_report.json` (a pure
//! function of the seed: bit-identical at any thread count). Exit code 1
//! when an invariant is violated or a parser panics.
//!
//! `--report [PATH]` additionally records spans and metrics across the
//! whole pipeline and writes a `run_report.json` (default
//! `<out>/run_report.json`): the span tree with call counts and self/total
//! times, every registered metric, the filter funnel, and a world summary.
//! `--trace` prints the human-readable span tree to stderr. Either flag
//! enables collection; results are bit-identical with or without it (the
//! instrumentation only reads pipeline state — pinned by
//! `tests/report_schema.rs`).

use remote_peering::campaign::Campaign;
use remote_peering::detect::DetectionReport;
use remote_peering::identify::Identification;
use remote_peering::offload::OffloadStudy;
use remote_peering::world::{World, WorldConfig};
use rp_bench::experiments::{self, ExperimentOutput};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Every experiment name `repro` accepts, in the order they run.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig4a",
    "fig4b",
    "validate",
    "threshold",
    "ablate",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fit",
    "flattening",
    "inference",
    "invisibility",
    "implications",
    "africa",
    "seeds",
    "econ",
    "all",
];

struct Args {
    experiment: String,
    seed: u64,
    scale: String,
    out: PathBuf,
    threads: usize,
    /// `Some(None)` = `--report` with the default path under `--out`.
    report: Option<Option<PathBuf>>,
    trace: bool,
    /// `--trace-json`: stream span/metric events to a JSONL file.
    trace_json: Option<PathBuf>,
    /// `--trace-chrome`: write a Chrome trace-event file (Perfetto-loadable).
    trace_chrome: Option<PathBuf>,
    /// `--compare` baseline file for `bench` (raw same-host comparison).
    compare: Option<PathBuf>,
    /// `--warn-only`: report `--compare` regressions without failing.
    warn_only: bool,
    /// Experiment following the `profile` subcommand.
    profile_target: Option<String>,
    /// Spec file or preset name following the `sweep` subcommand.
    sweep_spec: Option<String>,
    /// `--replicates` override for `sweep` (default: the spec's own).
    replicates: Option<u64>,
    /// `--faults` perturbation-trial count for `check` (default 200).
    faults: Option<u64>,
    /// `--fuzz` iteration count for `check` (default 500).
    fuzz: Option<u64>,
    /// `--reference-rebuild`: check builds its faulted arm by a full
    /// from-scratch rebuild instead of the copy-on-write fork path. The
    /// report and stdout digest are byte-identical either way — that is
    /// what `tests/fork_equivalence.rs` proves — so this flag exists for
    /// that proof and for timing the two paths against each other.
    reference_rebuild: bool,
    /// `--probe-rebuild`: sweep rebuilds every world and re-probes from
    /// scratch instead of reusing memoized probe sets across cells.
    /// Artifacts are byte-identical either way; this is the reference arm
    /// the differential harness compares against.
    probe_rebuild: bool,
    /// `--json` output path for `bench` (default `BENCH_9.json`).
    json_out: Option<PathBuf>,
    /// `--quick` single-repetition smoke mode for `bench` (CI).
    quick: bool,
    /// `--shards` data-plane shards per simulated IXP network; 0 resolves
    /// to one shard per fabric site, capped at the available cores.
    /// Results are bit-identical at every value — like `--threads`, this
    /// only trades wall-clock time.
    shards: usize,
    /// `--addr` listen address for `serve`.
    addr: String,
    /// `--workers` job worker threads for `serve`.
    workers: usize,
    /// `--queue-cap` pending-job queue bound for `serve`.
    queue_cap: usize,
    /// `--pool-bytes` world-pool byte budget for `serve` (None: entry
    /// bound only).
    pool_bytes: Option<u64>,
    /// Job-spec file following the `job` subcommand.
    job_spec: Option<String>,
}

fn usage_text() -> String {
    let mut s = String::from(
        "usage: repro [EXPERIMENT] [--seed N] [--scale test|paper] [--out DIR]\n\
         \x20            [--threads N] [--report [PATH]] [--trace]\n\
         \x20      repro sweep <SPEC.json|PRESET> [--replicates N] [other flags]\n\
         \x20      repro check [--faults N] [--fuzz N] [other flags]\n\
         \x20      repro bench [--json PATH] [--quick] [--compare OLD.json] [other flags]\n\
         \x20      repro profile <EXPERIMENT> [other flags]\n\
         \x20      repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
         \x20            [--pool-bytes N] [other flags]\n\
         \x20      repro job <SPEC.json> [other flags]\n\nexperiments:\n",
    );
    for chunk in EXPERIMENTS.chunks(8) {
        s.push_str("  ");
        s.push_str(&chunk.join(" | "));
        s.push('\n');
    }
    s.push_str("\nsweep presets:\n  ");
    s.push_str(&rp_scenario::ScenarioSpec::preset_names().join(" | "));
    s.push_str(
        "\n\nflags:\n\
         \x20 --seed N          master seed (default 42)\n\
         \x20 --scale S         world scale: test | paper (default paper)\n\
         \x20 --out DIR         JSON output directory (default results/)\n\
         \x20 --threads N       worker threads, 0 = automatic (default 0)\n\
         \x20 --shards N        data-plane shards per IXP network,\n\
         \x20                   0 = one per fabric site, capped at cores (default 0)\n\
         \x20 --replicates N    sweep replicate seeds per cell (default: the spec's)\n\
         \x20 --faults N        check: perturbation trials (default 200)\n\
         \x20 --fuzz N          check: fuzzer iterations per target (default 500)\n\
         \x20 --reference-rebuild  check: rebuild the faulted arm from scratch\n\
         \x20                   instead of forking (byte-identical output; the\n\
         \x20                   reference arm of the differential harness)\n\
         \x20 --probe-rebuild   sweep: rebuild worlds and re-probe from scratch\n\
         \x20                   instead of reusing memoized probes (byte-identical\n\
         \x20                   output; reference arm)\n\
         \x20 --json PATH       bench: result file (default BENCH_9.json)\n\
         \x20 --quick           bench: single repetition (CI smoke run)\n\
         \x20 --report [PATH]   collect spans/metrics, write a run report\n\
         \x20                   (default PATH: <out>/run_report.json)\n\
         \x20 --trace           print the span tree to stderr\n\
         \x20 --trace-json P    stream span/metric events to a JSONL file\n\
         \x20 --trace-chrome P  write a Chrome trace-event file (chrome://tracing,\n\
         \x20                   Perfetto); shards appear as separate tracks\n\
         \x20 --compare OLD     bench: compare against a previous result file,\n\
         \x20                   exit 1 past the tolerance unless --warn-only\n\
         \x20 --warn-only       bench: report --compare regressions, never fail\n\
         \x20 --addr HOST:PORT  serve: listen address (default 127.0.0.1:8080,\n\
         \x20                   port 0 picks a free port)\n\
         \x20 --workers N       serve: job worker threads (default 2)\n\
         \x20 --queue-cap N     serve: pending-job queue bound (default 256)\n\
         \x20 --pool-bytes N    serve: world-pool byte budget (default: entry\n\
         \x20                   bound only)\n",
    );
    s
}

fn bad_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    eprint!("{}", usage_text());
    std::process::exit(2);
}

/// The one exit path for every unrecognized token — flag, experiment, or
/// subcommand argument. One-line `error: unknown <kind> <token>` plus the
/// usage text, exit 2 (via [`bad_usage`]); `tests/cli_usage.rs` pins the
/// shape for both kinds.
fn unknown(kind: &str, token: &str) -> ! {
    bad_usage(&format!("unknown {kind} {token}"))
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".into(),
        seed: 42,
        scale: "paper".into(),
        out: PathBuf::from("results"),
        threads: 0,
        report: None,
        trace: false,
        trace_json: None,
        trace_chrome: None,
        compare: None,
        warn_only: false,
        profile_target: None,
        sweep_spec: None,
        replicates: None,
        faults: None,
        fuzz: None,
        reference_rebuild: false,
        probe_rebuild: false,
        json_out: None,
        quick: false,
        shards: 0,
        addr: "127.0.0.1:8080".into(),
        workers: 2,
        queue_cap: 256,
        pool_bytes: None,
        job_spec: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_usage("--seed requires a numeric seed"))
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .unwrap_or_else(|| bad_usage("--scale requires test|paper"))
            }
            "--out" => {
                args.out = it
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| bad_usage("--out requires a directory"))
            }
            "--threads" => {
                args.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    bad_usage("--threads requires a numeric count (0 = automatic)")
                })
            }
            "--shards" => {
                args.shards = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    bad_usage("--shards requires a numeric count (0 = one per fabric site)")
                })
            }
            "--report" => {
                // PATH is optional: consume the next token only when it is
                // neither a flag nor an experiment name.
                let path = match it.peek() {
                    Some(next)
                        if !next.starts_with('-') && !EXPERIMENTS.contains(&next.as_str()) =>
                    {
                        Some(PathBuf::from(it.next().expect("peeked")))
                    }
                    _ => None,
                };
                args.report = Some(path);
            }
            "--replicates" => {
                let n: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_usage("--replicates requires a positive count"));
                if n == 0 {
                    bad_usage("--replicates requires a positive count");
                }
                args.replicates = Some(n);
            }
            "--faults" => {
                args.faults = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_usage("--faults requires a numeric count")),
                )
            }
            "--fuzz" => {
                args.fuzz = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_usage("--fuzz requires a numeric count")),
                )
            }
            "--reference-rebuild" => args.reference_rebuild = true,
            "--probe-rebuild" => args.probe_rebuild = true,
            "--json" => {
                args.json_out = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| bad_usage("--json requires a file path")),
                )
            }
            "--quick" => args.quick = true,
            "--trace" => args.trace = true,
            "--trace-json" => {
                args.trace_json = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| bad_usage("--trace-json requires a file path")),
                )
            }
            "--trace-chrome" => {
                args.trace_chrome = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| bad_usage("--trace-chrome requires a file path")),
                )
            }
            "--compare" => {
                args.compare = Some(
                    it.next()
                        .map(PathBuf::from)
                        .unwrap_or_else(|| bad_usage("--compare requires a baseline file")),
                )
            }
            "--warn-only" => args.warn_only = true,
            "--addr" => {
                args.addr = it
                    .next()
                    .unwrap_or_else(|| bad_usage("--addr requires HOST:PORT"))
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_usage("--workers requires a numeric count"))
            }
            "--queue-cap" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| bad_usage("--queue-cap requires a positive count"));
                if n == 0 {
                    bad_usage("--queue-cap requires a positive count");
                }
                args.queue_cap = n;
            }
            "--pool-bytes" => {
                args.pool_bytes = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| bad_usage("--pool-bytes requires a byte count")),
                )
            }
            "--help" | "-h" => {
                print!("{}", usage_text());
                std::process::exit(0);
            }
            "sweep" => args.experiment = "sweep".to_string(),
            "check" => args.experiment = "check".to_string(),
            "bench" => args.experiment = "bench".to_string(),
            "profile" => args.experiment = "profile".to_string(),
            "serve" => args.experiment = "serve".to_string(),
            "job" => args.experiment = "job".to_string(),
            other if !other.starts_with('-') => {
                if args.experiment == "sweep" && args.sweep_spec.is_none() {
                    args.sweep_spec = Some(other.to_string());
                } else if args.experiment == "job" && args.job_spec.is_none() {
                    args.job_spec = Some(other.to_string());
                } else if args.experiment == "profile" && args.profile_target.is_none() {
                    if !EXPERIMENTS.contains(&other) {
                        unknown("experiment", other);
                    }
                    args.profile_target = Some(other.to_string());
                } else if EXPERIMENTS.contains(&other) {
                    args.experiment = other.to_string();
                } else {
                    unknown("experiment", other);
                }
            }
            other => unknown("flag", other),
        }
    }
    if !matches!(args.scale.as_str(), "test" | "paper") {
        bad_usage(&format!("unknown scale {} (use test|paper)", args.scale));
    }
    args
}

impl Args {
    /// Is this a paper-scale run? `parse_args` already rejected every
    /// other `--scale` value.
    fn paper_scale(&self) -> bool {
        self.scale == "paper"
    }
}

/// Exit with a one-line diagnostic when an output path can't be written
/// (missing permissions, a file where a directory should be, a full disk).
/// Exit code 2, like the usage errors — the run itself didn't fail, the
/// destination did.
fn fail_write(path: &Path, err: &std::io::Error) -> ! {
    eprintln!("error: cannot write {}: {err}", path.display());
    std::process::exit(2);
}

/// Write `contents` to `path`, creating missing parent directories.
fn write_output(path: &Path, contents: &str) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                fail_write(path, &e);
            }
        }
    }
    if let Err(e) = std::fs::write(path, contents) {
        fail_write(path, &e);
    }
}

/// Run one experiment under its span and write its text/JSON outputs.
fn emit(out_dir: &Path, span: &'static str, f: impl FnOnce() -> ExperimentOutput) {
    let _sp = rp_obs::span(span);
    let output = f();
    println!(
        "==== {} {}",
        output.id,
        "=".repeat(60_usize.saturating_sub(output.id.len()))
    );
    println!("{}", output.text);
    let path = out_dir.join(format!("{}.json", output.id));
    write_output(
        &path,
        &serde_json::to_string_pretty(&output.json).expect("serialize"),
    );
}

/// The campaign every subcommand runs: the paper defaults with the
/// `--shards` override applied (0 keeps the per-site default).
fn campaign_for(args: &Args) -> Campaign {
    Campaign {
        shards: args.shards,
        ..Campaign::default_paper()
    }
}

/// Everything the experiments produced that the run report summarizes.
struct RunArtifacts {
    world: World,
    detection: Option<DetectionReport>,
}

fn run_experiments(args: &Args) -> RunArtifacts {
    // The top-level span; dropping it (at the end of this function) flushes
    // the main thread's collector so the report sees the full tree.
    let _run = rp_obs::span("repro.run");

    let cfg = if args.paper_scale() {
        WorldConfig::paper_scale(args.seed)
    } else {
        WorldConfig::test_scale(args.seed)
    };

    let t0 = Instant::now();
    eprintln!(
        "building world (scale={}, seed={})...",
        args.scale, args.seed
    );
    let world = World::build(&cfg);
    eprintln!(
        "  {} ASes, {} IXPs, {} interfaces, vantage {} [{:.1?}]",
        world.topology.len(),
        world.scene.ixps.len(),
        world.scene.total_interfaces(),
        world.topology.node(world.vantage).asn,
        t0.elapsed()
    );

    let campaign = campaign_for(args);
    let wants = |ids: &[&str]| ids.contains(&args.experiment.as_str()) || args.experiment == "all";

    // Detection-side experiments share one probing run.
    let detection_needed = wants(&[
        "table1",
        "fig2",
        "fig3",
        "fig4a",
        "fig4b",
        "validate",
        "threshold",
    ]);
    let report = if detection_needed {
        let t = Instant::now();
        eprintln!(
            "running probing campaign at {} IXPs...",
            world.studied_ixps().len()
        );
        let r = DetectionReport::run(&world, &campaign);
        eprintln!(
            "  {} interfaces analyzed [{:.1?}]",
            r.stats.analyzed,
            t.elapsed()
        );
        Some(r)
    } else {
        None
    };

    // Offload-side experiments share one study.
    let offload_needed = wants(&[
        "fig5a",
        "fig5b",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fit",
        "flattening",
    ]);
    let study = if offload_needed {
        let t = Instant::now();
        eprintln!("preparing offload study...");
        let s = OffloadStudy::new(&world);
        eprintln!("  done [{:.1?}]", t.elapsed());
        Some(s)
    } else {
        None
    };

    if let Some(report) = &report {
        let ident = Identification::from_report(report);
        if wants(&["table1"]) {
            emit(&args.out, "repro.table1", || {
                experiments::table1(&world, report)
            });
        }
        if wants(&["fig2"]) {
            emit(&args.out, "repro.fig2", || experiments::fig2(report));
        }
        if wants(&["fig3"]) {
            emit(&args.out, "repro.fig3", || {
                experiments::fig3(&world, report)
            });
        }
        if wants(&["fig4a"]) {
            emit(&args.out, "repro.fig4a", || experiments::fig4a(&ident));
        }
        if wants(&["fig4b"]) {
            emit(&args.out, "repro.fig4b", || experiments::fig4b(&ident));
        }
        if wants(&["validate"]) {
            emit(&args.out, "repro.validate", || {
                experiments::validation(&world, &campaign, report)
            });
        }
        if wants(&["threshold"]) {
            emit(&args.out, "repro.threshold", || {
                experiments::threshold_sweep(&world, &campaign, report)
            });
        }
    }

    // Ablation re-probes with modified filter configs; it is opt-in (also
    // included in `all`).
    if wants(&["ablate"]) {
        emit(&args.out, "repro.ablate", || {
            experiments::filter_ablation(&world, &campaign)
        });
    }

    if let Some(study) = &study {
        if wants(&["fig5a"]) {
            emit(&args.out, "repro.fig5a", || {
                experiments::fig5a(&world, study)
            });
        }
        if wants(&["fig5b"]) {
            emit(&args.out, "repro.fig5b", || {
                experiments::fig5b(&world, study)
            });
        }
        if wants(&["fig6"]) {
            emit(&args.out, "repro.fig6", || experiments::fig6(&world, study));
        }
        if wants(&["fig7"]) {
            emit(&args.out, "repro.fig7", || experiments::fig7(&world, study));
        }
        if wants(&["fig8"]) {
            emit(&args.out, "repro.fig8", || experiments::fig8(&world, study));
        }
        if wants(&["fig9"]) {
            emit(&args.out, "repro.fig9", || experiments::fig9(&world, study));
        }
        if wants(&["fig10"]) {
            emit(&args.out, "repro.fig10", || {
                experiments::fig10(&world, study)
            });
        }
        if wants(&["fit"]) {
            emit(&args.out, "repro.fit", || {
                experiments::decay_fit(&world, study)
            });
        }
        if wants(&["flattening"]) {
            emit(&args.out, "repro.flattening", || {
                experiments::flattening(&world, study)
            });
        }
    }

    if wants(&["inference"]) {
        emit(&args.out, "repro.inference", || {
            experiments::inference(&world)
        });
    }

    if wants(&["invisibility"]) {
        emit(&args.out, "repro.invisibility", || {
            experiments::invisibility(&world, &campaign)
        });
    }

    if wants(&["implications"]) {
        emit(&args.out, "repro.implications", || {
            experiments::implications(&world)
        });
    }

    if wants(&["africa"]) {
        emit(&args.out, "repro.africa", || experiments::africa(&world));
    }

    if args.experiment == "seeds" {
        // Not part of `all` (it rebuilds the world five times).
        emit(&args.out, "repro.seeds", || {
            experiments::seed_robustness(args.seed, args.scale == "paper")
        });
    }

    if wants(&["econ"]) {
        emit(&args.out, "repro.econ", experiments::econ_analysis);
    }

    eprintln!("total: {:.1?}", t0.elapsed());
    RunArtifacts {
        world,
        detection: report,
    }
}

/// Resolve the `sweep` spec argument: an existing file is parsed as JSON;
/// otherwise it must name a built-in preset.
fn resolve_spec(arg: &str) -> rp_scenario::ScenarioSpec {
    use rp_scenario::ScenarioSpec;
    if Path::new(arg).is_file() {
        let text = match std::fs::read_to_string(arg) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {arg}: {e}");
                std::process::exit(2);
            }
        };
        match ScenarioSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {arg}: {e}");
                std::process::exit(2);
            }
        }
    } else {
        ScenarioSpec::preset(arg).unwrap_or_else(|| {
            bad_usage(&format!(
                "no spec file or preset named {arg} (presets: {})",
                ScenarioSpec::preset_names().join(", ")
            ))
        })
    }
}

/// The `sweep` subcommand: expand the spec, run the replication engine,
/// print a per-cell digest, and write the full statistics JSON.
/// One row of the `bench` subcommand's schema-stable output.
struct BenchRow {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
    /// Simulator events retired per op (0 when the bench has no event
    /// loop; the queue microbenches count queue operations as events).
    events_per_op: f64,
}

impl BenchRow {
    fn events_per_sec(&self) -> f64 {
        if self.events_per_op == 0.0 {
            0.0
        } else {
            self.events_per_op * 1e9 / self.ns_per_op
        }
    }
}

/// The `bench` subcommand: a fixed suite of data-plane benchmarks whose
/// JSON output keeps the same keys from run to run (`BENCH_9.json` in CI
/// artifacts and at the repository root). Besides the microbench rows, a
/// `fork_vs_rebuild` section quantifies what copy-on-write forking and
/// incremental recompute buy over from-scratch rebuilds, with each pair
/// asserted byte-identical in-process before its speedup is reported.
/// `--quick` drops to a single repetition and a smaller sharded world so
/// CI can smoke-run the suite without paying for stable numbers.
fn run_bench_command(args: &Args) {
    use rp_netsim::event::{Event, EventKey, EventQueue};
    use rp_netsim::NodeId;
    use rp_types::SimTime;

    let cfg = if args.paper_scale() {
        WorldConfig::paper_scale(args.seed)
    } else {
        WorldConfig::test_scale(args.seed)
    };
    let reps: u64 = if args.quick { 1 } else { 5 };
    let mut rows: Vec<BenchRow> = Vec::new();

    eprintln!(
        "bench: scale={} seed={} reps={} ...",
        args.scale, args.seed, reps
    );

    // World construction (topology + scene + registry + routing).
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(World::build(&cfg));
    }
    rows.push(BenchRow {
        name: "world_build",
        ops: reps,
        ns_per_op: t.elapsed().as_nanos() as f64 / reps as f64,
        events_per_op: 0.0,
    });

    let world = World::build(&cfg);
    let campaign = campaign_for(args);
    let ixps = world.studied_ixps();

    // One full campaign pass counts the events and warms the allocator.
    let events: u64 = ixps
        .iter()
        .map(|&ixp| campaign.probe_ixp_trace(&world, ixp).1)
        .sum();

    // Pure event-loop throughput: build + schedule + run every studied
    // IXP serially, no sample collection.
    let t = Instant::now();
    for _ in 0..reps {
        let n: u64 = ixps
            .iter()
            .map(|&ixp| campaign.probe_ixp_trace(&world, ixp).1)
            .sum();
        assert_eq!(n, events, "event count must be reproducible");
    }
    rows.push(BenchRow {
        name: "probe_trace_serial",
        ops: reps,
        ns_per_op: t.elapsed().as_nanos() as f64 / reps as f64,
        events_per_op: events as f64,
    });

    // The production path: parallel over IXPs, with sample collection.
    std::hint::black_box(campaign.probe_all(&world));
    let t = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(campaign.probe_all(&world));
    }
    rows.push(BenchRow {
        name: "probe_all",
        ops: reps,
        ns_per_op: t.elapsed().as_nanos() as f64 / reps as f64,
        events_per_op: events as f64,
    });

    // Calendar-queue microbenches. Spread: pops chase pushes through
    // distinct buckets. Burst: 200 same-time events per drain round (the
    // ARP-flood shape the lazy-sort buckets exist for).
    let timer = |i: u32| Event::Timer {
        node: NodeId(i),
        token: 0,
    };
    let n: u64 = if args.quick { 100_000 } else { 1_000_000 };
    let t = Instant::now();
    let mut q = EventQueue::new();
    for i in 0..n {
        q.push(
            SimTime(i * 1_000_000),
            EventKey { creator: 0, seq: i },
            timer(i as u32),
        );
        if i % 4 == 3 {
            for _ in 0..4 {
                std::hint::black_box(q.pop());
            }
        }
    }
    rows.push(BenchRow {
        name: "event_queue_spread",
        ops: n,
        ns_per_op: t.elapsed().as_nanos() as f64 / n as f64,
        events_per_op: 1.0,
    });

    let rounds = n / 200;
    let t = Instant::now();
    let mut q = EventQueue::new();
    for r in 0..rounds {
        let at = SimTime(r * 50_000_000);
        for i in 0..200u32 {
            q.push(at, EventKey { creator: i, seq: r }, timer(i));
        }
        while q.pop().is_some() {}
    }
    rows.push(BenchRow {
        name: "event_queue_burst200",
        ops: rounds * 200,
        ns_per_op: t.elapsed().as_nanos() as f64 / (rounds * 200) as f64,
        events_per_op: 1.0,
    });

    // Sharded-world benchmark: one big multi-fabric world — the
    // `world_scale` topology knob times the membership scale gives ~10×
    // the members of the base world — probed once pinned to a single
    // shard and once at the sharded default, so the JSON shows what the
    // epoch-barrier data plane buys on a world large enough to need it.
    // Single repetition: this section measures the shard layout's effect,
    // not run-to-run noise.
    let wscale = if args.quick { 2.0 } else { 10.0 };
    let mut big_cfg = WorldConfig::test_scale(args.seed);
    big_cfg.topology.world_scale = wscale;
    big_cfg.scene.scale *= wscale;
    eprintln!("bench: building sharded-world topology ({wscale}x members)...");
    let t = Instant::now();
    let big = World::build(&big_cfg);
    rows.push(BenchRow {
        name: "sharded_world_build",
        ops: 1,
        ns_per_op: t.elapsed().as_nanos() as f64,
        events_per_op: 0.0,
    });
    let big_ixps = big.studied_ixps();
    let mut big_events = 0u64;
    for (name, shards) in [
        ("sharded_world_1shard", 1),
        ("sharded_world_sharded", args.shards),
    ] {
        let campaign = Campaign {
            shards,
            ..Campaign::default_paper()
        };
        let t = Instant::now();
        let n: u64 = big_ixps
            .iter()
            .map(|&ixp| campaign.probe_ixp_trace(&big, ixp).1)
            .sum();
        let ns = t.elapsed().as_nanos() as f64;
        if big_events == 0 {
            big_events = n;
        } else {
            assert_eq!(n, big_events, "shard count changed the event count");
        }
        rows.push(BenchRow {
            name,
            ops: 1,
            ns_per_op: ns,
            events_per_op: n as f64,
        });
    }

    // Fork vs rebuild: what the copy-on-write fork machinery buys. Both
    // arms of each pair do the same logical work — the bench asserts
    // their outputs byte-identical right here, so the speedup column can
    // never quietly come from diverging computation.
    use rp_testkit::differential::{arms_identical, incremental_arm, rebuild_arm};
    eprintln!("bench: fork vs rebuild ...");
    let visible_delta = ixps.iter().copied().find_map(|ixp| {
        world
            .scene
            .ixp(ixp)
            .members
            .iter()
            .position(|m| m.listing.listed && !m.profile.absent)
            .map(|slot| remote_peering::fork::Delta::RowStale {
                ixp,
                slot: slot as u32,
            })
    });
    let mut fork_section = Vec::new();
    if let Some(delta) = visible_delta {
        // One dirty IXP out of the whole scene: the rebuild arm builds
        // the world again and probes every IXP, the fork arm forks and
        // re-probes only the delta's target.
        let deltas = [delta];
        let parent_probes = campaign.probe_all(&world);
        let t = Instant::now();
        let mut reference = None;
        for _ in 0..reps {
            reference = Some(rebuild_arm(&cfg, &campaign, &deltas));
        }
        let rebuild_ns = t.elapsed().as_nanos() as f64 / reps as f64;
        rows.push(BenchRow {
            name: "fork_rebuild_arm",
            ops: reps,
            ns_per_op: rebuild_ns,
            events_per_op: events as f64,
        });
        let t = Instant::now();
        let mut forked = None;
        for _ in 0..reps {
            forked = Some(incremental_arm(&world, &parent_probes, &campaign, &deltas));
        }
        let incremental_ns = t.elapsed().as_nanos() as f64 / reps as f64;
        rows.push(BenchRow {
            name: "fork_incremental_arm",
            ops: reps,
            ns_per_op: incremental_ns,
            events_per_op: events as f64,
        });
        assert!(
            arms_identical(&reference.expect("reps >= 1"), &forked.expect("reps >= 1")),
            "fork arm diverged from the rebuild arm — the speedup would be meaningless"
        );
        fork_section.push(("probe_1delta", rebuild_ns, incremental_ns));
    }

    // The check harness's faulted arm, reference-rebuilt vs forked. Small
    // trial counts and test scale: the interesting delta is the world
    // handling, not the invariant sweep riding on top of it.
    let check_base = rp_testkit::CheckConfig {
        seed: args.seed,
        fault_trials: 20,
        fuzz_iters: 20,
        paper_scale: false,
        shards: args.shards,
        reference_rebuild: false,
    };
    let check_ref_cfg = rp_testkit::CheckConfig {
        reference_rebuild: true,
        ..check_base.clone()
    };
    // Untimed warm pass per arm: the fork path's world memo and the
    // allocator reach steady state, which is what a long-lived process
    // (and `repro serve`) actually runs at. The fork's win here is two
    // world builds out of a run dominated by the invariant sweep, so the
    // pair is timed as a min-of-3 to keep the small delta above the
    // single-run jitter.
    std::hint::black_box(rp_testkit::run_check(&check_ref_cfg));
    std::hint::black_box(rp_testkit::run_check(&check_base));
    let min_of_3 = |run: &dyn Fn() -> rp_testkit::CheckOutcome| {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..3 {
            let t = Instant::now();
            last = Some(run());
            best = best.min(t.elapsed().as_nanos() as f64);
        }
        (best, last.expect("three runs"))
    };
    let (check_rebuild_ns, check_ref) = min_of_3(&|| rp_testkit::run_check(&check_ref_cfg));
    rows.push(BenchRow {
        name: "check_reference_rebuild",
        ops: 3,
        ns_per_op: check_rebuild_ns,
        events_per_op: 0.0,
    });
    let (check_fork_ns, check_fork) = min_of_3(&|| rp_testkit::run_check(&check_base));
    rows.push(BenchRow {
        name: "check_fork",
        ops: 3,
        ns_per_op: check_fork_ns,
        events_per_op: 0.0,
    });
    assert_eq!(
        serde_json::to_string(&check_ref.to_json()).expect("render check report"),
        serde_json::to_string(&check_fork.to_json()).expect("render check report"),
        "check artifacts diverged between fork and rebuild"
    );
    fork_section.push(("check", check_rebuild_ns, check_fork_ns));

    // A method-axis sweep with probe reuse off vs on: cells that differ
    // only in method parameters share one memoized build + probe.
    let sweep_spec = rp_scenario::ScenarioSpec::preset("smoke").expect("smoke preset exists");
    let sweep_base = rp_scenario::SweepConfig {
        replicates: 2,
        shards: args.shards,
        ..rp_scenario::SweepConfig::test_default(args.seed)
    };
    let sweep_rebuild_cfg = rp_scenario::SweepConfig {
        reuse: false,
        ..sweep_base.clone()
    };
    std::hint::black_box(rp_scenario::run_sweep(&sweep_spec, &sweep_rebuild_cfg));
    std::hint::black_box(rp_scenario::run_sweep(&sweep_spec, &sweep_base));
    let t = Instant::now();
    let sweep_rebuilt = rp_scenario::run_sweep(&sweep_spec, &sweep_rebuild_cfg);
    let sweep_rebuild_ns = t.elapsed().as_nanos() as f64;
    rows.push(BenchRow {
        name: "sweep_probe_rebuild",
        ops: 1,
        ns_per_op: sweep_rebuild_ns,
        events_per_op: 0.0,
    });
    let t = Instant::now();
    let sweep_reused = rp_scenario::run_sweep(&sweep_spec, &sweep_base);
    let sweep_reuse_ns = t.elapsed().as_nanos() as f64;
    rows.push(BenchRow {
        name: "sweep_probe_reuse",
        ops: 1,
        ns_per_op: sweep_reuse_ns,
        events_per_op: 0.0,
    });
    assert_eq!(
        serde_json::to_string(&sweep_rebuilt).expect("render sweep"),
        serde_json::to_string(&sweep_reused).expect("render sweep"),
        "sweep artifacts diverged between rebuild and reuse"
    );
    fork_section.push(("sweep_smoke", sweep_rebuild_ns, sweep_reuse_ns));

    println!("==== bench {}", "=".repeat(55));
    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "benchmark", "ops", "ns/op", "events/sec"
    );
    for row in &rows {
        println!(
            "{:<22} {:>10} {:>14.1} {:>16.0}",
            row.name,
            row.ops,
            row.ns_per_op,
            row.events_per_sec()
        );
    }

    let bench_values: Vec<serde_json::Value> = rows
        .iter()
        .map(|row| {
            serde_json::json!({
                "name": row.name,
                "ops": row.ops,
                "ns_per_op": row.ns_per_op,
                "events_per_op": row.events_per_op,
                "events_per_sec": row.events_per_sec(),
            })
        })
        .collect();
    let out = serde_json::json!({
        "schema": "rp-bench/1",
        "seed": args.seed,
        "scale": args.scale,
        "quick": args.quick,
        "threads": rayon::current_num_threads(),
        "shards": args.shards,
        "total_events_per_campaign": events,
        "sharded_world": {
            "world_scale": wscale,
            "interfaces": big.scene.total_interfaces(),
            "events_per_campaign": big_events,
        },
        // Each pair was asserted byte-identical above, so `speedup` is a
        // pure performance delta, never a semantic one.
        "fork_vs_rebuild": serde_json::Value::Object(
            fork_section
                .iter()
                .map(|(name, rebuild_ns, fork_ns)| {
                    (
                        name.to_string(),
                        serde_json::json!({
                            "rebuild_ns": rebuild_ns,
                            "fork_ns": fork_ns,
                            "speedup": rebuild_ns / fork_ns,
                            "byte_identical": true,
                        }),
                    )
                })
                .collect(),
        ),
        "benches": bench_values,
    });
    let path = args
        .json_out
        .clone()
        .unwrap_or_else(|| PathBuf::from("BENCH_9.json"));
    write_output(
        &path,
        &serde_json::to_string_pretty(&out).expect("serialize bench output"),
    );
    eprintln!("bench results: {}", path.display());

    // `--compare OLD.json`: raw same-host regression gate against a
    // previous result file. Cross-host trend analysis (normalized by the
    // queue microbenches) lives in `scripts/check_bench_trend.py`.
    if let Some(old_path) = &args.compare {
        let old_doc = match std::fs::read_to_string(old_path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", old_path.display());
                std::process::exit(2);
            }
        };
        let cmp = match rp_obs::compare::compare(&old_doc, &out) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", old_path.display());
                std::process::exit(2);
            }
        };
        let tol = rp_obs::compare::DEFAULT_TOLERANCE;
        println!("==== bench compare vs {} ====", old_path.display());
        print!("{}", cmp.render(tol));
        let regressed = cmp.regressions(tol);
        if !regressed.is_empty() {
            if args.warn_only {
                eprintln!(
                    "bench compare: {} regression(s) past {:.0}% (warn-only)",
                    regressed.len(),
                    tol * 100.0
                );
            } else {
                eprintln!(
                    "bench compare: {} regression(s) past {:.0}%",
                    regressed.len(),
                    tol * 100.0
                );
                std::process::exit(1);
            }
        }
    }
}

fn run_sweep_command(args: &Args, spec_arg: &str) {
    let spec = resolve_spec(spec_arg);
    let t0 = Instant::now();
    eprintln!(
        "sweep {}: {} cells x {} replicates (scale={}, seed={})...",
        spec.name,
        spec.cells().len(),
        args.replicates.unwrap_or(spec.default_replicates),
        args.scale,
        args.seed
    );
    // The shared job path: `repro serve` runs the same function, which is
    // what keeps served sweep artifacts byte-identical to CLI ones.
    let result = rp_server::run_job(&rp_server::JobSpec::Sweep {
        spec,
        seed: args.seed,
        paper_scale: args.paper_scale(),
        replicates: args.replicates,
        shards: args.shards,
        probe_reuse: !args.probe_rebuild,
    });
    eprintln!("  done [{:.1?}]", t0.elapsed());

    print!("{}", result.digest);
    let path = args.out.join(result.artifact_rel_path());
    write_output(&path, &result.artifact);
    eprintln!("sweep results: {}", path.display());
}

/// The `check` subcommand: run the `rp-testkit` correctness harness and
/// write its deterministic report. Returns whether the harness passed;
/// `main` turns a failure into exit 1 (after closing any trace sink).
fn run_check_command(args: &Args, report_path: Option<&Path>) -> bool {
    let cfg = rp_testkit::CheckConfig {
        seed: args.seed,
        fault_trials: args.faults.unwrap_or(200),
        fuzz_iters: args.fuzz.unwrap_or(500),
        paper_scale: args.paper_scale(),
        shards: args.shards,
        reference_rebuild: args.reference_rebuild,
    };
    let t0 = Instant::now();
    eprintln!(
        "check: {} fault trials, {} fuzz iterations (scale={}, seed={})...",
        cfg.fault_trials, cfg.fuzz_iters, args.scale, args.seed
    );
    // Runs through the shared job path (`rp_server::run_job`) so `repro
    // serve` produces the identical report and stdout digest; the
    // `repro.run` span is scoped inside it, flushing before the run
    // report snapshots the span tree below.
    let result = rp_server::run_job(&rp_server::JobSpec::Check(cfg));
    eprintln!("  done [{:.1?}]", t0.elapsed());

    print!("{}", result.digest);
    let path = args.out.join(result.artifact_rel_path());
    write_output(&path, &result.artifact);
    eprintln!("check report: {}", path.display());
    let doc = result.doc;

    // `--report` additionally wraps the outcome in an rp-obs run report
    // with the span tree and metrics (wall-clock content, so it lives in
    // its own file; `check_report.json` stays bit-reproducible).
    if let Some(rp) = report_path {
        let mut report = rp_obs::report::RunReport::new();
        report.section(
            "meta",
            serde_json::json!({
                "experiment": "check",
                "seed": args.seed,
                "scale": args.scale,
                "threads": rayon::current_num_threads(),
                "out_dir": args.out.display().to_string(),
            }),
        );
        report.section("check", doc);
        if let Err(e) = report.write(rp) {
            fail_write(rp, &e);
        }
        eprintln!("run report: {}", rp.display());
    }

    result.passed
}

fn write_report(path: &Path, args: &Args, artifacts: &RunArtifacts) {
    let world = &artifacts.world;
    let mut report = rp_obs::report::RunReport::new();
    report.section(
        "meta",
        serde_json::json!({
            "experiment": args.experiment,
            "seed": args.seed,
            "scale": args.scale,
            "threads": rayon::current_num_threads(),
            "out_dir": args.out.display().to_string(),
        }),
    );
    report.section(
        "world",
        serde_json::json!({
            "ases": world.topology.len(),
            "ixps": world.scene.ixps.len(),
            "studied_ixps": world.studied_ixps().len(),
            "interfaces": world.scene.total_interfaces(),
            "vantage_asn": world.topology.node(world.vantage).asn.0,
            "campaign_days": world.config.campaign_days,
        }),
    );
    report.section(
        "filter_funnel",
        match &artifacts.detection {
            Some(d) => d.stats.funnel_json(),
            None => serde_json::Value::Null,
        },
    );
    // RunReport::write creates missing parent directories itself.
    if let Err(e) = report.write(path) {
        fail_write(path, &e);
    }
    eprintln!("run report: {}", path.display());
}

/// Close any installed trace sink and report what it wrote. Called on
/// every exit path that had a sink (sinks buffer; an unflushed sink would
/// truncate the file).
fn finish_trace() {
    match rp_obs::trace::finish() {
        Ok(None) => {}
        Ok(Some(s)) => eprintln!(
            "trace: {} event(s) written, {} dropped",
            s.written, s.dropped
        ),
        Err(e) => eprintln!("error: closing trace sink: {e}"),
    }
}

/// The `profile` subcommand: run one experiment with the sampling profiler
/// armed, write the collapsed-stack profile (flamegraph-ready), and print
/// the hottest span paths. Wall-clock by nature — the profile is *not* a
/// determinism-gated artifact.
fn run_profile_command(args: &mut Args) {
    let target = args
        .profile_target
        .clone()
        .unwrap_or_else(|| bad_usage("profile requires an experiment name"));
    args.experiment = target;
    let profiler = rp_obs::profile::start();
    run_experiments(args);
    let profile = profiler.stop();

    let path = args.out.join("profile.folded");
    write_output(&path, &profile.collapsed());
    eprintln!("profile: {}", path.display());

    println!("==== profile:{} {}", args.experiment, "=".repeat(48));
    println!(
        "{} samples at {:?}",
        profile.total_samples,
        rp_obs::profile::SAMPLE_INTERVAL
    );
    for (stack, n) in profile.top(10) {
        let pct = 100.0 * n as f64 / profile.total_samples.max(1) as f64;
        println!("{pct:6.2}%  {n:>8}  {stack}");
    }
}

/// The `serve` subcommand: bind the job service and run until SIGTERM,
/// SIGINT, or `POST /v1/shutdown`, then drain — finish every accepted
/// job, flush artifacts under `--out`, and return so the process exits 0.
fn run_serve_command(args: &Args) {
    let cfg = rp_server::ServeConfig {
        addr: args.addr.clone(),
        workers: args.workers,
        queue_capacity: args.queue_cap,
        pool_bytes: args.pool_bytes,
        results_dir: Some(args.out.clone()),
        ..rp_server::ServeConfig::default()
    };
    let server = match rp_server::Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    // The e2e drain test and CI parse this line for the resolved address.
    eprintln!("serving on {}", server.local_addr());
    eprintln!(
        "  {} workers, queue cap {}, results under {}",
        args.workers,
        args.queue_cap,
        args.out.display()
    );
    let stats = server.run_until_signal();
    eprintln!(
        "drained: {} done, {} failed, {} cancelled",
        stats.done, stats.failed, stats.cancelled
    );
}

/// The `job` subcommand: run one job envelope from a file, exactly as a
/// `repro serve` worker would, and write its artifact under `--out`.
/// Exists so tests and scripts can byte-compare served results against a
/// fresh single-job run. Returns whether the job's own verdict passed.
fn run_job_command(args: &Args, spec_arg: &str) -> bool {
    let text = std::fs::read_to_string(spec_arg).unwrap_or_else(|e| {
        eprintln!("error: cannot read {spec_arg}: {e}");
        std::process::exit(2);
    });
    let value: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {spec_arg}: JSON parse error: {e:?}");
            std::process::exit(2);
        }
    };
    let spec = match rp_server::JobSpec::parse(&value) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {spec_arg}: {e}");
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    eprintln!("job {} ({})...", spec.id(), spec.kind());
    let result = rp_server::run_job(&spec);
    eprintln!("  done [{:.1?}]", t0.elapsed());

    print!("{}", result.digest);
    let path = args.out.join(result.artifact_rel_path());
    write_output(&path, &result.artifact);
    eprintln!("job result: {}", path.display());
    result.passed
}

fn main() {
    let mut args = parse_args();
    let report_path = args.report.as_ref().map(|p| {
        p.clone()
            .unwrap_or_else(|| args.out.join("run_report.json"))
    });
    if let Some(path) = &args.trace_json {
        if let Err(e) = rp_obs::trace::install_jsonl(path) {
            fail_write(path, &e);
        }
    }
    if let Some(path) = &args.trace_chrome {
        if let Err(e) = rp_obs::trace::install_chrome(path) {
            fail_write(path, &e);
        }
    }
    // The span/metric collectors feed every downstream consumer: the run
    // report, the streaming trace sinks, and the sampling profiler.
    if report_path.is_some()
        || args.trace
        || rp_obs::trace::active()
        || args.experiment == "profile"
        || args.experiment == "serve"
    {
        rp_obs::enable();
    }
    // Results are bit-identical at any thread count (per-IXP seeding plus
    // order-preserving collection); --threads only trades wall-clock time.
    rayon::ThreadPoolBuilder::new()
        .num_threads(args.threads)
        .build_global()
        .expect("install global thread pool");
    eprintln!("worker threads: {}", rayon::current_num_threads());

    if args.experiment == "serve" {
        run_serve_command(&args);
        return;
    }

    if args.experiment == "job" {
        let spec_arg = args
            .job_spec
            .clone()
            .unwrap_or_else(|| bad_usage("job requires a spec file"));
        let passed = run_job_command(&args, &spec_arg);
        finish_trace();
        if !passed {
            std::process::exit(1);
        }
        return;
    }

    if args.experiment == "check" {
        let passed = run_check_command(&args, report_path.as_deref());
        if args.trace {
            eprint!("{}", rp_obs::report::render_trace());
        }
        finish_trace();
        if !passed {
            std::process::exit(1);
        }
        return;
    }

    if args.experiment == "bench" {
        run_bench_command(&args);
        return;
    }

    if args.experiment == "profile" {
        run_profile_command(&mut args);
        finish_trace();
        return;
    }

    if args.experiment == "sweep" {
        let spec_arg = args
            .sweep_spec
            .clone()
            .unwrap_or_else(|| bad_usage("sweep requires a spec file or preset name"));
        run_sweep_command(&args, &spec_arg);
        if args.trace {
            eprint!("{}", rp_obs::report::render_trace());
        }
        finish_trace();
        return;
    }

    let artifacts = run_experiments(&args);
    // run_experiments dropped the `repro.run` span, so the main thread's
    // collector has flushed and the snapshots below see the whole run.
    if args.trace {
        eprint!("{}", rp_obs::report::render_trace());
    }
    finish_trace();
    if let Some(path) = &report_path {
        write_report(path, &args, &artifacts);
    }
}
