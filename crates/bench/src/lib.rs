//! # rp-bench
//!
//! The experiment harness: one regeneration function per table/figure of
//! the paper, shared between the `repro` binary (full paper-scale runs,
//! text + JSON output) and the criterion benches (performance tracking at
//! reduced scale).
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 | [`experiments::table1`] |
//! | Figure 2 | [`experiments::fig2`] |
//! | Figure 3 | [`experiments::fig3`] |
//! | Figure 4a | [`experiments::fig4a`] |
//! | Figure 4b | [`experiments::fig4b`] |
//! | §3.3 validation | [`experiments::validation`] |
//! | Figure 5a | [`experiments::fig5a`] |
//! | Figure 5b | [`experiments::fig5b`] |
//! | Figure 6 | [`experiments::fig6`] |
//! | Figure 7 | [`experiments::fig7`] |
//! | Figure 8 | [`experiments::fig8`] |
//! | Figure 9 | [`experiments::fig9`] |
//! | Figure 10 | [`experiments::fig10`] |
//! | Eqs. 11/13/14 | [`experiments::econ_analysis`] |
//! | §5 model fit | [`experiments::decay_fit`] |

pub mod experiments;

pub use experiments::ExperimentOutput;
