//! Regeneration functions, one per table/figure.
//!
//! Each returns an [`ExperimentOutput`]: a human-readable text block that
//! prints the same rows/series the paper reports, plus a JSON value with
//! the raw numbers so EXPERIMENTS.md entries are regenerable and diffable.

use remote_peering::campaign::Campaign;
use remote_peering::classify::REMOTENESS_THRESHOLD_MS;
use remote_peering::detect::DetectionReport;
use remote_peering::identify::Identification;
use remote_peering::offload::{GreedyMetric, OffloadStudy, PeerGroup};
use remote_peering::report::{pct, Cdf, TextTable};
use remote_peering::validate;
use remote_peering::world::World;
use rp_econ::{fit_decay, optimal_direct, optimal_remote, viability_margin, viable, CostParams};
use rp_traffic::percentile_95;
use rp_traffic::roles::transient_rates;
use rp_traffic::series::{aggregate_series, SeriesParams, BINS_PER_DAY};
use rp_types::{Bps, IxpId, NetworkId};
use serde_json::{json, Value};

/// Text + raw-number output of one experiment.
pub struct ExperimentOutput {
    /// Experiment id ("table1", "fig9", ...).
    pub id: &'static str,
    /// Printable report.
    pub text: String,
    /// Machine-readable numbers.
    pub json: Value,
}

/// Table 1: the 22 studied IXPs with their analyzed-interface counts.
pub fn table1(world: &World, report: &DetectionReport) -> ExperimentOutput {
    let mut t = TextTable::new(&[
        "IXP",
        "City",
        "Country",
        "Peak(Tbps)",
        "Members",
        "Analyzed",
        "Paper",
    ]);
    let mut rows = Vec::new();
    for study in &report.studies {
        let inst = world.scene.ixp(study.ixp);
        let m = &inst.meta;
        let city = inst.city();
        t.row(&[
            m.acronym.to_string(),
            city.name.to_string(),
            city.country.to_string(),
            m.peak_traffic_tbps
                .map(|p| format!("{p:.2}"))
                .unwrap_or_else(|| "N/A".into()),
            inst.member_networks().to_string(),
            study.analyzed.len().to_string(),
            m.paper_analyzed.map(|a| a.to_string()).unwrap_or_default(),
        ]);
        rows.push(json!({
            "ixp": m.acronym,
            "members": inst.member_networks(),
            "analyzed": study.analyzed.len(),
            "paper_analyzed": m.paper_analyzed,
        }));
    }
    let mut text = t.render();
    text.push_str(&format!(
        "\ntotal analyzed: {} (paper: 4451)\nfilter discards [sample-size, TTL-switch, TTL-match, RTT-consistent, LG-consistent, ASN-change]:\n  ours:  {:?}\n  paper: [20, 82, 20, 100, 28, 5]\n",
        report.stats.analyzed,
        report.stats.in_order()
    ));
    ExperimentOutput {
        id: "table1",
        text,
        json: json!({
            "rows": rows,
            "total_analyzed": report.stats.analyzed,
            "discards": report.stats.in_order(),
        }),
    }
}

/// Figure 2: CDF of minimum RTTs over all analyzed interfaces.
pub fn fig2(report: &DetectionReport) -> ExperimentOutput {
    let cdf = Cdf::new(report.all_min_rtts());
    let mut t = TextTable::new(&["RTT (ms)", "fraction of analyzed interfaces"]);
    let points = cdf.log_points(24);
    for (x, f) in &points {
        t.row(&[format!("{x:.3}"), format!("{f:.3}")]);
    }
    let in_direct_band = cdf.at(2.0) - cdf.at(0.3);
    let mut text = t.render();
    text.push_str(&format!(
        "\nfraction with min RTT in [0.3 ms, 2 ms): {} (paper: 'a majority')\nfraction below 10 ms: {}\n",
        pct(in_direct_band),
        pct(cdf.at(REMOTENESS_THRESHOLD_MS)),
    ));
    ExperimentOutput {
        id: "fig2",
        text,
        json: json!({
            "points": points,
            "direct_band_fraction": in_direct_band,
            "below_threshold": cdf.at(REMOTENESS_THRESHOLD_MS),
        }),
    }
}

/// Figure 3: per-IXP classification of analyzed interfaces into the four
/// minimum-RTT ranges.
pub fn fig3(world: &World, report: &DetectionReport) -> ExperimentOutput {
    let mut t = TextTable::new(&["IXP", "<10ms", "10-20ms", "20-50ms", ">=50ms", "remote%"]);
    let mut rows = Vec::new();
    for study in &report.studies {
        let m = &world.scene.ixp(study.ixp).meta;
        let c = study.range_counts();
        let a = c.as_array();
        let frac = if c.total() > 0 {
            c.remote() as f64 / c.total() as f64
        } else {
            0.0
        };
        t.row(&[
            m.acronym.to_string(),
            a[0].to_string(),
            a[1].to_string(),
            a[2].to_string(),
            a[3].to_string(),
            pct(frac),
        ]);
        rows.push(json!({"ixp": m.acronym, "counts": a, "remote_fraction": frac}));
    }
    let (with, total) = report.ixps_with_remote_peering();
    let ic = report.ixps_with_intercontinental();
    let mut text = t.render();
    text.push_str(&format!(
        "\nIXPs with remote peering: {with}/{total} = {} (paper: 91%, 20/22)\nIXPs with intercontinental-range peering: {ic} (paper: 12)\n",
        pct(with as f64 / total as f64),
    ));
    ExperimentOutput {
        id: "fig3",
        text,
        json: json!({"rows": rows, "with_remote": with, "total": total, "intercontinental": ic}),
    }
}

/// Figure 4a: IXP-count distributions for identified and remotely peering
/// networks.
pub fn fig4a(ident: &Identification) -> ExperimentOutput {
    let all = ident.ixp_count_histogram(false);
    let remote = ident.ixp_count_histogram(true);
    let mut t = TextTable::new(&["IXP count", "identified networks", "remote networks"]);
    let max_count = all.last().map(|(c, _)| *c).unwrap_or(0);
    for c in 1..=max_count {
        let a = all
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        let r = remote
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        t.row(&[c.to_string(), a.to_string(), r.to_string()]);
    }
    let total_nets = ident.networks.len();
    let total_remote = ident.remote_networks().count();
    let mut text = t.render();
    text.push_str(&format!(
        "\nidentified networks: {total_nets} (paper: 1904) from {} identified interfaces (paper: 3242)\nremotely peering networks: {total_remote} (paper: 285)\nmax IXP count: {max_count} (paper: 18)\n",
        ident.identified_interfaces
    ));
    ExperimentOutput {
        id: "fig4a",
        text,
        json: json!({
            "all": all, "remote": remote,
            "identified_networks": total_nets,
            "identified_interfaces": ident.identified_interfaces,
            "remote_networks": total_remote,
            "max_ixp_count": max_count,
        }),
    }
}

/// Figure 4b: RTT-range fractions of remote networks' interfaces by IXP
/// count.
pub fn fig4b(ident: &Identification) -> ExperimentOutput {
    let per_count = ident.remote_interface_ranges_by_ixp_count();
    let mut t = TextTable::new(&["IXP count", "<10ms", "10-20ms", "20-50ms", ">=50ms"]);
    let mut rows = Vec::new();
    for (count, ranges) in &per_count {
        let total = ranges.total().max(1) as f64;
        let fr: Vec<f64> = ranges
            .as_array()
            .iter()
            .map(|c| *c as f64 / total)
            .collect();
        t.row(&[
            count.to_string(),
            format!("{:.2}", fr[0]),
            format!("{:.2}", fr[1]),
            format!("{:.2}", fr[2]),
            format!("{:.2}", fr[3]),
        ]);
        rows.push(json!({"ixp_count": count, "fractions": fr}));
    }
    let single = per_count
        .first()
        .filter(|(c, _)| *c == 1)
        .map(|(_, r)| r.as_array()[0]);
    let mut text = t.render();
    if let Some(local_at_one) = single {
        text.push_str(&format!(
            "\nlocal (<10 ms) interfaces of remote networks with IXP count 1: {local_at_one} (paper: 0)\n"
        ));
    }
    ExperimentOutput {
        id: "fig4b",
        text,
        json: json!({ "rows": rows }),
    }
}

/// Section 3.3 validation: ground-truth confusion plus the TorIX-style
/// route-server cross-check.
pub fn validation(
    world: &World,
    campaign: &Campaign,
    report: &DetectionReport,
) -> ExperimentOutput {
    let mut total = validate::Confusion::default();
    for study in &report.studies {
        total.merge(&validate::confusion(world, study));
    }
    let torix = world
        .scene
        .ixps
        .iter()
        .find(|x| x.meta.acronym == "TorIX")
        .expect("TorIX is a studied IXP")
        .id;
    let (_, check) = validate::route_server_crosscheck(world, campaign, torix);
    let text = format!(
        "ground truth over all studied IXPs:\n  true positives:  {}\n  false positives: {} (paper design goal: 0)\n  true negatives:  {}\n  false negatives: {} (nearby remote peers below 10 ms)\n  precision: {:.4}   recall: {:.4}\n\nTorIX route-server cross-check ({} interfaces):\n  mean difference: {:.3} ms (paper: 0.3 ms)\n  variance:        {:.3} ms^2 (paper: 1.6 ms^2)\n",
        total.true_positive,
        total.false_positive,
        total.true_negative,
        total.false_negative,
        total.precision(),
        total.recall(),
        check.compared,
        check.mean_diff_ms,
        check.var_diff_ms2,
    );
    ExperimentOutput {
        id: "validate",
        text,
        json: json!({
            "true_positive": total.true_positive,
            "false_positive": total.false_positive,
            "true_negative": total.true_negative,
            "false_negative": total.false_negative,
            "crosscheck_mean_ms": check.mean_diff_ms,
            "crosscheck_var_ms2": check.var_diff_ms2,
        }),
    }
}

fn all_ixps(world: &World) -> Vec<IxpId> {
    world.scene.ixps.iter().map(|x| x.id).collect()
}

/// Figure 5a: ranked per-network contributions to the transit traffic,
/// against the offloadable subset (peer group 4 at all 65 IXPs).
pub fn fig5a(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    /// `(rank, bps)` picks along a ranked-contribution curve.
    type RankPicks = Vec<(usize, f64)>;
    let cone = study.reachable_cone(&all_ixps(world), PeerGroup::All);
    let build = |rates: &[Bps]| -> (RankPicks, RankPicks) {
        let mut all: Vec<f64> = rates.iter().map(|b| b.0).filter(|r| *r > 0.0).collect();
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut off: Vec<f64> = rates
            .iter()
            .enumerate()
            .filter(|(i, b)| b.0 > 0.0 && cone.contains(NetworkId(*i as u32)))
            .map(|(_, b)| b.0)
            .collect();
        off.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let picks = |v: &[f64]| -> Vec<(usize, f64)> {
            [
                1usize, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 20_000, 25_000, 29_000,
            ]
            .iter()
            .filter(|r| **r <= v.len())
            .map(|r| (*r, v[*r - 1]))
            .collect()
        };
        (picks(&all), picks(&off))
    };
    let (in_all, in_off) = build(&world.contributions.inbound);
    let (out_all, out_off) = build(&world.contributions.outbound);

    let mut t = TextTable::new(&[
        "rank",
        "inbound (bps)",
        "inbound offloadable",
        "outbound (bps)",
        "outbound offloadable",
    ]);
    for k in 0..in_all.len() {
        let fmt = |v: Option<&(usize, f64)>| v.map(|(_, r)| format!("{r:.1e}")).unwrap_or_default();
        t.row(&[
            in_all[k].0.to_string(),
            fmt(in_all.get(k)),
            fmt(in_off.get(k)),
            fmt(out_all.get(k)),
            fmt(out_off.get(k)),
        ]);
    }
    let contributors = world.contributions.contributors();
    let offloadable = study.offloadable_network_count(PeerGroup::All);
    let mut text = t.render();
    text.push_str(&format!(
        "\ncontributing networks: {contributors} (paper: 29,570)\nnetworks whose traffic is offloadable (group 4, 65 IXPs): {offloadable} (paper: 12,238)\n"
    ));
    ExperimentOutput {
        id: "fig5a",
        text,
        json: json!({
            "inbound": in_all, "inbound_offloadable": in_off,
            "outbound": out_all, "outbound_offloadable": out_off,
            "contributors": contributors, "offloadable_networks": offloadable,
        }),
    }
}

/// Figure 5b: a month of transit and offload-potential traffic at 5-minute
/// granularity: daily/weekly periodicity and coinciding peaks.
pub fn fig5b(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let cone = study.reachable_cone(&all_ixps(world), PeerGroup::All);
    let params = SeriesParams {
        seed: world.config.seed ^ 0xF16B,
        ..Default::default()
    };
    let topo = &world.topology;
    let series_of = |only_cone: bool, inbound: bool| -> Vec<Bps> {
        let rates = if inbound {
            &world.contributions.inbound
        } else {
            &world.contributions.outbound
        };
        aggregate_series(
            rates.iter().enumerate().filter_map(|(i, b)| {
                let id = NetworkId(i as u32);
                if b.0 > 0.0 && (!only_cone || cone.contains(id)) {
                    Some((*b, topo.node(id).home_city))
                } else {
                    None
                }
            }),
            &params,
        )
    };
    let in_total = series_of(false, true);
    let in_off = series_of(true, true);
    let out_total = series_of(false, false);
    let out_off = series_of(true, false);

    // Daily peaks coincide?
    let day_peak_bin = |s: &[Bps], day: usize| -> usize {
        let lo = day * BINS_PER_DAY;
        s[lo..lo + BINS_PER_DAY]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0
    };
    let coincidences: Vec<i64> = (0..28)
        .map(|d| day_peak_bin(&in_total, d) as i64 - day_peak_bin(&in_off, d) as i64)
        .collect();
    let mean_offset_bins =
        coincidences.iter().map(|c| c.abs()).sum::<i64>() as f64 / coincidences.len() as f64;

    let p95_total = percentile_95(&in_total);
    let p95_after = percentile_95(
        &in_total
            .iter()
            .zip(&in_off)
            .map(|(t, o)| *t - *o)
            .collect::<Vec<_>>(),
    );

    let mut t = TextTable::new(&[
        "bin",
        "inbound transit (Gbps)",
        "inbound offload (Gbps)",
        "outbound transit",
        "outbound offload",
    ]);
    for bin in (0..7 * BINS_PER_DAY).step_by(36) {
        t.row(&[
            bin.to_string(),
            format!("{:.2}", in_total[bin].as_gbps()),
            format!("{:.2}", in_off[bin].as_gbps()),
            format!("{:.2}", out_total[bin].as_gbps()),
            format!("{:.2}", out_off[bin].as_gbps()),
        ]);
    }
    let mut text = String::from("first week, every 3 hours:\n");
    text.push_str(&t.render());
    text.push_str(&format!(
        "\nmean |offset| between daily peaks of transit and offload series: {:.1} bins ({:.0} min) — the paper finds peaks 'consistently coincide'\ninbound 95th percentile: {:.2} Gbps before vs {:.2} Gbps after full offload\n",
        mean_offset_bins,
        mean_offset_bins * 5.0,
        p95_total.as_gbps(),
        p95_after.as_gbps(),
    ));
    ExperimentOutput {
        id: "fig5b",
        text,
        json: json!({
            "mean_peak_offset_bins": mean_offset_bins,
            "p95_before_gbps": p95_total.as_gbps(),
            "p95_after_gbps": p95_after.as_gbps(),
            "bins": in_total.len(),
        }),
    }
}

/// Figure 6: top 30 contributors to the offload potential — endpoint
/// (origin/destination) vs transient traffic.
pub fn fig6(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let cone = study.reachable_cone(&all_ixps(world), PeerGroup::All);
    let in_roles = transient_rates(&world.view, &world.contributions.inbound);
    let out_roles = transient_rates(&world.view, &world.contributions.outbound);

    // Rank candidate peer networks by their total offload contribution
    // (their own endpoint traffic plus traffic they transit for their
    // cones).
    let mut ranked: Vec<(f64, NetworkId)> = cone
        .iter()
        .map(|id| {
            let total = in_roles[id.index()].endpoint.0
                + in_roles[id.index()].transient.0
                + out_roles[id.index()].endpoint.0
                + out_roles[id.index()].transient.0;
            (total, id)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

    let mut t = TextTable::new(&[
        "rank",
        "network",
        "type",
        "in origin (Mbps)",
        "in transient",
        "out destination",
        "out transient",
    ]);
    let mut endpoint_dominant = 0;
    let top: Vec<_> = ranked.iter().take(30).collect();
    for (k, (_, id)) in top.iter().enumerate() {
        let node = world.topology.node(*id);
        let ir = in_roles[id.index()];
        let or = out_roles[id.index()];
        if ir.endpoint.0 + or.endpoint.0 > ir.transient.0 + or.transient.0 {
            endpoint_dominant += 1;
        }
        t.row(&[
            (k + 1).to_string(),
            node.asn.to_string(),
            node.kind.to_string(),
            format!("{:.1}", ir.endpoint.as_mbps()),
            format!("{:.1}", ir.transient.as_mbps()),
            format!("{:.1}", or.endpoint.as_mbps()),
            format!("{:.1}", or.transient.as_mbps()),
        ]);
    }
    let mut text = t.render();
    text.push_str(&format!(
        "\ntop contributors where origin/destination traffic dominates transient: {endpoint_dominant}/30 (paper: 'a majority')\n"
    ));
    ExperimentOutput {
        id: "fig6",
        text,
        json: json!({ "endpoint_dominant": endpoint_dominant }),
    }
}

/// Figure 7: offload potential at a single IXP, for the top-10 IXPs and all
/// four peer groups.
pub fn fig7(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let ranking = study.single_ixp_ranking();
    let mut t = TextTable::new(&[
        "IXP",
        "all",
        "open+selective",
        "open+top10sel",
        "open",
        "(Gbps)",
    ]);
    let mut rows = Vec::new();
    for (ixp, per_group) in ranking.iter().take(10) {
        let acr = world.scene.ixp(*ixp).meta.acronym;
        t.row(&[
            acr.to_string(),
            format!("{:.3}", per_group[3].as_gbps()),
            format!("{:.3}", per_group[2].as_gbps()),
            format!("{:.3}", per_group[1].as_gbps()),
            format!("{:.3}", per_group[0].as_gbps()),
            String::new(),
        ]);
        rows.push(json!({
            "ixp": acr,
            "gbps_by_group": per_group.iter().map(|b| b.as_gbps()).collect::<Vec<_>>(),
        }));
    }
    let mut text = t.render();
    let top4: Vec<&str> = ranking
        .iter()
        .take(4)
        .map(|(i, _)| world.scene.ixp(*i).meta.acronym)
        .collect();
    text.push_str(&format!(
        "\ntop-4 IXPs: {:?} (paper: AMS-IX, LINX, DE-CIX, Terremark)\n",
        top4
    ));
    ExperimentOutput {
        id: "fig7",
        text,
        json: json!({ "rows": rows }),
    }
}

/// Figure 8: the offload potential remaining at a second IXP after fully
/// realizing the first.
pub fn fig8(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let names = ["AMS-IX", "LINX", "DE-CIX", "Terremark"];
    let ids: Vec<IxpId> = names
        .iter()
        .map(|n| {
            world
                .scene
                .ixps
                .iter()
                .find(|x| x.meta.acronym == *n)
                .unwrap()
                .id
        })
        .collect();
    let mut t = TextTable::new(&[
        "second IXP",
        "full",
        "after AMS-IX",
        "after LINX",
        "after DE-CIX",
        "after Terremark",
    ]);
    let mut matrix = Vec::new();
    for (i, &second) in ids.iter().enumerate() {
        let (fi, fo) = study.potential(&[second], PeerGroup::All);
        let full = fi + fo;
        let mut cells = vec![names[i].to_string(), format!("{:.3}", full.as_gbps())];
        let mut row = vec![full.as_gbps()];
        for &first in &ids {
            if first == second {
                cells.push("-".into());
                row.push(f64::NAN);
            } else {
                let rem = study.remaining_after(first, second, PeerGroup::All);
                cells.push(format!("{:.3}", rem.as_gbps()));
                row.push(rem.as_gbps());
            }
        }
        t.row(&cells);
        matrix.push(row);
    }
    let mut text = String::from("offload potential at the second IXP (Gbps, peer group 4):\n");
    text.push_str(&t.render());
    // The paper's headline asymmetry.
    let ams = ids[0];
    let linx = ids[1];
    let terremark = ids[3];
    let (ai, ao) = study.potential(&[ams], PeerGroup::All);
    let ams_full = (ai + ao).as_gbps();
    let ams_after_linx = study.remaining_after(linx, ams, PeerGroup::All).as_gbps();
    let (ti, to) = study.potential(&[terremark], PeerGroup::All);
    let tm_full = (ti + to).as_gbps();
    let tm_after_ams = study
        .remaining_after(ams, terremark, PeerGroup::All)
        .as_gbps();
    text.push_str(&format!(
        "\nAMS-IX: full {ams_full:.3} vs after LINX {ams_after_linx:.3} Gbps (paper: 1.6 -> 0.2)\nTerremark: full {tm_full:.3} vs after AMS-IX {tm_after_ams:.3} Gbps (paper: barely reduced)\n"
    ));
    ExperimentOutput {
        id: "fig8",
        text,
        json: json!({
            "matrix": matrix,
            "ams_full": ams_full, "ams_after_linx": ams_after_linx,
            "terremark_full": tm_full, "terremark_after_ams": tm_after_ams,
        }),
    }
}

/// Figure 9: remaining transit traffic as the set of reached IXPs grows
/// greedily, for all four peer groups.
pub fn fig9(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let total = world.contributions.total_inbound() + world.contributions.total_outbound();
    let mut t = TextTable::new(&[
        "k",
        "all",
        "open+selective",
        "open+top10sel",
        "open",
        "(remaining Gbps)",
    ]);
    let mut series = Vec::new();
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for group in PeerGroup::ALL {
        let steps = study.greedy(group, 30);
        curves.push(
            std::iter::once(total.as_gbps())
                .chain(
                    steps
                        .iter()
                        .map(|s| (s.remaining_in + s.remaining_out).as_gbps()),
                )
                .collect(),
        );
        series.push((group, steps));
    }
    for k in 0..=30usize {
        let cell = |g: usize| -> String {
            curves[g]
                .get(k)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default()
        };
        t.row(&[
            k.to_string(),
            cell(3),
            cell(2),
            cell(1),
            cell(0),
            String::new(),
        ]);
    }
    let mut text = t.render();
    let mut reductions = Vec::new();
    for (g, curve) in curves.iter().enumerate() {
        let last = *curve.last().unwrap();
        let reduction = 1.0 - last / curve[0];
        reductions.push(reduction);
        // Fit the decay over the head of the curve, normalized to the
        // offloadable (non-floor) share, and only where the remaining
        // fraction is meaningfully positive — the greedy tail sits at the
        // floor and carries no decay information.
        let floor = *curve.last().unwrap();
        let denom = (curve[0] - floor).max(1e-9);
        let frac: Vec<f64> = curve
            .iter()
            .map(|v| ((v - floor) / denom).max(0.0))
            .take_while(|f| *f > 0.02)
            .collect();
        let fit = fit_decay(&frac);
        text.push_str(&format!(
            "group {:?}: overall reduction {} (paper range: 8%..25%); exp-decay fit b={:.3} R2={:.3}\n",
            PeerGroup::ALL[g],
            pct(reduction),
            fit.map(|f| f.b).unwrap_or(f64::NAN),
            fit.map(|f| f.r_squared).unwrap_or(f64::NAN),
        ));
    }
    // Most of the potential within 5 IXPs (group 4).
    let g4 = &curves[3];
    let realized5 = g4[0] - g4[5.min(g4.len() - 1)];
    let realized_all = g4[0] - g4.last().unwrap();
    text.push_str(&format!(
        "group All: 5 IXPs realize {} of the 30-IXP potential (paper: 'most')\n",
        pct(realized5 / realized_all.max(1e-12))
    ));
    ExperimentOutput {
        id: "fig9",
        text,
        json: json!({ "curves_gbps": curves, "reductions": reductions }),
    }
}

/// Figure 10: remaining IP interfaces reachable only through transit, as
/// the reached-IXP set grows.
pub fn fig10(_world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let start = study.total_transit_interfaces();
    let mut t = TextTable::new(&[
        "k",
        "all",
        "open+selective",
        "open+top10sel",
        "open",
        "(remaining billions)",
    ]);
    let mut curves: Vec<Vec<f64>> = Vec::new();
    for group in PeerGroup::ALL {
        let steps = study.greedy_by(group, 30, GreedyMetric::Interfaces);
        curves.push(
            std::iter::once(start as f64 / 1e9)
                .chain(steps.iter().map(|s| s.remaining_interfaces as f64 / 1e9))
                .collect(),
        );
    }
    for k in 0..=30usize {
        let cell = |g: usize| -> String {
            curves[g]
                .get(k)
                .map(|v| format!("{v:.3}"))
                .unwrap_or_default()
        };
        t.row(&[
            k.to_string(),
            cell(3),
            cell(2),
            cell(1),
            cell(0),
            String::new(),
        ]);
    }
    let mut text = t.render();
    text.push_str(&format!(
        "\nstart: {:.2} B interfaces via transit (paper: ~2.6 B); after first IXP (group All): {:.2} B (paper: ~1 B)\n",
        curves[3][0],
        curves[3].get(1).copied().unwrap_or(f64::NAN),
    ));
    ExperimentOutput {
        id: "fig10",
        text,
        json: json!({ "curves_billions": curves }),
    }
}

/// Section 5: closed forms vs numeric optimization, the viability boundary,
/// and the regional case study.
pub fn econ_analysis() -> ExperimentOutput {
    let base = CostParams::example();
    let mut text = String::new();
    let mut rows = Vec::new();
    text.push_str(&format!(
        "base parameters: p={} u={} v={} g={} h={}\n\n",
        base.p, base.u, base.v, base.g, base.h
    ));
    let mut t = TextTable::new(&[
        "b",
        "n~ (eq11)",
        "d~",
        "m~ (eq13)",
        "margin (eq14)",
        "viable",
    ]);
    for b in [0.1, 0.2, 0.35, 0.55, 0.8, 1.2, 1.8, 2.5] {
        let p = CostParams { b, ..base };
        let d = optimal_direct(&p);
        let r = optimal_remote(&p);
        let margin = viability_margin(&p);
        t.row(&[
            format!("{b:.2}"),
            format!("{:.2}", d.n),
            format!("{:.3}", d.d),
            format!("{:.2}", r.m),
            format!("{margin:.3}"),
            viable(&p).to_string(),
        ]);
        rows.push(
            json!({"b": b, "n": d.n, "d": d.d, "m": r.m, "margin": margin, "viable": viable(&p)}),
        );
    }
    text.push_str(&t.render());
    let boundary_b = (base.g * (base.p - base.v) / (base.h * (base.p - base.u))).ln();
    text.push_str(&format!(
        "\nviability boundary: b* = ln(g(p-v)/(h(p-u))) = {boundary_b:.3}; remote peering pays for b <= b* (networks with global traffic)\n"
    ));
    // Regional case study.
    let europe = CostParams {
        p: 1.0,
        u: 0.3,
        v: 0.6,
        g: 0.1,
        h: 0.07,
        b: 1.0,
    };
    let africa = CostParams {
        p: 2.4,
        u: 0.3,
        v: 0.6,
        g: 0.45,
        h: 0.05,
        b: 1.0,
    };
    text.push_str(&format!(
        "regional case study (same traffic profile):\n  dense region  (g={}, h={}, p={}): margin {:.2} -> viable: {}\n  sparse region (g={}, h={}, p={}): margin {:.2} -> viable: {} (the paper's African-market argument: h << g, expensive transit)\n",
        europe.g, europe.h, europe.p, viability_margin(&europe), viable(&europe),
        africa.g, africa.h, africa.p, viability_margin(&africa), viable(&africa),
    ));
    // Extension: the paper optimizes sequentially (eq. 11 fixes ñ, then
    // eq. 13 adds m̃). Solving (n, m) jointly is cheaper whenever remote
    // peering is viable, because available remote capacity lowers the
    // optimal number of *direct* IXPs.
    text.push_str("\nstaged (paper) vs joint optimization:\n");
    let mut t2 = TextTable::new(&[
        "b",
        "staged (n, m)",
        "joint (n, m)",
        "staging penalty",
        "integer (n, m)",
        "integrality gap",
    ]);
    let mut joint_rows = Vec::new();
    for b in [0.1, 0.35, 0.55, 0.8] {
        let p = CostParams { b, ..base };
        let d = optimal_direct(&p);
        let r = optimal_remote(&p);
        let j = rp_econ::optimal_joint(&p);
        let i = rp_econ::optimal_integer(&p);
        t2.row(&[
            format!("{b:.2}"),
            format!("({:.2}, {:.2})", d.n, r.m),
            format!("({:.2}, {:.2})", j.n, j.m),
            pct(rp_econ::staging_penalty(&p)),
            format!("({}, {})", i.n, i.m),
            pct(rp_econ::integrality_gap(&p)),
        ]);
        joint_rows.push(json!({
            "b": b, "staged_n": d.n, "staged_m": r.m,
            "joint_n": j.n, "joint_m": j.m,
            "staging_penalty": rp_econ::staging_penalty(&p),
            "integer_n": i.n, "integer_m": i.m,
            "integrality_gap": rp_econ::integrality_gap(&p),
        }));
    }
    text.push_str(&t2.render());
    ExperimentOutput {
        id: "econ",
        text,
        json: json!({ "sweep": rows, "boundary_b": boundary_b, "joint": joint_rows }),
    }
}

/// Section 5.1's model fit: extract the decay parameter b from the
/// empirical figure 9 curves.
pub fn decay_fit(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    let total = (world.contributions.total_inbound() + world.contributions.total_outbound()).0;
    let mut t = TextTable::new(&["peer group", "b", "R2 (log space)"]);
    let mut rows = Vec::new();
    for group in PeerGroup::ALL {
        let steps = study.greedy(group, 30);
        // Normalize against the *offloadable* asymptote so the fit sees the
        // decay itself, not the non-offloadable floor (the paper fits t, the
        // transit fraction, to the RedIRIS curve shape).
        let floor = steps
            .last()
            .map(|s| (s.remaining_in + s.remaining_out).0)
            .unwrap_or(0.0);
        let offloadable = (total - floor).max(1e-9);
        let fractions: Vec<f64> = std::iter::once(1.0)
            .chain(
                steps
                    .iter()
                    .map(|s| ((s.remaining_in + s.remaining_out).0 - floor).max(0.0) / offloadable),
            )
            .take_while(|f| *f > 0.02)
            .collect();
        let fit = fit_decay(&fractions);
        let (b, r2) = fit
            .map(|f| (f.b, f.r_squared))
            .unwrap_or((f64::NAN, f64::NAN));
        t.row(&[format!("{group:?}"), format!("{b:.3}"), format!("{r2:.3}")]);
        rows.push(json!({"group": format!("{group:?}"), "b": b, "r2": r2}));
    }
    let mut text =
        String::from("exponential-decay fit of the offloadable-traffic curves (first 10 IXPs):\n");
    text.push_str(&t.render());
    text.push_str("\nhigh R2 in log space supports the paper's t = e^(-b(n+m)) generalization\n");
    ExperimentOutput {
        id: "fit",
        text,
        json: json!({ "rows": rows }),
    }
}

/// Ablation: re-run the analysis with each of the six filters disabled in
/// turn (same probing samples), and measure what each filter buys: how many
/// interfaces it uniquely rejects and — the paper's real currency — how many
/// *false remote classifications* it prevents.
pub fn filter_ablation(world: &World, campaign: &Campaign) -> ExperimentOutput {
    use remote_peering::filters::{Discard, FilterConfig};
    use remote_peering::metrics::{confusion_at, filtered_analysis};

    // Probe once; analyze seven ways through the shared metric helpers
    // (the `ablation` sweep preset runs this same path per replicate).
    let probed = campaign.probe_all(world);

    let analyze = |skip: Option<Discard>| -> (usize, usize, usize) {
        // (analyzed, detected remote, false positives vs ground truth)
        let cfg = FilterConfig {
            skip,
            ..FilterConfig::default()
        };
        let mut analyzed = 0;
        let mut total = validate::Confusion::default();
        for (ixp, list) in &filtered_analysis(world, &probed, &cfg) {
            analyzed += list.len();
            total.merge(&confusion_at(world, *ixp, list, REMOTENESS_THRESHOLD_MS));
        }
        (
            analyzed,
            total.true_positive + total.false_positive,
            total.false_positive,
        )
    };

    let (base_analyzed, base_remote, base_fp) = analyze(None);
    let mut t = TextTable::new(&[
        "disabled filter",
        "analyzed",
        "extra analyzed",
        "detected remote",
        "false positives",
    ]);
    t.row(&[
        "(none — paper pipeline)".into(),
        base_analyzed.to_string(),
        "-".into(),
        base_remote.to_string(),
        base_fp.to_string(),
    ]);
    let mut rows = Vec::new();
    for skip in Discard::ORDER {
        let (analyzed, remote, fp) = analyze(Some(skip));
        t.row(&[
            format!("{skip:?}"),
            analyzed.to_string(),
            format!("+{}", analyzed.saturating_sub(base_analyzed)),
            remote.to_string(),
            fp.to_string(),
        ]);
        rows.push(json!({
            "skip": format!("{skip:?}"),
            "analyzed": analyzed,
            "remote": remote,
            "false_positives": fp,
        }));
    }
    let mut text = t.render();
    text.push_str(
        "\neach disabled filter re-admits its pathological interfaces (wrong or\n\
         untrustworthy minimum RTTs). False positives stay at zero even then —\n\
         the 10 ms threshold is independently conservative — so the filters and\n\
         the threshold are belt and suspenders: the filters guarantee the\n\
         *analyzed* dataset is clean, the threshold guarantees the *remote*\n\
         classification is, and the paper's zero-false-positive design survives\n\
         the loss of either one alone\n",
    );
    ExperimentOutput {
        id: "ablate",
        text,
        json: json!({ "baseline": {"analyzed": base_analyzed, "remote": base_remote, "fp": base_fp}, "rows": rows }),
    }
}

/// Threshold sensitivity: sweep the remoteness threshold and measure
/// precision/recall against the scene's ground truth. The paper picks 10 ms
/// because no directly peering interface exceeded it; the sweep shows the
/// asymmetry that justifies a conservative (high) choice.
pub fn threshold_sweep(
    world: &World,
    campaign: &Campaign,
    report: &DetectionReport,
) -> ExperimentOutput {
    use remote_peering::metrics::confusion_at;
    let _ = campaign;
    let mut t = TextTable::new(&[
        "threshold (ms)",
        "detected remote",
        "false positives",
        "false negatives",
        "precision",
        "recall",
    ]);
    let mut rows = Vec::new();
    for threshold in [2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, 50.0] {
        let mut total = validate::Confusion::default();
        for study in &report.studies {
            total.merge(&confusion_at(world, study.ixp, &study.analyzed, threshold));
        }
        let (tp, fp, fne) = (
            total.true_positive,
            total.false_positive,
            total.false_negative,
        );
        let precision = total.precision();
        let recall = total.recall();
        t.row(&[
            format!("{threshold:.0}"),
            (tp + fp).to_string(),
            fp.to_string(),
            fne.to_string(),
            format!("{precision:.4}"),
            format!("{recall:.4}"),
        ]);
        rows.push(json!({
            "threshold_ms": threshold, "tp": tp, "fp": fp, "fn": fne,
            "precision": precision, "recall": recall,
        }));
    }
    let mut text = t.render();
    text.push_str(
        "\nprecision saturates at 1.0 from ~8-10 ms upward while recall decays slowly —\n\
         the paper's 10 ms threshold sits just past the last direct peer, trading a\n\
         few nearby remote peers (false negatives) for zero false positives\n",
    );
    ExperimentOutput {
        id: "threshold",
        text,
        json: json!({ "rows": rows }),
    }
}

/// The titular claim: more peering without flattening. Layer-3 vs
/// layer-2-aware organization counts on the study network's traffic paths
/// after adopting remote peering at the k best IXPs.
pub fn flattening(world: &World, study: &OffloadStudy) -> ExperimentOutput {
    use remote_peering::flattening::flattening_analysis;
    let mut t = TextTable::new(&[
        "reached IXPs",
        "offloaded share",
        "orgs before",
        "orgs after (L3 view)",
        "orgs after (L2+L3)",
    ]);
    let mut rows = Vec::new();
    for k in [0usize, 1, 2, 5, 10, 20] {
        let r = flattening_analysis(world, study, PeerGroup::All, k);
        t.row(&[
            k.to_string(),
            pct(r.offloaded_share),
            format!("{:.3}", r.before),
            format!("{:.3}", r.after_layer3),
            format!("{:.3}", r.after_layer2_3),
        ]);
        rows.push(json!({
            "k": k,
            "offloaded_share": r.offloaded_share,
            "before": r.before,
            "after_l3": r.after_layer3,
            "after_l23": r.after_layer2_3,
        }));
    }
    let r = flattening_analysis(world, study, PeerGroup::All, 10);
    let mut text = t.render();
    text.push_str(&format!(
        "\nat 10 IXPs: the AS-level view reports {:.3} fewer intermediary organizations per\n\
         path (apparent flattening), but counting the layer-2 intermediaries the real\n\
         change is {:.3} — more peering, no flattening. The layer-3 topology hides\n\
         {:.3} organizations per path.\n",
        r.apparent_flattening(),
        r.real_flattening(),
        r.after_layer2_3 - r.after_layer3,
    ));
    ExperimentOutput {
        id: "flattening",
        text,
        json: json!({ "rows": rows }),
    }
}

/// Section 6 implications: fate-sharing multihoming and invisible
/// geography.
pub fn implications(world: &World) -> ExperimentOutput {
    use remote_peering::implications::{geo_exposure, multihoming_reliability};

    let mut text = String::from("reliability — transit + remote peering dual-homing:\n");
    let mut t = TextTable::new(&[
        "p(org fails)",
        "outage, independent L2 provider",
        "outage, provider resold by transit",
        "penalty",
    ]);
    let mut rel_rows = Vec::new();
    for p in [0.001, 0.005, 0.01, 0.05] {
        let r = multihoming_reliability(world, p, 400_000);
        t.row(&[
            format!("{p}"),
            format!(
                "{:.2e} (mc {:.2e})",
                r.independent_analytic, r.independent_mc
            ),
            format!("{:.2e} (mc {:.2e})", r.shared_analytic, r.shared_mc),
            format!("x{:.0}", r.fate_sharing_penalty()),
        ]);
        rel_rows.push(json!({
            "p_fail": p,
            "independent": r.independent_analytic,
            "shared": r.shared_analytic,
            "penalty": r.fate_sharing_penalty(),
        }));
    }
    text.push_str(&t.render());
    text.push_str(
        "\nbuying transit and remote peering from the same infrastructure looks like\n\
         triple-homing on layer 3 but is only dual-homing in reality — the paper's\n\
         'buying both might not yield reliable multihoming'\n\n",
    );

    let geo = geo_exposure(world);
    text.push_str(&format!(
        "invisible geography — {} remote attachments in the scene:\n  {} cross a national border invisible to layer 3 ({})\n  {} detour through a third country via the provider's PoP ({})\n",
        geo.remote_attachments,
        geo.cross_border,
        pct(geo.cross_border as f64 / geo.remote_attachments.max(1) as f64),
        geo.third_country,
        pct(geo.third_country as f64 / geo.remote_attachments.max(1) as f64),
    ));
    let mut sample = TextTable::new(&["IXP", "member really in", "frames detour via"]);
    for c in geo.cases.iter().take(8) {
        sample.row(&[
            c.ixp.to_string(),
            c.origin_country.to_string(),
            c.pop_country.to_string(),
        ]);
    }
    if !geo.cases.is_empty() {
        text.push_str("\nexample third-country detours:\n");
        text.push_str(&sample.render());
    }
    ExperimentOutput {
        id: "implications",
        text,
        json: json!({
            "reliability": rel_rows,
            "remote_attachments": geo.remote_attachments,
            "cross_border": geo.cross_border,
            "third_country": geo.third_country,
        }),
    }
}

/// The invisibility experiment: run traceroute — the standard layer-3
/// topology tool — from inside each IXP toward every member interface, and
/// show that remote peers are indistinguishable from direct ones (while a
/// genuine extra IP hop is visible immediately).
pub fn invisibility(world: &World, campaign: &Campaign) -> ExperimentOutput {
    let mut direct_total = 0usize;
    let mut direct_zero_hop = 0usize;
    let mut remote_total = 0usize;
    let mut remote_zero_hop = 0usize;
    let mut gadget_total = 0usize;
    let mut gadget_visible = 0usize;
    for ixp in world.studied_ixps() {
        for r in campaign.traceroute_survey(world, ixp, 4) {
            if !r.reached {
                continue;
            }
            if r.extra_hop {
                gadget_total += 1;
                if r.intermediate_hops >= 1 {
                    gadget_visible += 1;
                }
            } else if r.truly_remote {
                remote_total += 1;
                if r.intermediate_hops == 0 {
                    remote_zero_hop += 1;
                }
            } else {
                direct_total += 1;
                if r.intermediate_hops == 0 {
                    direct_zero_hop += 1;
                }
            }
        }
    }
    let text = format!(
        "traceroute from inside each of the 22 IXPs toward every member interface:\n\n\
         direct peers:   {direct_total} traced, {direct_zero_hop} show zero intermediate IP hops ({})\n\
         remote peers:   {remote_total} traced, {remote_zero_hop} show zero intermediate IP hops ({})\n\
         extra-hop cases: {gadget_total} traced, {gadget_visible} reveal the intermediate router ({})\n\n\
         a remote peer's pseudowire — potentially spanning an ocean and two layer-2\n\
         organizations — produces a trace identical to a colo cross-connect, while a\n\
         genuine IP hop is revealed immediately. Layer-3 topology discovery cannot,\n\
         even in principle, see remote peering; only the delay-based method of\n\
         section 3 can.\n",
        pct(direct_zero_hop as f64 / direct_total.max(1) as f64),
        pct(remote_zero_hop as f64 / remote_total.max(1) as f64),
        pct(gadget_visible as f64 / gadget_total.max(1) as f64),
    );
    ExperimentOutput {
        id: "invisibility",
        text,
        json: json!({
            "direct": {"traced": direct_total, "zero_hop": direct_zero_hop},
            "remote": {"traced": remote_total, "zero_hop": remote_zero_hop},
            "extra_hop": {"traced": gadget_total, "visible": gadget_visible},
        }),
    }
}

/// The layer-3 lens: infer AS relationships from route-collector paths
/// (Gao's algorithm, the paper's reference 30) and measure what it gets
/// right — and what it structurally cannot see.
pub fn inference(world: &World) -> ExperimentOutput {
    use remote_peering::bgp::{collect_paths, evaluate, infer_gao};
    use remote_peering::topology::AsType;

    let topo = &world.topology;
    // Route collectors hosted at transit networks and tier-1s, like the
    // real collector projects.
    let collectors: Vec<rp_types::NetworkId> = topo
        .of_type(AsType::Transit)
        .take(6)
        .map(|a| a.id)
        .chain(topo.of_type(AsType::Tier1).take(3).map(|a| a.id))
        .collect();
    let paths = collect_paths(topo, &collectors);
    let inferred = infer_gao(&paths);
    let acc = evaluate(topo, &inferred);

    let text = format!(
        "AS-relationship inference from {} collector paths ({} collectors):\n\n\
         transit edges observed: {:6}   correctly classified: {} ({})\n\
         peering edges observed: {:6}   correctly classified: {} ({})\n\
         phantom edges: {}\n\n\
         the layer-3 lens classifies transit well but misreads a large share of\n\
         peering — and even a perfect inference would place a remote peer *at the\n\
         IXP*, with the pseudowire's {} remote-peering attachments (and their\n\
         layer-2 providers) absent from the inferred graph by construction.\n",
        paths.len(),
        collectors.len(),
        acc.transit_observed,
        acc.transit_correct,
        pct(acc.transit_accuracy()),
        acc.peer_observed,
        acc.peer_correct,
        pct(acc.peer_accuracy()),
        acc.phantom,
        world
            .scene
            .ixps
            .iter()
            .map(|x| x.remote_interfaces())
            .sum::<usize>(),
    );
    ExperimentOutput {
        id: "inference",
        text,
        json: json!({
            "paths": paths.len(),
            "transit_observed": acc.transit_observed,
            "transit_accuracy": acc.transit_accuracy(),
            "peer_observed": acc.peer_observed,
            "peer_accuracy": acc.peer_accuracy(),
        }),
    }
}

/// The section 5.2 African-market analysis, run from the world itself:
/// rebuild the scenario with the study network in Nairobi and compare the
/// economics of reaching the offload venues directly vs remotely.
pub fn africa(world_madrid: &World) -> ExperimentOutput {
    use remote_peering::world::{World, WorldConfig};
    use rp_econ::{viability_margin, viable, CostParams};
    use rp_types::geo::{city, WORLD_CITIES};

    let cfg_nairobi = WorldConfig {
        vantage_city: "Nairobi".to_string(),
        ..world_madrid.config.clone()
    };
    let world_nairobi = World::build(&cfg_nairobi);

    let mut text = String::new();
    let mut rows = Vec::new();
    let mut margins = Vec::new();
    for (label, world) in [
        ("Madrid (RedIRIS-like)", world_madrid),
        ("Nairobi", &world_nairobi),
    ] {
        let study = OffloadStudy::new(world);
        let ranking = study.single_ixp_ranking();
        let home = world.topology.home_city(world.vantage).location;
        let top5: Vec<_> = ranking.iter().take(5).collect();
        let mean_km = top5
            .iter()
            .map(|(ixp, _)| world.scene.ixp(*ixp).city().location.distance_km(home))
            .sum::<f64>()
            / top5.len() as f64;
        let venues: Vec<&str> = top5
            .iter()
            .map(|(ixp, _)| world.scene.ixp(*ixp).meta.acronym)
            .collect();
        let total = world.contributions.total_inbound() + world.contributions.total_outbound();
        let (i5, o5) = study.potential(
            &top5.iter().map(|(ixp, _)| *ixp).collect::<Vec<_>>(),
            PeerGroup::All,
        );
        let frac5 = (i5 + o5).fraction_of(total);

        // Cost-model translation: the traffic-independent cost of *direct*
        // peering grows with the infrastructure distance to the venue
        // (circuits, PoPs, remote hands), while the remote-peering fee is
        // footprint-flat — the provider amortizes the long haul across
        // customers. p (transit price) is higher where wholesale transit is
        // scarce.
        let g = 0.06 + 0.04 * (mean_km / 1_000.0);
        let h = 0.035;
        let p = if label.starts_with("Nairobi") {
            2.2
        } else {
            1.0
        };
        let params = CostParams {
            p,
            u: 0.2 * p,
            v: 0.45 * p,
            g,
            h,
            b: 0.55,
        };
        params
            .validate()
            .expect("derived parameters respect the invariants");
        let margin = viability_margin(&params);
        margins.push(margin);
        text.push_str(&format!(
            "{label}:\n  top-5 offload venues: {venues:?}\n  mean distance to them: {mean_km:.0} km -> direct per-IXP cost g = {g:.3} (remote h = {h:.3})\n  offload at those 5 venues: {}\n  eq. 14 margin: {margin:.2} -> remote peering viable: {}\n\n",
            pct(frac5),
            viable(&params),
        ));
        rows.push(json!({
            "vantage": label,
            "mean_km_to_top5": mean_km,
            "g": g, "h": h, "p": p,
            "offload_top5": frac5,
            "margin": margin,
            "viable": viable(&params),
        }));
    }
    text.push_str(&format!(
        "the offload venues barely move (the big exchanges are where the members are),\n\
         but the economics flip: from Nairobi the same venues are ~{:.0}x more remote-\n\
         peering-favorable than from Madrid — the paper's 'why remote peering is\n\
         economically attractive for African networks' (h << g, expensive transit).\n",
        margins[1] / margins[0].max(1e-9),
    ));
    let _ = city("Nairobi");
    let _ = WORLD_CITIES.len();
    ExperimentOutput {
        id: "africa",
        text,
        json: json!({ "rows": rows }),
    }
}

/// Robustness: rebuild the world and rerun the headline metrics across
/// independent seeds — the reproduction's findings must not hinge on one
/// lucky draw.
pub fn seed_robustness(base_seed: u64, scale_paper: bool) -> ExperimentOutput {
    use remote_peering::world::{World, WorldConfig};

    let seeds: Vec<u64> = (0..5)
        .map(|k| base_seed.wrapping_add(1000 * k + 1))
        .collect();
    let mut metrics: Vec<(f64, f64, f64, f64, f64)> = Vec::new();
    for &seed in &seeds {
        let cfg = if scale_paper {
            WorldConfig::paper_scale(seed)
        } else {
            WorldConfig::test_scale(seed)
        };
        let world = World::build(&cfg);
        let campaign = Campaign::default_paper();
        let report = DetectionReport::run(&world, &campaign);
        let (with, total) = report.ixps_with_remote_peering();
        let mut confusion = validate::Confusion::default();
        for study in &report.studies {
            confusion.merge(&validate::confusion(&world, study));
        }
        let study = OffloadStudy::new(&world);
        let steps = study.greedy(PeerGroup::All, 30);
        let total_traffic =
            world.contributions.total_inbound() + world.contributions.total_outbound();
        let last = steps
            .last()
            .map(|s| s.remaining_in + s.remaining_out)
            .unwrap_or(total_traffic);
        let reduction = 1.0 - last.0 / total_traffic.0;
        metrics.push((
            report.stats.analyzed as f64,
            with as f64 / total as f64,
            confusion.false_positive as f64,
            confusion.recall(),
            reduction,
        ));
    }
    let stat = |pick: fn(&(f64, f64, f64, f64, f64)) -> f64| -> (f64, f64) {
        let vals: Vec<f64> = metrics.iter().map(pick).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len().max(1) as f64;
        (mean, var.sqrt())
    };
    let (an_m, an_s) = stat(|m| m.0);
    let (wr_m, wr_s) = stat(|m| m.1);
    let (fp_m, fp_s) = stat(|m| m.2);
    let (rc_m, rc_s) = stat(|m| m.3);
    let (rd_m, rd_s) = stat(|m| m.4);
    let text = format!(
        "headline metrics over {} independent seeds:\n\n\
         analyzed interfaces:        {an_m:.0} ± {an_s:.0}\n\
         IXPs with remote peering:   {:.1}% ± {:.1}%\n\
         false positives:            {fp_m:.1} ± {fp_s:.1}\n\
         detection recall:           {rc_m:.3} ± {rc_s:.3}\n\
         group-4 offload reduction:  {:.1}% ± {:.1}%\n\n\
         every finding reported in EXPERIMENTS.md is a property of the scenario's\n\
         structure, not of one random draw.\n",
        seeds.len(),
        wr_m * 100.0,
        wr_s * 100.0,
        rd_m * 100.0,
        rd_s * 100.0,
    );
    ExperimentOutput {
        id: "seeds",
        text,
        json: json!({
            "seeds": seeds,
            "analyzed": {"mean": an_m, "std": an_s},
            "with_remote_frac": {"mean": wr_m, "std": wr_s},
            "false_positives": {"mean": fp_m, "std": fp_s},
            "recall": {"mean": rc_m, "std": rc_s},
            "group4_reduction": {"mean": rd_m, "std": rd_s},
        }),
    }
}
