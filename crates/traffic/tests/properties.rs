//! Property-based tests on the traffic substrate.

use proptest::prelude::*;
use rp_bgp::RoutingView;
use rp_topology::{generate, AsType, TopologyConfig};
use rp_traffic::model::{contributions, TrafficConfig};
use rp_traffic::netflow::percentile_95;
use rp_traffic::roles::transient_rates;
use rp_traffic::series::{aggregate_series, SeriesParams, BINS_PER_DAY};
use rp_types::Bps;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn totals_always_match_targets(seed in any::<u64>(), gbps_in in 0.5f64..20.0, gbps_out in 0.5f64..20.0) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let cfg = TrafficConfig {
            seed,
            total_inbound: Bps::from_gbps(gbps_in),
            total_outbound: Bps::from_gbps(gbps_out),
            ..Default::default()
        };
        let c = contributions(&topo, &view, &cfg);
        prop_assert!((c.total_inbound().as_gbps() - gbps_in).abs() < 1e-6);
        prop_assert!((c.total_outbound().as_gbps() - gbps_out).abs() < 1e-6);
        // Non-negative everywhere.
        prop_assert!(c.inbound.iter().all(|b| b.0 >= 0.0));
        prop_assert!(c.outbound.iter().all(|b| b.0 >= 0.0));
    }

    #[test]
    fn percentile_95_is_order_statistic_sane(
        rates in proptest::collection::vec(0.0f64..1e9, 1..500),
    ) {
        let series: Vec<Bps> = rates.iter().map(|r| Bps(*r)).collect();
        let p95 = percentile_95(&series);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(p95.0 <= max + 1e-9);
        prop_assert!(p95.0 >= min - 1e-9);
        // At most 5% of samples exceed the billing rate.
        let above = rates.iter().filter(|r| **r > p95.0).count();
        prop_assert!(above as f64 <= 0.05 * rates.len() as f64 + 1.0);
    }

    #[test]
    fn aggregate_series_preserves_weekly_mass(
        seed in any::<u64>(),
        mass_gbps in 0.1f64..50.0,
        city in 0u16..60,
    ) {
        let params = SeriesParams {
            seed,
            bins: 7 * BINS_PER_DAY,
            noise_sigma: 0.0,
            ..Default::default()
        };
        let series = aggregate_series(
            std::iter::once((Bps::from_gbps(mass_gbps), city)),
            &params,
        );
        let mean = series.iter().map(|b| b.0).sum::<f64>() / series.len() as f64;
        let expected = mass_gbps * 1e9 * (5.0 + 2.0 * params.weekend_factor) / 7.0;
        prop_assert!((mean - expected).abs() / expected < 0.01, "{mean} vs {expected}");
    }

    #[test]
    fn transient_mass_is_bounded_by_path_lengths(seed in any::<u64>()) {
        let topo = generate(&TopologyConfig::test_scale(seed));
        let vantage = topo.of_type(AsType::Nren).next().unwrap().id;
        let view = RoutingView::new(&topo, vantage);
        let rates: Vec<Bps> = topo
            .ids()
            .map(|id| if id == vantage { Bps::ZERO } else { Bps(1.0) })
            .collect();
        let splits = transient_rates(&view, &rates);
        let endpoint_total: f64 = splits.iter().map(|s| s.endpoint.0).sum();
        let transient_total: f64 = splits.iter().map(|s| s.transient.0).sum();
        let max_hops = topo
            .ids()
            .filter_map(|id| view.path_len(id))
            .max()
            .unwrap_or(0) as f64;
        prop_assert!((endpoint_total - (topo.len() - 1) as f64).abs() < 1e-6);
        // Each unit flow contributes at most (path_len - 1) transient units.
        prop_assert!(transient_total <= endpoint_total * max_hops);
    }
}
